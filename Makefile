GO ?= go

.PHONY: build test race bench vet lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The restore path runs prefetch workers concurrently with the
# assembler; the race tier is not optional.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

vet:
	$(GO) vet ./...

# hidelint is the project-specific static-analysis gate: discarded
# errors, dead context plumbing, panics in library code, store
# snapshot-ownership, and uncounted container reads. See DESIGN.md
# "Static-analysis gate".
lint:
	$(GO) run ./cmd/hidelint

check: build test race vet lint
