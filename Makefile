GO ?= go

.PHONY: build test race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The restore path runs prefetch workers concurrently with the
# assembler; the race tier is not optional.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

check: build test race
