GO ?= go

.PHONY: build test race bench microbench vet lint crash remote-smoke restore-bench observatory-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The restore path runs prefetch workers concurrently with the
# assembler; the race tier is not optional.
race:
	$(GO) test -race ./...

# Regenerate the committed benchmark snapshots with the same pinned
# flags the BENCH_*_pre.json baselines were captured with. Compare any
# two snapshots with
#   $(GO) run ./cmd/benchdiff BENCH_backup_pre.json BENCH_backup.json
# (report-only: deltas inform review, they do not gate).
bench:
	$(GO) run ./cmd/bench -exp backup -workloads kernel,gcc -scale 8 -versions 8 -json .
	$(GO) run ./cmd/bench -exp chunkers -scale 8 -json .

# Go micro-benchmarks: raw chunker scan loops, the pooled chunk path,
# container/restore internals. Use -benchmem to see the allocation
# deltas the pooled path exists for.
microbench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

vet:
	$(GO) vet ./...

# hidelint is the project-specific static-analysis gate: discarded
# errors, dead context plumbing, panics in library code, store
# snapshot-ownership, uncounted container reads, and pooled-buffer
# ownership. The run is interprocedural (whole-module call graph +
# per-function summaries), and a stale //hidelint:ignore directive is a
# hard failure, so suppressions cannot outlive the code they excused.
# See DESIGN.md "Static-analysis gate".
lint:
	$(GO) run ./cmd/hidelint -unused-suppressions

# The full crash matrix: kill a multi-version backup/delete run at
# EVERY mutating op (clean fail, torn write, ENOSPC), reopen, and prove
# committed versions restore byte-identically. The plain test tier runs
# a deterministic sample of the same matrix; this tier removes the
# sampling. Bounded: well under two minutes. See DESIGN.md "Durability
# & recovery".
crash:
	HIDESTORE_CRASH_FULL=1 $(GO) test -run 'TestCrashMatrix' -count=1 ./internal/core/ ./internal/dedup/

# A short remote-backend end-to-end pass: the prefetch-depth × fetch
# latency sweep at tiny scale behind the deterministic remote
# simulator. sleep-scale=-1 skips the real sleeps, so the run is fast
# and its modeled numbers are bit-for-bit reproducible (fixed seed).
remote-smoke:
	$(GO) run ./cmd/bench -exp remote -workloads kernel -scale 2 -versions 6 -sleep-scale=-1

# The parallel-restore counterpart: the restore workers × prefetch
# depth × fetch latency sweep at tiny scale. Besides smoking the
# multi-worker assembly path end to end, the sweep hard-fails if any
# cell's container-read count deviates from the serial baseline — the
# accounting identity, enforced on every make check.
restore-bench:
	$(GO) run ./cmd/bench -exp restore -workloads kernel -scale 2 -versions 6 -sleep-scale=-1

# The locality-observatory smoke: an instrumented backup/backup/restore
# cycle in a scratch dir, then every offline analysis tool over its
# outputs — tracereport must reconstruct a balanced span tree from the
# JSONL trace, checkmetrics must accept the exposition dump, and
# analyze must produce a layout report for the store. Mirrors the CI
# smoke so the gates are reproducible locally.
observatory-smoke:
	rm -rf .obs-smoke && mkdir -p .obs-smoke
	$(GO) build -o .obs-smoke/hs ./cmd/hidestore
	head -c 1048576 /dev/urandom > .obs-smoke/v1.bin
	cat .obs-smoke/v1.bin > .obs-smoke/v2.bin && head -c 65536 /dev/urandom >> .obs-smoke/v2.bin
	.obs-smoke/hs -dir .obs-smoke/store -trace .obs-smoke/trace.jsonl backup .obs-smoke/v1.bin
	.obs-smoke/hs -dir .obs-smoke/store -trace .obs-smoke/trace.jsonl backup .obs-smoke/v2.bin
	.obs-smoke/hs -dir .obs-smoke/store -trace .obs-smoke/trace.jsonl \
		-metrics-out .obs-smoke/metrics.prom -o .obs-smoke/restored.bin restore 2
	cmp .obs-smoke/v2.bin .obs-smoke/restored.bin
	$(GO) run ./cmd/tracereport .obs-smoke/trace.jsonl
	.obs-smoke/hs checkmetrics .obs-smoke/metrics.prom
	.obs-smoke/hs -dir .obs-smoke/store analyze
	rm -rf .obs-smoke

check: build test race vet lint crash remote-smoke restore-bench observatory-smoke
