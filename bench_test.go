package hidestore

// One benchmark per table/figure of the paper's evaluation (§5). Each
// bench runs the corresponding experiment at a reduced scale and reports
// the paper's metric through b.ReportMetric, so `go test -bench=.` prints
// the reproduced numbers. cmd/bench runs the same experiments at full
// scale and renders the complete tables/series.

import (
	"bytes"
	"context"
	"io"
	"testing"

	"hidestore/internal/chunker"
	"hidestore/internal/experiments"
	"hidestore/internal/workload"
)

// benchOptions is the reduced scale used by the benchmarks.
func benchOptions() experiments.Options {
	return experiments.Options{
		ScaleMB:           2,
		Versions:          8,
		ContainerCapacity: 256 << 10,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 4096, Max: 16384},
	}
}

// BenchmarkTable1 regenerates the workload-characteristics table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1([]string{"kernel"}, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].DedupRatio*100, "dedup-ratio-%")
	}
}

// BenchmarkFigure3 regenerates the heuristic experiment of §3.
func BenchmarkFigure3(b *testing.B) {
	for _, name := range []string{"kernel", "macos"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.Figure3(name, benchOptions())
				if err != nil {
					b.Fatal(err)
				}
				window := 1
				if name == "macos" {
					window = 2
				}
				b.ReportMetric(res.PlateauRatio(1, window)*100, "plateau-%")
			}
		})
	}
}

// BenchmarkFigure8 regenerates the dedup-ratio comparison.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8([]string{"kernel"}, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratio("kernel", "hidestore")*100, "hidestore-ratio-%")
		b.ReportMetric(res.Ratio("kernel", "ddfs")*100, "ddfs-ratio-%")
	}
}

// BenchmarkFigure9 regenerates the lookup-overhead comparison.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9("kernel", benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SchemeSeries("ddfs").TotalDiskLookups), "ddfs-lookups")
		b.ReportMetric(float64(res.SchemeSeries("hidestore").TotalDiskLookups), "hidestore-lookups")
	}
}

// BenchmarkFigure10 regenerates the index-memory comparison.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10("kernel", benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Final("ddfs"), "ddfs-B/MB")
		b.ReportMetric(res.Final("hidestore"), "hidestore-B/MB")
	}
}

// BenchmarkFigure11 regenerates the restore speed-factor comparison.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11("kernel", benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Newest("hidestore"), "hidestore-newest-SF")
		b.ReportMetric(res.Newest("alacc-fbw"), "alacc-newest-SF")
		b.ReportMetric(res.Newest("baseline"), "baseline-newest-SF")
	}
}

// BenchmarkFigure12 regenerates the maintenance-overhead measurements.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12([]string{"kernel"}, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[0]
		b.ReportMetric(float64(row.MeanRecipeUpdate.Microseconds()), "recipe-update-µs")
		b.ReportMetric(float64(row.MeanMigrate.Microseconds()), "migrate-µs")
	}
}

// BenchmarkDeletion regenerates the §5.5 deletion-cost comparison.
func BenchmarkDeletion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Deletion("kernel", 4, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Row("baseline-gc").ChunksScanned), "baseline-chunks-scanned")
		b.ReportMetric(float64(res.Row("hidestore").ChunksScanned), "hidestore-chunks-scanned")
	}
}

// BenchmarkBackupThroughput measures the public API's dedup throughput on
// an adjacent-version workload (bytes/s via b.SetBytes).
func BenchmarkBackupThroughput(b *testing.B) {
	g, err := workload.New(workload.Config{
		Name: "bench", Versions: 2, Files: 32, BlocksPerFile: 16,
		BlockSize: 8192, ModifyRate: 0.05, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	r, err := g.NextVersion()
	if err != nil {
		b.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := Open(Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Backup(context.Background(), bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestoreFileStore measures restore throughput against a
// file-backed store, serial vs prefetched. Unlike the in-memory
// benchmarks this one pays a real open/read/decode per container, which
// is the latency the read-ahead pipeline exists to hide; the speed
// factor is identical in both modes by construction.
func BenchmarkRestoreFileStore(b *testing.B) {
	dir := b.TempDir()
	sys, err := Open(Config{Dir: dir, ContainerSize: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	g, err := workload.New(workload.Config{
		Name: "bench", Versions: 5, Files: 48, BlocksPerFile: 24,
		BlockSize: 8192, ModifyRate: 0.05, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	var last uint64
	for g.HasNext() {
		r, err := g.NextVersion()
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Backup(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		last = rep.LogicalBytes
	}
	for _, mode := range []struct {
		name  string
		depth int
	}{
		{"serial", -1},
		{"prefetch", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sys, err := Open(Config{Dir: dir, ContainerSize: 256 << 10, PrefetchDepth: mode.depth})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(last))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := sys.Restore(context.Background(), 5, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.SpeedFactor, "speed-factor")
				}
			}
		})
	}
}

// BenchmarkRestoreThroughput measures restore throughput of the newest
// version after a short version chain.
func BenchmarkRestoreThroughput(b *testing.B) {
	sys, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	g, err := workload.New(workload.Config{
		Name: "bench", Versions: 5, Files: 32, BlocksPerFile: 16,
		BlockSize: 8192, ModifyRate: 0.05, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	var last uint64
	for g.HasNext() {
		r, err := g.NextVersion()
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Backup(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		last = rep.LogicalBytes
	}
	b.SetBytes(int64(last))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.Restore(context.Background(), 5, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rep.SpeedFactor, "speed-factor")
		}
	}
}
