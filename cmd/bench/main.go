// Command bench regenerates the paper's tables and figures at full scale.
//
// Usage:
//
//	bench -exp all                     # everything, all four workloads
//	bench -exp fig11 -workloads kernel # one figure, one workload
//	bench -exp fig8 -scale 16 -versions 30
//
// Experiments: table1, fig3, fig8, fig9, fig10, fig11, fig12, deletion,
// throughput, backup, chunkers, ablations, remote, restore, all. Output
// is aligned text: the same rows/series the paper plots, plus the
// write-hot-path trajectory experiments (backup, chunkers) used by make
// bench, the remote-backend prefetch-depth × fetch-latency sweep
// (remote) behind the simulated high-latency store, and the parallel
// restore workers × depth × latency sweep (restore).
//
// With -json DIR, every experiment additionally writes a
// machine-readable BENCH_<exp>.json summary to DIR: wall time,
// throughput, restore container reads and cache hits, per-stage
// latency quantiles, and the full metrics-registry snapshot of the
// run. Experiments that never touch a storage engine (the
// metadata-only index studies) emit zeros for the engine counters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hidestore/internal/chunker"
	"hidestore/internal/experiments"
	"hidestore/internal/obs"
	"hidestore/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment: table1|fig3|fig8|fig9|fig10|fig11|fig12|deletion|throughput|backup|chunkers|ablations|remote|restore|all")
		sleepScale = fs.Float64("sleep-scale", 1, "remote experiment sleep scaling: 1 sleeps simulated latency for real, negative skips sleeps (modeled numbers only)")
		workloads  = fs.String("workloads", "", "comma-separated workloads (default: all four presets)")
		scale      = fs.Int("scale", 8, "approximate per-version size in MB")
		versions   = fs.Int("versions", 20, "versions per workload (0 = preset's full count)")
		ctnSize    = fs.Int("container", 1<<20, "container capacity in bytes")
		deletes    = fs.Int("deletes", 0, "versions to expire in the deletion experiment (0 = half)")
		format     = fs.String("format", "table", "output format: table|csv")
		jsonDir    = fs.String("json", "", "directory for machine-readable BENCH_<exp>.json summaries (created if missing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{
		ScaleMB:           *scale,
		Versions:          *versions,
		ContainerCapacity: *ctnSize,
		ChunkParams:       chunker.DefaultParams(),
	}
	names := workload.PresetNames()
	if *workloads != "" {
		names = strings.Split(*workloads, ",")
	}
	run := func(id string) error {
		start := time.Now()
		opts := opts // per-run copy, so each experiment gets a fresh registry
		if *jsonDir != "" {
			opts.Metrics = obs.NewRegistry()
		}
		extra := map[string]float64{}
		switch id {
		case "table1":
			res, err := experiments.Table1(names, opts)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig3":
			for _, name := range names {
				res, err := experiments.Figure3(name, opts)
				if err != nil {
					return err
				}
				fmt.Println(res.Render())
				fmt.Printf("plateau ratios (drop captured within 1/2 versions): tag1 %.0f%%/%.0f%%, tag2 %.0f%%/%.0f%%\n\n",
					res.PlateauRatio(1, 1)*100, res.PlateauRatio(1, 2)*100,
					res.PlateauRatio(2, 1)*100, res.PlateauRatio(2, 2)*100)
			}
		case "fig8":
			res, err := experiments.Figure8(names, opts)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig9":
			for _, name := range names {
				res, err := experiments.Figure9(name, opts)
				if err != nil {
					return err
				}
				if *format == "csv" {
					emitSeriesCSV("fig9", name, "lookups_per_gb", func(scheme string) []float64 {
						return res.SchemeSeries(scheme).LookupsPerGB
					}, experiments.Figure9Schemes)
				} else {
					fmt.Println(res.Render())
				}
			}
		case "fig10":
			for _, name := range names {
				res, err := experiments.Figure10(name, opts)
				if err != nil {
					return err
				}
				if *format == "csv" {
					emitSeriesCSV("fig10", name, "index_bytes_per_mb", func(scheme string) []float64 {
						return res.SchemeSeries(scheme).MemBytesPerMB
					}, experiments.Figure9Schemes)
				} else {
					fmt.Println(res.Render())
				}
			}
		case "fig11":
			for _, name := range names {
				res, err := experiments.Figure11(name, opts)
				if err != nil {
					return err
				}
				if *format == "csv" {
					emitSeriesCSV("fig11", name, "speed_factor", func(scheme string) []float64 {
						return res.SpeedFactor[scheme]
					}, experiments.Figure11Schemes)
					continue
				}
				fmt.Println(res.Render())
				fmt.Printf("newest-version speed factors: hidestore %.3f, alacc-fbw %.3f (%.2fx), baseline %.3f (%.2fx)\n\n",
					res.Newest("hidestore"),
					res.Newest("alacc-fbw"), safeDiv(res.Newest("hidestore"), res.Newest("alacc-fbw")),
					res.Newest("baseline"), safeDiv(res.Newest("hidestore"), res.Newest("baseline")))
			}
		case "fig12":
			res, err := experiments.Figure12(names, opts)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "deletion":
			for _, name := range names {
				res, err := experiments.Deletion(name, *deletes, opts)
				if err != nil {
					return err
				}
				fmt.Println(res.Render())
			}
		case "throughput":
			for _, name := range names {
				res, err := experiments.Throughput(name, opts)
				if err != nil {
					return err
				}
				fmt.Println(res.Render())
			}
		case "backup":
			for _, name := range names {
				res, err := experiments.BackupPerf(name, opts)
				if err != nil {
					return err
				}
				fmt.Println(res.Render())
				for k, v := range res.Extras() {
					extra[name+"_"+k] = v
				}
			}
		case "chunkers":
			res, err := experiments.Chunkers(opts)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
			for k, v := range res.Extras() {
				extra[k] = v
			}
		case "remote":
			for _, name := range names {
				res, err := experiments.Remote(name, *sleepScale, opts)
				if err != nil {
					return err
				}
				fmt.Println(res.Render())
				for k, v := range res.Extras() {
					extra[name+"_"+k] = v
				}
			}
		case "restore":
			for _, name := range names {
				res, err := experiments.RestoreScale(name, *sleepScale, opts)
				if err != nil {
					return err
				}
				fmt.Println(res.Render())
				for k, v := range res.Extras() {
					extra[name+"_"+k] = v
				}
			}
		case "ablations":
			type runner func(string, experiments.Options) (*experiments.AblationResult, error)
			sweeps := []runner{
				experiments.AblationWindow,
				experiments.AblationMergeThreshold,
				experiments.AblationContainerSize,
				experiments.AblationChunker,
				experiments.AblationRestoreCache,
				experiments.AblationPrefetchDepth,
			}
			for _, name := range names {
				for _, sweep := range sweeps {
					res, err := sweep(name, opts)
					if err != nil {
						return err
					}
					fmt.Println(res.Render())
				}
			}
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		if *jsonDir != "" {
			path, err := writeBenchJSON(*jsonDir, id, names, time.Since(start), opts.Metrics, extra)
			if err != nil {
				return fmt.Errorf("%s: write JSON summary: %w", id, err)
			}
			fmt.Printf("[wrote %s]\n", path)
		}
		fmt.Printf("[%s done in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
		return nil
	}
	if *exp == "all" {
		for _, id := range []string{"table1", "fig3", "fig8", "fig9", "fig10", "fig11", "fig12", "deletion", "throughput", "backup", "chunkers", "ablations", "remote", "restore"} {
			if err := run(id); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	return run(*exp)
}

// emitSeriesCSV prints one figure's series as CSV rows:
// figure,workload,metric,scheme,version,value
func emitSeriesCSV(figure, workload, metric string, series func(string) []float64, schemes []string) {
	fmt.Println("figure,workload,metric,scheme,version,value")
	for _, scheme := range schemes {
		for i, v := range series(scheme) {
			fmt.Printf("%s,%s,%s,%s,%d,%g\n", figure, workload, metric, scheme, i+1, v)
		}
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// stageLatency is one pipeline stage's latency summary in BENCH_<exp>.json.
type stageLatency struct {
	Count uint64  `json:"count"`
	P50NS float64 `json:"p50_ns"`
	P99NS float64 `json:"p99_ns"`
}

// benchSummary is the machine-readable document written per experiment.
// Engine counters accumulate over every scheme and workload the
// experiment ran; throughput normalizes bytes by the experiment's wall
// clock, so it is a lower bound on any single engine's rate.
type benchSummary struct {
	Experiment      string                  `json:"experiment"`
	Workloads       []string                `json:"workloads"`
	WallSeconds     float64                 `json:"wall_seconds"`
	LogicalBytes    int64                   `json:"logical_bytes"`
	RestoredBytes   int64                   `json:"restored_bytes"`
	BackupMBPerSec  float64                 `json:"backup_mb_per_sec"`
	RestoreMBPerSec float64                 `json:"restore_mb_per_sec"`
	ContainerReads  int64                   `json:"container_reads"`
	CacheHits       int64                   `json:"cache_hits"`
	Stages          map[string]stageLatency `json:"stages"`
	// Extra carries experiment-specific scalar metrics (per-scheme MB/s,
	// allocs per chunk, ...) that cmd/benchdiff can diff by key.
	Extra    map[string]float64 `json:"extra,omitempty"`
	Registry obs.SnapshotJSON   `json:"registry"`
}

// writeBenchJSON renders the experiment's registry into
// DIR/BENCH_<exp>.json and returns the written path.
func writeBenchJSON(dir, exp string, workloads []string, wall time.Duration, reg *obs.Registry, extra map[string]float64) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	snap := reg.Snapshot()
	sum := benchSummary{
		Experiment:     exp,
		Workloads:      workloads,
		WallSeconds:    wall.Seconds(),
		LogicalBytes:   snap.Counters["hidestore_backup_logical_bytes_total"].Value,
		RestoredBytes:  snap.Counters["hidestore_restore_bytes_total"].Value,
		ContainerReads: snap.Counters["hidestore_restore_container_reads_total"].Value,
		CacheHits:      snap.Counters["hidestore_restore_cache_hits_total"].Value,
		Stages:         map[string]stageLatency{},
	}
	if s := wall.Seconds(); s > 0 {
		sum.BackupMBPerSec = float64(sum.LogicalBytes) / (1 << 20) / s
		sum.RestoreMBPerSec = float64(sum.RestoredBytes) / (1 << 20) / s
	}
	for name, h := range snap.Histograms {
		stage, ok := strings.CutPrefix(name, "hidestore_stage_")
		if !ok {
			continue
		}
		sum.Stages[stage] = stageLatency{Count: h.Count, P50NS: h.P50, P99NS: h.P99}
	}
	if len(extra) > 0 {
		sum.Extra = extra
	}
	sum.Registry = snap
	path := filepath.Join(dir, "BENCH_"+exp+".json")
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
