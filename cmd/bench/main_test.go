package main

import "testing"

// The bench CLI is exercised end to end at tiny scale: every experiment
// id must run to completion.
func TestBenchExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke tests are slow")
	}
	base := []string{"-workloads", "kernel", "-scale", "2", "-versions", "4", "-container", "262144"}
	for _, exp := range []string{"table1", "fig3", "fig9", "fig10", "fig12", "deletion"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			t.Parallel()
			if err := run(append([]string{"-exp", exp}, base...)); err != nil {
				t.Fatalf("bench -exp %s: %v", exp, err)
			}
		})
	}
}

func TestBenchHeavyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke tests are slow")
	}
	base := []string{"-workloads", "kernel", "-scale", "2", "-versions", "4", "-container", "262144"}
	for _, exp := range []string{"fig8", "fig11"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			t.Parallel()
			if err := run(append([]string{"-exp", exp}, base...)); err != nil {
				t.Fatalf("bench -exp %s: %v", exp, err)
			}
		})
	}
}

func TestBenchCSVFormat(t *testing.T) {
	base := []string{"-workloads", "kernel", "-scale", "2", "-versions", "3",
		"-container", "262144", "-format", "csv"}
	for _, exp := range []string{"fig9", "fig10"} {
		if err := run(append([]string{"-exp", exp}, base...)); err != nil {
			t.Fatalf("bench -exp %s -format csv: %v", exp, err)
		}
	}
}

func TestBenchErrors(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if err := run([]string{"-exp", "table1", "-workloads", "bogus"}); err == nil {
		t.Fatal("unknown workload should fail")
	}
}
