// Command benchdiff compares two BENCH_<exp>.json snapshots written by
// cmd/bench and prints a per-metric old/new/delta table. By default it
// is report-only: deltas inform review, they do not gate — benchmark
// noise on shared CI runners would make a tight threshold flaky.
// Usage:
//
//	go run ./cmd/benchdiff BENCH_backup_pre.json BENCH_backup.json
//
// -fail-above PCT turns the report into a regression gate: a metric
// whose direction is known (throughput and locality ratios are
// higher-better; latencies, wall time and read counts are
// lower-better) that moves more than PCT percent the wrong way prints
// a REGRESSION line and fails the run. Metrics with no inherent
// direction (counts, sizes, configuration echoes) are never gated, and
// a missing baseline still passes — there is nothing to regress from.
// Pick a threshold well above runner noise (the CI wiring uses
// deliberately loose ones).
//
// -deterministic-only narrows the gate to metrics that are pure
// functions of code and input — currently the allocs/chunk family —
// so wall-time metrics (MB/s, latencies) remain report-only however
// noisy the runner. This is how CI gates the backup hot path: an
// allocation regression fails the build, a slow runner does not.
//
// By default the stage-latency subtree is summarized along with the
// top-level throughput numbers and the experiment's extra metrics;
// -all includes every numeric leaf.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	all := fs.Bool("all", false, "include every numeric leaf (histogram percentiles, counts)")
	failAbove := fs.Float64("fail-above", 0, "exit nonzero when a direction-classified metric regresses by more than PCT percent (0 = report only)")
	detOnly := fs.Bool("deterministic-only", false, "with -fail-above, gate only deterministic metrics (allocs/chunk); wall-time metrics stay report-only, so runner noise cannot fail the build")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [-all] [-fail-above PCT] [-deterministic-only] OLD.json NEW.json")
	}
	if *failAbove < 0 {
		return fmt.Errorf("-fail-above %v: threshold must be positive", *failAbove)
	}
	oldM, err := flattenFile(fs.Arg(0))
	if err != nil {
		// A missing baseline snapshot is routine (first CI run, new
		// experiment): report every metric as new rather than failing.
		// Malformed JSON is still an error — only unreadable content
		// exits nonzero.
		if !errors.Is(err, os.ErrNotExist) {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %s: no baseline, reporting all metrics as new\n", fs.Arg(0))
		oldM = map[string]float64{}
	}
	newM, err := flattenFile(fs.Arg(1))
	if err != nil {
		return err
	}
	keys := make(map[string]bool)
	for k := range oldM {
		keys[k] = true
	}
	for k := range newM {
		keys[k] = true
	}
	var sorted []string
	for k := range keys {
		if !*all && strings.HasPrefix(k, "stages.") && !strings.HasSuffix(k, ".p50_ns") {
			continue
		}
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	var werr error
	row := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format, args...)
		}
	}
	row("metric\told\tnew\tdelta\t\n")
	var regressions []string
	for _, k := range sorted {
		ov, haveOld := oldM[k]
		nv, haveNew := newM[k]
		switch {
		case !haveOld:
			row("%s\t-\t%s\tnew\t\n", k, num(nv))
		case !haveNew:
			row("%s\t%s\t-\tgone\t\n", k, num(ov))
		default:
			row("%s\t%s\t%s\t%s\t\n", k, num(ov), num(nv), delta(ov, nv))
			if *failAbove > 0 && (!*detOnly || deterministic(k)) {
				if worse, pct := regressed(k, ov, nv); worse && pct > *failAbove {
					regressions = append(regressions, fmt.Sprintf(
						"REGRESSION: %s: %s -> %s (%.1f%% worse, threshold %.1f%%)",
						k, num(ov), num(nv), pct, *failAbove))
				}
			}
		}
	}
	if werr != nil {
		return werr
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, r)
		}
		return fmt.Errorf("%d metric(s) regressed beyond %.1f%%", len(regressions), *failAbove)
	}
	return nil
}

// direction classifies a flattened metric key: +1 when larger values
// are better (throughput, locality ratios), -1 when smaller values are
// better (latencies, wall time, read counts), 0 when the metric has no
// inherent direction (counts, sizes, configuration echoes) and must
// not be gated. Classification is by suffix so the same rule covers a
// metric wherever it nests (extra.kernel_cfl, stages.*.p50_ns).
func direction(key string) int {
	switch {
	case strings.HasSuffix(key, "mb_per_sec"),
		strings.HasSuffix(key, "speedup"),
		strings.HasSuffix(key, "speed_factor"),
		strings.HasSuffix(key, "dedup_ratio"),
		strings.HasSuffix(key, "utilization"),
		strings.HasSuffix(key, "cfl"):
		return 1
	case strings.HasSuffix(key, "_ns"),
		strings.HasSuffix(key, "_ms"),
		strings.HasSuffix(key, "wall_seconds"),
		strings.HasSuffix(key, "reads"),
		strings.HasSuffix(key, "containers_per_mb"),
		strings.Contains(key, "allocs_per_chunk"):
		return -1
	}
	return 0
}

// deterministic reports whether a key's value is a pure function of
// the code and inputs, independent of runner speed and load. Only
// these keys are safe to hard-gate in CI: allocs/chunk counts exactly
// what the allocator did, while MB/s and latency keys measure the
// machine as much as the code. Matched by substring because the
// per-scheme variants append the scheme name after the metric
// (…_allocs_per_chunk_hidestore-l4w4).
func deterministic(key string) bool {
	return strings.Contains(key, "allocs_per_chunk")
}

// regressed reports whether new moved the wrong way relative to old
// for a direction-classified key, and by what percentage of old.
// Zero or non-finite baselines cannot express a percentage and are
// never regressions.
func regressed(key string, oldV, newV float64) (bool, float64) {
	dir := direction(key)
	if dir == 0 || oldV == 0 ||
		math.IsNaN(oldV) || math.IsNaN(newV) || math.IsInf(oldV, 0) || math.IsInf(newV, 0) {
		return false, 0
	}
	// Positive pct = worse: a drop for higher-better metrics, a rise
	// for lower-better ones.
	pct := 100 * (newV - oldV) / math.Abs(oldV) * float64(-dir)
	return pct > 0, pct
}

// flattenFile reads a JSON document and returns its numeric leaves
// keyed by dotted path.
func flattenFile(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	flatten("", doc, out)
	return out, nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, t[k], out)
		}
	case []any:
		for i, e := range t {
			flatten(fmt.Sprintf("%s.%d", prefix, i), e, out)
		}
	case float64:
		out[prefix] = t
	}
}

func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// delta renders new-old with a relative percentage. Metrics that appear
// with a 0-valued baseline have no meaningful percentage (the naive
// 100*d/oldV is ±Inf) and print as "new"; non-finite inputs or results
// print "n/a" instead of leaking Inf/NaN into the report.
func delta(oldV, newV float64) string {
	if math.IsNaN(oldV) || math.IsNaN(newV) || math.IsInf(oldV, 0) || math.IsInf(newV, 0) {
		return "n/a"
	}
	d := newV - oldV
	if oldV == 0 {
		if d == 0 {
			return "0"
		}
		return "new"
	}
	signed := num(d)
	if d >= 0 {
		signed = "+" + signed
	}
	pct := 100 * d / oldV
	if math.IsNaN(pct) || math.IsInf(pct, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%s (%+.1f%%)", signed, pct)
}
