package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFlattenAndDelta(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", `{"backup_mb_per_sec": 100, "extra": {"allocs_per_chunk": 2.5}, "stages": {"chunking_ns": {"p50_ns": 10, "count": 5}}}`)
	newP := write(t, dir, "new.json", `{"backup_mb_per_sec": 150, "extra": {"allocs_per_chunk": 0.1}, "stages": {"chunking_ns": {"p50_ns": 6, "count": 5}}}`)

	oldM, err := flattenFile(oldP)
	if err != nil {
		t.Fatal(err)
	}
	if oldM["backup_mb_per_sec"] != 100 || oldM["extra.allocs_per_chunk"] != 2.5 || oldM["stages.chunking_ns.p50_ns"] != 10 {
		t.Fatalf("flatten: %v", oldM)
	}
	if err := run([]string{oldP, newP}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestDeltaEdgeCases(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name       string
		oldV, newV float64
		want       string
	}{
		{"growth", 100, 150, "+50 (+50.0%)"},
		{"shrink", 2.5, 0.1, "-2.400 (-96.0%)"},
		{"to-zero", 5, 0, "-5 (-100.0%)"},
		{"both-zero", 0, 0, "0"},
		{"zero-baseline", 0, 5, "new"},
		{"zero-baseline-negative", 0, -3, "new"},
		{"nan-old", nan, 5, "n/a"},
		{"nan-new", 5, nan, "n/a"},
		{"inf-old", inf, 5, "n/a"},
		{"inf-new", 5, inf, "n/a"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := delta(tc.oldV, tc.newV); got != tc.want {
				t.Fatalf("delta(%v, %v) = %q, want %q", tc.oldV, tc.newV, got, tc.want)
			}
		})
	}
}

func TestRunMissingBaselineSucceeds(t *testing.T) {
	dir := t.TempDir()
	newP := write(t, dir, "new.json", `{"backup_mb_per_sec": 150}`)
	// First CI run: no baseline snapshot yet. Everything reports as
	// "new"; the tool must not fail the pipeline.
	if err := run([]string{filepath.Join(dir, "absent.json"), newP}); err != nil {
		t.Fatalf("missing baseline should not fail: %v", err)
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	if err := run([]string{"only-one.json"}); err == nil {
		t.Fatal("run with one arg should fail")
	}
	if err := run([]string{"nope1.json", "nope2.json"}); err == nil {
		t.Fatal("run with a missing NEW snapshot should fail")
	}
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", `{"ok": 1}`)
	badP := write(t, dir, "bad.json", `{not json`)
	if err := run([]string{oldP, badP}); err == nil {
		t.Fatal("malformed NEW snapshot should fail")
	}
	if err := run([]string{badP, oldP}); err == nil {
		t.Fatal("malformed OLD snapshot should fail")
	}
}

func TestDirectionClassifier(t *testing.T) {
	cases := map[string]int{
		"restore_mb_per_sec":        1,
		"extra.kernel_speedup":      1,
		"speed_factor":              1,
		"extra.kernel_cfl":          1,
		"extra.kernel_utilization":  1,
		"dedup_ratio":               1,
		"stages.chunking_ns.p50_ns": -1,
		"wall_seconds":              -1,
		"extra.kernel_reads":        -1,
		"containers_per_mb":         -1,
		"chunks":                    0,
		"versions":                  0,
		"extra.kernel_bytes":        0,
		"scale_mb":                  0,
	}
	for key, want := range cases {
		if got := direction(key); got != want {
			t.Errorf("direction(%q) = %d, want %d", key, got, want)
		}
	}
}

func TestFailAboveGates(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json",
		`{"restore_mb_per_sec": 100, "extra": {"kernel_reads": 50, "kernel_cfl": 0.8}, "chunks": 10}`)

	// Throughput down 30%: gated at 20, tolerated at 50.
	slow := write(t, dir, "slow.json",
		`{"restore_mb_per_sec": 70, "extra": {"kernel_reads": 50, "kernel_cfl": 0.8}, "chunks": 10}`)
	if err := run([]string{"-fail-above", "20", oldP, slow}); err == nil {
		t.Error("30% throughput drop passed a 20% gate")
	}
	if err := run([]string{"-fail-above", "50", oldP, slow}); err != nil {
		t.Errorf("30%% drop failed a 50%% gate: %v", err)
	}
	// Report-only default never gates.
	if err := run([]string{oldP, slow}); err != nil {
		t.Errorf("report-only run failed: %v", err)
	}

	// Lower-better direction: read count up 50% is a regression; the
	// same move down is an improvement.
	reads := write(t, dir, "reads.json",
		`{"restore_mb_per_sec": 100, "extra": {"kernel_reads": 75, "kernel_cfl": 0.8}, "chunks": 10}`)
	if err := run([]string{"-fail-above", "20", oldP, reads}); err == nil {
		t.Error("50% read-count rise passed a 20% gate")
	}
	better := write(t, dir, "better.json",
		`{"restore_mb_per_sec": 180, "extra": {"kernel_reads": 20, "kernel_cfl": 0.99}, "chunks": 10}`)
	if err := run([]string{"-fail-above", "20", oldP, better}); err != nil {
		t.Errorf("improvements gated: %v", err)
	}

	// Undirected metrics move freely.
	counts := write(t, dir, "counts.json",
		`{"restore_mb_per_sec": 100, "extra": {"kernel_reads": 50, "kernel_cfl": 0.8}, "chunks": 900}`)
	if err := run([]string{"-fail-above", "1", oldP, counts}); err != nil {
		t.Errorf("undirected metric gated: %v", err)
	}

	// Missing baseline: nothing to regress from, even with the gate on.
	if err := run([]string{"-fail-above", "1", filepath.Join(dir, "absent.json"), slow}); err != nil {
		t.Errorf("missing baseline failed the gate: %v", err)
	}

	// Negative thresholds are a usage error.
	if err := run([]string{"-fail-above", "-5", oldP, slow}); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestDeterministicOnlyGates(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json",
		`{"backup_mb_per_sec": 100, "extra": {"kernel_allocs_per_chunk_hidestore-l4w4": 2.0}}`)

	// Wall time tanks but allocs hold: deterministic-only tolerates it,
	// the plain gate does not.
	slow := write(t, dir, "slow.json",
		`{"backup_mb_per_sec": 40, "extra": {"kernel_allocs_per_chunk_hidestore-l4w4": 2.0}}`)
	if err := run([]string{"-fail-above", "20", "-deterministic-only", oldP, slow}); err != nil {
		t.Errorf("wall-time drop gated under -deterministic-only: %v", err)
	}
	if err := run([]string{"-fail-above", "20", oldP, slow}); err == nil {
		t.Error("wall-time drop passed the plain gate")
	}

	// Allocs regress: deterministic-only must fail.
	leaky := write(t, dir, "leaky.json",
		`{"backup_mb_per_sec": 100, "extra": {"kernel_allocs_per_chunk_hidestore-l4w4": 3.0}}`)
	if err := run([]string{"-fail-above", "20", "-deterministic-only", oldP, leaky}); err == nil {
		t.Error("50% allocs/chunk rise passed the deterministic gate")
	}
	// Allocs improving never gates.
	lean := write(t, dir, "lean.json",
		`{"backup_mb_per_sec": 100, "extra": {"kernel_allocs_per_chunk_hidestore-l4w4": 1.0}}`)
	if err := run([]string{"-fail-above", "20", "-deterministic-only", oldP, lean}); err != nil {
		t.Errorf("allocs improvement gated: %v", err)
	}
}
