package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFlattenAndDelta(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", `{"backup_mb_per_sec": 100, "extra": {"allocs_per_chunk": 2.5}, "stages": {"chunking_ns": {"p50_ns": 10, "count": 5}}}`)
	newP := write(t, dir, "new.json", `{"backup_mb_per_sec": 150, "extra": {"allocs_per_chunk": 0.1}, "stages": {"chunking_ns": {"p50_ns": 6, "count": 5}}}`)

	oldM, err := flattenFile(oldP)
	if err != nil {
		t.Fatal(err)
	}
	if oldM["backup_mb_per_sec"] != 100 || oldM["extra.allocs_per_chunk"] != 2.5 || oldM["stages.chunking_ns.p50_ns"] != 10 {
		t.Fatalf("flatten: %v", oldM)
	}
	if err := run([]string{oldP, newP}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestDeltaEdgeCases(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name       string
		oldV, newV float64
		want       string
	}{
		{"growth", 100, 150, "+50 (+50.0%)"},
		{"shrink", 2.5, 0.1, "-2.400 (-96.0%)"},
		{"to-zero", 5, 0, "-5 (-100.0%)"},
		{"both-zero", 0, 0, "0"},
		{"zero-baseline", 0, 5, "new"},
		{"zero-baseline-negative", 0, -3, "new"},
		{"nan-old", nan, 5, "n/a"},
		{"nan-new", 5, nan, "n/a"},
		{"inf-old", inf, 5, "n/a"},
		{"inf-new", 5, inf, "n/a"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := delta(tc.oldV, tc.newV); got != tc.want {
				t.Fatalf("delta(%v, %v) = %q, want %q", tc.oldV, tc.newV, got, tc.want)
			}
		})
	}
}

func TestRunMissingBaselineSucceeds(t *testing.T) {
	dir := t.TempDir()
	newP := write(t, dir, "new.json", `{"backup_mb_per_sec": 150}`)
	// First CI run: no baseline snapshot yet. Everything reports as
	// "new"; the tool must not fail the pipeline.
	if err := run([]string{filepath.Join(dir, "absent.json"), newP}); err != nil {
		t.Fatalf("missing baseline should not fail: %v", err)
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	if err := run([]string{"only-one.json"}); err == nil {
		t.Fatal("run with one arg should fail")
	}
	if err := run([]string{"nope1.json", "nope2.json"}); err == nil {
		t.Fatal("run with a missing NEW snapshot should fail")
	}
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", `{"ok": 1}`)
	badP := write(t, dir, "bad.json", `{not json`)
	if err := run([]string{oldP, badP}); err == nil {
		t.Fatal("malformed NEW snapshot should fail")
	}
	if err := run([]string{badP, oldP}); err == nil {
		t.Fatal("malformed OLD snapshot should fail")
	}
}
