package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFlattenAndDelta(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", `{"backup_mb_per_sec": 100, "extra": {"allocs_per_chunk": 2.5}, "stages": {"chunking_ns": {"p50_ns": 10, "count": 5}}}`)
	newP := write(t, dir, "new.json", `{"backup_mb_per_sec": 150, "extra": {"allocs_per_chunk": 0.1}, "stages": {"chunking_ns": {"p50_ns": 6, "count": 5}}}`)

	oldM, err := flattenFile(oldP)
	if err != nil {
		t.Fatal(err)
	}
	if oldM["backup_mb_per_sec"] != 100 || oldM["extra.allocs_per_chunk"] != 2.5 || oldM["stages.chunking_ns.p50_ns"] != 10 {
		t.Fatalf("flatten: %v", oldM)
	}
	if err := run([]string{oldP, newP}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := delta(100, 150); got != "+50 (+50.0%)" {
		t.Fatalf("delta = %q", got)
	}
	if got := delta(2.5, 0.1); got != "-2.400 (-96.0%)" {
		t.Fatalf("delta = %q", got)
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	if err := run([]string{"only-one.json"}); err == nil {
		t.Fatal("run with one arg should fail")
	}
	if err := run([]string{"nope1.json", "nope2.json"}); err == nil {
		t.Fatal("run with missing files should fail")
	}
}
