package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"hidestore/internal/chunker"
	"hidestore/internal/metrics"
	"hidestore/internal/workload"
)

// The -lanes mode reports the multi-lane chunker's behavior on a
// stream: per-lane throughput, speculative-cut agreement (how many of a
// lane's speculative cuts survived the stitch), and a sequential
// cross-check that the stitched chunk sequence is bit-identical.

// laneReport is the result of one multi-lane chunking run. The render
// is a pure function of the fields, so golden tests can pin it without
// re-running the chunkers.
type laneReport struct {
	Name      string
	Alg       string
	Bytes     int64
	Chunks    int
	Identical bool // stitched sequence matches the sequential chunker
	ElapsedNS int64
	Lanes     []chunker.LaneStat
}

// Render formats the report as a table plus a summary line.
func (r laneReport) Render() string {
	var b bytes.Buffer
	t := metrics.NewTable(fmt.Sprintf("%s · %s · %d lanes", r.Name, r.Alg, len(r.Lanes)),
		"lane", "MB", "cuts", "adopted", "agree", "resyncs", "MB/s")
	for i, st := range r.Lanes {
		agree := "-"
		if st.Cuts > 0 {
			agree = fmt.Sprintf("%.1f%%", 100*float64(st.Adopted)/float64(st.Cuts))
		}
		mbps := "-"
		if st.BusyNS > 0 {
			mbps = fmt.Sprintf("%.0f", float64(st.Bytes)/(1<<20)/(float64(st.BusyNS)/1e9))
		}
		t.AddRow(strconv.Itoa(i),
			fmt.Sprintf("%.1f", float64(st.Bytes)/(1<<20)),
			strconv.FormatInt(st.Cuts, 10),
			strconv.FormatInt(st.Adopted, 10),
			agree,
			strconv.FormatInt(st.Resyncs, 10),
			mbps)
	}
	b.WriteString(t.Render())
	b.WriteByte('\n')
	streamMBps := "-"
	if r.ElapsedNS > 0 {
		streamMBps = fmt.Sprintf("%.0f MB/s", float64(r.Bytes)/(1<<20)/(float64(r.ElapsedNS)/1e9))
	}
	verdict := "IDENTICAL to sequential"
	if !r.Identical {
		verdict = "MISMATCH vs sequential"
	}
	fmt.Fprintf(&b, "stream: %d chunks over %.1f MB at %s; cut sequence %s\n",
		r.Chunks, float64(r.Bytes)/(1<<20), streamMBps, verdict)
	return b.String()
}

// chunkSizes drains a chunker into its chunk-length sequence.
func chunkSizes(ch chunker.Chunker) ([]int, error) {
	var sizes []int
	for {
		data, err := ch.Next()
		if errors.Is(err, io.EOF) {
			return sizes, nil
		}
		if err != nil {
			return nil, err
		}
		sizes = append(sizes, len(data))
	}
}

// runLaneReport chunks data with lanes workers, cross-checks the cut
// sequence against the sequential chunker, and builds the report.
func runLaneReport(name string, data []byte, alg chunker.Algorithm, p chunker.Params, lanes int) (laneReport, error) {
	seqCh, err := chunker.New(alg, bytes.NewReader(data), p)
	if err != nil {
		return laneReport{}, err
	}
	seqSizes, err := chunkSizes(seqCh)
	if err != nil {
		return laneReport{}, err
	}

	parCh, err := chunker.NewParallel(alg, bytes.NewReader(data), p, lanes)
	if err != nil {
		return laneReport{}, err
	}
	start := time.Now()
	parSizes, err := chunkSizes(parCh)
	if err != nil {
		return laneReport{}, err
	}
	elapsed := time.Since(start)

	identical := len(seqSizes) == len(parSizes)
	if identical {
		for i := range seqSizes {
			if seqSizes[i] != parSizes[i] {
				identical = false
				break
			}
		}
	}
	rep := laneReport{
		Name:      name,
		Alg:       alg.String(),
		Bytes:     int64(len(data)),
		Chunks:    len(parSizes),
		Identical: identical,
		ElapsedNS: elapsed.Nanoseconds(),
	}
	if lr, ok := parCh.(chunker.LaneReporter); ok {
		rep.Lanes = lr.LaneStats()
	}
	return rep, nil
}

// runLanes is the -lanes entry point: report on the preset's versions,
// or on each explicit version file.
func runLanes(lanes int, preset string, scale, versions int, files []string) error {
	params := chunker.DefaultParams()
	if preset != "" {
		cfg, err := workload.Preset(preset, scale)
		if err != nil {
			return err
		}
		if versions > 0 && versions < cfg.Versions {
			cfg.Versions = versions
		}
		g, err := workload.New(cfg)
		if err != nil {
			return err
		}
		for g.HasNext() {
			r, err := g.NextVersion()
			if err != nil {
				return err
			}
			data, err := io.ReadAll(r)
			if err != nil {
				return err
			}
			rep, err := runLaneReport(fmt.Sprintf("%s v%d", preset, g.Version()), data, chunker.TTTD, params, lanes)
			if err != nil {
				return err
			}
			fmt.Println(rep.Render())
			if !rep.Identical {
				return fmt.Errorf("lane chunking diverged from sequential on %s v%d", preset, g.Version())
			}
		}
		return nil
	}
	if len(files) == 0 {
		return errors.New("-lanes needs -preset or version files")
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rep, err := runLaneReport(path, data, chunker.TTTD, params, lanes)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if !rep.Identical {
			return fmt.Errorf("lane chunking diverged from sequential on %s", path)
		}
	}
	return nil
}
