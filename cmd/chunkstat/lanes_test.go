package main

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"hidestore/internal/chunker"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestLaneReportGolden pins the report rendering on fixed inputs (the
// render is a pure function of the struct, so timing never leaks in).
func TestLaneReportGolden(t *testing.T) {
	rep := laneReport{
		Name:      "kernel v1",
		Alg:       "tttd",
		Bytes:     8 << 20,
		Chunks:    2048,
		Identical: true,
		ElapsedNS: 20e6,
		Lanes: []chunker.LaneStat{
			{Bytes: 4 << 20, Cuts: 1030, Adopted: 1030, Resyncs: 0, BusyNS: 10e6},
			{Bytes: 4 << 20, Cuts: 1022, Adopted: 1018, Resyncs: 4, BusyNS: 11e6},
		},
	}
	got := rep.Render()
	golden := filepath.Join("testdata", "lanes.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Fatalf("report drifted from %s (re-run with -update-golden to accept):\n%s", golden, got)
	}
}

// TestLaneReportMismatchRender covers the divergence wording.
func TestLaneReportMismatchRender(t *testing.T) {
	rep := laneReport{Name: "x", Alg: "rabin", Identical: false}
	if !bytes.Contains([]byte(rep.Render()), []byte("MISMATCH")) {
		t.Fatal("mismatch report lacks MISMATCH marker")
	}
}

// TestRunLanesPreset drives the full -lanes path over a synthetic
// preset, which also asserts the stitched sequence is identical
// (runLanes fails otherwise).
func TestRunLanesPreset(t *testing.T) {
	if err := run([]string{"-lanes", "4", "-preset", "kernel", "-scale", "2", "-versions", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLanesFiles(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 256<<10)
	rng.Read(data)
	path := filepath.Join(dir, "v1.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-lanes", "2", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-lanes", "2"}); err == nil {
		t.Fatal("no input should fail")
	}
	if err := run([]string{"-lanes", "2", filepath.Join(dir, "missing.bin")}); err == nil {
		t.Fatal("missing file should fail")
	}
}
