// Command chunkstat runs the paper's §3 heuristic experiment: track every
// chunk's version tag (the most recent backup version containing it)
// across a series of versions, and print how each tag's population evolves
// — the data behind Figure 3.
//
// Usage:
//
//	chunkstat -preset kernel -versions 8        # synthetic workload
//	chunkstat v1.bin v2.bin v3.bin ...          # explicit version files
//
// The expected shape (the paper's observation): tag-t population drops
// sharply at version t+1 and then plateaus — chunks that leave the stream
// do not come back, which is what justifies deduplicating only against the
// previous version(s).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"hidestore/internal/chunker"
	"hidestore/internal/cleanup"
	"hidestore/internal/experiments"
	"hidestore/internal/fp"
	"hidestore/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chunkstat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chunkstat", flag.ContinueOnError)
	var (
		preset   = fs.String("preset", "", "synthetic workload preset (kernel|gcc|fslhomes|macos)")
		scale    = fs.Int("scale", 8, "per-version MB for -preset")
		versions = fs.Int("versions", 10, "version count for -preset")
		lanes    = fs.Int("lanes", 0, "report multi-lane chunking instead of the tag census: per-lane throughput and speculative-cut agreement, cross-checked bit-identical against the sequential chunker")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *lanes > 1 {
		return runLanes(*lanes, *preset, *scale, *versions, fs.Args())
	}
	if *preset != "" {
		res, err := experiments.Figure3(*preset, experiments.Options{
			ScaleMB:  *scale,
			Versions: *versions,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		fmt.Printf("plateau ratio (tag 1, window 1): %.0f%%\n", res.PlateauRatio(1, 1)*100)
		fmt.Printf("plateau ratio (tag 1, window 2): %.0f%%\n", res.PlateauRatio(1, 2)*100)
		return nil
	}
	files := fs.Args()
	if len(files) < 2 {
		return errors.New("need -preset or at least two version files")
	}
	return fromFiles(files)
}

func fromFiles(files []string) error {
	params := chunker.DefaultParams()
	tags := make(map[fp.FP]int)
	counts := make([][]int, len(files))
	for v, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		ch, err := chunker.New(chunker.TTTD, f, params)
		if err != nil {
			cleanup.Close(f)
			return err
		}
		for {
			data, err := ch.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				cleanup.Close(f)
				return err
			}
			tags[fp.Of(data)] = v + 1
		}
		if err := f.Close(); err != nil {
			return err
		}
		census := make([]int, len(files)+1)
		for _, tag := range tags {
			census[tag]++
		}
		counts[v] = census
	}
	t := metrics.NewTable("chunks per version tag", tagHeaders(len(files))...)
	for v := 0; v < len(files); v++ {
		row := []string{"after v" + strconv.Itoa(v+1)}
		for tag := 1; tag <= len(files); tag++ {
			if tag > v+1 {
				row = append(row, "-")
			} else {
				row = append(row, strconv.Itoa(counts[v][tag]))
			}
		}
		t.AddRow(row...)
	}
	fmt.Println(t.Render())
	return nil
}

func tagHeaders(n int) []string {
	out := []string{"processed"}
	for tag := 1; tag <= n; tag++ {
		out = append(out, "V"+strconv.Itoa(tag))
	}
	return out
}
