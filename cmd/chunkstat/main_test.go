package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestChunkstatPreset(t *testing.T) {
	if err := run([]string{"-preset", "kernel", "-scale", "2", "-versions", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkstatFiles(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	base := make([]byte, 64<<10)
	rng.Read(base)
	v1 := filepath.Join(dir, "v1.bin")
	v2 := filepath.Join(dir, "v2.bin")
	if err := os.WriteFile(v1, base, 0o644); err != nil {
		t.Fatal(err)
	}
	mutated := append([]byte{}, base...)
	rng.Read(mutated[:8<<10])
	if err := os.WriteFile(v2, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{v1, v2}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkstatErrors(t *testing.T) {
	if err := run([]string{"-preset", "bogus"}); err == nil {
		t.Fatal("unknown preset should fail")
	}
	if err := run([]string{"only-one-file"}); err == nil {
		t.Fatal("fewer than two files should fail")
	}
	if err := run([]string{"/no/such/a", "/no/such/b"}); err == nil {
		t.Fatal("missing files should fail")
	}
}
