// Command hidelint is hidestore's project-specific static-analysis
// gate. It walks every package in the module and enforces the
// invariants the restore-performance evaluation depends on (exact
// error surfacing, live context plumbing, store snapshot ownership,
// counted container reads) as named checks with file:line diagnostics.
//
// Usage:
//
//	hidelint [-root dir] [-checks a,b,c] [-unused-suppressions] [-list]
//
// Exit status is 1 when any diagnostic survives suppression, 2 on
// operational failure (unparsable or untypecheckable tree).
//
// With -unused-suppressions, every //hidelint:ignore directive that
// silenced no finding of the checks that ran is itself reported as an
// "unused-suppression" finding, so stale suppressions cannot outlive
// the code they excused.
//
// Suppress a finding with a trailing or preceding-line comment:
//
//	//hidelint:ignore <check> <reason>
//
// The reason is mandatory; a reasonless suppression is itself a
// finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hidestore/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hidelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root to lint (default: nearest go.mod above the working directory)")
	checks := fs.String("checks", "", "comma-separated checks to run (default: all)")
	list := fs.Bool("list", false, "list registered checks and exit")
	unused := fs.Bool("unused-suppressions", false, "also flag hidelint:ignore comments that suppress nothing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range analysis.Checks() {
			sayf(stdout, "%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			sayf(stderr, "hidelint: %v\n", err)
			return 2
		}
	}
	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	pkgs, err := analysis.NewLoader().LoadModule(dir)
	if err != nil {
		sayf(stderr, "hidelint: %v\n", err)
		return 2
	}
	cfg := analysis.DefaultConfig()
	cfg.ReportUnusedSuppressions = *unused
	diags, err := analysis.Run(pkgs, names, cfg)
	if err != nil {
		sayf(stderr, "hidelint: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		sayf(stdout, "%s\n", relativize(d, dir).String())
	}
	sayf(stderr, "hidelint: %d finding(s)\n", len(diags))
	return 1
}

// sayf writes best-effort console output: a lint tool has no recourse
// when its own diagnostic stream fails, and its exit code is the
// contract.
func sayf(w io.Writer, format string, args ...any) {
	//hidelint:ignore discarded-error best-effort console write; the exit code carries the verdict
	_, _ = fmt.Fprintf(w, format, args...)
}

// relativize rewrites the diagnostic's filename relative to root so
// output is stable regardless of where the tree is checked out.
func relativize(d analysis.Diagnostic, root string) analysis.Diagnostic {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
