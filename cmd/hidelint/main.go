// Command hidelint is hidestore's project-specific static-analysis
// gate. It walks every package in the module and enforces the
// invariants the restore-performance evaluation depends on (exact
// error surfacing, live context plumbing, store snapshot ownership,
// counted container reads) as named checks with file:line diagnostics.
//
// Usage:
//
//	hidelint [-root dir] [-checks a,b,c] [-unused-suppressions]
//	         [-interprocedural=true|false] [-json] [-github] [-list]
//
// Exit status is 1 when any diagnostic survives suppression, 2 on
// operational failure (unparsable or untypecheckable tree).
//
// By default the run is interprocedural: a whole-module call graph
// with per-function summaries feeds the transitive halves of
// ignored-ctx, store-ownership, and pooled-escape, and the
// accounting-path check. -interprocedural=false reverts every check to
// its single-function behavior (accounting-path then reports nothing).
//
// -json replaces the text findings on stdout with a JSON array of
// {file, line, col, check, message} objects, machine-readable for CI
// artifact consumers. -github additionally emits GitHub Actions
// ::error workflow annotations on stderr so findings surface inline on
// pull requests. Both leave the exit-code contract unchanged.
//
// With -unused-suppressions, every //hidelint:ignore directive that
// silenced no finding of the checks that ran is itself reported as an
// "unused-suppression" finding, so stale suppressions cannot outlive
// the code they excused.
//
// Suppress a finding with a trailing or preceding-line comment:
//
//	//hidelint:ignore <check> <reason>
//
// The reason is mandatory; a reasonless suppression is itself a
// finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hidestore/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hidelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root to lint (default: nearest go.mod above the working directory)")
	checks := fs.String("checks", "", "comma-separated checks to run (default: all)")
	list := fs.Bool("list", false, "list registered checks and exit")
	unused := fs.Bool("unused-suppressions", false, "also flag hidelint:ignore comments that suppress nothing")
	interproc := fs.Bool("interprocedural", true, "build the whole-module call graph and run the cross-function halves of the checks")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout instead of text")
	github := fs.Bool("github", false, "also emit GitHub Actions ::error annotations on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range analysis.Checks() {
			sayf(stdout, "%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			sayf(stderr, "hidelint: %v\n", err)
			return 2
		}
	}
	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	pkgs, err := analysis.NewLoader().LoadModule(dir)
	if err != nil {
		sayf(stderr, "hidelint: %v\n", err)
		return 2
	}
	cfg := analysis.DefaultConfig()
	cfg.ReportUnusedSuppressions = *unused
	cfg.Interprocedural = *interproc
	diags, err := analysis.Run(pkgs, names, cfg)
	if err != nil {
		sayf(stderr, "hidelint: %v\n", err)
		return 2
	}
	for i := range diags {
		diags[i] = relativize(diags[i], dir)
	}
	if *jsonOut {
		writeJSON(stdout, diags)
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		if !*jsonOut {
			sayf(stdout, "%s\n", d.String())
		}
		if *github {
			sayf(stderr, "::error file=%s,line=%d,col=%d::%s\n",
				filepath.ToSlash(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
				githubEscape(d.Check+": "+d.Message))
		}
	}
	sayf(stderr, "hidelint: %d finding(s)\n", len(diags))
	return 1
}

// jsonDiag is the machine-readable finding shape; field order is the
// reading order of a diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// writeJSON emits the findings as one JSON array on w. A clean run
// prints "[]", so artifact consumers never special-case the happy
// path.
func writeJSON(w io.Writer, diags []analysis.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:    filepath.ToSlash(d.Pos.Filename),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//hidelint:ignore discarded-error best-effort console write; the exit code carries the verdict
	_ = enc.Encode(out)
}

// githubEscape encodes the characters the workflow-command parser
// treats as delimiters (the data portion runs to end-of-line).
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// sayf writes best-effort console output: a lint tool has no recourse
// when its own diagnostic stream fails, and its exit code is the
// contract.
func sayf(w io.Writer, format string, args ...any) {
	//hidelint:ignore discarded-error best-effort console write; the exit code carries the verdict
	_, _ = fmt.Fprintf(w, format, args...)
}

// relativize rewrites the diagnostic's filename relative to root so
// output is stable regardless of where the tree is checked out.
func relativize(d analysis.Diagnostic, root string) analysis.Diagnostic {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
