package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module for the tool
// to lint.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module lintprobe\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "probe.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestUnsuppressedFindingExitsNonZero(t *testing.T) {
	dir := writeModule(t, `package lintprobe

import "errors"

func fallible() error { return errors.New("x") }

func oops() {
	fallible()
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-checks", "discarded-error"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "probe.go:8:2: discarded-error:") {
		t.Errorf("diagnostic missing or mispositioned:\n%s", stdout.String())
	}
}

func TestSuppressedFindingExitsZero(t *testing.T) {
	dir := writeModule(t, `package lintprobe

import "errors"

func fallible() error { return errors.New("x") }

func oops() {
	//hidelint:ignore discarded-error exercising the suppression path in a test fixture
	fallible()
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-checks", "discarded-error"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	dir := writeModule(t, `package lintprobe

func fine() int { return 1 }
`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestListNamesEveryCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"accounting", "discarded-error", "ignored-ctx", "no-panic", "store-ownership"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownCheckExitsTwo(t *testing.T) {
	dir := writeModule(t, `package lintprobe
`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", dir, "-checks", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
