package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module for the tool
// to lint.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module lintprobe\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "probe.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestUnsuppressedFindingExitsNonZero(t *testing.T) {
	dir := writeModule(t, `package lintprobe

import "errors"

func fallible() error { return errors.New("x") }

func oops() {
	fallible()
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-checks", "discarded-error"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "probe.go:8:2: discarded-error:") {
		t.Errorf("diagnostic missing or mispositioned:\n%s", stdout.String())
	}
}

func TestSuppressedFindingExitsZero(t *testing.T) {
	dir := writeModule(t, `package lintprobe

import "errors"

func fallible() error { return errors.New("x") }

func oops() {
	//hidelint:ignore discarded-error exercising the suppression path in a test fixture
	fallible()
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-checks", "discarded-error"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	dir := writeModule(t, `package lintprobe

func fine() int { return 1 }
`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestListNamesEveryCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"accounting", "discarded-error", "ignored-ctx", "no-panic", "store-ownership"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// writeCoreModule lays out a module whose internal/core package
// launders I/O through an unexported helper: invisible to the
// single-function pass, caught by the call-graph pass.
func writeCoreModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module lintprobe\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	coreDir := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(coreDir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package core

import "os"

func readAll(path string) ([]byte, error) { return os.ReadFile(path) }

// Load performs no I/O on its face.
func Load(path string) ([]byte, error) { return readAll(path) }
`
	if err := os.WriteFile(filepath.Join(coreDir, "core.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestInterproceduralFlagGatesTransitiveFindings(t *testing.T) {
	dir := writeCoreModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-checks", "ignored-ctx"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("default run exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "transitively performs I/O") {
		t.Errorf("transitive finding missing:\n%s", stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-root", dir, "-checks", "ignored-ctx", "-interprocedural=false"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-interprocedural=false exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeCoreModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-checks", "ignored-ctx", "-json"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var got []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d findings, want 1: %+v", len(got), got)
	}
	d := got[0]
	if d.File != "internal/core/core.go" || d.Check != "ignored-ctx" || d.Line == 0 {
		t.Errorf("unexpected finding: %+v", d)
	}
	if strings.Contains(stdout.String(), "ignored-ctx:") && strings.Contains(stdout.String(), ".go:") &&
		strings.Contains(strings.SplitN(stdout.String(), "[", 2)[0], ":") {
		t.Errorf("-json stdout still carries text findings:\n%s", stdout.String())
	}
}

func TestJSONCleanRunEmitsEmptyArray(t *testing.T) {
	dir := writeModule(t, `package lintprobe

func fine() int { return 1 }
`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", dir, "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("clean -json stdout = %q, want []", stdout.String())
	}
}

func TestGitHubAnnotations(t *testing.T) {
	dir := writeCoreModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-checks", "ignored-ctx", "-github"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "::error file=internal/core/core.go,line=") {
		t.Errorf("annotation missing from stderr:\n%s", stderr.String())
	}
}

func TestGitHubEscape(t *testing.T) {
	got := githubEscape("50% of\r\nreads")
	want := "50%25 of%0D%0Areads"
	if got != want {
		t.Errorf("githubEscape = %q, want %q", got, want)
	}
}

func TestUnknownCheckExitsTwo(t *testing.T) {
	dir := writeModule(t, `package lintprobe
`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", dir, "-checks", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
