// Command hidestore is a small backup tool over the HiDeStore library.
//
// Usage:
//
//	hidestore -dir /backups backup  <file|->       # back up a stream
//	hidestore -dir /backups backup-dir <directory> # back up a directory tree
//	hidestore -dir /backups restore <version> [-o out]
//	hidestore -dir /backups restore-dir <version> <destination>
//	hidestore -dir /backups delete  <version>
//	hidestore -dir /backups versions
//	hidestore -dir /backups stats
//	hidestore -dir /backups analyze [version]      # layout/fragmentation report (-json for machines)
//	hidestore trace <trace.jsonl>                  # summarize a JSONL trace
//	hidestore checkmetrics <metrics.prom>          # validate an exposition dump
//
// Observability: -trace FILE appends JSONL spans for the invocation (the
// file accumulates across invocations; summarize with `hidestore trace`
// or the richer `tracereport`), -debug-addr ADDR serves /metrics,
// /metrics.json, /healthz, /debug/vars, /debug/pprof and /debug/layout
// for the life of the command, and -metrics-out FILE dumps the
// Prometheus exposition on exit. When either metrics consumer is active
// a background sampler feeds runtime-health gauges (heap, goroutines,
// GC pauses) into the registry. All switches are off by default and add
// no overhead when unset. Interrupts (SIGINT/SIGTERM) cancel in-flight
// work but still run the finalizers: the trace file gets its closing
// anchor and the metrics dump is written.
//
// Directory backups serialize the tree (sorted walk, path+size headers +
// file contents) into one stream, so adjacent snapshots of the same tree
// deduplicate chunk-by-chunk; restore-dir reverses the framing.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"hidestore"
	"hidestore/internal/backup"
	"hidestore/internal/cleanup"
	"hidestore/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hidestore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// Interrupts cancel in-flight work (restores stop within one
	// container read) instead of killing the process mid-write; the
	// deferred finalizers in runCtx still run, so -trace and
	// -metrics-out files are left complete and parseable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args)
}

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("hidestore", flag.ContinueOnError)
	var (
		dir      = fs.String("dir", "", "storage directory (required)")
		out      = fs.String("o", "", "restore output file (default stdout)")
		window   = fs.Int("window", 1, "fingerprint-cache window in versions")
		alg      = fs.String("chunker", "tttd", "chunking algorithm: tttd|rabin|fastcdc|ae|fixed")
		ctnSize  = fs.Int("container", 4<<20, "container size in bytes")
		cache    = fs.String("restore-cache", "faa", "restore cache: faa|alacc|container-lru|chunk-lru|opt")
		prefetch = fs.Int("prefetch", 0, "restore read-ahead depth in containers (0 = default, negative disables)")
		workers  = fs.Int("restore-workers", 0, "parallel restore workers: >1 widens the container-fetch pool and assembles chunk spans out of order (bytes and read counts are identical to serial; 0/1 = serial)")
		lanes    = fs.Int("chunk-lanes", 0, "parallel chunking lanes: >1 chunks lane segments speculatively and re-stitches them (the chunk sequence is bit-identical to sequential; 0/1 = sequential)")
		shards   = fs.Int("index-shards", 0, "fingerprint-index shard count, rounded up to a power of two (0 = default)")
		compress = fs.Bool("compress", false, "DEFLATE-compress containers at rest")
		repair   = fs.Bool("repair", false, "fsck only: quarantine corrupt containers and name affected versions")
		throttle = fs.Float64("scrub-throttle", 0, "scrub only: verification I/O cap in MB/s (0 = default 32, negative = unthrottled)")
		jsonOut  = fs.Bool("json", false, "analyze only: emit the layout report as JSON instead of text")
		policies = fs.String("policies", "", "analyze only: comma-separated cache policies to simulate (default all)")

		tracePath  = fs.String("trace", "", "append JSONL spans for this invocation to FILE")
		debugAddr  = fs.String("debug-addr", "", "serve /metrics, expvar and pprof on ADDR for the life of the command")
		metricsOut = fs.String("metrics-out", "", "dump the Prometheus exposition to FILE on exit")

		backendKind  = fs.String("backend", "local", "storage backend: local|remote (remote simulates a high-latency store with retry, rate limiting and a local container cache)")
		backendLat   = fs.Duration("backend-latency", 0, "remote backend: simulated per-operation round-trip")
		backendBW    = fs.Float64("backend-bandwidth", 0, "remote backend: simulated payload bandwidth in MB/s (0 = unlimited)")
		backendErrs  = fs.Float64("backend-err-rate", 0, "remote backend: injected transient-failure probability per op (0..1)")
		backendSeed  = fs.Int64("backend-seed", 0, "remote backend: seed for the injected-failure stream")
		backendTries = fs.Int("backend-retries", 0, "remote backend: per-op attempt budget for transient failures (0 = default 4)")
		backendRate  = fs.Float64("backend-rate-limit", 0, "remote backend: client-side throughput cap in MB/s (0 = off)")
		backendCache = fs.Int("backend-cache-mb", 0, "remote backend: persistent local container-read cache size in MB (0 = off)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hidestore -dir DIR <fsck|scrub|verify|flatten|backup|backup-dir|restore|restore-dir|delete|versions|stats|analyze> [args]")
		fmt.Fprintln(os.Stderr, "       hidestore trace <trace.jsonl> | hidestore checkmetrics <metrics.prom>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return errors.New("missing command")
	}
	// Offline analysis commands work on files, not a store: no -dir.
	switch rest[0] {
	case "trace":
		return runTraceSummary(rest[1:])
	case "checkmetrics":
		return runCheckMetrics(rest[1:])
	}
	if *dir == "" {
		return errors.New("-dir is required")
	}

	// The observability plane: all three switches are independent, but
	// the metrics registry exists if any consumer (server or dump file)
	// wants it.
	var reg *obs.Registry
	if *debugAddr != "" || *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		t, err := obs.OpenTraceFile(*tracePath)
		if err != nil {
			return err
		}
		tracer = t
	}

	sys, err := hidestore.Open(hidestore.Config{
		Dir:            *dir,
		Window:         *window,
		Chunker:        *alg,
		ContainerSize:  *ctnSize,
		RestoreCache:   *cache,
		PrefetchDepth:  *prefetch,
		RestoreWorkers: *workers,
		ChunkLanes:     *lanes,
		IndexShards:    *shards,
		Compress:       *compress,
		Metrics:        reg,
		Tracer:         tracer,
		Backend: hidestore.BackendConfig{
			Kind:          *backendKind,
			Latency:       *backendLat,
			BandwidthMBps: *backendBW,
			ErrRate:       *backendErrs,
			Seed:          *backendSeed,
			Retries:       *backendTries,
			RateLimitMBps: *backendRate,
			CacheMB:       *backendCache,
		},
	})
	if err != nil {
		//hidelint:ignore discarded-error tracer teardown on the Open error path; the Open failure is the error that matters
		_ = tracer.Close()
		return err
	}
	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, reg,
			obs.WithHandler("/healthz", sys.HealthHandler()),
			obs.WithHandler("/debug/layout", sys.LayoutHandler()),
		)
		if err != nil {
			//hidelint:ignore discarded-error tracer teardown on the listen error path; the listen failure is the error that matters
			_ = tracer.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/metrics\n", srv.Addr())
		// Shut down with the command (or the interrupt that cancelled
		// it): the server must never outlive run, and Shutdown reaps the
		// serving goroutine so an interrupted process exits cleanly.
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintln(os.Stderr, "hidestore: debug server shutdown:", err)
			}
		}()
	}
	if tracer != nil {
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "hidestore: trace:", err)
			}
		}()
	}
	if *metricsOut != "" {
		defer func() {
			if err := os.WriteFile(*metricsOut, []byte(reg.PrometheusText()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "hidestore: metrics dump:", err)
			}
		}()
	}
	if reg != nil {
		// Runtime-health gauges (heap, goroutines, GC pauses) for the
		// life of the command. Registered after the -metrics-out defer so
		// Stop's final sample lands before the dump is written.
		sampler := obs.StartRuntimeSampler(reg, 0)
		defer sampler.Stop()
	}
	switch cmd := rest[0]; cmd {
	case "backup":
		if len(rest) != 2 {
			return errors.New("backup needs exactly one source (file or -)")
		}
		var in io.Reader = os.Stdin
		if rest[1] != "-" {
			f, err := os.Open(rest[1])
			if err != nil {
				return err
			}
			defer cleanup.Close(f) // read-only input
			in = f
		}
		rep, err := sys.Backup(ctx, in)
		if err != nil {
			return err
		}
		printBackupReport(rep)
	case "backup-dir":
		if len(rest) != 2 {
			return errors.New("backup-dir needs exactly one directory")
		}
		pr, pw := io.Pipe()
		go func() { pw.CloseWithError(writeTree(pw, rest[1])) }()
		rep, err := sys.Backup(ctx, pr)
		if err != nil {
			return err
		}
		printBackupReport(rep)
	case "restore":
		version, err := parseVersion(rest)
		if err != nil {
			return err
		}
		var w io.Writer = os.Stdout
		closeOut := func() error { return nil }
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer cleanup.Close(f) // error-path release; success path checks closeOut below
			w = f
			closeOut = f.Close
		}
		rep, err := sys.Restore(ctx, version, w)
		if err != nil {
			return err
		}
		// A failed close of the written output means truncated restore data.
		if err := closeOut(); err != nil {
			return fmt.Errorf("close %s: %w", *out, err)
		}
		fmt.Fprintf(os.Stderr, "restored v%d: %d bytes, %d container reads, speed factor %.2f MB/read\n",
			rep.Version, rep.BytesRestored, rep.ContainerReads, rep.SpeedFactor)
	case "restore-dir":
		if len(rest) != 3 {
			return errors.New("restore-dir needs a version and a destination")
		}
		version, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("bad version %q", rest[1])
		}
		pr, pw := io.Pipe()
		done := make(chan error, 1)
		go func() { done <- readTree(pr, rest[2]) }()
		rep, err := sys.Restore(ctx, version, pw)
		pw.CloseWithError(err)
		if unpackErr := <-done; err == nil && unpackErr != nil {
			return unpackErr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "restored v%d into %s (%d bytes, %d container reads)\n",
			rep.Version, rest[2], rep.BytesRestored, rep.ContainerReads)
	case "delete":
		version, err := parseVersion(rest)
		if err != nil {
			return err
		}
		rep, err := sys.Delete(version)
		if err != nil {
			return err
		}
		fmt.Printf("deleted v%d: %d containers dropped, %d bytes reclaimed in %s\n",
			rep.Version, rep.ContainersDeleted, rep.BytesReclaimed, rep.Duration)
	case "versions":
		for _, v := range sys.Versions() {
			fmt.Println(v)
		}
	case "flatten":
		if len(rest) != 1 {
			return errors.New("flatten takes no arguments")
		}
		rep, err := sys.Flatten()
		if err != nil {
			return err
		}
		fmt.Printf("flattened recipe chains across %d versions in %s\n", rep.Versions, rep.Duration)
	case "verify":
		version, err := parseVersion(rest)
		if err != nil {
			return err
		}
		rep, err := sys.VerifyRestore(ctx, version, io.Discard)
		if err != nil {
			return err
		}
		fmt.Printf("verified v%d: %d bytes, every fetched chunk matched its fingerprint\n",
			rep.Version, rep.BytesRestored)
	case "fsck":
		var rep hidestore.FsckReport
		if *repair {
			rep, err = sys.FsckRepair()
		} else {
			rep, err = sys.Fsck()
		}
		if err != nil {
			return err
		}
		fmt.Printf("checked %d containers (%d chunks), %d recipes (%d references)\n",
			rep.Containers, rep.StoredChunks, rep.Versions, rep.Chunks)
		for _, q := range rep.Quarantined {
			fmt.Println("QUARANTINED:", q)
		}
		for _, v := range rep.AffectedVersions {
			fmt.Printf("AFFECTED: v%d lost chunks to a quarantined container; its restore will fail\n", v)
		}
		if !rep.OK() {
			for _, p := range rep.Problems {
				fmt.Println("PROBLEM:", p)
			}
			return fmt.Errorf("%d problems found", len(rep.Problems))
		}
		fmt.Println("store is healthy")
	case "scrub":
		if len(rest) != 1 {
			return errors.New("scrub takes no arguments")
		}
		var (
			mu         sync.Mutex
			containers int
			chunks     int
			verified   uint64
			corrupt    []string
			stepErrs   int
		)
		pass := make(chan struct{})
		var passOnce sync.Once
		stop, err := sys.StartScrub(hidestore.ScrubOptions{
			ThrottleMBps: *throttle,
			OnStep: func(rep backup.ScrubStepReport, err error) {
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err != nil:
					stepErrs++
					fmt.Fprintln(os.Stderr, "hidestore: scrub:", err)
				case rep.Corrupt != "":
					line := fmt.Sprintf("container %d: %s", rep.Container, rep.Corrupt)
					if rep.Quarantined != "" {
						line += " (quarantined to " + rep.Quarantined + ")"
					}
					corrupt = append(corrupt, line)
					fmt.Println("CORRUPT:", line)
				case !rep.Skipped:
					containers++
					chunks += rep.Chunks
					verified += rep.Bytes
				}
				if rep.PassComplete {
					passOnce.Do(func() { close(pass) })
				}
			},
		})
		if err != nil {
			return err
		}
		// One full pass (or the interrupt), then stop the background
		// goroutine before reading the totals.
		select {
		case <-pass:
		case <-ctx.Done():
		}
		stop()
		mu.Lock()
		defer mu.Unlock()
		fmt.Printf("scrubbed %d containers (%d chunks, %d bytes verified)\n", containers, chunks, verified)
		if stepErrs > 0 {
			return fmt.Errorf("%d scrub steps failed", stepErrs)
		}
		if len(corrupt) > 0 {
			return fmt.Errorf("%d corrupt containers found", len(corrupt))
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		fmt.Println("store is healthy")
	case "stats":
		st := sys.Stats()
		fmt.Printf("versions:          %d\n", st.Versions)
		fmt.Printf("logical bytes:     %d\n", st.LogicalBytes)
		fmt.Printf("stored bytes:      %d\n", st.StoredBytes)
		fmt.Printf("dedup ratio:       %.2f%%\n", st.DedupRatio*100)
		fmt.Printf("containers:        %d\n", st.Containers)
		fmt.Printf("index memory:      %dB\n", st.IndexMemoryBytes)
		fmt.Printf("disk index reads:  %d\n", st.DiskIndexLookups)
		for _, d := range st.Degraded {
			fmt.Fprintln(os.Stderr, "WARNING: degraded:", d)
		}
	case "analyze":
		version := 0
		switch len(rest) {
		case 1:
			vs := sys.Versions()
			if len(vs) == 0 {
				return errors.New("analyze: no versions stored")
			}
			version = vs[len(vs)-1]
		case 2:
			v, err := strconv.Atoi(rest[1])
			if err != nil {
				return fmt.Errorf("bad version %q", rest[1])
			}
			version = v
		default:
			return errors.New("analyze takes at most one version")
		}
		var pols []string
		if *policies != "" {
			for _, p := range strings.Split(*policies, ",") {
				if p = strings.TrimSpace(p); p != "" {
					pols = append(pols, p)
				}
			}
		}
		rep, err := sys.AnalyzeLayout(ctx, version, pols)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		printLayoutReport(rep)
	default:
		fs.Usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// runTraceSummary aggregates a JSONL trace file into per-stage latency
// and throughput tables.
func runTraceSummary(args []string) error {
	if len(args) != 1 {
		return errors.New("trace needs exactly one JSONL file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer cleanup.Close(f) // read-only input
	sum, err := obs.SummarizeTrace(f)
	if err != nil {
		return err
	}
	fmt.Print(sum.Render())
	return nil
}

// runCheckMetrics validates a Prometheus text exposition dump (such as a
// -metrics-out file or a scraped /metrics body); CI fails the build on a
// malformed exposition.
func runCheckMetrics(args []string) error {
	if len(args) != 1 {
		return errors.New("checkmetrics needs exactly one exposition file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer cleanup.Close(f) // read-only input
	if err := obs.ValidateExposition(f); err != nil {
		return err
	}
	fmt.Println("exposition is well-formed")
	return nil
}

func parseVersion(rest []string) (int, error) {
	if len(rest) != 2 {
		return 0, errors.New("need exactly one version number")
	}
	v, err := strconv.Atoi(rest[1])
	if err != nil {
		return 0, fmt.Errorf("bad version %q", rest[1])
	}
	return v, nil
}

// printLayoutReport renders the layout profile: the fragmentation
// block first (how the version is packed), then one line per simulated
// cache policy (what restoring it would cost).
func printLayoutReport(rep hidestore.LayoutReport) {
	fmt.Printf("layout of v%d:\n", rep.Version)
	fmt.Printf("  logical bytes:      %d (%d chunks)\n", rep.LogicalBytes, rep.Chunks)
	fmt.Printf("  containers:         %d referenced, %d optimal\n", rep.UniqueContainers, rep.OptimalContainers)
	fmt.Printf("  CFL:                %.3f (1.0 = perfectly packed)\n", rep.CFL)
	fmt.Printf("  containers per MB:  %.3f\n", rep.ContainersPerMB)
	fmt.Printf("  utilization:        %.2f%% (%d live of %d stored payload bytes)\n",
		rep.Utilization*100, rep.ReferencedBytes, rep.ContainerBytes)
	if len(rep.Policies) > 0 {
		fmt.Println("  simulated restore cost (exact container reads, not an estimate):")
		for _, p := range rep.Policies {
			fmt.Printf("    %-14s %6d reads, %6d cache hits, speed factor %.2f MB/read\n",
				p.Policy, p.ContainerReads, p.CacheHits, p.SpeedFactor)
		}
	}
}

func printBackupReport(rep hidestore.BackupReport) {
	fmt.Printf("backed up v%d: %d bytes, %d chunks (%d unique), dedup ratio %.2f%%, %s\n",
		rep.Version, rep.LogicalBytes, rep.Chunks, rep.UniqueChunks,
		rep.DedupRatio*100, rep.Duration)
}

// writeTree serializes a directory: for each regular file in sorted walk
// order, a header (path length u32, path, size u64) followed by contents.
func writeTree(w io.Writer, root string) error {
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, path := range paths {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		var hdr [12]byte
		binary.BigEndian.PutUint32(hdr[0:], uint32(len(rel)))
		binary.BigEndian.PutUint64(hdr[4:], uint64(info.Size()))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, rel); err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		_, err = io.Copy(w, f)
		cleanup.Close(f) // read-only input
		if err != nil {
			return err
		}
	}
	return nil
}

// readTree reverses writeTree into dest.
func readTree(r io.Reader, dest string) error {
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		pathLen := binary.BigEndian.Uint32(hdr[0:])
		size := binary.BigEndian.Uint64(hdr[4:])
		if pathLen == 0 || pathLen > 1<<16 {
			return fmt.Errorf("corrupt tree stream: path length %d", pathLen)
		}
		nameBuf := make([]byte, pathLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return err
		}
		rel := filepath.FromSlash(string(nameBuf))
		if strings.Contains(rel, "..") || filepath.IsAbs(rel) {
			return fmt.Errorf("corrupt tree stream: unsafe path %q", rel)
		}
		target := filepath.Join(dest, rel)
		if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
			return err
		}
		f, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.CopyN(f, r, int64(size)); err != nil {
			cleanup.Close(f)
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
}
