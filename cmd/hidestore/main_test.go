package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hidestore"
	"hidestore/internal/obs"
)

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func randBytes(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestCLIFullCycle(t *testing.T) {
	store := t.TempDir()
	src := t.TempDir()
	writeFile(t, filepath.Join(src, "a.txt"), randBytes(1, 50<<10))
	writeFile(t, filepath.Join(src, "sub", "b.bin"), randBytes(2, 80<<10))

	run1 := []string{"-dir", store, "backup-dir", src}
	if err := run(run1); err != nil {
		t.Fatalf("backup-dir: %v", err)
	}
	// Mutate and back up again (a fresh process would behave identically;
	// run() constructs a new System each call, which exercises the state
	// reload path).
	writeFile(t, filepath.Join(src, "a.txt"), append(randBytes(1, 50<<10), "more"...))
	if err := run(run1); err != nil {
		t.Fatalf("second backup-dir: %v", err)
	}
	if err := run([]string{"-dir", store, "versions"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", store, "stats"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", store, "fsck"}); err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if err := run([]string{"-dir", store, "verify", "2"}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := run([]string{"-dir", store, "flatten"}); err != nil {
		t.Fatalf("flatten: %v", err)
	}
	// Restore v2 into a fresh directory and compare trees.
	dest := t.TempDir()
	if err := run([]string{"-dir", store, "restore-dir", "2", dest}); err != nil {
		t.Fatalf("restore-dir: %v", err)
	}
	for _, rel := range []string{"a.txt", filepath.Join("sub", "b.bin")} {
		want, err := os.ReadFile(filepath.Join(src, rel))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dest, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s differs after restore", rel)
		}
	}
}

func TestCLISingleFileBackupRestore(t *testing.T) {
	store := t.TempDir()
	srcFile := filepath.Join(t.TempDir(), "data.bin")
	payload := randBytes(3, 100<<10)
	writeFile(t, srcFile, payload)
	if err := run([]string{"-dir", store, "backup", srcFile}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "restored.bin")
	if err := run([]string{"-dir", store, "-o", out, "restore", "1"}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("restored file differs")
	}
}

func TestCLIErrors(t *testing.T) {
	store := t.TempDir()
	tests := [][]string{
		{},                                    // no command
		{"-dir", store},                       // still no command
		{"-dir", store, "bogus"},              // unknown command
		{"backup", "x"},                       // missing -dir
		{"-dir", store, "restore", "nope"},    // bad version
		{"-dir", store, "restore", "9"},       // missing version
		{"-dir", store, "delete", "9"},        // missing version
		{"-dir", store, "backup"},             // missing source
		{"-dir", store, "backup", "/no/such"}, // missing file
		{"-dir", store, "restore-dir", "1"},   // missing destination
		{"-dir", store, "verify", "7"},        // missing version
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestTreeStreamRejectsUnsafePaths(t *testing.T) {
	// Craft a stream with a path-traversal entry; readTree must refuse it.
	var buf bytes.Buffer
	evil := "../escape.txt"
	hdr := make([]byte, 12)
	hdr[3] = byte(len(evil))
	hdr[11] = 4
	buf.Write(hdr)
	buf.WriteString(evil)
	buf.WriteString("boom")
	if err := readTree(&buf, t.TempDir()); err == nil {
		t.Fatal("path traversal accepted")
	}
}

func TestTreeRoundTripEmptyDir(t *testing.T) {
	var buf bytes.Buffer
	if err := writeTree(&buf, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("empty tree should serialize to nothing")
	}
	if err := readTree(&buf, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

// TestCancelledRestoreFinalizesObservability is the interrupt
// regression: a restore cancelled mid-flight must still leave a
// parseable trace file (closing anchor written, spans balanced) and a
// valid metrics snapshot, because the finalizers are deferred before
// the command dispatch. The tiny container size gives the restore many
// per-read cancellation points, so the cancelled context is observed.
func TestCancelledRestoreFinalizesObservability(t *testing.T) {
	store := t.TempDir()
	srcFile := filepath.Join(t.TempDir(), "data.bin")
	writeFile(t, srcFile, randBytes(9, 256<<10))
	if err := run([]string{"-dir", store, "-container", "16384", "backup", srcFile}); err != nil {
		t.Fatal(err)
	}

	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	metricsPath := filepath.Join(t.TempDir(), "metrics.prom")
	out := filepath.Join(t.TempDir(), "out.bin")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the interrupt lands before the restore makes progress
	err := runCtx(ctx, []string{
		"-dir", store, "-container", "16384",
		"-trace", tracePath, "-metrics-out", metricsPath,
		"-o", out, "restore", "1",
	})
	if err == nil {
		t.Fatal("cancelled restore reported success")
	}

	// The trace must open with a wall-clock anchor and end with a
	// balanced trace.close — exactly what tracereport enforces.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file missing after cancellation: %v", err)
	}
	var recs []obs.TraceRecord
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var rec obs.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("unparseable trace line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) < 2 {
		t.Fatalf("trace has %d records, want at least open+close anchors", len(recs))
	}
	if first := recs[0]; first.Name != "trace.open" || first.Unix == 0 {
		t.Errorf("first record %+v, want a trace.open anchor with wall clock", first)
	}
	last := recs[len(recs)-1]
	if last.Name != "trace.close" || last.Unix == 0 {
		t.Fatalf("last record %+v, want a trace.close anchor", last)
	}
	if last.Attrs["open_spans"] != 0 {
		t.Errorf("cancelled restore leaked %d open spans", last.Attrs["open_spans"])
	}
	if _, err := obs.SummarizeTrace(bytes.NewReader(data)); err != nil {
		t.Errorf("trace summary rejects the cancelled-run trace: %v", err)
	}

	// The metrics snapshot must be a valid exposition and include the
	// runtime-health gauges the sampler feeds.
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics dump missing after cancellation: %v", err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(prom)); err != nil {
		t.Errorf("metrics dump malformed: %v", err)
	}
	if !bytes.Contains(prom, []byte("hidestore_runtime_heap_bytes")) {
		t.Errorf("metrics dump missing runtime gauges:\n%.400s", prom)
	}
}

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		_, cpErr := buf.ReadFrom(r)
		if cpErr != nil {
			t.Error(cpErr)
		}
		done <- buf.String()
	}()
	runErr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, runErr
}

func TestCLIAnalyze(t *testing.T) {
	store := t.TempDir()
	srcFile := filepath.Join(t.TempDir(), "data.bin")
	payload := randBytes(11, 200<<10)
	writeFile(t, srcFile, payload)
	if err := run([]string{"-dir", store, "-container", "16384", "backup", srcFile}); err != nil {
		t.Fatal(err)
	}
	writeFile(t, srcFile, append(payload[:150<<10], randBytes(12, 60<<10)...))
	if err := run([]string{"-dir", store, "-container", "16384", "backup", srcFile}); err != nil {
		t.Fatal(err)
	}

	// Text mode, defaulting to the newest version.
	text, err := captureStdout(t, func() error {
		return run([]string{"-dir", store, "analyze"})
	})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	for _, want := range []string{"layout of v2", "CFL:", "utilization:", "simulated restore cost"} {
		if !strings.Contains(text, want) {
			t.Errorf("analyze output missing %q:\n%s", want, text)
		}
	}

	// JSON mode with an explicit version and a narrowed policy list.
	js, err := captureStdout(t, func() error {
		return run([]string{"-dir", store, "-json", "-policies", "faa", "analyze", "1"})
	})
	if err != nil {
		t.Fatalf("analyze -json: %v", err)
	}
	var rep hidestore.LayoutReport
	if err := json.Unmarshal([]byte(js), &rep); err != nil {
		t.Fatalf("analyze -json output not JSON: %v\n%s", err, js)
	}
	if rep.Version != 1 || rep.UniqueContainers == 0 || rep.CFL <= 0 {
		t.Errorf("report shape wrong: %+v", rep)
	}
	if len(rep.Policies) != 1 || rep.Policies[0].Policy != "faa" || rep.Policies[0].ContainerReads == 0 {
		t.Errorf("policy estimates wrong: %+v", rep.Policies)
	}

	// Errors: empty store, bad version, excess arguments.
	for _, args := range [][]string{
		{"-dir", t.TempDir(), "analyze"},
		{"-dir", store, "analyze", "nope"},
		{"-dir", store, "analyze", "1", "2"},
		{"-dir", store, "analyze", "99"},
		{"-dir", store, "-policies", "bogus", "analyze"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
