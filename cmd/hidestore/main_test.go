package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func randBytes(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestCLIFullCycle(t *testing.T) {
	store := t.TempDir()
	src := t.TempDir()
	writeFile(t, filepath.Join(src, "a.txt"), randBytes(1, 50<<10))
	writeFile(t, filepath.Join(src, "sub", "b.bin"), randBytes(2, 80<<10))

	run1 := []string{"-dir", store, "backup-dir", src}
	if err := run(run1); err != nil {
		t.Fatalf("backup-dir: %v", err)
	}
	// Mutate and back up again (a fresh process would behave identically;
	// run() constructs a new System each call, which exercises the state
	// reload path).
	writeFile(t, filepath.Join(src, "a.txt"), append(randBytes(1, 50<<10), "more"...))
	if err := run(run1); err != nil {
		t.Fatalf("second backup-dir: %v", err)
	}
	if err := run([]string{"-dir", store, "versions"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", store, "stats"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", store, "fsck"}); err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if err := run([]string{"-dir", store, "verify", "2"}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := run([]string{"-dir", store, "flatten"}); err != nil {
		t.Fatalf("flatten: %v", err)
	}
	// Restore v2 into a fresh directory and compare trees.
	dest := t.TempDir()
	if err := run([]string{"-dir", store, "restore-dir", "2", dest}); err != nil {
		t.Fatalf("restore-dir: %v", err)
	}
	for _, rel := range []string{"a.txt", filepath.Join("sub", "b.bin")} {
		want, err := os.ReadFile(filepath.Join(src, rel))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dest, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s differs after restore", rel)
		}
	}
}

func TestCLISingleFileBackupRestore(t *testing.T) {
	store := t.TempDir()
	srcFile := filepath.Join(t.TempDir(), "data.bin")
	payload := randBytes(3, 100<<10)
	writeFile(t, srcFile, payload)
	if err := run([]string{"-dir", store, "backup", srcFile}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "restored.bin")
	if err := run([]string{"-dir", store, "-o", out, "restore", "1"}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("restored file differs")
	}
}

func TestCLIErrors(t *testing.T) {
	store := t.TempDir()
	tests := [][]string{
		{},                                    // no command
		{"-dir", store},                       // still no command
		{"-dir", store, "bogus"},              // unknown command
		{"backup", "x"},                       // missing -dir
		{"-dir", store, "restore", "nope"},    // bad version
		{"-dir", store, "restore", "9"},       // missing version
		{"-dir", store, "delete", "9"},        // missing version
		{"-dir", store, "backup"},             // missing source
		{"-dir", store, "backup", "/no/such"}, // missing file
		{"-dir", store, "restore-dir", "1"},   // missing destination
		{"-dir", store, "verify", "7"},        // missing version
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestTreeStreamRejectsUnsafePaths(t *testing.T) {
	// Craft a stream with a path-traversal entry; readTree must refuse it.
	var buf bytes.Buffer
	evil := "../escape.txt"
	hdr := make([]byte, 12)
	hdr[3] = byte(len(evil))
	hdr[11] = 4
	buf.Write(hdr)
	buf.WriteString(evil)
	buf.WriteString("boom")
	if err := readTree(&buf, t.TempDir()); err == nil {
		t.Fatal("path traversal accepted")
	}
}

func TestTreeRoundTripEmptyDir(t *testing.T) {
	var buf bytes.Buffer
	if err := writeTree(&buf, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("empty tree should serialize to nothing")
	}
	if err := readTree(&buf, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
