// Command tracegen materializes the synthetic versioned workloads so they
// can be inspected or fed to external tools.
//
// Usage:
//
//	tracegen -preset kernel -scale 8 -versions 10 -out /tmp/kernel
//	tracegen -preset macos -stats          # chunk statistics only
//
// With -out, each version is written to <out>/v<N>.bin. With -stats, no
// files are written; per-version chunk counts and adjacent-version
// redundancy are printed instead.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"hidestore/internal/chunker"
	"hidestore/internal/fp"
	"hidestore/internal/metrics"
	"hidestore/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		preset   = fs.String("preset", "kernel", "workload preset: kernel|gcc|fslhomes|macos")
		scale    = fs.Int("scale", 8, "approximate per-version size in MB")
		versions = fs.Int("versions", 0, "versions to generate (0 = preset's count)")
		out      = fs.String("out", "", "output directory (v<N>.bin per version)")
		stats    = fs.Bool("stats", false, "print chunk statistics instead of writing files")
		seed     = fs.Int64("seed", 0, "override the preset's seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := workload.Preset(*preset, *scale)
	if err != nil {
		return err
	}
	if *versions > 0 && *versions < cfg.Versions {
		cfg.Versions = *versions
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if !*stats && *out == "" {
		return errors.New("need -out DIR or -stats")
	}
	g, err := workload.New(cfg)
	if err != nil {
		return err
	}
	if *stats {
		return printStats(g)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for g.HasNext() {
		r, err := g.NextVersion()
		if err != nil {
			return err
		}
		path := filepath.Join(*out, "v"+strconv.Itoa(g.Version())+".bin")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		n, err := io.Copy(f, r)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d bytes\n", path, n)
	}
	return nil
}

func printStats(g *workload.Generator) error {
	params := chunker.DefaultParams()
	t := metrics.NewTable(fmt.Sprintf("workload %s", g.Config().Name),
		"version", "bytes", "chunks", "redundancy vs prev", "new chunks")
	prev := make(map[fp.FP]struct{})
	for g.HasNext() {
		r, err := g.NextVersion()
		if err != nil {
			return err
		}
		ch, err := chunker.New(chunker.FastCDC, r, params)
		if err != nil {
			return err
		}
		cur := make(map[fp.FP]struct{})
		var bytesTotal, sharedBytes uint64
		var chunks, newChunks int
		for {
			data, err := ch.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return err
			}
			f := fp.Of(data)
			chunks++
			bytesTotal += uint64(len(data))
			if _, ok := prev[f]; ok {
				sharedBytes += uint64(len(data))
			}
			if _, ok := cur[f]; !ok {
				cur[f] = struct{}{}
			}
			if _, ok := prev[f]; !ok {
				newChunks++
			}
		}
		redundancy := "-"
		if g.Version() > 1 && bytesTotal > 0 {
			redundancy = metrics.FormatPercent(float64(sharedBytes) / float64(bytesTotal))
		}
		t.AddRow(strconv.Itoa(g.Version()),
			metrics.FormatBytes(bytesTotal),
			strconv.Itoa(chunks),
			redundancy,
			strconv.Itoa(newChunks))
		prev = cur
	}
	fmt.Println(t.Render())
	return nil
}
