package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTracegenWritesFiles(t *testing.T) {
	out := t.TempDir()
	err := run([]string{"-preset", "kernel", "-scale", "2", "-versions", "3", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		path := filepath.Join(out, "v"+string(rune('0'+v))+".bin")
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("missing %s: %v", path, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

func TestTracegenStats(t *testing.T) {
	if err := run([]string{"-preset", "macos", "-scale", "2", "-versions", "3", "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestTracegenSeedOverride(t *testing.T) {
	if err := run([]string{"-preset", "gcc", "-scale", "2", "-versions", "2", "-seed", "99", "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestTracegenErrors(t *testing.T) {
	if err := run([]string{"-preset", "bogus", "-stats"}); err == nil {
		t.Fatal("unknown preset should fail")
	}
	if err := run([]string{"-preset", "kernel"}); err == nil {
		t.Fatal("missing -out and -stats should fail")
	}
}
