// Command tracereport turns a JSONL span trace (written by hidestore
// -trace) into per-operation reports: a waterfall of each operation's
// stages, per-stage p50/p99 latency breakdowns, a container-fetch
// timeline, and — for parallel restores — reorder-window stall
// attribution (time the in-order writer sat blocked vs. time spent
// fetching).
//
// It is also the trace's validator: a trace file accumulates one
// segment per CLI invocation (append mode), each bracketed by a
// "trace.open" and a "trace.close" anchor with its own ID sequence.
// tracereport checks every segment for balance — anchors present,
// span IDs unique, parents resolvable, no span left open — and exits
// nonzero on any violation, which is how CI gates on instrumentation
// regressions. Usage:
//
//	go run ./cmd/tracereport [-top N] [-fetches N] trace.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"hidestore/internal/cleanup"
	"hidestore/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracereport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracereport", flag.ContinueOnError)
	top := fs.Int("top", 12, "stage rows per operation waterfall")
	fetches := fs.Int("fetches", 0, "individual container-fetch rows to list per operation (0 = summary only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tracereport [-top N] [-fetches N] trace.jsonl")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer cleanup.Close(f) // read-only input
	segs, err := parseSegments(f)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		if err := seg.validate(); err != nil {
			return fmt.Errorf("segment %d (opened %s): %w", i+1, seg.openedAt().Format(time.RFC3339), err)
		}
	}
	p := &printer{w: out}
	for i, seg := range segs {
		p.printf("=== segment %d/%d · opened %s · %d records ===\n",
			i+1, len(segs), seg.openedAt().Format(time.RFC3339), len(seg.records))
		seg.report(p, *top, *fetches)
	}
	p.printf("trace OK: %d segment(s), all spans balanced\n", len(segs))
	return p.err
}

// printer captures the first write error so the report code stays
// linear; run surfaces it once the report is done.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *printer) println() { p.printf("\n") }

// segment is one CLI invocation's slice of the trace: an open anchor,
// its records, and a close anchor. IDs restart per segment.
type segment struct {
	open    obs.TraceRecord
	close   *obs.TraceRecord
	records []obs.TraceRecord // excluding the anchors
}

func (s *segment) openedAt() time.Time { return time.Unix(s.open.Unix, 0).UTC() }

// parseSegments splits the JSONL stream into per-invocation segments
// on "trace.open" anchors. Records before the first anchor, garbage
// lines and unterminated anchors are all malformed input.
func parseSegments(r io.Reader) ([]*segment, error) {
	var segs []*segment
	var cur *segment
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec obs.TraceRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		switch rec.Name {
		case "trace.open":
			if rec.Unix == 0 {
				return nil, fmt.Errorf("line %d: trace.open anchor without a wall clock", lineNo)
			}
			if cur != nil && cur.close == nil {
				return nil, fmt.Errorf("line %d: new trace.open before the previous segment closed", lineNo)
			}
			cur = &segment{open: rec}
			segs = append(segs, cur)
		case "trace.close":
			if cur == nil || cur.close != nil {
				return nil, fmt.Errorf("line %d: trace.close without a matching trace.open", lineNo)
			}
			c := rec
			cur.close = &c
		default:
			if cur == nil {
				return nil, fmt.Errorf("line %d: record %q before any trace.open anchor", lineNo, rec.Name)
			}
			if cur.close != nil {
				return nil, fmt.Errorf("line %d: record %q after the segment's trace.close", lineNo, rec.Name)
			}
			cur.records = append(cur.records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("no trace.open anchor found (empty or non-trace input)")
	}
	return segs, nil
}

// validate checks one segment's span balance: a close anchor exists
// and reports zero open spans, IDs are unique, parents resolve, and
// offsets/durations are sane.
func (s *segment) validate() error {
	if s.close == nil {
		return fmt.Errorf("no trace.close anchor: the writing process did not finalize the trace")
	}
	if n := s.close.Attrs["open_spans"]; n != 0 {
		return fmt.Errorf("%d span(s) started but never ended (close anchor open_spans=%d)", n, n)
	}
	ids := make(map[uint64]string, len(s.records))
	ids[s.open.ID] = s.open.Name
	ids[s.close.ID] = s.close.Name
	for _, rec := range s.records {
		if rec.Name == "" {
			return fmt.Errorf("record id %d has no span name", rec.ID)
		}
		if rec.Start < 0 || rec.Dur < 0 {
			return fmt.Errorf("span %q id %d: negative offset or duration", rec.Name, rec.ID)
		}
		if prev, dup := ids[rec.ID]; dup {
			return fmt.Errorf("duplicate span id %d (%q and %q)", rec.ID, prev, rec.Name)
		}
		ids[rec.ID] = rec.Name
	}
	for _, rec := range s.records {
		if rec.Parent != 0 {
			if _, ok := ids[rec.Parent]; !ok {
				return fmt.Errorf("span %q id %d references unknown parent %d", rec.Name, rec.ID, rec.Parent)
			}
		}
	}
	return nil
}

// report prints the segment's per-operation waterfalls and the
// cross-operation stage breakdown.
func (s *segment) report(p *printer, top, fetchRows int) {
	children := make(map[uint64][]obs.TraceRecord)
	var roots []obs.TraceRecord
	for _, rec := range s.records {
		if rec.Parent == 0 {
			roots = append(roots, rec)
		} else {
			children[rec.Parent] = append(children[rec.Parent], rec)
		}
	}
	for _, root := range roots {
		s.reportOperation(p, root, children[root.ID], top, fetchRows)
	}
	if len(roots) == 0 && len(s.records) > 0 {
		p.printf("  (%d records, no root operations)\n", len(s.records))
	}
	s.reportStages(p)
}

// stageAgg aggregates one span name under one operation.
type stageAgg struct {
	name     string
	count    int
	total    time.Duration
	durs     []time.Duration
	minStart int64
	maxEnd   int64
}

// reportOperation prints one root span: header, per-stage waterfall
// rows (aggregated by span name, bars spanning first-start..last-end
// relative to the operation), and the fetch/stall attribution.
func (s *segment) reportOperation(p *printer, root obs.TraceRecord, kids []obs.TraceRecord, top, fetchRows int) {
	p.printf("\n%s", root.Name)
	if v, ok := root.Attrs["version"]; ok {
		p.printf(" v%d", v)
	}
	p.printf(" · %s", fmtDur(time.Duration(root.Dur)))
	if b, ok := root.Attrs["bytes"]; ok && root.Dur > 0 {
		mbs := float64(b) / (1 << 20) / time.Duration(root.Dur).Seconds()
		p.printf(" · %.2f MB · %.1f MB/s", float64(b)/(1<<20), mbs)
	}
	if root.Attrs["error"] != 0 {
		p.printf(" · FAILED")
	}
	p.println()

	stages := make(map[string]*stageAgg)
	var order []string
	for _, k := range kids {
		a := stages[k.Name]
		if a == nil {
			a = &stageAgg{name: k.Name, minStart: k.Start, maxEnd: k.Start + k.Dur}
			stages[k.Name] = a
			order = append(order, k.Name)
		}
		a.count++
		a.total += time.Duration(k.Dur)
		a.durs = append(a.durs, time.Duration(k.Dur))
		if k.Start < a.minStart {
			a.minStart = k.Start
		}
		if end := k.Start + k.Dur; end > a.maxEnd {
			a.maxEnd = end
		}
	}
	sort.Slice(order, func(i, j int) bool { return stages[order[i]].total > stages[order[j]].total })
	shown := order
	if len(shown) > top {
		shown = shown[:top]
	}
	for _, name := range shown {
		a := stages[name]
		p.printf("  %-24s %5dx  total %-9s p50 %-9s p99 %-9s %s\n",
			a.name, a.count, fmtDur(a.total),
			fmtDur(quantile(a.durs, 0.50)), fmtDur(quantile(a.durs, 0.99)),
			bar(a.minStart, a.maxEnd, root.Start, root.Start+root.Dur))
	}
	if len(order) > len(shown) {
		p.printf("  … %d more stage(s)\n", len(order)-len(shown))
	}

	// Critical-path attribution: how much of the operation's wall time
	// the instrumented stages cover (cumulative stage time can exceed
	// wall when stages overlap — fetch pipelining, parallel assembly).
	var cum time.Duration
	for _, a := range stages {
		cum += a.total
	}
	if root.Dur > 0 && cum > 0 {
		p.printf("  stage coverage: %s cumulative over %s wall (%.0f%%)\n",
			fmtDur(cum), fmtDur(time.Duration(root.Dur)), 100*float64(cum)/float64(root.Dur))
	}

	s.reportFetches(p, root, kids, fetchRows)
}

// reportFetches prints the container-fetch timeline summary and, for
// parallel restores, the stall attribution.
func (s *segment) reportFetches(p *printer, root obs.TraceRecord, kids []obs.TraceRecord, fetchRows int) {
	var fetch, stall []obs.TraceRecord
	for _, k := range kids {
		switch k.Name {
		case "container.fetch":
			fetch = append(fetch, k)
		case "assembly.stall":
			stall = append(stall, k)
		}
	}
	if len(fetch) > 0 {
		sort.Slice(fetch, func(i, j int) bool { return fetch[i].Start < fetch[j].Start })
		var total time.Duration
		cids := make(map[int64]bool)
		for _, f := range fetch {
			total += time.Duration(f.Dur)
			cids[f.Attrs["cid"]] = true
		}
		p.printf("  fetch timeline: %d reads of %d container(s), %s cumulative, max overlap %d\n",
			len(fetch), len(cids), fmtDur(total), maxOverlap(fetch))
		for i, f := range fetch {
			if i >= fetchRows {
				break
			}
			p.printf("    +%-10s %-9s cid %d\n",
				fmtDur(time.Duration(f.Start-root.Start)), fmtDur(time.Duration(f.Dur)), f.Attrs["cid"])
		}
	}
	if len(stall) > 0 {
		var stallTotal, fetchTotal time.Duration
		var durs []time.Duration
		for _, st := range stall {
			stallTotal += time.Duration(st.Dur)
			durs = append(durs, time.Duration(st.Dur))
		}
		for _, f := range fetch {
			fetchTotal += time.Duration(f.Dur)
		}
		pct := 0.0
		if root.Dur > 0 {
			pct = 100 * float64(stallTotal) / float64(root.Dur)
		}
		p.printf("  reorder-window stalls: %d, blocked on in-order writer %s (%.1f%% of wall, p99 %s) vs fetching %s\n",
			len(stall), fmtDur(stallTotal), pct, fmtDur(quantile(durs, 0.99)), fmtDur(fetchTotal))
	}
}

// reportStages prints the segment-wide per-stage latency table.
func (s *segment) reportStages(p *printer) {
	stages := make(map[string]*stageAgg)
	var order []string
	for _, rec := range s.records {
		if rec.Dur == 0 {
			continue // events carry no latency
		}
		a := stages[rec.Name]
		if a == nil {
			a = &stageAgg{name: rec.Name}
			stages[rec.Name] = a
			order = append(order, rec.Name)
		}
		a.count++
		a.total += time.Duration(rec.Dur)
		a.durs = append(a.durs, time.Duration(rec.Dur))
	}
	if len(order) == 0 {
		return
	}
	sort.Slice(order, func(i, j int) bool { return stages[order[i]].total > stages[order[j]].total })
	p.printf("\nper-stage breakdown (segment-wide):\n")
	p.printf("  %-24s %6s %10s %10s %10s %10s\n", "stage", "count", "total", "p50", "p99", "max")
	for _, name := range order {
		a := stages[name]
		sort.Slice(a.durs, func(i, j int) bool { return a.durs[i] < a.durs[j] })
		p.printf("  %-24s %5dx %10s %10s %10s %10s\n",
			a.name, a.count, fmtDur(a.total),
			fmtDur(quantile(a.durs, 0.50)), fmtDur(quantile(a.durs, 0.99)),
			fmtDur(a.durs[len(a.durs)-1]))
	}
}

// maxOverlap computes the peak number of concurrently open fetch
// intervals — the effective fetch parallelism achieved.
func maxOverlap(recs []obs.TraceRecord) int {
	type edge struct {
		at    int64
		delta int
	}
	var edges []edge
	for _, r := range recs {
		edges = append(edges, edge{r.Start, +1}, edge{r.Start + r.Dur, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // close before open at a shared instant
	})
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// bar renders a 24-cell interval bar for [start,end] within the
// operation's [lo,hi] window.
func bar(start, end, lo, hi int64) string {
	const cells = 24
	if hi <= lo {
		return ""
	}
	clamp := func(v int64) int {
		p := int(float64(v-lo) / float64(hi-lo) * cells)
		if p < 0 {
			p = 0
		}
		if p > cells {
			p = cells
		}
		return p
	}
	from, to := clamp(start), clamp(end)
	if to <= from {
		to = from + 1
		if to > cells {
			from, to = cells-1, cells
		}
	}
	return "[" + strings.Repeat("·", from) + strings.Repeat("█", to-from) + strings.Repeat("·", cells-to) + "]"
}

// quantile sorts in place and reads the q-quantile.
func quantile(durs []time.Duration, q float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	i := int(q*float64(len(durs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(durs) {
		i = len(durs) - 1
	}
	return durs[i]
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
