package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hidestore/internal/obs"
)

// TestCommittedSmokeTrace reconstructs the balanced span tree from the
// committed smoke trace (a real instrumented backup/restore run) — the
// acceptance criterion for the trace format staying parseable.
func TestCommittedSmokeTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fetches", "2", "testdata/smoke.jsonl"}, &out); err != nil {
		t.Fatalf("committed smoke trace rejected: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"trace OK", "backup", "restore", "container.fetch",
		"fetch timeline", "per-stage breakdown", "stage coverage",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// writeTrace writes a JSONL trace file and returns its path.
func writeTrace(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMultiSegmentAppendMode: one file accumulating two invocations
// (each with its own restarting ID sequence) validates as two
// segments — duplicate IDs across segments are expected, not errors.
func TestMultiSegmentAppendMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	for i := 0; i < 2; i++ {
		tr, err := obs.OpenTraceFile(path)
		if err != nil {
			t.Fatal(err)
		}
		s := tr.Start("restore", nil)
		tr.EmitStage("container.fetch", s, time.Now(), time.Millisecond, map[string]int64{"cid": 7})
		s.End()
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("append-mode trace rejected: %v", err)
	}
	if !strings.Contains(out.String(), "2 segment(s)") {
		t.Errorf("expected two segments:\n%s", out.String())
	}
}

// TestStallAttribution: a parallel-restore trace with assembly.stall
// records gets the reorder-window attribution line.
func TestStallAttribution(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := obs.OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Start("restore", nil)
	now := time.Now()
	tr.EmitStage("container.fetch", s, now, 2*time.Millisecond, map[string]int64{"cid": 1})
	tr.EmitStage("container.fetch", s, now, 3*time.Millisecond, map[string]int64{"cid": 2})
	tr.EmitStage("assembly.stall", s, now, time.Millisecond, map[string]int64{"parked": 2, "seq": 5})
	s.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "reorder-window stalls: 1") {
		t.Errorf("missing stall attribution:\n%s", text)
	}
	if !strings.Contains(text, "max overlap 2") {
		t.Errorf("missing fetch-overlap estimate:\n%s", text)
	}
}

func TestMalformedInputsExitNonzero(t *testing.T) {
	cases := map[string][]string{
		"garbage line": {
			`{"id":1,"span":"trace.open","start_ns":0,"dur_ns":0,"unix":1700000000}`,
			`not json`,
		},
		"record before open anchor": {
			`{"id":1,"span":"restore","start_ns":0,"dur_ns":5}`,
		},
		"missing close anchor": {
			`{"id":1,"span":"trace.open","start_ns":0,"dur_ns":0,"unix":1700000000}`,
			`{"id":2,"span":"restore","start_ns":0,"dur_ns":5}`,
		},
		"unbalanced spans": {
			`{"id":1,"span":"trace.open","start_ns":0,"dur_ns":0,"unix":1700000000}`,
			`{"id":3,"span":"trace.close","start_ns":9,"unix":1700000001,"attrs":{"open_spans":2}}`,
		},
		"duplicate span id": {
			`{"id":1,"span":"trace.open","start_ns":0,"dur_ns":0,"unix":1700000000}`,
			`{"id":2,"span":"restore","start_ns":0,"dur_ns":5}`,
			`{"id":2,"span":"backup","start_ns":6,"dur_ns":5}`,
			`{"id":3,"span":"trace.close","start_ns":12,"unix":1700000001,"attrs":{"open_spans":0}}`,
		},
		"unknown parent": {
			`{"id":1,"span":"trace.open","start_ns":0,"dur_ns":0,"unix":1700000000}`,
			`{"id":2,"par":99,"span":"container.fetch","start_ns":0,"dur_ns":5}`,
			`{"id":3,"span":"trace.close","start_ns":9,"unix":1700000001,"attrs":{"open_spans":0}}`,
		},
		"open without wall clock": {
			`{"id":1,"span":"trace.open","start_ns":0,"dur_ns":0}`,
		},
		"record after close": {
			`{"id":1,"span":"trace.open","start_ns":0,"dur_ns":0,"unix":1700000000}`,
			`{"id":2,"span":"trace.close","start_ns":5,"unix":1700000001,"attrs":{"open_spans":0}}`,
			`{"id":3,"span":"restore","start_ns":6,"dur_ns":5}`,
		},
		"negative duration": {
			`{"id":1,"span":"trace.open","start_ns":0,"dur_ns":0,"unix":1700000000}`,
			`{"id":2,"span":"restore","start_ns":0,"dur_ns":-5}`,
			`{"id":3,"span":"trace.close","start_ns":9,"unix":1700000001,"attrs":{"open_spans":0}}`,
		},
		"empty file": {``},
	}
	for name, lines := range cases {
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			err := run([]string{writeTrace(t, lines...)}, &out)
			if err == nil {
				t.Fatalf("malformed input accepted:\n%s", out.String())
			}
		})
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no-argument invocation must fail")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &out); err == nil {
		t.Fatal("missing file must fail")
	}
}
