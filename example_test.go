package hidestore_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"

	"hidestore"
)

// Example shows the full lifecycle: three backups, a byte-exact restore,
// and expiring the oldest version.
func Example() {
	sys, err := hidestore.Open(hidestore.Config{}) // in-memory
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	base := strings.Repeat("backup me, please. ", 8192)
	versions := []string{
		base,
		base + strings.Repeat("version two adds this. ", 2048),
		base + strings.Repeat("version two adds this. ", 2048) + strings.Repeat("and three, this. ", 2048),
	}
	for _, v := range versions {
		rep, err := sys.Backup(ctx, strings.NewReader(v))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("v%d: dedup ratio %.0f%%\n", rep.Version, rep.DedupRatio*100)
	}

	var buf bytes.Buffer
	if _, err := sys.Restore(ctx, 2, &buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("v2 restored exactly:", buf.String() == versions[1])

	if _, err := sys.Delete(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("versions left:", len(sys.Versions()))

	// Output:
	// v1: dedup ratio 0%
	// v2: dedup ratio 73%
	// v3: dedup ratio 83%
	// v2 restored exactly: true
	// versions left: 2
}
