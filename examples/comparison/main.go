// Comparison: HiDeStore against the paper's baselines on the same version
// chain — dedup ratio, index state, and newest-version restore cost, side
// by side (a miniature of the paper's §5).
package main

import (
	"context"
	"fmt"
	"io"
	"log"

	"hidestore"
	"hidestore/internal/workload"
)

type contender struct {
	name string
	sys  *hidestore.System
}

func main() {
	const versions = 15
	cfg, err := workload.Preset("gcc", 4) // the fastest-churning preset
	if err != nil {
		log.Fatal(err)
	}
	cfg.Versions = versions
	base := hidestore.Config{ContainerSize: 1 << 20}

	contenders := []contender{
		{name: "hidestore", sys: mustOpen(hidestore.Open(base))},
		{name: "ddfs (exact)", sys: mustOpenBaseline("ddfs", "none", base)},
		{name: "silo+capping", sys: mustOpenBaseline("silo", "capping", base)},
		{name: "ddfs+fbw/alacc", sys: mustOpenBaselineCache("ddfs", "fbw", "alacc", base)},
	}

	ctx := context.Background()
	for i := range contenders {
		gen, err := workload.New(cfg) // deterministic: same bytes for everyone
		if err != nil {
			log.Fatal(err)
		}
		for gen.HasNext() {
			r, err := gen.NextVersion()
			if err != nil {
				log.Fatal(err)
			}
			if _, err := contenders[i].sys.Backup(ctx, r); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("%-16s %8s %12s %12s %14s %12s\n",
		"scheme", "dedup%", "index-mem", "disk-lookups", "newest-SF", "v1-SF")
	for _, c := range contenders {
		st := c.sys.Stats()
		newest, err := c.sys.Restore(ctx, versions, io.Discard)
		if err != nil {
			log.Fatal(err)
		}
		oldest, err := c.sys.Restore(ctx, 1, io.Discard)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %7.2f%% %12d %12d %14.3f %12.3f\n",
			c.name, st.DedupRatio*100, st.IndexMemoryBytes,
			st.DiskIndexLookups, newest.SpeedFactor, oldest.SpeedFactor)
	}
	fmt.Println("\nreadings: HiDeStore matches exact dedup's ratio with zero index")
	fmt.Println("state and the best newest-version speed factor; rewriting buys the")
	fmt.Println("baselines restore speed with storage; old versions are where")
	fmt.Println("HiDeStore pays (paper Figures 8-11).")
}

func mustOpen(sys *hidestore.System, err error) *hidestore.System {
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func mustOpenBaseline(index, rewriter string, base hidestore.Config) *hidestore.System {
	return mustOpen(hidestore.OpenBaseline(hidestore.BaselineConfig{
		Config: base, Index: index, Rewriter: rewriter,
	}))
}

func mustOpenBaselineCache(index, rewriter, cache string, base hidestore.Config) *hidestore.System {
	base.RestoreCache = cache
	return mustOpenBaseline(index, rewriter, base)
}
