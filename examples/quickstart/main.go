// Quickstart: back up three versions of a document, restore one, expire
// the oldest — the whole public API in one sitting.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"

	"hidestore"
)

func main() {
	// An in-memory system; set Dir to persist on disk.
	sys, err := hidestore.Open(hidestore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Three "versions" of a growing document. Most content is shared
	// between versions — which deduplication eats — while version 1's
	// draft appendix disappears in version 2, leaving chunks only v1 owns.
	base := strings.Repeat("All work and no play makes Jack a dull boy.\n", 4096)
	draft := strings.Repeat("DRAFT appendix, to be deleted before publishing.\n", 2048)
	ch2 := strings.Repeat("Chapter 2: the backup strikes back.\n", 1024)
	ch3 := strings.Repeat("Chapter 3: restore of the Jedi.\n", 1024)
	versions := []string{
		base + draft,
		base + ch2,
		base + ch2 + ch3,
	}
	for _, v := range versions {
		rep, err := sys.Backup(ctx, strings.NewReader(v))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("backed up v%d: %7d bytes, %4d chunks (%3d unique), dedup ratio %5.1f%%\n",
			rep.Version, rep.LogicalBytes, rep.Chunks, rep.UniqueChunks, rep.DedupRatio*100)
	}

	// Restore version 2 and verify it byte-for-byte.
	var buf bytes.Buffer
	rep, err := sys.Restore(ctx, 2, &buf)
	if err != nil {
		log.Fatal(err)
	}
	if buf.String() != versions[1] {
		log.Fatal("restore mismatch!")
	}
	fmt.Printf("restored  v2: %7d bytes in %d container reads (speed factor %.1f MB/read)\n",
		rep.BytesRestored, rep.ContainerReads, rep.SpeedFactor)

	// Expire the oldest version — HiDeStore needs no garbage collection.
	del, err := sys.Delete(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted   v1: %d containers dropped, %d bytes reclaimed in %s\n",
		del.ContainersDeleted, del.BytesReclaimed, del.Duration)

	st := sys.Stats()
	fmt.Printf("\nfinal: %d versions, cumulative dedup ratio %.1f%%, %d containers, 0 index bytes, %d disk index lookups\n",
		st.Versions, st.DedupRatio*100, st.Containers, st.DiskIndexLookups)
}
