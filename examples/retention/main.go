// Retention: run a keep-last-N backup policy. Every day one new version
// arrives and the oldest expires. HiDeStore's deletion is just dropping
// the expired version's archival containers — no reference counting, no
// mark-and-sweep (paper §4.5, §5.5).
package main

import (
	"context"
	"fmt"
	"log"

	"hidestore"
	"hidestore/internal/workload"
)

func main() {
	const (
		totalDays = 20
		keepLast  = 7
	)
	cfg, err := workload.Preset("fslhomes", 4) // homedir-snapshot-like
	if err != nil {
		log.Fatal(err)
	}
	cfg.Versions = totalDays

	sys, err := hidestore.Open(hidestore.Config{ContainerSize: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	gen, err := workload.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("daily snapshots, keep-last-%d policy\n\n", keepLast)
	fmt.Println("day  stored-versions  containers  dedup%   expired        reclaimed")
	for day := 1; day <= totalDays; day++ {
		r, err := gen.NextVersion()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Backup(ctx, r); err != nil {
			log.Fatal(err)
		}
		expired := "-"
		reclaimed := "-"
		if vs := sys.Versions(); len(vs) > keepLast {
			oldest := vs[0]
			rep, err := sys.Delete(oldest)
			if err != nil {
				log.Fatal(err)
			}
			expired = fmt.Sprintf("v%d in %s", oldest, rep.Duration.Round(1000))
			reclaimed = fmt.Sprintf("%.2f MB", float64(rep.BytesReclaimed)/(1<<20))
		}
		st := sys.Stats()
		fmt.Printf("%3d  %15d  %10d  %5.1f%%  %-13s  %s\n",
			day, st.Versions, st.Containers, st.DedupRatio*100, expired, reclaimed)
	}

	fmt.Println("\nnote: deletion latency stays flat as data accumulates — the expired")
	fmt.Println("version's exclusive chunks already live in their own archival")
	fmt.Println("containers, so expiry is a container drop, not a garbage collection.")
}
