// Versionchain: the paper's core claim, live. Back up 30 versions of a
// kernel-like evolving source tree, then restore every version and watch
// the speed factor: HiDeStore keeps new versions fast because their chunks
// stay physically together, while old versions pay for their exile to
// archival containers.
package main

import (
	"context"
	"fmt"
	"io"
	"log"

	"hidestore"
	"hidestore/internal/workload"
)

func main() {
	const versions = 30
	cfg, err := workload.Preset("kernel", 4) // ~4 MB per version
	if err != nil {
		log.Fatal(err)
	}
	cfg.Versions = versions

	sys, err := hidestore.Open(hidestore.Config{
		ContainerSize: 1 << 20, // 1 MB containers at this scale
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	gen, err := workload.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("backing up 30 versions of an evolving source tree...")
	for gen.HasNext() {
		r, err := gen.NextVersion()
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Backup(ctx, r)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Version%10 == 0 || rep.Version == 1 {
			fmt.Printf("  v%-3d %5.1f MB, dedup ratio %5.1f%%, maintenance %s\n",
				rep.Version, float64(rep.LogicalBytes)/(1<<20),
				rep.DedupRatio*100, rep.MaintenanceDuration)
		}
	}

	fmt.Println("\nrestore speed factor per version (MB per container read):")
	fmt.Println("  version   speed-factor   container-reads")
	for v := 1; v <= versions; v++ {
		rep, err := sys.Restore(ctx, v, io.Discard)
		if err != nil {
			log.Fatal(err)
		}
		bar := ""
		for i := 0; i < int(rep.SpeedFactor*40); i++ {
			bar += "#"
		}
		if v%3 == 0 || v == 1 || v == versions {
			fmt.Printf("  v%-7d %8.3f       %5d  %s\n", v, rep.SpeedFactor, rep.ContainerReads, bar)
		}
	}
	fmt.Println("\nnew versions sit at the top of the chart: that is the physical")
	fmt.Println("locality HiDeStore buys by construction (paper Figure 11).")
}
