module hidestore

go 1.22
