// Package hidestore is a deduplicating backup library with high restore
// performance, reproducing "Improving the Restore Performance via
// Physical-Locality Middleware for Backup Systems" (MIDDLEWARE 2020).
//
// HiDeStore modifies the deduplication phase rather than the restore
// phase: chunks are deduplicated only against the previous backup
// version(s) through an in-memory double-hash fingerprint cache, unique
// and still-hot chunks live together in *active* containers, and chunks
// that stop appearing in new versions are exiled to *archival* containers.
// New versions therefore stay physically contiguous — restoring them reads
// few containers — without rewriting duplicates or keeping any on-disk
// fingerprint index.
//
// # Quick start
//
//	sys, err := hidestore.Open(hidestore.Config{Dir: "/var/backups/repo"})
//	if err != nil { ... }
//	rep, err := sys.Backup(ctx, dataStream)       // version 1, 2, 3, ...
//	_, err = sys.Restore(ctx, rep.Version, out)   // byte-exact restore
//	_, err = sys.Delete(1)                        // expire the oldest version
//
// Leave Config.Dir empty for an in-memory system (tests, experiments).
//
// For side-by-side comparisons with the paper's baselines (DDFS, Sparse
// Indexing, SiLo indexing; capping/CBR/CFL/FBW/HAR rewriting; LRU, FAA and
// ALACC restore caches), see OpenBaseline. The full experiment harness
// that regenerates the paper's tables and figures lives in cmd/bench.
package hidestore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hidestore/internal/backend"
	"hidestore/internal/backup"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/core"
	"hidestore/internal/dedup"
	"hidestore/internal/index"
	"hidestore/internal/index/ddfs"
	"hidestore/internal/index/extbin"
	"hidestore/internal/index/sharded"
	"hidestore/internal/index/silo"
	"hidestore/internal/index/sparse"
	"hidestore/internal/obs"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
	"hidestore/internal/rewrite"
)

// Config configures a HiDeStore system.
type Config struct {
	// Dir is the storage root; containers and recipes are kept in
	// subdirectories. Empty means fully in-memory (useful for tests and
	// experiments).
	Dir string
	// Window is the fingerprint-cache window in backup versions: 1 (the
	// default) deduplicates against the previous version, 2 suits
	// macos-like workloads whose changes straddle two versions.
	Window int
	// Chunker selects the chunking algorithm: "tttd" (default, as in the
	// paper), "rabin", "fastcdc", "ae" or "fixed".
	Chunker string
	// MinChunk/AvgChunk/MaxChunk bound chunk sizes in bytes (defaults
	// 2 KB / 4 KB / 16 KB, the paper's configuration).
	MinChunk, AvgChunk, MaxChunk int
	// ContainerSize in bytes (default 4 MB, the paper's).
	ContainerSize int
	// RestoreCache selects the restore strategy: "faa" (default),
	// "alacc", "container-lru", "chunk-lru" or "opt".
	RestoreCache string
	// PrefetchDepth bounds the restore read-ahead window in distinct
	// containers: 0 selects the default (8), negative disables
	// prefetching. Read-ahead overlaps container reads with chunk
	// assembly; it never changes which containers are read, so restore
	// stats (container reads, speed factor) are identical either way.
	PrefetchDepth int
	// RestoreWorkers enables the parallel restore mode: values > 1 widen
	// the prefetch read pool to that many concurrent container fetches
	// and assemble chunk spans out of order through a bounded reorder
	// window. The restored bytes and the restore stats (container reads,
	// cache hits, speed factor) are identical to the serial mode by
	// construction — parallelism only changes wall time. 0 or 1 selects
	// the serial path.
	RestoreWorkers int
	// ChunkLanes parallelizes chunking: the input stream is split into
	// per-batch lane segments, chunked speculatively by that many
	// workers, and re-stitched so the emitted chunk sequence — and with
	// it every downstream artifact — is bit-identical to single-lane
	// chunking. 0 or 1 chunks sequentially.
	ChunkLanes int
	// IndexShards shards the fingerprint index across a power-of-two
	// number of lock domains keyed by fingerprint prefix, so concurrent
	// lookups don't serialize on one lock. 0 selects the default (16
	// for HiDeStore's cache; unwrapped for baselines). For baselines
	// only exact per-chunk indexes ("ddfs") shard semantically; sampling
	// indexes get an exclusive-lock wrapper instead.
	IndexShards int
	// MergeUtilization is the active-container utilization below which
	// containers are merged after each version (default 0.5).
	MergeUtilization float64
	// Compress enables DEFLATE compression of containers at rest.
	// Compression composes with deduplication: dedup removes repeated
	// chunks, compression shrinks what remains.
	Compress bool
	// Metrics, when set, mirrors the engine's counters and per-stage
	// latencies into the registry (expose it with obs.StartDebugServer
	// or Registry.WritePrometheus). Nil — the default — disables the
	// observability plane entirely; the hot paths then cost one nil
	// check per instrumentation site.
	Metrics *obs.Registry
	// Tracer, when set, records per-operation spans (backup, restore,
	// container fetches, recovery events) as JSONL. Nil disables
	// tracing. The caller owns the tracer and must Close it.
	Tracer *obs.Tracer
	// Backend selects and tunes the storage-backend stack the stores
	// run on. The zero value is the plain local backend the system has
	// always used.
	Backend BackendConfig
}

// BackendConfig configures the storage-backend stack (internal/backend):
// a simulated remote with latency, bandwidth and transient faults,
// wrapped by retry/backoff, an optional rate limiter and a persistent
// local read cache for container fetches. See DESIGN.md "Storage
// backends".
type BackendConfig struct {
	// Kind selects the stack: "" or "local" is the plain filesystem
	// (or in-memory) store; "remote" interposes the simulated-remote
	// stack between the stores and their bytes.
	Kind string
	// Latency is the simulated per-operation round-trip.
	Latency time.Duration
	// BandwidthMBps caps simulated payload transfer (MB/s); 0 means
	// unlimited.
	BandwidthMBps float64
	// ErrRate injects transient failures with this per-op probability
	// (0..1); the retry layer absorbs them.
	ErrRate float64
	// Seed makes the injected-failure stream deterministic.
	Seed int64
	// SleepScale scales the simulator's real sleeps: 0 sleeps in full,
	// negative disables real sleeping while keeping the deterministic
	// time model (experiments sweeping multi-ms latencies use -1).
	SleepScale float64
	// Retries is the per-op attempt budget of the retry layer
	// (default 4). Only transient errors are retried; a missing
	// container fails fast.
	Retries int
	// RetryMinDelay is the backoff floor before the first retry
	// (default 10ms; doubles per retry with jitter, capped at 1s).
	RetryMinDelay time.Duration
	// RateLimitMBps caps client-side payload throughput with a token
	// bucket (MB/s); 0 disables the limiter.
	RateLimitMBps float64
	// CacheMB bounds the persistent local read cache for container
	// fetches (MB); 0 disables the cache. The cache needs a Dir and is
	// ignored for in-memory systems.
	CacheMB int
}

func (c Config) chunkParams() chunker.Params {
	p := chunker.DefaultParams()
	if c.MinChunk > 0 {
		p.Min = c.MinChunk
	}
	if c.AvgChunk > 0 {
		p.Avg = c.AvgChunk
	}
	if c.MaxChunk > 0 {
		p.Max = c.MaxChunk
	}
	return p
}

// stateFileName is the engine state blob/file name under Dir (local
// mode) or in the state backend's namespace (remote mode).
const stateFileName = "state.hds"

// storeSet bundles what Config.stores assembles: the stores, the state
// file location, and — when a backend stack routes the state blob
// through its retry/limiter layers — the state read/write hooks (nil
// hooks select the engine's plain-file defaults).
type storeSet struct {
	containers container.Store
	recipes    recipe.Store
	statePath  string
	readState  func(path string) ([]byte, error)
	writeState func(path string, data []byte, perm os.FileMode) error
}

func (c Config) stores() (storeSet, error) {
	var set storeSet
	var err error
	switch c.Backend.Kind {
	case "", "local":
		set, err = c.localStores()
	case "remote":
		set, err = c.remoteStores()
	default:
		return storeSet{}, fmt.Errorf("hidestore: unknown backend kind %q", c.Backend.Kind)
	}
	if err != nil {
		return storeSet{}, err
	}
	if c.Compress {
		ccs, err := container.NewCompressedStore(set.containers, 0)
		if err != nil {
			return storeSet{}, err
		}
		set.containers = ccs
	}
	return set, nil
}

// localStores is the classic layout: plain file stores under Dir (or
// memory stores without one).
func (c Config) localStores() (storeSet, error) {
	var set storeSet
	if c.Dir == "" {
		set.containers, set.recipes = container.NewMemStore(), recipe.NewMemStore()
		return set, nil
	}
	fcs, err := container.NewFileStore(filepath.Join(c.Dir, "containers"))
	if err != nil {
		return storeSet{}, err
	}
	frs, err := recipe.NewFileStore(filepath.Join(c.Dir, "recipes"))
	if err != nil {
		return storeSet{}, err
	}
	set.containers, set.recipes = fcs, frs
	set.statePath = filepath.Join(c.Dir, stateFileName)
	return set, nil
}

// remoteStores assembles the simulated-remote stacks: containers,
// recipes and the state blob each get their own stack (latency, retry,
// optional rate limit); container fetches additionally go through the
// persistent local read cache at Dir/cache. Without a Dir everything
// sits on in-memory backends (and the cache, which needs a disk, is
// skipped).
func (c Config) remoteStores() (storeSet, error) {
	b := c.Backend
	mx := obs.NewBackendMetrics(c.Metrics)
	stack := func(sub string, seedOffset int64, withCache bool) (backend.Backend, error) {
		var base backend.Backend
		if c.Dir == "" {
			base = backend.NewMem()
		} else {
			local, err := backend.NewLocal(filepath.Join(c.Dir, "remote", sub))
			if err != nil {
				return nil, err
			}
			base = local
		}
		opts := backend.StackOptions{
			Sim: backend.SimOptions{
				Latency:      b.Latency,
				BandwidthBps: b.BandwidthMBps * (1 << 20),
				ErrRate:      b.ErrRate,
				Seed:         b.Seed + seedOffset,
				SleepScale:   b.SleepScale,
			},
			Retry: backend.RetryOptions{
				Tries:    b.Retries,
				MinDelay: b.RetryMinDelay,
				Seed:     b.Seed + seedOffset,
			},
			RateBps: b.RateLimitMBps * (1 << 20),
			Metrics: mx,
			Tracer:  c.Tracer,
		}
		if withCache && c.Dir != "" && b.CacheMB > 0 {
			opts.CacheDir = filepath.Join(c.Dir, "cache")
			opts.CacheBytes = int64(b.CacheMB) << 20
		}
		top, _, err := backend.NewStack(base, opts)
		return top, err
	}
	cb, err := stack("containers", 0, true)
	if err != nil {
		return storeSet{}, err
	}
	rb, err := stack("recipes", 1, false)
	if err != nil {
		return storeSet{}, err
	}
	set := storeSet{
		containers: backend.NewContainerStore(cb),
		recipes:    backend.NewRecipeStore(rb),
	}
	if c.Dir == "" {
		return set, nil
	}
	sb, err := stack("state", 2, false)
	if err != nil {
		return storeSet{}, err
	}
	set.statePath = filepath.Join(c.Dir, "remote", "state", stateFileName)
	set.readState = func(path string) ([]byte, error) {
		data, err := sb.Get(context.Background(), stateFileName)
		if err != nil {
			if errors.Is(err, backend.ErrNotFound) {
				// loadState distinguishes "no state yet" via fs.ErrNotExist.
				return nil, fmt.Errorf("hidestore: state %s: %w", path, fs.ErrNotExist)
			}
			return nil, err
		}
		return data, nil
	}
	set.writeState = func(_ string, data []byte, _ os.FileMode) error {
		return sb.Put(context.Background(), stateFileName, data)
	}
	return set, nil
}

func (c Config) chunkerAlg() (chunker.Algorithm, error) {
	if c.Chunker == "" {
		return chunker.TTTD, nil
	}
	return chunker.ParseAlgorithm(c.Chunker)
}

func (c Config) restoreCache() (restorecache.Cache, error) {
	if c.RestoreCache == "" {
		return restorecache.NewFAA(0), nil
	}
	return restorecache.New(c.RestoreCache)
}

// BackupReport summarizes one backed-up version.
type BackupReport struct {
	// Version is the sequential version number, starting at 1.
	Version int
	// LogicalBytes is the size of the backed-up stream.
	LogicalBytes uint64
	// StoredBytes is the new payload written (unique chunks).
	StoredBytes uint64
	// Chunks and UniqueChunks count the stream's chunks and the stored
	// subset.
	Chunks       int
	UniqueChunks int
	// DedupRatio is eliminated bytes over logical bytes for this version.
	DedupRatio float64
	// Duration covers the dedup phase; MaintenanceDuration the
	// post-version cold-chunk migration and recipe update.
	Duration            time.Duration
	MaintenanceDuration time.Duration
}

// RestoreReport summarizes one restore.
type RestoreReport struct {
	Version int
	// BytesRestored is the logical stream size written out.
	BytesRestored uint64
	// ContainerReads counts container fetches — the paper's restore cost.
	ContainerReads uint64
	// SpeedFactor is MB restored per container read (higher is better).
	SpeedFactor float64
	Duration    time.Duration
}

// DeleteReport summarizes removing an expired version.
type DeleteReport struct {
	Version           int
	ContainersDeleted int
	BytesReclaimed    uint64
	Duration          time.Duration
}

// Stats is a system-wide snapshot.
type Stats struct {
	Versions     int
	LogicalBytes uint64
	StoredBytes  uint64
	// DedupRatio is cumulative eliminated bytes over logical bytes.
	DedupRatio float64
	Containers int
	// IndexMemoryBytes is the persistent fingerprint-index footprint
	// (always 0 for HiDeStore; grows with data for baselines).
	IndexMemoryBytes int64
	// DiskIndexLookups counts on-disk index lookups (always 0 for
	// HiDeStore).
	DiskIndexLookups uint64
	// Degraded names snapshot fields that could not be computed (for
	// example, Containers when the store directory is unreadable), each
	// with the underlying error. Empty on a healthy system. The values of
	// degraded fields are zero — check this list before trusting zeros.
	Degraded []string
}

// System is a deduplicating backup system. Methods are safe for
// concurrent use; operations are serialized internally (the underlying
// engines are single-writer by design, like the paper's prototype).
type System struct {
	mu     sync.Mutex
	engine backup.Engine
}

// Open creates or reopens a HiDeStore system. With a non-empty Dir the
// full state — containers, recipes, and the engine's fingerprint-cache
// bookkeeping — persists on disk, so reopening resumes the version history
// exactly where the previous process stopped. (The Window must match the
// one the directory was created with.)
func Open(cfg Config) (*System, error) {
	set, err := cfg.stores()
	if err != nil {
		return nil, err
	}
	alg, err := cfg.chunkerAlg()
	if err != nil {
		return nil, err
	}
	rc, err := cfg.restoreCache()
	if err != nil {
		return nil, err
	}
	e, err := core.New(core.Config{
		Chunker:           alg,
		ChunkParams:       cfg.chunkParams(),
		Store:             set.containers,
		Recipes:           set.recipes,
		ContainerCapacity: cfg.ContainerSize,
		Window:            cfg.Window,
		MergeUtilization:  cfg.MergeUtilization,
		RestoreCache:      rc,
		PrefetchDepth:     cfg.PrefetchDepth,
		RestoreWorkers:    cfg.RestoreWorkers,
		ChunkLanes:        cfg.ChunkLanes,
		IndexShards:       cfg.IndexShards,
		StatePath:         set.statePath,
		WriteState:        set.writeState,
		ReadState:         set.readState,
		Metrics:           cfg.Metrics,
		Tracer:            cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &System{engine: e}, nil
}

// BaselineConfig configures a destor-style baseline system for
// comparisons.
type BaselineConfig struct {
	// Config supplies chunking, container and restore-cache settings
	// (Window and MergeUtilization are ignored).
	Config
	// Index selects the fingerprint index: "ddfs" (default), "sparse",
	// "silo" or "extbin".
	Index string
	// Rewriter selects duplicate rewriting: "none" (default), "capping",
	// "cbr", "cfl", "fbw" or "har".
	Rewriter string
}

// OpenBaseline creates a traditional deduplication system — the kind the
// paper compares HiDeStore against.
func OpenBaseline(cfg BaselineConfig) (*System, error) {
	set, err := cfg.stores()
	if err != nil {
		return nil, err
	}
	alg, err := cfg.chunkerAlg()
	if err != nil {
		return nil, err
	}
	rc, err := cfg.restoreCache()
	if err != nil {
		return nil, err
	}
	var ix index.Index
	switch cfg.Index {
	case "", "ddfs":
		ix, err = ddfs.New(ddfs.Options{})
	case "sparse":
		ix, err = sparse.New(sparse.Options{})
	case "silo":
		ix, err = silo.New(silo.Options{})
	case "extbin":
		ix, err = extbin.New(extbin.Options{})
	default:
		err = fmt.Errorf("hidestore: unknown index %q", cfg.Index)
	}
	if err != nil {
		return nil, err
	}
	if cfg.IndexShards > 0 {
		// Only exact per-chunk schemes shard semantically; sampling
		// indexes make segment-scoped decisions, so they get the
		// single-shard exclusive-lock wrapper regardless of the knob.
		shards := cfg.IndexShards
		if cfg.Index != "" && cfg.Index != "ddfs" {
			shards = 1
		}
		// A failed inner build surfaces as a nil shard, which
		// sharded.New rejects; mkErr preserves the root cause.
		var mkErr error
		mk := func(int) index.Index {
			inner, e := ddfs.New(ddfs.Options{})
			if e != nil {
				mkErr = e
				return nil
			}
			return inner
		}
		if shards == 1 {
			first := ix
			mk = func(int) index.Index { return first }
		}
		ix, err = sharded.New(shards, mk)
		if mkErr != nil {
			err = mkErr
		}
		if err != nil {
			return nil, err
		}
	}
	rw, err := rewrite.New(cfg.Rewriter)
	if err != nil {
		return nil, err
	}
	e, err := dedup.New(dedup.Config{
		Chunker:           alg,
		ChunkParams:       cfg.chunkParams(),
		Index:             ix,
		Rewriter:          rw,
		RestoreCache:      rc,
		Store:             set.containers,
		Recipes:           set.recipes,
		ContainerCapacity: cfg.ContainerSize,
		PrefetchDepth:     cfg.PrefetchDepth,
		RestoreWorkers:    cfg.RestoreWorkers,
		ChunkLanes:        cfg.ChunkLanes,
		Metrics:           cfg.Metrics,
		Tracer:            cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &System{engine: e}, nil
}

// ErrNilReader reports a nil backup source.
var ErrNilReader = errors.New("hidestore: nil reader")

// Backup deduplicates and stores one version stream; versions are
// numbered sequentially from 1.
func (s *System) Backup(ctx context.Context, r io.Reader) (BackupReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r == nil {
		return BackupReport{}, ErrNilReader
	}
	rep, err := s.engine.Backup(ctx, r)
	if err != nil {
		return BackupReport{}, err
	}
	return BackupReport{
		Version:             rep.Version,
		LogicalBytes:        rep.LogicalBytes,
		StoredBytes:         rep.StoredBytes,
		Chunks:              rep.Chunks,
		UniqueChunks:        rep.UniqueChunks,
		DedupRatio:          rep.DedupRatio(),
		Duration:            rep.Duration,
		MaintenanceDuration: rep.MaintenanceDuration,
	}, nil
}

// Restore writes the exact bytes of a stored version to w.
func (s *System) Restore(ctx context.Context, version int, w io.Writer) (RestoreReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.engine.Restore(ctx, version, w)
	if err != nil {
		return RestoreReport{}, err
	}
	return RestoreReport{
		Version:        rep.Version,
		BytesRestored:  rep.Stats.BytesRestored,
		ContainerReads: rep.Stats.ContainerReads,
		SpeedFactor:    rep.Stats.SpeedFactor(),
		Duration:       rep.Duration,
	}, nil
}

// Delete expires a version. HiDeStore systems require oldest-first
// deletion (and versions must have left the fingerprint-cache window);
// baseline systems accept any version at garbage-collection cost.
func (s *System) Delete(version int) (DeleteReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.engine.Delete(version)
	if err != nil {
		return DeleteReport{}, err
	}
	return DeleteReport{
		Version:           rep.Version,
		ContainersDeleted: rep.ContainersDeleted,
		BytesReclaimed:    rep.BytesReclaimed,
		Duration:          rep.Duration,
	}, nil
}

// FsckReport summarizes an integrity check of the whole store.
type FsckReport struct {
	// Versions and Chunks count the recipes walked and entries resolved.
	Versions int
	Chunks   int
	// Containers and StoredChunks count the container images verified.
	Containers   int
	StoredChunks int
	// Problems lists every inconsistency found; empty means healthy.
	Problems []string
	// Quarantined lists the paths corrupt container images were moved to.
	// Always empty for the read-only Fsck; filled by FsckRepair.
	Quarantined []string
	// AffectedVersions lists versions with at least one chunk lost to a
	// quarantined container — the versions whose restores will fail.
	// Always empty for the read-only Fsck; filled by FsckRepair.
	AffectedVersions []int
}

// OK reports whether the check found no problems.
func (r FsckReport) OK() bool { return len(r.Problems) == 0 }

// Fsck verifies store integrity offline: every container decodes, every
// chunk's content hashes to its fingerprint, and every recipe entry is
// resolvable to a stored chunk. Read-only.
func (s *System) Fsck() (FsckReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	checker, ok := s.engine.(backup.Checker)
	if !ok {
		return FsckReport{}, errors.New("hidestore: engine does not support integrity checks")
	}
	rep, err := checker.Check()
	if err != nil {
		return FsckReport{}, err
	}
	return FsckReport{
		Versions:     rep.Versions,
		Chunks:       rep.Chunks,
		Containers:   rep.Containers,
		StoredChunks: rep.StoredChunks,
		Problems:     rep.Problems,
	}, nil
}

// FsckRepair runs the same audit as Fsck, but moves containers that fail
// to decode into the store's quarantine directory (they are never
// deleted — the images stay available for forensics) and names every
// version that lost chunks to a quarantined container in
// AffectedVersions. Healthy data is never touched; running FsckRepair on
// a healthy store is equivalent to Fsck.
func (s *System) FsckRepair() (FsckReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	repairer, ok := s.engine.(backup.Repairer)
	if !ok {
		return FsckReport{}, errors.New("hidestore: engine does not support repair")
	}
	rep, err := repairer.Repair()
	if err != nil {
		return FsckReport{}, err
	}
	return FsckReport{
		Versions:         rep.Versions,
		Chunks:           rep.Chunks,
		Containers:       rep.Containers,
		StoredChunks:     rep.StoredChunks,
		Problems:         rep.Problems,
		Quarantined:      rep.Quarantined,
		AffectedVersions: rep.AffectedVersions,
	}, nil
}

// FlattenReport summarizes an offline recipe-chain flattening pass.
type FlattenReport struct {
	// Versions is the number of stored versions whose recipes were walked.
	Versions int
	Duration time.Duration
}

// Flatten runs the paper's Algorithm 1 offline: it collapses recipe
// forward-pointer chains so later restores of old versions skip the
// chain walk. Only HiDeStore systems support it. It is safe to run at any
// time; restores invoke it lazily when needed.
func (s *System) Flatten() (FlattenReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.engine.(*core.Engine)
	if !ok {
		return FlattenReport{}, errors.New("hidestore: flatten requires a HiDeStore engine")
	}
	start := time.Now()
	versions := e.Versions()
	if len(versions) == 0 {
		return FlattenReport{}, nil
	}
	if err := e.FlattenRecipes(versions[0]); err != nil {
		return FlattenReport{}, err
	}
	return FlattenReport{Versions: len(versions), Duration: time.Since(start)}, nil
}

// VerifyRestore restores a version into w while recomputing every fetched
// chunk's fingerprint — a scrub-on-read. Only HiDeStore systems support
// it; baseline systems return an error.
func (s *System) VerifyRestore(ctx context.Context, version int, w io.Writer) (RestoreReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.engine.(*core.Engine)
	if !ok {
		return RestoreReport{}, errors.New("hidestore: verified restore requires a HiDeStore engine")
	}
	rep, err := e.VerifyRestore(ctx, version, w)
	if err != nil {
		return RestoreReport{}, err
	}
	return RestoreReport{
		Version:        rep.Version,
		BytesRestored:  rep.Stats.BytesRestored,
		ContainerReads: rep.Stats.ContainerReads,
		SpeedFactor:    rep.Stats.SpeedFactor(),
		Duration:       rep.Duration,
	}, nil
}

// ScrubOptions configures the online scrubber.
type ScrubOptions struct {
	// ThrottleMBps caps the scrubber's verification I/O rate (MB/s of
	// container payload read and hashed per second, averaged): after
	// each container the scrubber sleeps long enough that the pass
	// stays under the cap, so foreground backups and restores keep the
	// disk. 0 selects a conservative default (32 MB/s); negative
	// disables throttling (full speed — tests, drills).
	ThrottleMBps float64
	// OnStep, when set, observes every scrub step's report (after the
	// step completes, outside the system lock). Errors from the store
	// are surfaced the same way, with a synthetic report. Intended for
	// logging and tests.
	OnStep func(backup.ScrubStepReport, error)
}

// StartScrub starts the online scrubber: a background goroutine that
// continuously verifies container images — decode, CRC, and every
// chunk's content against its fingerprint — one container per step,
// interleaving with foreground operations (each step takes the system
// lock, so backups and restores are never raced, only briefly queued
// behind one container's verification). Corruption that survives a
// definitive re-read is quarantined and surfaced through
// Stats().Degraded and the scrub metrics.
//
// The returned stop function halts the scrubber and waits for the
// in-flight step to finish; it is safe to call more than once. Only
// HiDeStore engines support scrubbing.
func (s *System) StartScrub(opts ScrubOptions) (stop func(), err error) {
	scrubber, ok := s.engine.(backup.Scrubber)
	if !ok {
		return nil, errors.New("hidestore: engine does not support scrubbing")
	}
	throttle := opts.ThrottleMBps
	if throttle == 0 {
		throttle = 32
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ctx.Err() == nil {
			s.mu.Lock()
			rep, err := scrubber.ScrubStep(ctx)
			s.mu.Unlock()
			if opts.OnStep != nil {
				opts.OnStep(rep, err)
			}
			if ctx.Err() != nil {
				return
			}
			// Pace to the throttle: sleep as long as reading rep.Bytes
			// at ThrottleMBps would have taken, with a floor so an
			// empty or skipped step cannot spin, and a store error
			// backs off rather than hammering a broken store.
			pause := 10 * time.Millisecond
			if err != nil {
				pause = time.Second
			} else if throttle > 0 && rep.Bytes > 0 {
				d := time.Duration(float64(rep.Bytes) / (throttle * (1 << 20)) * float64(time.Second))
				if d > pause {
					pause = d
				}
			}
			select {
			case <-time.After(pause):
			case <-ctx.Done():
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}, nil
}

// Versions lists stored version numbers in ascending order.
func (s *System) Versions() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.Versions()
}

// Stats returns a system-wide snapshot.
func (s *System) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.engine.Stats()
	return Stats{
		Versions:         st.Versions,
		LogicalBytes:     st.LogicalBytes,
		StoredBytes:      st.StoredBytes,
		DedupRatio:       st.DedupRatio(),
		Containers:       st.Containers,
		IndexMemoryBytes: st.IndexMemBytes,
		DiskIndexLookups: st.IndexStats.DiskLookups,
		Degraded:         st.Degraded,
	}
}

// LayoutPolicyEstimate is one cache policy's simulated restore cost.
type LayoutPolicyEstimate struct {
	Policy         string  `json:"policy"`
	ContainerReads uint64  `json:"container_reads"`
	CacheHits      uint64  `json:"cache_hits"`
	SpeedFactor    float64 `json:"speed_factor"`
}

// LayoutReport is the physical-locality profile of one stored version:
// fragmentation (CFL: optimal over actual containers, 1.0 = perfectly
// packed), container utilization (live over stored payload in the
// referenced containers), the infinite-cache read cost per MB, and the
// simulated restore cost under each cache policy. See
// System.AnalyzeLayout.
type LayoutReport struct {
	Version           int                    `json:"version"`
	LogicalBytes      uint64                 `json:"logical_bytes"`
	Chunks            int                    `json:"chunks"`
	UniqueContainers  int                    `json:"unique_containers"`
	OptimalContainers int                    `json:"optimal_containers"`
	CFL               float64                `json:"cfl"`
	ContainersPerMB   float64                `json:"containers_per_mb"`
	Utilization       float64                `json:"utilization"`
	ReferencedBytes   uint64                 `json:"referenced_bytes"`
	ContainerBytes    uint64                 `json:"container_bytes"`
	Policies          []LayoutPolicyEstimate `json:"policies"`
}

// AnalyzeLayout analyzes a version's physical layout without restoring
// it: it walks the recipe and the referenced containers' indexes, then
// replays the container reference stream through the real cache-policy
// implementations in memory. The per-policy ContainerReads therefore
// equals what a real restore would measure — exactly, not
// approximately. A nil policies slice analyzes every policy; an empty
// one skips simulation and reports only the layout metrics. Read-only:
// unlike Restore, recipe flattening is not persisted.
func (s *System) AnalyzeLayout(ctx context.Context, version int, policies []string) (LayoutReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	an, ok := s.engine.(backup.LayoutAnalyzer)
	if !ok {
		return LayoutReport{}, errors.New("hidestore: engine does not support layout analysis")
	}
	rep, err := an.AnalyzeLayout(ctx, version, policies)
	if err != nil {
		return LayoutReport{}, err
	}
	out := LayoutReport{
		Version:           rep.Version,
		LogicalBytes:      rep.LogicalBytes,
		Chunks:            rep.Chunks,
		UniqueContainers:  rep.UniqueContainers,
		OptimalContainers: rep.OptimalContainers,
		CFL:               rep.CFL,
		ContainersPerMB:   rep.ContainersPerMB,
		Utilization:       rep.Utilization,
		ReferencedBytes:   rep.ReferencedBytes,
		ContainerBytes:    rep.ContainerBytes,
	}
	for _, p := range rep.Policies {
		out.Policies = append(out.Policies, LayoutPolicyEstimate{
			Policy:         p.Policy,
			ContainerReads: p.ContainerReads,
			CacheHits:      p.CacheHits,
			SpeedFactor:    p.SpeedFactor,
		})
	}
	return out, nil
}

// Health is the system's liveness/degradation snapshot served by the
// ops server's /healthz endpoint.
type Health struct {
	// Status is "ok", or "degraded" when any stats field could not be
	// computed or the scrubber has found damage (both surface through
	// Degraded).
	Status string `json:"status"`
	// Degraded mirrors Stats().Degraded: unreadable snapshot fields and
	// "scrub:"-prefixed damage findings.
	Degraded []string `json:"degraded,omitempty"`
	// Versions and Containers locate the store's size at a glance.
	Versions   int `json:"versions"`
	Containers int `json:"containers"`
	// ScrubDone/ScrubTotal report the online scrubber's progress through
	// its current pass's container snapshot; both are 0 when the engine
	// does not scrub or no pass has started.
	ScrubDone  int `json:"scrub_done"`
	ScrubTotal int `json:"scrub_total"`
}

// OK reports whether the status is healthy.
func (h Health) OK() bool { return h.Status == "ok" }

// Health returns the degradation snapshot: Stats().Degraded decides
// the status (any entry — an unreadable store, scrub-confirmed
// corruption — marks the system degraded), and engines with an online
// scrubber contribute pass progress.
func (s *System) Health() Health {
	st := s.Stats() // takes the lock itself
	h := Health{
		Status:     "ok",
		Degraded:   st.Degraded,
		Versions:   st.Versions,
		Containers: st.Containers,
	}
	if len(st.Degraded) > 0 {
		h.Status = "degraded"
	}
	s.mu.Lock()
	if pr, ok := s.engine.(backup.ScrubProgressReporter); ok {
		h.ScrubDone, h.ScrubTotal = pr.ScrubProgress()
	}
	s.mu.Unlock()
	return h
}
