package hidestore

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hidestore/internal/obs"
	"hidestore/internal/workload"
)

func testVersions(t *testing.T, n int) [][]byte {
	t.Helper()
	g, err := workload.New(workload.Config{
		Name: "api-test", Versions: n, Files: 16, BlocksPerFile: 10,
		BlockSize: 4096, ModifyRate: 0.08, InsertRate: 0.005,
		DeleteRate: 0.003, FileChurn: 0.02, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for g.HasNext() {
		r, err := g.NextVersion()
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

func TestOpenDefaults(t *testing.T) {
	sys, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil {
		t.Fatal("nil system")
	}
}

func TestOpenBadOptions(t *testing.T) {
	if _, err := Open(Config{Chunker: "nope"}); err == nil {
		t.Fatal("bad chunker should fail")
	}
	if _, err := Open(Config{RestoreCache: "nope"}); err == nil {
		t.Fatal("bad restore cache should fail")
	}
	if _, err := OpenBaseline(BaselineConfig{Index: "nope"}); err == nil {
		t.Fatal("bad index should fail")
	}
	if _, err := OpenBaseline(BaselineConfig{Rewriter: "nope"}); err == nil {
		t.Fatal("bad rewriter should fail")
	}
}

func TestBackupRestoreCycle(t *testing.T) {
	sys, err := Open(Config{ContainerSize: 64 << 10, MinChunk: 1024, AvgChunk: 2048, MaxChunk: 8192})
	if err != nil {
		t.Fatal(err)
	}
	versions := testVersions(t, 6)
	ctx := context.Background()
	for i, data := range versions {
		rep, err := sys.Backup(ctx, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Version != i+1 || rep.LogicalBytes != uint64(len(data)) {
			t.Fatalf("report %+v", rep)
		}
		if i > 0 && rep.DedupRatio < 0.5 {
			t.Fatalf("version %d dedup ratio %.2f too low", i+1, rep.DedupRatio)
		}
	}
	for i, want := range versions {
		var buf bytes.Buffer
		rep, err := sys.Restore(ctx, i+1, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("version %d corrupted", i+1)
		}
		if rep.BytesRestored != uint64(len(want)) || rep.SpeedFactor <= 0 {
			t.Fatalf("restore report %+v", rep)
		}
	}
	st := sys.Stats()
	if st.Versions != 6 || st.DedupRatio <= 0 || st.DiskIndexLookups != 0 || st.IndexMemoryBytes != 0 {
		t.Fatalf("stats %+v", st)
	}
	if got := sys.Versions(); len(got) != 6 {
		t.Fatalf("Versions = %v", got)
	}
}

func TestDeleteCycle(t *testing.T) {
	sys, err := Open(Config{ContainerSize: 64 << 10, MinChunk: 1024, AvgChunk: 2048, MaxChunk: 8192})
	if err != nil {
		t.Fatal(err)
	}
	versions := testVersions(t, 5)
	ctx := context.Background()
	for _, data := range versions {
		if _, err := sys.Backup(ctx, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sys.Delete(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesReclaimed == 0 {
		t.Fatal("nothing reclaimed")
	}
	var buf bytes.Buffer
	if _, err := sys.Restore(ctx, 5, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), versions[4]) {
		t.Fatal("latest version corrupted after delete")
	}
}

func TestFileBackedSystem(t *testing.T) {
	sys, err := Open(Config{
		Dir:           t.TempDir(),
		ContainerSize: 64 << 10, MinChunk: 1024, AvgChunk: 2048, MaxChunk: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	versions := testVersions(t, 3)
	ctx := context.Background()
	for _, data := range versions {
		if _, err := sys.Backup(ctx, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range versions {
		var buf bytes.Buffer
		if _, err := sys.Restore(ctx, i+1, &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("version %d corrupted", i+1)
		}
	}
}

func TestRemoteBackendSystem(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	cfg := Config{
		Dir:           dir,
		ContainerSize: 64 << 10, MinChunk: 1024, AvgChunk: 2048, MaxChunk: 8192,
		Metrics: reg,
		Backend: BackendConfig{
			Kind:       "remote",
			Latency:    50 * time.Microsecond,
			ErrRate:    0.02, // absorbed by the retry layer
			Seed:       7,
			CacheMB:    8,
			SleepScale: -1,
		},
	}
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	versions := testVersions(t, 3)
	ctx := context.Background()
	for _, data := range versions {
		if _, err := sys.Backup(ctx, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	var first RestoreReport
	for i, want := range versions {
		var buf bytes.Buffer
		rep, err := sys.Restore(ctx, i+1, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("version %d corrupted through the remote stack", i+1)
		}
		if i == len(versions)-1 {
			first = rep
		}
	}
	// The §5.3 accounting identity must hold with the cache interposed:
	// the registry counter mirrors the policy's Stats.ContainerReads.
	snap := reg.Snapshot()
	reads := snap.Counters["hidestore_restore_container_reads_total"].Value
	total := snap.Counters["hidestore_restore_total"].Value
	if total != 3 || reads == 0 {
		t.Fatalf("restore counters: total=%d reads=%d", total, reads)
	}

	// Reopen: state rides the backend stack; the cache persists. The
	// same restore must be byte-identical with identical ContainerReads
	// (the cache accelerates fetches, never changes which are issued).
	sys2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen through remote backend: %v", err)
	}
	var buf bytes.Buffer
	rep, err := sys2.Restore(ctx, len(versions), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), versions[len(versions)-1]) {
		t.Fatal("restore after reopen corrupted")
	}
	if rep.ContainerReads != first.ContainerReads {
		t.Fatalf("ContainerReads changed across reopen with cache: %d vs %d",
			rep.ContainerReads, first.ContainerReads)
	}
	after := reg.Snapshot()
	if hits := after.Counters["hidestore_backend_cache_hits_total"].Value; hits == 0 {
		t.Fatal("no cache hits recorded across repeated restores")
	}
	// Continuing the version history over the stack still works.
	if _, err := sys2.Backup(ctx, bytes.NewReader(versions[0])); err != nil {
		t.Fatalf("backup after reopen: %v", err)
	}
}

func TestRemoteBackendInMemory(t *testing.T) {
	sys, err := Open(Config{
		ContainerSize: 64 << 10, MinChunk: 1024, AvgChunk: 2048, MaxChunk: 8192,
		Backend: BackendConfig{Kind: "remote", ErrRate: 0.05, Seed: 3, SleepScale: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	versions := testVersions(t, 2)
	ctx := context.Background()
	for _, data := range versions {
		if _, err := sys.Backup(ctx, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := sys.Restore(ctx, 2, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), versions[1]) {
		t.Fatal("in-memory remote restore corrupted")
	}
}

func TestOpenUnknownBackend(t *testing.T) {
	if _, err := Open(Config{Backend: BackendConfig{Kind: "s3"}}); err == nil {
		t.Fatal("unknown backend kind should fail")
	}
}

func TestBaselineSystem(t *testing.T) {
	for _, ix := range []string{"ddfs", "sparse", "silo", "extbin"} {
		sys, err := OpenBaseline(BaselineConfig{
			Config: Config{ContainerSize: 64 << 10, MinChunk: 1024, AvgChunk: 2048, MaxChunk: 8192},
			Index:  ix, Rewriter: "capping",
		})
		if err != nil {
			t.Fatal(err)
		}
		versions := testVersions(t, 4)
		ctx := context.Background()
		for _, data := range versions {
			if _, err := sys.Backup(ctx, bytes.NewReader(data)); err != nil {
				t.Fatal(err)
			}
		}
		for i, want := range versions {
			var buf bytes.Buffer
			if _, err := sys.Restore(ctx, i+1, &buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s: version %d corrupted", ix, i+1)
			}
		}
		// The baseline can delete any version.
		if _, err := sys.Delete(2); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNilReader(t *testing.T) {
	sys, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Backup(context.Background(), nil); err == nil {
		t.Fatal("nil reader should fail")
	}
}

func TestFlattenAndVerifyRestore(t *testing.T) {
	sys, err := Open(Config{ContainerSize: 64 << 10, MinChunk: 1024, AvgChunk: 2048, MaxChunk: 8192})
	if err != nil {
		t.Fatal(err)
	}
	versions := testVersions(t, 5)
	ctx := context.Background()
	for _, data := range versions {
		if _, err := sys.Backup(ctx, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sys.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Versions != 5 {
		t.Fatalf("Flatten report %+v", rep)
	}
	var buf bytes.Buffer
	vrep, err := sys.VerifyRestore(ctx, 3, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), versions[2]) || vrep.BytesRestored == 0 {
		t.Fatal("verified restore wrong")
	}
	// Baseline systems refuse both.
	base, err := OpenBaseline(BaselineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Flatten(); err == nil {
		t.Fatal("baseline Flatten should fail")
	}
	if _, err := base.VerifyRestore(ctx, 1, io.Discard); err == nil {
		t.Fatal("baseline VerifyRestore should fail")
	}
}

// TestCompressedSystem runs the full cycle with at-rest compression and
// verifies the on-disk footprint shrinks versus uncompressed.
func TestCompressedSystem(t *testing.T) {
	versions := testVersions(t, 4)
	ctx := context.Background()
	run := func(compress bool, dir string) uint64 {
		sys, err := Open(Config{
			Dir: dir, Compress: compress,
			ContainerSize: 64 << 10, MinChunk: 1024, AvgChunk: 2048, MaxChunk: 8192,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, data := range versions {
			if _, err := sys.Backup(ctx, bytes.NewReader(data)); err != nil {
				t.Fatal(err)
			}
		}
		for i, want := range versions {
			var buf bytes.Buffer
			if _, err := sys.Restore(ctx, i+1, &buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("compress=%v: version %d corrupted", compress, i+1)
			}
		}
		var total uint64
		dirents, err := os.ReadDir(filepath.Join(dir, "containers"))
		if err != nil {
			t.Fatal(err)
		}
		for _, de := range dirents {
			info, err := de.Info()
			if err != nil {
				t.Fatal(err)
			}
			total += uint64(info.Size())
		}
		return total
	}
	plain := run(false, t.TempDir())
	packed := run(true, t.TempDir())
	// Workload content is random (nearly incompressible), but headers and
	// any slack still shave something; at minimum it must not grow much.
	if packed > plain+plain/10 {
		t.Fatalf("compressed store uses %d bytes vs plain %d", packed, plain)
	}
}
