package hidestore

// Cross-component integration tests through the public API only.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
)

// TestEveryChunkerRoundTrips runs a full backup/restore/delete cycle under
// each chunking algorithm.
func TestEveryChunkerRoundTrips(t *testing.T) {
	versions := testVersions(t, 4)
	for _, alg := range []string{"fixed", "rabin", "tttd", "fastcdc", "ae"} {
		t.Run(alg, func(t *testing.T) {
			sys, err := Open(Config{
				Chunker:       alg,
				ContainerSize: 64 << 10,
				MinChunk:      1024, AvgChunk: 2048, MaxChunk: 8192,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for _, data := range versions {
				if _, err := sys.Backup(ctx, bytes.NewReader(data)); err != nil {
					t.Fatal(err)
				}
			}
			for i, want := range versions {
				var buf bytes.Buffer
				if _, err := sys.Restore(ctx, i+1, &buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("version %d corrupted under %s", i+1, alg)
				}
			}
		})
	}
}

// TestEveryRestoreCacheRoundTrips runs the cycle under each restore cache.
func TestEveryRestoreCacheRoundTrips(t *testing.T) {
	versions := testVersions(t, 4)
	for _, cache := range []string{"faa", "alacc", "container-lru", "chunk-lru", "opt"} {
		t.Run(cache, func(t *testing.T) {
			sys, err := Open(Config{
				RestoreCache:  cache,
				ContainerSize: 64 << 10,
				MinChunk:      1024, AvgChunk: 2048, MaxChunk: 8192,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for _, data := range versions {
				if _, err := sys.Backup(ctx, bytes.NewReader(data)); err != nil {
					t.Fatal(err)
				}
			}
			for i, want := range versions {
				var buf bytes.Buffer
				if _, err := sys.Restore(ctx, i+1, &buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("version %d corrupted under %s", i+1, cache)
				}
			}
		})
	}
}

// TestPersistenceAcrossReopen drives the public API through a simulated
// process restart: back up, reopen, continue, restore everything, fsck.
func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	versions := testVersions(t, 6)
	ctx := context.Background()
	cfg := Config{
		Dir:           dir,
		ContainerSize: 64 << 10,
		MinChunk:      1024, AvgChunk: 2048, MaxChunk: 8192,
	}
	sys1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, data := range versions[:3] {
		if _, err := sys1.Backup(ctx, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	sys2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys2.Backup(ctx, bytes.NewReader(versions[3]))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 4 || rep.DedupRatio < 0.5 {
		t.Fatalf("reopen broke continuity: %+v", rep)
	}
	for _, data := range versions[4:] {
		if _, err := sys2.Backup(ctx, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range versions {
		var buf bytes.Buffer
		if _, err := sys2.Restore(ctx, i+1, &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("version %d corrupted across reopen", i+1)
		}
	}
	fsck, err := sys2.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !fsck.OK() {
		t.Fatalf("fsck problems: %v", fsck.Problems)
	}
	if fsck.Versions != 6 || fsck.Containers == 0 {
		t.Fatalf("fsck report %+v", fsck)
	}
}

// TestFsckBaseline verifies the baseline engine's checker through the
// public API.
func TestFsckBaseline(t *testing.T) {
	sys, err := OpenBaseline(BaselineConfig{
		Config: Config{ContainerSize: 64 << 10, MinChunk: 1024, AvgChunk: 2048, MaxChunk: 8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, data := range testVersions(t, 3) {
		if _, err := sys.Backup(ctx, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sys.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("baseline fsck problems: %v", rep.Problems)
	}
}

// TestWindowMismatchOnReopen: reopening a store with a different window
// must be refused (the state encodes it).
func TestWindowMismatchOnReopen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	sys1, err := Open(Config{Dir: dir, Window: 1, ContainerSize: 64 << 10,
		MinChunk: 1024, AvgChunk: 2048, MaxChunk: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys1.Backup(ctx, bytes.NewReader(testVersions(t, 1)[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, Window: 2}); err == nil {
		t.Fatal("window mismatch should be refused")
	}
}

// TestConcurrentUse hammers one System from many goroutines; the internal
// mutex must serialize operations without races or corruption.
func TestConcurrentUse(t *testing.T) {
	sys, err := Open(Config{ContainerSize: 64 << 10, MinChunk: 1024, AvgChunk: 2048, MaxChunk: 8192})
	if err != nil {
		t.Fatal(err)
	}
	versions := testVersions(t, 8)
	ctx := context.Background()
	// Seed a few versions so restores have something to read.
	for _, data := range versions[:4] {
		if _, err := sys.Backup(ctx, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	// Concurrent backups get version numbers in scheduling order; record
	// which stream landed on which version.
	var assignMu sync.Mutex
	assigned := map[int][]byte{1: versions[0], 2: versions[1], 3: versions[2], 4: versions[3]}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 4; i < 8; i++ {
		wg.Add(1)
		go func(data []byte) {
			defer wg.Done()
			rep, err := sys.Backup(ctx, bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			assignMu.Lock()
			assigned[rep.Version] = data
			assignMu.Unlock()
		}(versions[i])
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			var buf bytes.Buffer
			if _, err := sys.Restore(ctx, v, &buf); err != nil {
				errs <- err
			} else if !bytes.Equal(buf.Bytes(), versions[v-1]) {
				errs <- errRestoredMismatch
			}
			sys.Stats()
			sys.Versions()
		}(i%4 + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Everything still restores after the storm, matching whichever
	// stream each version number was assigned.
	for v := 1; v <= 8; v++ {
		var buf bytes.Buffer
		if _, err := sys.Restore(ctx, v, &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), assigned[v]) {
			t.Fatalf("version %d corrupted", v)
		}
	}
}

var errRestoredMismatch = errors.New("restored bytes differ")
