package analysis

import (
	"go/ast"
)

func init() {
	register(Check{
		Name: "accounting",
		Doc: "the paper's restore metric is MB per container read, tallied in " +
			"Stats.ContainerReads by the restorecache fetchers. A direct Store.Get " +
			"anywhere else performs an uncounted container read and silently " +
			"inflates the reported speed factor; read through a " +
			"restorecache.Fetcher, or suppress with the reason the read is not " +
			"part of a restore.",
		Run: runAccounting,
	})
}

func runAccounting(pass *Pass) {
	if PathHasSuffix(pass.Pkg.Path(), pass.Config.AccountingExemptPackages) {
		return // the accounting layer itself
	}
	store := containerStoreInterface(pass.Pkg)
	if store == nil {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Get" {
				return true
			}
			tv, ok := pass.Info.Types[sel.X]
			if !ok || !implementsStore(tv.Type, store) {
				return true
			}
			pass.Reportf(call.Pos(), "direct Store.Get bypasses restore accounting (Stats.ContainerReads); read through a restorecache.Fetcher")
			return true
		})
	}
}
