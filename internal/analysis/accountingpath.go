package analysis

import (
	"go/ast"
	"go/types"
)

func init() {
	register(Check{
		Name: "accounting-path",
		Doc: "the paper's speed factor (§5.3, MB restored per container read) " +
			"is computed from Stats.ContainerReads, so every restore-path " +
			"container read must reach container.Store.Get through the counting " +
			"fetcher layer. The intraprocedural accounting check polices direct " +
			"raw Gets outside the exempt packages; this check closes the " +
			"laundering hole: a call into a helper (in any package, including " +
			"the exempt ones) that transitively reaches a raw Store.Get outside " +
			"a counting boundary is flagged at the call site, with the witness " +
			"chain. Requires -interprocedural; a no-op without the call graph.",
		Run: runAccountingPath,
	})
}

func runAccountingPath(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	// Inside the exempt packages the raw Get IS the mechanism: the
	// summary pass records it (rawGetDirect) so taint reaches outside
	// callers, but call sites in here are not findings.
	if PathHasSuffix(pass.Pkg.Path(), pass.Config.AccountingExemptPackages) {
		return
	}
	funcDecls(pass.Files, func(_ *ast.File, decl *ast.FuncDecl) {
		fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
		if !ok {
			return
		}
		if s := prog.Summaries[fn]; s != nil && s.boundary {
			return // the counting seam itself
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.Info, call)
			if f == nil {
				return true
			}
			callee, known := prog.Graph.Nodes[f]
			if !known {
				return true
			}
			cs := prog.Summaries[callee.Func]
			if cs.reachesRawGet() && !cs.boundary {
				pass.Reportf(call.Pos(), "call reaches a raw Store.Get (%s) bypassing the counting fetcher layer; Stats.ContainerReads will not see this read — go through a restorecache.Fetcher", prog.rawGetChain(f))
			}
			return true
		})
	})
}
