// Package analysis is hidestore's project-specific static-analysis
// framework ("hidelint"). It exists because PR 1 fixed three
// silent-corruption classes by hand — an ignored context.Context in the
// restore path, FileStore.IDs swallowing ReadDir errors into an
// empty-store lie, and a store-ownership violation in MemStore.Put — and
// the paper's restore-performance numbers (speed factor = MB restored
// per container read, §5.3) are only meaningful if I/O accounting and
// error surfacing stay exact. Those invariants are enforced here
// mechanically, as named checks with file:line diagnostics, instead of
// by reviewer vigilance.
//
// The framework is intentionally stdlib-only (go/parser, go/ast,
// go/types, go/importer): the lint gate must run anywhere the module
// builds, with no module downloads.
//
// Findings are suppressed per line with
//
//	//hidelint:ignore <check> <reason>
//
// where the reason is mandatory — a suppression without one is itself a
// diagnostic. The comment silences matching findings on its own line
// (trailing form) or on the line directly below (standalone form).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at the offending token.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Config tunes path-dependent checks. The zero value is not useful;
// call DefaultConfig for the project policy.
type Config struct {
	// CtxPackages lists import-path suffixes of the packages where the
	// ignored-ctx check demands context plumbing on exported I/O entry
	// points.
	CtxPackages []string
	// AccountingExemptPackages lists import-path suffixes whose direct
	// Store.Get calls are the accounting mechanism itself and therefore
	// exempt from the accounting check.
	AccountingExemptPackages []string
	// LibraryExemptDirs lists path elements (e.g. "cmd", "examples")
	// whose packages are binaries: exempt from no-panic/no-print.
	LibraryExemptDirs []string
	// OwnershipCustodianPackages lists import-path suffixes of the
	// packages that legitimately share read-only *Container snapshots
	// through fields and channels (the restore cache/prefetch layers and
	// the container store itself). The store-ownership escape rules
	// (field store, channel send, composite literal) do not fire inside
	// them; the mutation rules still do.
	OwnershipCustodianPackages []string
	// Interprocedural turns on the whole-module pass: a call graph with
	// bottom-up per-function summaries feeds transitive-I/O detection in
	// ignored-ctx, cross-call escape/mutation tracking in
	// store-ownership and pooled-escape (plus their flow-sensitive CFG
	// halves), and the accounting-path check, which is a no-op without
	// it.
	Interprocedural bool
	// ReportUnusedSuppressions turns on the -unused-suppressions mode:
	// every well-formed //hidelint:ignore directive that silenced no
	// finding of the checks that ran becomes an "unused-suppression"
	// diagnostic. Directives naming checks outside the selected set are
	// never reported — a partial run cannot prove them stale.
	ReportUnusedSuppressions bool
}

// DefaultConfig is the policy for the hidestore tree.
func DefaultConfig() Config {
	return Config{
		CtxPackages: []string{
			"internal/core",
			"internal/dedup",
			"internal/restorecache",
			"internal/container",
		},
		AccountingExemptPackages: []string{
			"internal/restorecache",
			"internal/container",
			"internal/fault",
		},
		LibraryExemptDirs: []string{"cmd", "examples"},
		OwnershipCustodianPackages: []string{
			"internal/restorecache",
			"internal/container",
		},
		Interprocedural: true,
	}
}

// Pass carries one type-checked package through a check.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Config Config
	// Prog is the whole-module call-graph/summary view, nil unless
	// Config.Interprocedural is set. Checks that can use it degrade to
	// their intraprocedural behavior when it is nil.
	Prog *Program

	diags *[]Diagnostic
	check string
}

// Reportf records a finding at pos under the running check's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// PathHasSuffix reports whether the package import path ends in one of
// the given slash-separated suffixes (element-aligned, so
// "internal/core" matches "hidestore/internal/core" but not
// "hidestore/internal/corekit").
func PathHasSuffix(path string, suffixes []string) bool {
	for _, suf := range suffixes {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// InDirElement reports whether the file's path contains dir as a path
// element (e.g. "cmd" matches cmd/bench/main.go).
func InDirElement(filename string, dirs []string) bool {
	for _, el := range strings.Split(filepath.ToSlash(filepath.Dir(filename)), "/") {
		for _, d := range dirs {
			if el == d {
				return true
			}
		}
	}
	return false
}

// Check is one named invariant.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

var registry []Check

// register adds a check; called from each check's init.
func register(c Check) {
	for _, existing := range registry {
		if existing.Name == c.Name {
			//hidelint:ignore no-panic init-time registration bug in this tool itself; unreachable once the package compiles and starts
			panic("analysis: duplicate check " + c.Name)
		}
	}
	registry = append(registry, c)
}

// Checks returns the registered checks sorted by name.
func Checks() []Check {
	out := append([]Check(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CheckNames returns the registered names sorted.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

func checkByName(name string) (Check, bool) {
	for _, c := range registry {
		if c.Name == name {
			return c, true
		}
	}
	return Check{}, false
}

// Run executes the named checks (all registered checks if names is
// empty) over the loaded packages and returns the surviving
// diagnostics, sorted by position, after applying suppressions. An
// unknown check name is an error.
func Run(pkgs []*Package, names []string, cfg Config) ([]Diagnostic, error) {
	var checks []Check
	if len(names) == 0 {
		checks = Checks()
	} else {
		for _, n := range names {
			c, ok := checkByName(n)
			if !ok {
				return nil, fmt.Errorf("analysis: unknown check %q (have %s)", n, strings.Join(CheckNames(), ", "))
			}
			checks = append(checks, c)
		}
	}
	var diags []Diagnostic
	var sup suppressions
	// Suppressions are collected for the whole load set before any check
	// runs: the interprocedural summary pass consults them so that an
	// audited (suppressed) raw Store.Get does not taint its callers.
	for _, pkg := range pkgs {
		sup.collect(pkg.Fset, pkg.Files, &diags)
	}
	var prog *Program
	if cfg.Interprocedural {
		prog = buildProgram(pkgs, cfg, &sup)
	}
	for _, pkg := range pkgs {
		for _, c := range checks {
			pass := &Pass{
				Fset:   pkg.Fset,
				Files:  pkg.Files,
				Pkg:    pkg.Types,
				Info:   pkg.Info,
				Config: cfg,
				Prog:   prog,
				diags:  &diags,
				check:  c.Name,
			}
			c.Run(pass)
		}
	}
	diags = sup.filter(diags)
	if cfg.ReportUnusedSuppressions {
		// An intraprocedural run cannot prove an accounting-path
		// suppression stale: the check only fires with the call graph.
		provable := checks
		if !cfg.Interprocedural {
			provable = nil
			for _, c := range checks {
				if c.Name != "accounting-path" {
					provable = append(provable, c)
				}
			}
		}
		diags = append(diags, sup.unused(provable)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags, nil
}
