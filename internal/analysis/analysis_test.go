package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testdataImportPrefix keeps testdata package paths inside the module
// so the path-scoped checks can be aimed at them via Config.
const testdataImportPrefix = "hidestore/internal/analysis/testdata/src/"

// goldenCase wires one testdata package to the check it seeds and the
// config that aims the check at it.
type goldenCase struct {
	name   string   // testdata package and golden file stem
	checks []string // checks to run; nil = all
	deps   []string // helper packages (testdata/src-relative), loaded first
	cfg    func() Config
	// interOnly marks the corpora whose every finding needs the call
	// graph: TestInterproceduralCatchesWhatIntraMisses asserts the
	// intraprocedural pass finds NOTHING in them.
	interOnly bool
}

func goldenCases() []goldenCase {
	withCtxTestdata := func() Config {
		cfg := DefaultConfig()
		cfg.CtxPackages = append(cfg.CtxPackages, "testdata/src/ignoredctx")
		return cfg
	}
	withCtxTransitive := func() Config {
		cfg := DefaultConfig()
		cfg.CtxPackages = append(cfg.CtxPackages, "testdata/src/ctxtransitive")
		return cfg
	}
	withRawHelperExempt := func() Config {
		cfg := DefaultConfig()
		cfg.AccountingExemptPackages = append(cfg.AccountingExemptPackages, "testdata/src/accountingpath/rawhelper")
		return cfg
	}
	return []goldenCase{
		{name: "discardederror", checks: []string{"discarded-error"}, cfg: DefaultConfig},
		{name: "ignoredctx", checks: []string{"ignored-ctx"}, cfg: withCtxTestdata},
		{name: "nopanic", checks: []string{"no-panic"}, cfg: DefaultConfig},
		{name: "storeownership", checks: []string{"store-ownership"}, cfg: DefaultConfig},
		{name: "accounting", checks: []string{"accounting"}, cfg: DefaultConfig},
		{name: "pooledescape", checks: []string{"pooled-escape"}, cfg: DefaultConfig},
		{name: "suppress", checks: []string{"no-panic"}, cfg: DefaultConfig},
		{name: "unusedsuppress", checks: []string{"no-panic"}, cfg: withUnusedSuppressions},
		{name: "suppressedge", checks: []string{"no-panic"}, cfg: withUnusedSuppressions},

		// The interprocedural corpora: each seeds a defect the
		// single-function pass provably misses.
		{name: "ctxtransitive", checks: []string{"ignored-ctx"},
			deps: []string{"ctxtransitive/helper"}, cfg: withCtxTransitive, interOnly: true},
		{name: "xpkgownership", checks: []string{"store-ownership"},
			deps: []string{"xpkgownership/stamp"}, cfg: DefaultConfig, interOnly: true},
		{name: "mutbeforerebind", checks: []string{"store-ownership"}, cfg: DefaultConfig, interOnly: true},
		{name: "pooledinterproc", checks: []string{"pooled-escape"}, cfg: DefaultConfig, interOnly: true},
		{name: "accountingpath", checks: []string{"accounting", "accounting-path"},
			deps: []string{"accountingpath/rawhelper"}, cfg: withRawHelperExempt, interOnly: true},
	}
}

// loadCase loads a golden case's packages: helper deps first, so the
// main corpus package's imports resolve to the already-checked copies.
func loadCase(t *testing.T, tc goldenCase) []*Package {
	t.Helper()
	loader := NewLoader()
	var pkgs []*Package
	for _, dep := range append(append([]string(nil), tc.deps...), tc.name) {
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", filepath.FromSlash(dep)), testdataImportPrefix+dep)
		if err != nil {
			t.Fatalf("load %s: %v", dep, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// withUnusedSuppressions turns on the -unused-suppressions mode.
func withUnusedSuppressions() Config {
	cfg := DefaultConfig()
	cfg.ReportUnusedSuppressions = true
	return cfg
}

// TestGolden seeds each defect class and asserts the exact diagnostic
// positions against the per-check golden file. Regenerate with
// `go test ./internal/analysis -run Golden -update` after reviewing
// every changed line: the goldens are the gate's regression contract.
func TestGolden(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			diags, err := Run(loadCase(t, tc), tc.checks, tc.cfg())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			var sb strings.Builder
			for _, d := range diags {
				d.Pos.Filename = filepath.ToSlash(d.Pos.Filename)
				sb.WriteString(d.String())
				sb.WriteString("\n")
			}
			got := sb.String()
			goldenPath := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenFindsEveryDefectClass guards the guard: each seeded
// package must produce at least one finding for its check, so an
// accidentally-emptied golden cannot pass silently.
func TestGoldenFindsEveryDefectClass(t *testing.T) {
	for _, tc := range goldenCases() {
		data, err := os.ReadFile(filepath.Join("testdata", tc.name+".golden"))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(strings.TrimSpace(string(data))) == 0 {
			t.Errorf("%s: golden file is empty; the seeded defects are not being caught", tc.name)
		}
	}
}

// TestInterproceduralCatchesWhatIntraMisses is the contract behind the
// interOnly corpora: every finding in their goldens needs the call
// graph, proven by running the same corpora with the same checks and
// config, minus the Program — the old single-function pass — and
// requiring silence. Together with TestGoldenFindsEveryDefectClass
// (the goldens are non-empty) this pins "the new pass catches what the
// old pass missed" from both sides.
func TestInterproceduralCatchesWhatIntraMisses(t *testing.T) {
	ran := 0
	for _, tc := range goldenCases() {
		if !tc.interOnly {
			continue
		}
		ran++
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			cfg.Interprocedural = false
			diags, err := Run(loadCase(t, tc), tc.checks, cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, d := range diags {
				t.Errorf("intraprocedural pass unexpectedly found: %s", d)
			}
		})
	}
	if ran < 5 {
		t.Fatalf("only %d interprocedural corpora; want one per upgraded invariant (5)", ran)
	}
}

func TestRunRejectsUnknownCheck(t *testing.T) {
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "nopanic"), testdataImportPrefix+"nopanic")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run([]*Package{pkg}, []string{"not-a-check"}, DefaultConfig()); err == nil {
		t.Fatal("Run accepted an unknown check name")
	}
}

func TestRegisteredChecks(t *testing.T) {
	want := []string{"accounting", "accounting-path", "discarded-error", "ignored-ctx", "no-panic", "pooled-escape", "store-ownership"}
	got := CheckNames()
	if len(got) != len(want) {
		t.Fatalf("CheckNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CheckNames() = %v, want %v", got, want)
		}
	}
}
