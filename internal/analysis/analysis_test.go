package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testdataImportPrefix keeps testdata package paths inside the module
// so the path-scoped checks can be aimed at them via Config.
const testdataImportPrefix = "hidestore/internal/analysis/testdata/src/"

// goldenCase wires one testdata package to the check it seeds and the
// config that aims the check at it.
type goldenCase struct {
	name   string   // testdata package and golden file stem
	checks []string // checks to run; nil = all
	cfg    func() Config
}

func goldenCases() []goldenCase {
	withCtxTestdata := func() Config {
		cfg := DefaultConfig()
		cfg.CtxPackages = append(cfg.CtxPackages, "testdata/src/ignoredctx")
		return cfg
	}
	return []goldenCase{
		{name: "discardederror", checks: []string{"discarded-error"}, cfg: DefaultConfig},
		{name: "ignoredctx", checks: []string{"ignored-ctx"}, cfg: withCtxTestdata},
		{name: "nopanic", checks: []string{"no-panic"}, cfg: DefaultConfig},
		{name: "storeownership", checks: []string{"store-ownership"}, cfg: DefaultConfig},
		{name: "accounting", checks: []string{"accounting"}, cfg: DefaultConfig},
		{name: "pooledescape", checks: []string{"pooled-escape"}, cfg: DefaultConfig},
		{name: "suppress", checks: []string{"no-panic"}, cfg: DefaultConfig},
		{name: "unusedsuppress", checks: []string{"no-panic"}, cfg: withUnusedSuppressions},
	}
}

// withUnusedSuppressions turns on the -unused-suppressions mode.
func withUnusedSuppressions() Config {
	cfg := DefaultConfig()
	cfg.ReportUnusedSuppressions = true
	return cfg
}

// TestGolden seeds each defect class and asserts the exact diagnostic
// positions against the per-check golden file. Regenerate with
// `go test ./internal/analysis -run Golden -update` after reviewing
// every changed line: the goldens are the gate's regression contract.
func TestGolden(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			loader := NewLoader()
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", tc.name), testdataImportPrefix+tc.name)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			diags, err := Run([]*Package{pkg}, tc.checks, tc.cfg())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			var sb strings.Builder
			for _, d := range diags {
				d.Pos.Filename = filepath.ToSlash(d.Pos.Filename)
				sb.WriteString(d.String())
				sb.WriteString("\n")
			}
			got := sb.String()
			goldenPath := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenFindsEveryDefectClass guards the guard: each seeded
// package must produce at least one finding for its check, so an
// accidentally-emptied golden cannot pass silently.
func TestGoldenFindsEveryDefectClass(t *testing.T) {
	for _, tc := range goldenCases() {
		data, err := os.ReadFile(filepath.Join("testdata", tc.name+".golden"))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(strings.TrimSpace(string(data))) == 0 {
			t.Errorf("%s: golden file is empty; the seeded defects are not being caught", tc.name)
		}
	}
}

func TestRunRejectsUnknownCheck(t *testing.T) {
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "nopanic"), testdataImportPrefix+"nopanic")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run([]*Package{pkg}, []string{"not-a-check"}, DefaultConfig()); err == nil {
		t.Fatal("Run accepted an unknown check name")
	}
}

func TestRegisteredChecks(t *testing.T) {
	want := []string{"accounting", "discarded-error", "ignored-ctx", "no-panic", "pooled-escape", "store-ownership"}
	got := CheckNames()
	if len(got) != len(want) {
		t.Fatalf("CheckNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CheckNames() = %v, want %v", got, want)
		}
	}
}
