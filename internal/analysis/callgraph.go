package analysis

import (
	"go/ast"
	"go/types"
)

// FuncNode is one function or method declared (with a body) somewhere
// in the analyzed packages. Function literals are not nodes of their
// own: their bodies are attributed to the enclosing declaration, which
// over-approximates when a closure is stored and invoked later — the
// conservative direction for every summary bit computed here.
type FuncNode struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out lists the statically-resolved callees declared in the analyzed
	// packages, deduplicated. Interface dispatch, function values, and
	// calls into packages outside the load set have no edge; each
	// summary's propagation rule states what it assumes about them.
	Out []*FuncNode
}

// CallGraph is the static whole-module call graph plus its strongly
// connected components in bottom-up (callee-first) order, the order
// summaries are computed in.
type CallGraph struct {
	Nodes map[*types.Func]*FuncNode
	// SCCs holds every strongly connected component; Tarjan emits a
	// component only after every component reachable from it, so
	// iterating in slice order visits callees before callers.
	SCCs [][]*FuncNode
}

// buildCallGraph indexes every declared function in pkgs and resolves
// static call edges between them.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*FuncNode)}
	for _, pkg := range pkgs {
		p := pkg
		funcDecls(pkg.Files, func(_ *ast.File, decl *ast.FuncDecl) {
			fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				return
			}
			g.Nodes[fn] = &FuncNode{Func: fn, Decl: decl, Pkg: p}
		})
	}
	for _, node := range g.Nodes {
		seen := make(map[*FuncNode]bool)
		info := node.Pkg.Info
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(info, call)
			if f == nil {
				return true
			}
			if callee, ok := g.Nodes[f]; ok && !seen[callee] {
				seen[callee] = true
				node.Out = append(node.Out, callee)
			}
			return true
		})
	}
	g.computeSCCs()
	return g
}

// computeSCCs runs Tarjan's algorithm. Components land in g.SCCs in
// reverse topological order of the condensation: every component is
// emitted before any component that calls into it can be, so the slice
// is the bottom-up summary-computation order.
func (g *CallGraph) computeSCCs() {
	index := make(map[*FuncNode]int)
	lowlink := make(map[*FuncNode]int)
	onStack := make(map[*FuncNode]bool)
	var stack []*FuncNode
	next := 0

	var strongconnect func(v *FuncNode)
	strongconnect = func(v *FuncNode) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range v.Out {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []*FuncNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			g.SCCs = append(g.SCCs, scc)
		}
	}
	// Deterministic visit order: iterate packages/decls, not the map.
	var roots []*FuncNode
	for _, n := range g.Nodes {
		roots = append(roots, n)
	}
	// Sort by source position for reproducible SCC emission order (the
	// order only affects iteration determinism, not correctness).
	sortNodesByPos(roots)
	for _, v := range roots {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
}

func sortNodesByPos(nodes []*FuncNode) {
	// Insertion sort keeps this dependency-free and the node count is
	// module-sized (hundreds), not corpus-sized.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodeLess(nodes[j], nodes[j-1]); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

func nodeLess(a, b *FuncNode) bool {
	pa := a.Pkg.Fset.Position(a.Decl.Pos())
	pb := b.Pkg.Fset.Position(b.Decl.Pos())
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}
