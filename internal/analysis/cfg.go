package analysis

import (
	"go/ast"
	"go/token"
)

// cfg.go builds a basic-block control-flow graph directly over the AST
// of one function body — deliberately without SSA or any dependency
// outside the standard library, like the rest of hidelint. The graph
// powers the flow-sensitive halves of store-ownership (a mutation above
// a `ctn = ctn.Clone()` rebind on *some* path) and pooled-escape
// (Release on one branch, use on another).
//
// Blocks hold "leaf" nodes only: plain statements plus the loose
// control expressions (if/for conditions, switch tags, case exprs,
// range operands). Composite statements are decomposed into edges.
// A function containing goto is not modeled (funcCFG.ok = false) and
// its checks fall back to the flow-insensitive behavior.

// cfgBlock is one basic block.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
	ok     bool
}

// loopCtx records where break/continue jump inside one enclosing
// for/range/switch/select statement.
type loopCtx struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select
}

type cfgBuilder struct {
	blocks       []*cfgBlock
	loops        []loopCtx
	fallthroughs []*cfgBlock // target body block per enclosing switch clause
	pendingLabel string
	hasGoto      bool
}

// buildCFG constructs the CFG for body. The result's ok field is false
// when the body uses goto, which this builder does not model.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{}
	entry := b.newBlock()
	b.stmtList(entry, body.List)
	return &funcCFG{entry: entry, blocks: b.blocks, ok: !b.hasGoto}
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.blocks = append(b.blocks, blk)
	return blk
}

func link(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// stmtList threads the statements through cur, returning the block
// where control continues (nil when every path returned or branched).
// Statements after a terminator are unreachable; they get a fresh
// disconnected block so construction keeps going, and the dataflow
// never visits them — dead code is outside the flow-sensitive checks.
func (b *cfgBuilder) stmtList(cur *cfgBlock, list []ast.Stmt) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt) *cfgBlock {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, st.List)

	case *ast.LabeledStmt:
		b.pendingLabel = st.Label.Name
		return b.stmt(cur, st.Stmt)

	case *ast.IfStmt:
		if st.Init != nil {
			cur.nodes = append(cur.nodes, st.Init)
		}
		cur.nodes = append(cur.nodes, st.Cond)
		join := b.newBlock()
		thenB := b.newBlock()
		link(cur, thenB)
		link(b.stmtList(thenB, st.Body.List), join)
		if st.Else != nil {
			elseB := b.newBlock()
			link(cur, elseB)
			link(b.stmt(elseB, st.Else), join)
		} else {
			link(cur, join)
		}
		return join

	case *ast.ForStmt:
		if st.Init != nil {
			cur.nodes = append(cur.nodes, st.Init)
		}
		head := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		link(cur, head)
		if st.Cond != nil {
			head.nodes = append(head.nodes, st.Cond)
			link(head, after)
		}
		body := b.newBlock()
		link(head, body)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: post})
		link(b.stmtList(body, st.Body.List), post)
		b.loops = b.loops[:len(b.loops)-1]
		if st.Post != nil {
			post.nodes = append(post.nodes, st.Post)
		}
		link(post, head)
		return after

	case *ast.RangeStmt:
		// The range operand is evaluated once; the per-iteration key/value
		// binding lives in the head block as the RangeStmt node itself —
		// transfer functions must visit only Key/Value/X of a RangeStmt
		// (see cfgInspect), never its body, which has its own blocks.
		head := b.newBlock()
		after := b.newBlock()
		link(cur, head)
		head.nodes = append(head.nodes, st)
		link(head, after)
		body := b.newBlock()
		link(head, body)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: head})
		link(b.stmtList(body, st.Body.List), head)
		b.loops = b.loops[:len(b.loops)-1]
		return after

	case *ast.SwitchStmt:
		if st.Init != nil {
			cur.nodes = append(cur.nodes, st.Init)
		}
		if st.Tag != nil {
			cur.nodes = append(cur.nodes, st.Tag)
		}
		return b.switchBody(cur, label, st.Body, false)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur.nodes = append(cur.nodes, st.Init)
		}
		cur.nodes = append(cur.nodes, st.Assign)
		return b.switchBody(cur, label, st.Body, false)

	case *ast.SelectStmt:
		return b.switchBody(cur, label, st.Body, true)

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if t := b.findLoop(st.Label, false); t != nil {
				link(cur, t.breakTo)
			}
			return nil
		case token.CONTINUE:
			if t := b.findLoop(st.Label, true); t != nil {
				link(cur, t.continueTo)
			}
			return nil
		case token.FALLTHROUGH:
			if n := len(b.fallthroughs); n > 0 && b.fallthroughs[n-1] != nil {
				link(cur, b.fallthroughs[n-1])
			}
			return nil
		default: // goto
			b.hasGoto = true
			return nil
		}

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, st)
		return nil

	default:
		// Leaf statements: assignments, expression statements, sends,
		// inc/dec, declarations, defer, go, empty.
		if _, empty := s.(*ast.EmptyStmt); !empty {
			cur.nodes = append(cur.nodes, s)
		}
		return cur
	}
}

// switchBody lays out the clauses of a switch, type switch, or select.
// Every clause is entered from cur (tag dispatch is not modeled — all
// clauses are possible), bodies merge into one join block, and for
// switches each clause's fallthrough target is the next clause's body.
func (b *cfgBuilder) switchBody(cur *cfgBlock, label string, body *ast.BlockStmt, isSelect bool) *cfgBlock {
	after := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})

	// Pre-create clause body blocks so fallthrough can link forward.
	type clause struct {
		entry *cfgBlock
		stmts []ast.Stmt
	}
	var clauses []clause
	hasDefault := false
	for _, cs := range body.List {
		blk := b.newBlock()
		link(cur, blk)
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				blk.nodes = append(blk.nodes, e)
			}
			clauses = append(clauses, clause{entry: blk, stmts: c.Body})
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				blk.nodes = append(blk.nodes, c.Comm)
			}
			clauses = append(clauses, clause{entry: blk, stmts: c.Body})
		}
	}
	if !hasDefault && !isSelect {
		link(cur, after)
	}
	if isSelect && !hasDefault && len(clauses) == 0 {
		// `select {}` blocks forever; after stays unreachable.
		_ = after
	}
	for i, c := range clauses {
		var ft *cfgBlock
		if !isSelect && i+1 < len(clauses) {
			ft = clauses[i+1].entry
		}
		b.fallthroughs = append(b.fallthroughs, ft)
		link(b.stmtList(c.entry, c.stmts), after)
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
	}
	b.loops = b.loops[:len(b.loops)-1]
	return after
}

// findLoop resolves a break/continue target. Unlabeled continue wants
// the innermost loop (switch/select contexts have no continueTo);
// unlabeled break takes the innermost context of any kind.
func (b *cfgBuilder) findLoop(label *ast.Ident, needContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if needContinue && lc.continueTo == nil {
			continue
		}
		if label == nil || lc.label == label.Name {
			return lc
		}
	}
	return nil
}

// cfgInspect walks a block node the way transfer functions need: a
// RangeStmt visits only its Key, Value, and X (the body has its own
// blocks), everything else is a full ast.Inspect.
func cfgInspect(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if r.Key != nil {
			ast.Inspect(r.Key, fn)
		}
		if r.Value != nil {
			ast.Inspect(r.Value, fn)
		}
		ast.Inspect(r.X, fn)
		return
	}
	ast.Inspect(n, fn)
}

// forwardDataflow runs a forward may-analysis to fixpoint. States are
// per-variable bitmasks; join is bitwise OR. transfer mutates the state
// map in place for one block node. After the fixpoint, report is called
// once per block with the block's stable in-state so checks can emit
// diagnostics from a deterministic single pass.
type flowState map[interface{}]uint8

func (s flowState) clone() flowState {
	out := make(flowState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s flowState) joinInto(dst flowState) bool {
	changed := false
	for k, v := range s {
		if old := dst[k]; old|v != old {
			dst[k] = old | v
			changed = true
		}
	}
	return changed
}

func (c *funcCFG) forwardDataflow(
	transfer func(state flowState, n ast.Node),
	report func(state flowState, n ast.Node),
) {
	in := make(map[*cfgBlock]flowState)
	in[c.entry] = flowState{}
	work := []*cfgBlock{c.entry}
	queued := map[*cfgBlock]bool{c.entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		state := in[blk].clone()
		for _, n := range blk.nodes {
			transfer(state, n)
		}
		for _, succ := range blk.succs {
			dst, ok := in[succ]
			if !ok {
				dst = flowState{}
				in[succ] = dst
			}
			if state.joinInto(dst) && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	// Deterministic reporting pass over reachable blocks in creation
	// order, replaying the transfer so intra-block ordering is exact.
	for _, blk := range c.blocks {
		st, reachable := in[blk]
		if !reachable {
			continue
		}
		state := st.clone()
		for _, n := range blk.nodes {
			report(state, n)
			transfer(state, n)
		}
	}
}
