package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"testing"
)

// parseBody parses src as a file and returns the body of its first
// function declaration.
func parseBody(t *testing.T, src string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fset, fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

func TestBuildCFGGotoFallsBack(t *testing.T) {
	_, body := parseBody(t, `package p
func f() {
	x := 0
top:
	x++
	if x < 3 {
		goto top
	}
}`)
	if g := buildCFG(body); g.ok {
		t.Fatal("buildCFG modeled a goto; checks would run on a wrong graph instead of falling back")
	}
}

// TestBuildCFGShapes builds the graph for each control shape and
// checks the structural invariants the dataflow relies on: ok is true,
// every successor edge points into the block list, and the loops
// produce a back edge (some reachable block has a successor created
// before it).
func TestBuildCFGShapes(t *testing.T) {
	shapes := map[string]string{
		"if-else": `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`,
		"for-break-continue": `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 5 {
			break
		}
		s += i
	}
	return s
}`,
		"range": `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`,
		"switch-fallthrough": `package p
func f(n int) int {
	switch n {
	case 0:
		n++
		fallthrough
	case 1:
		n += 2
	default:
		n = 9
	}
	return n
}`,
		"type-switch": `package p
func f(v interface{}) int {
	switch v.(type) {
	case int:
		return 1
	case string:
		return 2
	}
	return 0
}`,
		"select": `package p
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case y := <-b:
		return y
	}
}`,
		"labeled-break": `package p
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i*j > 10 {
				break outer
			}
			s++
		}
	}
	return s
}`,
	}
	for name, src := range shapes {
		t.Run(name, func(t *testing.T) {
			_, body := parseBody(t, src)
			g := buildCFG(body)
			if !g.ok {
				t.Fatal("buildCFG refused a goto-free body")
			}
			index := make(map[*cfgBlock]int, len(g.blocks))
			for i, blk := range g.blocks {
				index[blk] = i
			}
			backEdge := false
			for i, blk := range g.blocks {
				for _, s := range blk.succs {
					j, known := index[s]
					if !known {
						t.Fatalf("block %d has a successor outside the block list", i)
					}
					if j <= i {
						backEdge = true
					}
				}
			}
			if wantLoop := name != "if-else" && name != "type-switch" && name != "select"; wantLoop && !backEdge {
				t.Error("loop produced no backward edge; the fixpoint would never revisit the body")
			}
		})
	}
}

// TestForwardDataflowJoins runs a miniature constant-source analysis
// over a body with a branch and a loop, recording the state of x at
// each use(x) site. The branch must OR both definitions together and
// the loop back-edge must carry the in-loop definition back to a use
// that sits ABOVE it in source order.
func TestForwardDataflowJoins(t *testing.T) {
	fset, body := parseBody(t, `package p
func f(cond bool) {
	x := 0
	use(x)
	if cond {
		x = 1
	}
	use(x)
	for i := 0; i < 2; i++ {
		use(x)
		x = 2
	}
	use(x)
}`)
	// Each literal assigned to x gets its own bit.
	bits := map[string]uint8{"0": 1, "1": 2, "2": 4}
	transfer := func(state flowState, n ast.Node) {
		cfgInspect(n, func(nn ast.Node) bool {
			assign, ok := nn.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				return true
			}
			id, ok := assign.Lhs[0].(*ast.Ident)
			if !ok || id.Name != "x" {
				return true
			}
			if lit, ok := assign.Rhs[0].(*ast.BasicLit); ok {
				state["x"] = bits[lit.Value] // a rebind replaces, not ORs
			}
			return true
		})
	}
	type obs struct {
		line  int
		state uint8
	}
	var seen []obs
	report := func(state flowState, n ast.Node) {
		cfgInspect(n, func(nn ast.Node) bool {
			call, ok := nn.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" {
				seen = append(seen, obs{line: fset.Position(call.Pos()).Line, state: state["x"]})
			}
			return true
		})
	}
	buildCFG(body).forwardDataflow(transfer, report)
	sort.Slice(seen, func(i, j int) bool { return seen[i].line < seen[j].line })
	want := []uint8{
		1,         // after x := 0
		1 | 2,     // branch merge
		1 | 2 | 4, // loop body: back edge carries x = 2 above itself
		1 | 2 | 4, // after the loop
	}
	if len(seen) != len(want) {
		t.Fatalf("observed %d use sites, want %d", len(seen), len(want))
	}
	for i, w := range want {
		if seen[i].state != w {
			t.Errorf("use at line %d: state %03b, want %03b", seen[i].line, seen[i].state, w)
		}
	}
}
