package analysis

import (
	"go/ast"
	"go/types"
)

func init() {
	register(Check{
		Name: "discarded-error",
		Doc: "calls whose last result is an error must assign and handle it; " +
			"bare call statements, `_ =` discards, and go/defer of fallible calls are flagged. " +
			"Known-infallible writers (strings.Builder, bytes.Buffer, hash.Hash) are allowed.",
		Run: runDiscardedError,
	})
}

// infallible lists methods documented to never return a non-nil error;
// discarding their error result is noise, not risk.
var infallible = map[string]bool{
	"(*strings.Builder).Write":        true,
	"(*strings.Builder).WriteString":  true,
	"(*strings.Builder).WriteByte":    true,
	"(*strings.Builder).WriteRune":    true,
	"(*bytes.Buffer).Write":           true,
	"(*bytes.Buffer).WriteString":     true,
	"(*bytes.Buffer).WriteByte":       true,
	"(*bytes.Buffer).WriteRune":       true,
	"(hash.Hash).Write":               true, // hash.Hash: "It never returns an error."
	"(*io.PipeReader).Close":          true, // "Close ... always returns nil."
	"(*io.PipeReader).CloseWithError": true,
	"(*io.PipeWriter).Close":          true,
	"(*io.PipeWriter).CloseWithError": true,
	"(*math/rand.Rand).Read":          true, // "It always returns len(p) and a nil error."
	"math/rand.Read":                  true,
}

// infallibleFprintTargets are writer types fmt.Fprint* cannot fail on.
var infallibleFprintTargets = map[string]bool{
	"*strings.Builder": true,
	"*bytes.Buffer":    true,
}

// consolePrint reports fmt.Print* and fmt.Fprint* aimed at the
// process's own stdout/stderr: a failed terminal write is not
// actionable, and demanding handlers for every progress line would
// drown the real findings.
func consolePrint(info *types.Info, f *types.Func, call *ast.CallExpr) bool {
	if f.Pkg() == nil || f.Pkg().Path() != "fmt" {
		return false
	}
	switch f.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
			if obj, ok := info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil &&
				obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
				return true
			}
		}
	}
	return false
}

func runDiscardedError(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, "discarded")
				}
			case *ast.GoStmt:
				checkDiscardedCall(pass, stmt.Call, "discarded by go statement")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, stmt.Call, "discarded by defer; handle it in a deferred closure")
			case *ast.AssignStmt:
				checkBlankErrorAssign(pass, stmt)
			}
			return true
		})
	}
}

// checkDiscardedCall reports a statement-position call whose trailing
// error result nobody receives.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr, how string) {
	if lastErrorIndex(pass.Info, call) < 0 {
		return
	}
	if isInfallibleCall(pass.Info, call) {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s %s", calleeName(pass.Info, call), how)
}

// checkBlankErrorAssign reports error results explicitly dropped into
// the blank identifier.
func checkBlankErrorAssign(pass *Pass, stmt *ast.AssignStmt) {
	report := func(call *ast.CallExpr, pos ast.Expr) {
		if isInfallibleCall(pass.Info, call) {
			return
		}
		pass.Reportf(pos.Pos(), "error result of %s discarded into _", calleeName(pass.Info, call))
	}
	// Tuple form: a, _ := f()
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		errIdx := lastErrorIndex(pass.Info, call)
		if errIdx < 0 || errIdx >= len(stmt.Lhs) {
			return
		}
		if isBlank(stmt.Lhs[errIdx]) {
			report(call, stmt.Lhs[errIdx])
		}
		return
	}
	// Parallel form: _ = f(), possibly mixed with other pairs.
	for i, rhs := range stmt.Rhs {
		if i >= len(stmt.Lhs) || !isBlank(stmt.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		res := callResults(pass.Info, call)
		if res != nil && res.Len() == 1 && isErrorType(res.At(0).Type()) {
			report(call, stmt.Lhs[i])
		}
	}
}

func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}

func isInfallibleCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	if infallible[f.FullName()] {
		return true
	}
	if consolePrint(info, f, call) {
		return true
	}
	// fmt.Fprint* into an in-memory writer cannot fail.
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" && len(call.Args) > 0 {
		switch f.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			if tv, ok := info.Types[call.Args[0]]; ok && tv.Type != nil {
				return infallibleFprintTargets[tv.Type.String()]
			}
		}
	}
	return false
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if f := calleeFunc(info, call); f != nil {
		return f.FullName()
	}
	return "call"
}
