package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, function-typed variables, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin
// (panic, print, println, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// callResults returns the result tuple of a call, or nil.
func callResults(info *types.Info, call *ast.CallExpr) *types.Tuple {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t
	default:
		if tv.Type == nil || tv.IsVoid() {
			return nil
		}
		return types.NewTuple(types.NewVar(call.Pos(), nil, "", tv.Type))
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}

// lastErrorIndex returns the index of the trailing error result of a
// call, or -1 if the call's last result is not an error.
func lastErrorIndex(info *types.Info, call *ast.CallExpr) int {
	res := callResults(info, call)
	if res == nil || res.Len() == 0 {
		return -1
	}
	if isErrorType(res.At(res.Len() - 1).Type()) {
		return res.Len() - 1
	}
	return -1
}

// containerStoreInterface finds the container.Store interface reachable
// from pkg (pkg itself or any transitive import whose path ends in
// internal/container). Returns nil when the analyzed package cannot
// reference a Store, in which case store-typed checks are no-ops.
func containerStoreInterface(pkg *types.Package) *types.Interface {
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if PathHasSuffix(p.Path(), []string{"internal/container"}) {
			if obj := p.Scope().Lookup("Store"); obj != nil {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
		}
		for _, q := range p.Imports() {
			if r := find(q); r != nil {
				return r
			}
		}
		return nil
	}
	return find(pkg)
}

// implementsStore reports whether t (or *t) satisfies the Store
// interface.
func implementsStore(t types.Type, store *types.Interface) bool {
	if store == nil || t == nil {
		return false
	}
	if types.Implements(t, store) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), store)
	}
	return false
}

// isContainerPtr reports whether t is *container.Container for the
// project's container package.
func isContainerPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Container" && obj.Pkg() != nil &&
		PathHasSuffix(obj.Pkg().Path(), []string{"internal/container"})
}

// rootIdent unwraps selectors, indexes, derefs, and parens down to the
// base identifier of an lvalue-ish expression (x, x.f, x[i], *x, ...).
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// identObject resolves an expression to the object of its root
// identifier, via Defs or Uses.
func identObject(info *types.Info, expr ast.Expr) types.Object {
	id := rootIdent(expr)
	if id == nil {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// funcDecls yields every function declaration (with a body) in the
// pass's files.
func funcDecls(files []*ast.File, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
