package analysis

import (
	"go/ast"
	"go/types"
)

func init() {
	register(Check{
		Name: "ignored-ctx",
		Doc: "context plumbing in the core I/O packages must be real: a ctx " +
			"parameter is first, named, and referenced; library code never mints " +
			"context.Background/TODO; exported functions that perform I/O accept a " +
			"context (Store implementations are the documented ctx-free seam — " +
			"cancellation enters via restorecache.Fetcher).",
		Run: runIgnoredCtx,
	})
}

// storeMethodNames is the container.Store method set (plus the
// Quarantiner extension): implementations of the ctx-free Store seam
// are exempt from the ctx-on-I/O rule.
var storeMethodNames = map[string]bool{
	"Put": true, "Get": true, "Delete": true, "Has": true,
	"IDs": true, "Len": true, "Stats": true, "ResetStats": true,
	"Quarantine": true,
}

// osIOFuncs are package-os entry points that hit the filesystem.
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "Stat": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
}

// ioIOFuncs are package-io helpers that drive reads/writes.
var ioIOFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true,
	"ReadAll": true, "ReadFull": true, "WriteString": true,
}

// netIOFuncs are package-net entry points that open or accept
// connections — network I/O with no deadline unless a ctx carries one.
var netIOFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialUDP": true, "DialTCP": true,
	"Listen": true, "ListenPacket": true, "ListenTCP": true, "ListenUDP": true,
}

func runIgnoredCtx(pass *Pass) {
	inCtxPkg := PathHasSuffix(pass.Pkg.Path(), pass.Config.CtxPackages)
	store := containerStoreInterface(pass.Pkg)

	funcDecls(pass.Files, func(_ *ast.File, decl *ast.FuncDecl) {
		checkCtxParams(pass, decl, inCtxPkg)
		if inCtxPkg {
			checkIOWithoutCtx(pass, decl, store)
		}
	})

	if !inCtxPkg {
		return
	}
	// Library layers receive their context; minting one severs
	// cancellation from the caller — exactly the PR 1 restore-path bug.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.Info, call)
			if f != nil && f.Pkg() != nil && f.Pkg().Path() == "context" &&
				(f.Name() == "Background" || f.Name() == "TODO") {
				pass.Reportf(call.Pos(), "context.%s in library code severs caller cancellation; accept a ctx instead", f.Name())
			}
			return true
		})
	}
}

// checkCtxParams enforces position and use of declared ctx parameters.
func checkCtxParams(pass *Pass, decl *ast.FuncDecl, inCtxPkg bool) {
	var ctxIdents []*ast.Ident
	paramIndex := 0
	for _, field := range decl.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			names = []*ast.Ident{nil} // unnamed parameter
		}
		for _, name := range names {
			tv, ok := pass.Info.Types[field.Type]
			if ok && isContextType(tv.Type) {
				if paramIndex != 0 {
					pos := field.Type.Pos()
					if name != nil {
						pos = name.Pos()
					}
					pass.Reportf(pos, "context.Context must be the first parameter of %s", decl.Name.Name)
				}
				if name != nil {
					ctxIdents = append(ctxIdents, name)
				}
			}
			paramIndex++
		}
	}
	for _, id := range ctxIdents {
		if id.Name == "_" {
			if inCtxPkg && decl.Name.IsExported() {
				pass.Reportf(id.Pos(), "exported %s discards its context parameter", decl.Name.Name)
			}
			continue
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			continue
		}
		if !objUsed(pass.Info, decl.Body, obj) {
			pass.Reportf(id.Pos(), "context parameter %s is never used in %s; cancellation is dead here", id.Name, decl.Name.Name)
		}
	}
}

// objUsed reports whether obj is referenced anywhere under body.
func objUsed(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}

// checkIOWithoutCtx flags exported functions in the core packages that
// hit the filesystem without accepting a context.
func checkIOWithoutCtx(pass *Pass, decl *ast.FuncDecl, store *types.Interface) {
	if !decl.Name.IsExported() || hasCtxParam(pass.Info, decl) {
		return
	}
	if isStoreSeamMethod(pass.Info, decl, store) {
		return
	}
	var ioPos ast.Node
	var ioName string
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if ioPos != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := directIOCall(pass.Info, call); ok {
			ioPos, ioName = call, name
			return false
		}
		return true
	})
	if ioPos != nil {
		pass.Reportf(decl.Name.Pos(), "exported %s performs I/O (%s) without accepting a context.Context", decl.Name.Name, ioName)
		return
	}
	// Interprocedural half: the body calls no os./io./net. entry point
	// itself, but a summary says one is reachable through ctx-less
	// module callees — the PR 1 restore-path bug three frames down.
	if pass.Prog == nil {
		return
	}
	fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	if s := pass.Prog.Summaries[fn]; s != nil && s.reachesIO() {
		pass.Reportf(decl.Name.Pos(), "exported %s transitively performs I/O (%s) without accepting a context.Context", decl.Name.Name, pass.Prog.ioChain(fn))
	}
}

func hasCtxParam(info *types.Info, decl *ast.FuncDecl) bool {
	for _, field := range decl.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isStoreSeamMethod reports whether decl implements part of the
// container.Store interface: the one deliberately ctx-free layer.
func isStoreSeamMethod(info *types.Info, decl *ast.FuncDecl, store *types.Interface) bool {
	if store == nil || decl.Recv == nil || len(decl.Recv.List) == 0 {
		return false
	}
	if !storeMethodNames[decl.Name.Name] {
		return false
	}
	tv, ok := info.Types[decl.Recv.List[0].Type]
	if !ok {
		return false
	}
	return implementsStore(tv.Type, store)
}

// directIOCall reports whether call is a known filesystem/stream I/O
// entry point, returning a printable name.
func directIOCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", false
	}
	if pkg := f.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "os":
			if osIOFuncs[f.Name()] {
				return "os." + f.Name(), true
			}
		case "io":
			if ioIOFuncs[f.Name()] {
				return "io." + f.Name(), true
			}
		case "net":
			if netIOFuncs[f.Name()] {
				return "net." + f.Name(), true
			}
		}
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sig.Recv().Type().String() == "*os.File" {
			return "(*os.File)." + f.Name(), true
		}
	}
	return "", false
}
