package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for checks.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages with a shared FileSet and a
// shared source importer, so type identities agree across packages
// (the store-ownership and accounting checks compare against the
// container.Store interface loaded through imports, and the
// interprocedural Program compares receiver types across packages).
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
	// loaded caches every package this Loader has type-checked, keyed by
	// import path, and overrides the source importer for them. Each
	// module package must be checked exactly once — a second copy from
	// go/build would give structurally identical but non-identical types
	// and break cross-package Implements checks. It also serves the
	// golden corpora: the go tool refuses to resolve import paths under
	// testdata/, so a corpus importing its sibling helper package works
	// by loading the helper through LoadDir first.
	loaded map[string]*Package
	// modPath/modRoot, set by LoadModule, let Import resolve
	// module-internal paths by recursively LoadDir-ing them instead of
	// consulting go/build, keeping one copy per package regardless of
	// load order.
	modPath string
	modRoot string
}

// NewLoader returns a Loader backed by the stdlib source importer,
// which resolves external import paths through go/build.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		imp:    importer.ForCompiler(fset, "source", nil),
		loaded: make(map[string]*Package),
	}
}

// Import implements types.Importer: already-loaded packages first, then
// module-internal paths via a recursive LoadDir, then the source
// importer for everything external.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p.Types, nil
	}
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
		if ok, err := hasGoFiles(dir); err == nil && ok {
			p, err := l.LoadDir(dir, path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	return l.imp.Import(path)
}

// LoadModule walks the module rooted at root (its go.mod names the
// module path), loading every non-test package. testdata, vendor, and
// dot/underscore directories are skipped, as all Go tooling does.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l.modPath = modPath
	l.modRoot = root
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walk %s: %w", root, err)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses the non-test Go files in dir and type-checks them as
// the package with the given import path. A path this Loader has
// already checked returns the cached package.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.loaded[importPath]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: read %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.loaded[importPath] = p
	return p, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
