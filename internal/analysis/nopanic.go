package analysis

import (
	"go/ast"
)

func init() {
	register(Check{
		Name: "no-panic",
		Doc: "library packages surface failures as errors: no panic, builtin " +
			"print/println, fmt.Print*, log.Fatal*/log.Panic*, or os.Exit outside " +
			"package main (cmd/, examples/) and tests.",
		Run: runNoPanic,
	})
}

func runNoPanic(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return // binaries own their process and their stdout
	}
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if InDirElement(filename, pass.Config.LibraryExemptDirs) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isBuiltin(pass.Info, call, "panic"):
				pass.Reportf(call.Pos(), "panic in library code; return an error")
			case isBuiltin(pass.Info, call, "print"), isBuiltin(pass.Info, call, "println"):
				pass.Reportf(call.Pos(), "builtin print/println in library code")
			default:
				f := calleeFunc(pass.Info, call)
				if f == nil || f.Pkg() == nil {
					return true
				}
				switch f.Pkg().Path() {
				case "fmt":
					switch f.Name() {
					case "Print", "Printf", "Println":
						pass.Reportf(call.Pos(), "fmt.%s writes to stdout from library code; return data or take an io.Writer", f.Name())
					}
				case "log":
					switch f.Name() {
					case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
						pass.Reportf(call.Pos(), "log.%s kills the process from library code; return an error", f.Name())
					}
				case "os":
					if f.Name() == "Exit" {
						pass.Reportf(call.Pos(), "os.Exit in library code; return an error and let main decide")
					}
				}
			}
			return true
		})
	}
}
