package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	register(Check{
		Name: "pooled-escape",
		Doc: "bufpool ownership: a buffer obtained from bufpool.Pool.Get may not " +
			"escape into a field, map, slice, channel, or composite literal (the " +
			"pool will hand the same memory to someone else after Release), and " +
			"may not be used after it was Released. Returning a pooled buffer is " +
			"an ownership transfer and is allowed. With -interprocedural the " +
			"escape rule also follows the buffer into module callees whose " +
			"summary retains their parameter, a callee that Releases its " +
			"parameter counts as the Release, and the use-after-release rule is " +
			"CFG-based: releasing on one branch and using after the merge is " +
			"caught.",
		Run: runPooledEscape,
	})
}

func runPooledEscape(pass *Pass) {
	if PathHasSuffix(pass.Pkg.Path(), []string{"internal/bufpool"}) {
		return // the pool's own free lists legitimately retain its buffers
	}
	funcDecls(pass.Files, func(_ *ast.File, decl *ast.FuncDecl) {
		checkPooledEscapes(pass, decl)
		if pass.Prog != nil {
			checkPooledCallSites(pass, decl)
			if graph := buildCFG(decl.Body); graph.ok {
				checkUseAfterReleaseFlow(pass, decl, graph)
				// The path matcher still covers dotted selector chains
				// (item.data), which the object-based dataflow cannot name.
				checkUseAfterRelease(pass, decl, true)
				return
			}
		}
		checkUseAfterRelease(pass, decl, false)
	})
}

// pooledObjects collects the objects bound to a bufpool.Pool.Get result
// anywhere in decl.
func pooledObjects(pass *Pass, decl *ast.FuncDecl) map[types.Object]bool {
	pooled := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBufpoolMethod(pass.Info, call, "Get") {
			return true
		}
		if id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				pooled[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				pooled[obj] = true
			}
		}
		return true
	})
	return pooled
}

// isBufpoolMethod reports whether the call invokes the named method on
// a bufpool.Pool receiver (value or pointer).
func isBufpoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Pool" && obj.Pkg() != nil &&
		PathHasSuffix(obj.Pkg().Path(), []string{"internal/bufpool"})
}

// checkPooledEscapes flags pooled buffers (results of Pool.Get in this
// function) that land somewhere outliving the hot-loop iteration: a
// field, map or slice element, a channel, a composite literal, or an
// append. A plain local rebind stays legal — locals die with the frame.
func checkPooledEscapes(pass *Pass, decl *ast.FuncDecl) {
	pooled := pooledObjects(pass, decl)
	if len(pooled) == 0 {
		return
	}
	isPooled := func(expr ast.Expr) bool {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.Uses[id]
		return obj != nil && pooled[obj]
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				if i >= len(node.Lhs) {
					break
				}
				escaped := isPooled(rhs)
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass.Info, call, "append") {
					for _, arg := range call.Args[1:] {
						if isPooled(arg) {
							escaped = true
						}
					}
				}
				if !escaped {
					continue
				}
				if _, plainLocal := ast.Unparen(node.Lhs[i]).(*ast.Ident); plainLocal {
					continue
				}
				pass.Reportf(rhs.Pos(), "pooled buffer escapes into a field, map, or slice; copy it or transfer ownership explicitly")
			}
		case *ast.SendStmt:
			if isPooled(node.Value) {
				pass.Reportf(node.Value.Pos(), "pooled buffer sent on a channel; the receiver outlives this frame's ownership")
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isPooled(v) {
					pass.Reportf(v.Pos(), "pooled buffer placed in a composite literal; copy it or transfer ownership explicitly")
				}
			}
		}
		return true
	})
}

// exprPath flattens an ident or ident.sel… chain into a dotted path
// ("buf", "item.data"); anything else yields "".
func exprPath(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// checkPooledCallSites applies the callee summaries at each call:
// handing a pooled buffer to a module function that retains its
// parameter is the same escape as storing it in a field here, just one
// frame removed.
func checkPooledCallSites(pass *Pass, decl *ast.FuncDecl) {
	pooled := pooledObjects(pass, decl)
	if len(pooled) == 0 {
		return
	}
	info := pass.Info
	prog := pass.Prog
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil {
			return true
		}
		callee, known := prog.Graph.Nodes[f]
		if !known {
			return true
		}
		cs := prog.Summaries[callee.Func]
		for i, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil || !pooled[obj] {
				continue
			}
			ci := calleeParamIndex(f, i)
			if ci >= 0 && ci < len(cs.retainsParam) && cs.retainsParam[ci] {
				pass.Reportf(arg.Pos(), "pooled buffer passed to %s, which retains it beyond the call; copy it or transfer ownership explicitly", f.Name())
			}
		}
		return true
	})
}

// Pooled-buffer dataflow lattice bits for the CFG-based
// use-after-release check.
const (
	bufLive     uint8 = 1 << iota // owned by this frame
	bufReleased                   // handed back to the pool
)

// checkUseAfterReleaseFlow is the CFG-based use-after-release check:
// per-block dataflow over the pooled objects, where Release (directly
// or via a callee summarized as releasing its parameter) moves the
// object to the released state and a rebind revives it. Unlike the
// position matcher it follows branches and loop back-edges, so a
// release on one path with a use after the merge — or a use earlier in
// the loop body on the next iteration — is caught.
func checkUseAfterReleaseFlow(pass *Pass, decl *ast.FuncDecl, graph *funcCFG) {
	pooled := pooledObjects(pass, decl)
	if len(pooled) == 0 {
		return
	}
	info := pass.Info
	prog := pass.Prog

	// releasedArgs returns the pooled objects a call hands back to the
	// pool: the argument of Pool.Release, or any argument whose callee
	// parameter is summarized as released.
	releasedArgs := func(call *ast.CallExpr) []types.Object {
		var out []types.Object
		argObj := func(arg ast.Expr) types.Object {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				return nil
			}
			obj := info.Uses[id]
			if obj == nil || !pooled[obj] {
				return nil
			}
			return obj
		}
		if len(call.Args) == 1 && isBufpoolMethod(info, call, "Release") {
			if obj := argObj(call.Args[0]); obj != nil {
				out = append(out, obj)
			}
			return out
		}
		f := calleeFunc(info, call)
		if f == nil {
			return nil
		}
		callee, known := prog.Graph.Nodes[f]
		if !known {
			return nil
		}
		cs := prog.Summaries[callee.Func]
		for i, arg := range call.Args {
			obj := argObj(arg)
			if obj == nil {
				continue
			}
			ci := calleeParamIndex(f, i)
			if ci >= 0 && ci < len(cs.releasesParam) && cs.releasesParam[ci] {
				out = append(out, obj)
			}
		}
		return out
	}

	transfer := func(state flowState, n ast.Node) {
		cfgInspect(n, func(nn ast.Node) bool {
			switch node := nn.(type) {
			case *ast.CallExpr:
				for _, obj := range releasedArgs(node) {
					state[obj] = bufReleased
				}
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil && pooled[obj] {
						state[obj] = bufLive // fresh Get or other rebind
					}
				}
			}
			return true
		})
	}

	flagUses := func(state flowState, expr ast.Expr) {
		ast.Inspect(expr, func(nn ast.Node) bool {
			// A releasing call's own argument is the handoff, not a use
			// (matching the position matcher's exemption).
			if call, ok := nn.(*ast.CallExpr); ok && len(releasedArgs(call)) > 0 {
				return false
			}
			id, ok := nn.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || !pooled[obj] {
				return true
			}
			if st := state[obj]; st&bufReleased != 0 {
				suffix := ""
				if st&bufLive != 0 {
					suffix = " on some control-flow path"
				}
				pass.Reportf(id.Pos(), "%s used after Release%s; the pool may already have handed this memory to another Get", id.Name, suffix)
			}
			return true
		})
	}
	report := func(state flowState, n ast.Node) {
		cfgInspect(n, func(nn ast.Node) bool {
			if assign, ok := nn.(*ast.AssignStmt); ok {
				// A plain rebind is the legal way back to a live buffer;
				// only its RHS and non-plain LHS are uses.
				for _, lhs := range assign.Lhs {
					if _, plain := ast.Unparen(lhs).(*ast.Ident); !plain {
						flagUses(state, lhs)
					}
				}
				for _, rhs := range assign.Rhs {
					flagUses(state, rhs)
				}
				return false
			}
			if expr, ok := nn.(ast.Expr); ok {
				flagUses(state, expr)
				return false
			}
			return true
		})
	}
	graph.forwardDataflow(transfer, report)
}

// checkUseAfterRelease flags uses of an expression after it was passed
// to Pool.Release: Release returns the memory to the pool, so any later
// read or write races with the next Get. Matching is by dotted path and
// source position within one function — coarse (loops re-enter earlier
// positions legally), but exact for the straight-line hot paths this
// gate protects. Rebinding the path's root after the Release starts a
// fresh buffer and ends the taint. With dottedOnly (the CFG dataflow is
// also running and owns plain identifiers) only selector paths like
// item.data are matched.
func checkUseAfterRelease(pass *Pass, decl *ast.FuncDecl, dottedOnly bool) {
	type release struct {
		pos  token.Pos // end of the Release call
		call *ast.CallExpr
	}
	released := make(map[string]release)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 || !isBufpoolMethod(pass.Info, call, "Release") {
			return true
		}
		path := exprPath(call.Args[0])
		if path == "" || (dottedOnly && !strings.Contains(path, ".")) {
			return true
		}
		if prev, ok := released[path]; !ok || call.End() < prev.pos {
			released[path] = release{pos: call.End(), call: call}
		}
		return true
	})
	if len(released) == 0 {
		return
	}
	// A plain rebind of the path's root after the Release clears it.
	rebound := make(map[string]token.Pos)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			for path, rel := range released {
				if id.Name != rootOf(path) || assign.Pos() <= rel.pos {
					continue
				}
				if prev, ok := rebound[path]; !ok || assign.Pos() < prev {
					rebound[path] = assign.Pos()
				}
			}
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		path := exprPath(expr)
		rel, ok := released[path]
		if !ok || expr.Pos() <= rel.pos {
			return true
		}
		// Skip the Release call's own argument and anything cleared by a
		// later rebind.
		if expr.Pos() >= rel.call.Pos() && expr.End() <= rel.call.End() {
			return true
		}
		if rb, ok := rebound[path]; ok && expr.Pos() >= rb {
			return true // the rebinding itself and everything after it
		}
		pass.Reportf(expr.Pos(), "%s used after Release; the pool may already have handed this memory to another Get", path)
		return false // don't re-report the path's sub-expressions
	})
}

// rootOf returns the leading identifier of a dotted path.
func rootOf(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '.' {
			return path[:i]
		}
	}
	return path
}
