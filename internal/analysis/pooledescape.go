package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	register(Check{
		Name: "pooled-escape",
		Doc: "bufpool ownership: a buffer obtained from bufpool.Pool.Get may not " +
			"escape into a field, map, slice, channel, or composite literal (the " +
			"pool will hand the same memory to someone else after Release), and " +
			"may not be used after it was Released. Returning a pooled buffer is " +
			"an ownership transfer and is allowed.",
		Run: runPooledEscape,
	})
}

func runPooledEscape(pass *Pass) {
	if PathHasSuffix(pass.Pkg.Path(), []string{"internal/bufpool"}) {
		return // the pool's own free lists legitimately retain its buffers
	}
	funcDecls(pass.Files, func(_ *ast.File, decl *ast.FuncDecl) {
		checkPooledEscapes(pass, decl)
		checkUseAfterRelease(pass, decl)
	})
}

// isBufpoolMethod reports whether the call invokes the named method on
// a bufpool.Pool receiver (value or pointer).
func isBufpoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Pool" && obj.Pkg() != nil &&
		PathHasSuffix(obj.Pkg().Path(), []string{"internal/bufpool"})
}

// checkPooledEscapes flags pooled buffers (results of Pool.Get in this
// function) that land somewhere outliving the hot-loop iteration: a
// field, map or slice element, a channel, a composite literal, or an
// append. A plain local rebind stays legal — locals die with the frame.
func checkPooledEscapes(pass *Pass, decl *ast.FuncDecl) {
	pooled := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBufpoolMethod(pass.Info, call, "Get") {
			return true
		}
		if id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				pooled[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				pooled[obj] = true
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return
	}
	isPooled := func(expr ast.Expr) bool {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.Uses[id]
		return obj != nil && pooled[obj]
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				if i >= len(node.Lhs) {
					break
				}
				escaped := isPooled(rhs)
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass.Info, call, "append") {
					for _, arg := range call.Args[1:] {
						if isPooled(arg) {
							escaped = true
						}
					}
				}
				if !escaped {
					continue
				}
				if _, plainLocal := ast.Unparen(node.Lhs[i]).(*ast.Ident); plainLocal {
					continue
				}
				pass.Reportf(rhs.Pos(), "pooled buffer escapes into a field, map, or slice; copy it or transfer ownership explicitly")
			}
		case *ast.SendStmt:
			if isPooled(node.Value) {
				pass.Reportf(node.Value.Pos(), "pooled buffer sent on a channel; the receiver outlives this frame's ownership")
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isPooled(v) {
					pass.Reportf(v.Pos(), "pooled buffer placed in a composite literal; copy it or transfer ownership explicitly")
				}
			}
		}
		return true
	})
}

// exprPath flattens an ident or ident.sel… chain into a dotted path
// ("buf", "item.data"); anything else yields "".
func exprPath(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// checkUseAfterRelease flags uses of an expression after it was passed
// to Pool.Release: Release returns the memory to the pool, so any later
// read or write races with the next Get. Matching is by dotted path and
// source position within one function — coarse (loops re-enter earlier
// positions legally), but exact for the straight-line hot paths this
// gate protects. Rebinding the path's root after the Release starts a
// fresh buffer and ends the taint.
func checkUseAfterRelease(pass *Pass, decl *ast.FuncDecl) {
	type release struct {
		pos  token.Pos // end of the Release call
		call *ast.CallExpr
	}
	released := make(map[string]release)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 || !isBufpoolMethod(pass.Info, call, "Release") {
			return true
		}
		path := exprPath(call.Args[0])
		if path == "" {
			return true
		}
		if prev, ok := released[path]; !ok || call.End() < prev.pos {
			released[path] = release{pos: call.End(), call: call}
		}
		return true
	})
	if len(released) == 0 {
		return
	}
	// A plain rebind of the path's root after the Release clears it.
	rebound := make(map[string]token.Pos)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			for path, rel := range released {
				if id.Name != rootOf(path) || assign.Pos() <= rel.pos {
					continue
				}
				if prev, ok := rebound[path]; !ok || assign.Pos() < prev {
					rebound[path] = assign.Pos()
				}
			}
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		path := exprPath(expr)
		rel, ok := released[path]
		if !ok || expr.Pos() <= rel.pos {
			return true
		}
		// Skip the Release call's own argument and anything cleared by a
		// later rebind.
		if expr.Pos() >= rel.call.Pos() && expr.End() <= rel.call.End() {
			return true
		}
		if rb, ok := rebound[path]; ok && expr.Pos() >= rb {
			return true // the rebinding itself and everything after it
		}
		pass.Reportf(expr.Pos(), "%s used after Release; the pool may already have handed this memory to another Get", path)
		return false // don't re-report the path's sub-expressions
	})
}

// rootOf returns the leading identifier of a dotted path.
func rootOf(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '.' {
			return path[:i]
		}
	}
	return path
}
