package analysis

import (
	"go/ast"
	"go/types"
)

func init() {
	register(Check{
		Name: "store-ownership",
		Doc: "Store.Put must snapshot: a Put implementation may not retain the " +
			"caller's *Container directly (the PR 1 MemStore bug). Containers " +
			"returned by Store.Get / Fetcher.Get are shared snapshots: callers may " +
			"not mutate them (Add, Remove, SetID, SetCapacity, or field writes).",
		Run: runStoreOwnership,
	})
}

// containerMutators are the *Container methods that modify the image.
var containerMutators = map[string]bool{
	"Add": true, "Remove": true, "SetID": true, "SetCapacity": true,
}

func runStoreOwnership(pass *Pass) {
	store := containerStoreInterface(pass.Pkg)
	if store == nil {
		return
	}
	funcDecls(pass.Files, func(_ *ast.File, decl *ast.FuncDecl) {
		checkPutRetention(pass, decl, store)
		checkGetMutation(pass, decl)
	})
}

// checkPutRetention flags Put implementations that store the caller's
// container pointer instead of a snapshot.
func checkPutRetention(pass *Pass, decl *ast.FuncDecl, store *types.Interface) {
	if decl.Name.Name != "Put" || decl.Recv == nil || len(decl.Recv.List) == 0 {
		return
	}
	recvTV, ok := pass.Info.Types[decl.Recv.List[0].Type]
	if !ok || !implementsStore(recvTV.Type, store) {
		return
	}
	// The *Container parameters whose ownership stays with the caller.
	params := make(map[types.Object]bool)
	for _, field := range decl.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isContainerPtr(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	if len(params) == 0 {
		return
	}
	isParam := func(expr ast.Expr) bool {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.Uses[id]
		return obj != nil && params[obj]
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) {
				break
			}
			// Retention = the bare parameter lands in a field, map, or
			// slice of the receiver (x.f = c, x.m[k] = c, append targets).
			retained := isParam(rhs)
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass.Info, call, "append") {
				for _, arg := range call.Args[1:] {
					if isParam(arg) {
						retained = true
					}
				}
			}
			if !retained {
				continue
			}
			if _, plainLocal := ast.Unparen(assign.Lhs[i]).(*ast.Ident); plainLocal {
				continue // a local alias is fine until it is retained
			}
			pass.Reportf(rhs.Pos(), "Put retains the caller's *Container; snapshot it (Clone or marshal) before storing")
		}
		return true
	})
}

// checkGetMutation flags mutation of containers obtained from a
// Store.Get / Fetcher.Get: those images are shared with the store and
// with concurrent restores.
func checkGetMutation(pass *Pass, decl *ast.FuncDecl) {
	// Objects bound to the *Container result of a method named Get.
	shared := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Name() != "Get" {
			return true
		}
		sig, ok := f.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || sig.Results().Len() == 0 {
			return true
		}
		if !isContainerPtr(sig.Results().At(0).Type()) {
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				shared[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				shared[obj] = true
			}
		}
		return true
	})
	if len(shared) == 0 {
		return
	}
	// A variable rebound to anything but the Get call (typically
	// `ctn = ctn.Clone()`) no longer aliases the store's snapshot; drop
	// it rather than flow-track, at the cost of missing mutations that
	// precede the rebind.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok.String() != "=" {
			return true
		}
		isGetCall := func(expr ast.Expr) bool {
			call, ok := ast.Unparen(expr).(*ast.CallExpr)
			if !ok {
				return false
			}
			f := calleeFunc(pass.Info, call)
			return f != nil && f.Name() == "Get"
		}
		for i, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil || !shared[obj] {
				continue
			}
			if len(assign.Rhs) == 1 && isGetCall(assign.Rhs[0]) {
				continue // re-fetch keeps it shared
			}
			if i < len(assign.Rhs) && isGetCall(assign.Rhs[i]) {
				continue
			}
			delete(shared, obj)
		}
		return true
	})
	if len(shared) == 0 {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
					continue // rebinding the variable is not a mutation
				}
				if obj := identObject(pass.Info, lhs); obj != nil && shared[obj] {
					pass.Reportf(lhs.Pos(), "write through a container obtained from Get; Get results are shared read-only snapshots")
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
			if !ok || !containerMutators[sel.Sel.Name] {
				return true
			}
			f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := f.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isContainerPtr(sig.Recv().Type()) {
				return true
			}
			if obj := identObject(pass.Info, sel.X); obj != nil && shared[obj] {
				pass.Reportf(node.Pos(), "%s mutates a container obtained from Get; Clone it first (Get results are shared)", sel.Sel.Name)
			}
		}
		return true
	})
}
