package analysis

import (
	"go/ast"
	"go/types"
)

func init() {
	register(Check{
		Name: "store-ownership",
		Doc: "Store.Put must snapshot: a Put implementation may not retain the " +
			"caller's *Container directly (the PR 1 MemStore bug). Containers " +
			"returned by Store.Get / Fetcher.Get are shared snapshots: callers may " +
			"not mutate them (Add, Remove, SetID, SetCapacity, or field writes), " +
			"pass them to a callee that does, or — outside the custodian " +
			"packages — let them escape through a field, channel, or composite " +
			"literal. With -interprocedural the mutation rule is flow-sensitive: " +
			"a mutation above a `ctn = ctn.Clone()` rebind on some path is caught.",
		Run: runStoreOwnership,
	})
}

// containerMutators are the *Container methods that modify the image.
var containerMutators = map[string]bool{
	"Add": true, "Remove": true, "SetID": true, "SetCapacity": true,
}

func runStoreOwnership(pass *Pass) {
	store := containerStoreInterface(pass.Pkg)
	if store == nil {
		return
	}
	funcDecls(pass.Files, func(_ *ast.File, decl *ast.FuncDecl) {
		checkPutRetention(pass, decl, store)
		if pass.Prog != nil {
			checkGetMutationFlow(pass, decl)
		} else {
			checkGetMutation(pass, decl)
		}
	})
}

// checkPutRetention flags Put implementations that store the caller's
// container pointer instead of a snapshot.
func checkPutRetention(pass *Pass, decl *ast.FuncDecl, store *types.Interface) {
	if decl.Name.Name != "Put" || decl.Recv == nil || len(decl.Recv.List) == 0 {
		return
	}
	recvTV, ok := pass.Info.Types[decl.Recv.List[0].Type]
	if !ok || !implementsStore(recvTV.Type, store) {
		return
	}
	// The *Container parameters whose ownership stays with the caller.
	params := make(map[types.Object]bool)
	for _, field := range decl.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isContainerPtr(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	if len(params) == 0 {
		return
	}
	isParam := func(expr ast.Expr) bool {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.Uses[id]
		return obj != nil && params[obj]
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) {
				break
			}
			// Retention = the bare parameter lands in a field, map, or
			// slice of the receiver (x.f = c, x.m[k] = c, append targets).
			retained := isParam(rhs)
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass.Info, call, "append") {
				for _, arg := range call.Args[1:] {
					if isParam(arg) {
						retained = true
					}
				}
			}
			if !retained {
				continue
			}
			if _, plainLocal := ast.Unparen(assign.Lhs[i]).(*ast.Ident); plainLocal {
				continue // a local alias is fine until it is retained
			}
			pass.Reportf(rhs.Pos(), "Put retains the caller's *Container; snapshot it (Clone or marshal) before storing")
		}
		return true
	})
}

// checkGetMutation flags mutation of containers obtained from a
// Store.Get / Fetcher.Get: those images are shared with the store and
// with concurrent restores.
func checkGetMutation(pass *Pass, decl *ast.FuncDecl) {
	// Objects bound to the *Container result of a method named Get.
	shared := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Name() != "Get" {
			return true
		}
		sig, ok := f.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || sig.Results().Len() == 0 {
			return true
		}
		if !isContainerPtr(sig.Results().At(0).Type()) {
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				shared[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				shared[obj] = true
			}
		}
		return true
	})
	if len(shared) == 0 {
		return
	}
	// A variable rebound to anything but the Get call (typically
	// `ctn = ctn.Clone()`) no longer aliases the store's snapshot; drop
	// it rather than flow-track, at the cost of missing mutations that
	// precede the rebind.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok.String() != "=" {
			return true
		}
		isGetCall := func(expr ast.Expr) bool {
			call, ok := ast.Unparen(expr).(*ast.CallExpr)
			if !ok {
				return false
			}
			f := calleeFunc(pass.Info, call)
			return f != nil && f.Name() == "Get"
		}
		for i, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil || !shared[obj] {
				continue
			}
			if len(assign.Rhs) == 1 && isGetCall(assign.Rhs[0]) {
				continue // re-fetch keeps it shared
			}
			if i < len(assign.Rhs) && isGetCall(assign.Rhs[i]) {
				continue
			}
			delete(shared, obj)
		}
		return true
	})
	if len(shared) == 0 {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
					continue // rebinding the variable is not a mutation
				}
				if obj := identObject(pass.Info, lhs); obj != nil && shared[obj] {
					pass.Reportf(lhs.Pos(), "write through a container obtained from Get; Get results are shared read-only snapshots")
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
			if !ok || !containerMutators[sel.Sel.Name] {
				return true
			}
			f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := f.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isContainerPtr(sig.Recv().Type()) {
				return true
			}
			if obj := identObject(pass.Info, sel.X); obj != nil && shared[obj] {
				pass.Reportf(node.Pos(), "%s mutates a container obtained from Get; Clone it first (Get results are shared)", sel.Sel.Name)
			}
		}
		return true
	})
}

// Shared-container dataflow lattice bits: a variable may alias the
// store's shared snapshot, a private clone, or (after a merge) either.
const (
	ctnShared  uint8 = 1 << iota // aliases a Get result
	ctnPrivate                   // rebound to a clone or other value
)

// checkGetMutationFlow is the interprocedural, flow-sensitive version
// of checkGetMutation. Shared origins include module functions
// summarized as returning a Get result; sinks include callees
// summarized as mutating their *Container parameter, channel sends,
// and field stores (outside the custodian packages). The CFG makes the
// mutation rule order-aware: `ctn.Add(...)` above `ctn = ctn.Clone()`
// is caught even though an AST-order pass would see the rebind first.
// Bodies using goto fall back to the flow-insensitive check.
func checkGetMutationFlow(pass *Pass, decl *ast.FuncDecl) {
	graph := buildCFG(decl.Body)
	if !graph.ok {
		checkGetMutation(pass, decl)
		return
	}
	prog := pass.Prog
	info := pass.Info
	custodian := PathHasSuffix(pass.Pkg.Path(), pass.Config.OwnershipCustodianPackages)

	sharedOrigin := func(expr ast.Expr) bool {
		call, ok := ast.Unparen(expr).(*ast.CallExpr)
		return ok && prog.isSharedOriginCall(info, call)
	}
	// Does any shared origin exist at all? Skip the dataflow otherwise.
	any := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if any {
			return false
		}
		if assign, ok := n.(*ast.AssignStmt); ok && len(assign.Rhs) == 1 && sharedOrigin(assign.Rhs[0]) {
			any = true
		}
		return true
	})
	if !any {
		return
	}

	bindObj := func(id *ast.Ident) types.Object {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	transfer := func(state flowState, n ast.Node) {
		cfgInspect(n, func(nn ast.Node) bool {
			assign, ok := nn.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := bindObj(id)
				if obj == nil || !isContainerPtr(obj.Type()) {
					continue
				}
				shared := false
				if len(assign.Rhs) == 1 {
					shared = sharedOrigin(assign.Rhs[0])
				} else if i < len(assign.Rhs) {
					shared = sharedOrigin(assign.Rhs[i])
				}
				if shared {
					state[obj] = ctnShared
				} else {
					state[obj] = ctnPrivate
				}
			}
			return true
		})
	}

	sharedState := func(state flowState, expr ast.Expr) (uint8, bool) {
		obj := identObject(info, expr)
		if obj == nil {
			return 0, false
		}
		st := state[obj]
		return st, st&ctnShared != 0
	}
	somePath := func(st uint8) string {
		if st&ctnPrivate != 0 {
			return " on some control-flow path"
		}
		return ""
	}
	report := func(state flowState, n ast.Node) {
		cfgInspect(n, func(nn ast.Node) bool {
			switch node := nn.(type) {
			case *ast.AssignStmt:
				for i, lhs := range node.Lhs {
					if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
						// Rebinding is not a mutation, but a shared container on
						// the RHS landing in a field/map/slice is an escape.
						continue
					}
					if st, shared := sharedState(state, lhs); shared {
						pass.Reportf(lhs.Pos(), "write through a container obtained from Get%s; Get results are shared read-only snapshots", somePath(st))
					}
					_ = i
				}
				if !custodian {
					for i, rhs := range node.Rhs {
						if i >= len(node.Lhs) {
							break
						}
						if _, plain := ast.Unparen(node.Lhs[i]).(*ast.Ident); plain {
							continue
						}
						if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
							if st, shared := sharedState(state, id); shared {
								pass.Reportf(rhs.Pos(), "container obtained from Get escapes into a field, map, or slice%s; far-side mutation is invisible — Clone it first", somePath(st))
							}
						}
					}
				}
			case *ast.SendStmt:
				if custodian {
					return true
				}
				if id, ok := ast.Unparen(node.Value).(*ast.Ident); ok {
					if st, shared := sharedState(state, id); shared {
						pass.Reportf(node.Value.Pos(), "container obtained from Get sent on a channel%s; the far side shares the snapshot — Clone before sending", somePath(st))
					}
				}
			case *ast.CompositeLit:
				if custodian {
					return true
				}
				for _, elt := range node.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if id, ok := ast.Unparen(v).(*ast.Ident); ok {
						if st, shared := sharedState(state, id); shared {
							pass.Reportf(v.Pos(), "container obtained from Get placed in a composite literal%s; the copy shares the snapshot — Clone it first", somePath(st))
						}
					}
				}
			case *ast.CallExpr:
				f := calleeFunc(info, node)
				if f == nil {
					return true
				}
				// Direct mutator on a shared container.
				if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok && containerMutators[sel.Sel.Name] {
					if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil && isContainerPtr(sig.Recv().Type()) {
						if st, shared := sharedState(state, sel.X); shared {
							pass.Reportf(node.Pos(), "%s mutates a container obtained from Get%s; Clone it first (Get results are shared)", sel.Sel.Name, somePath(st))
						}
					}
				}
				// Shared container handed to a callee that mutates it.
				if callee, ok := prog.Graph.Nodes[f]; ok {
					cs := prog.Summaries[callee.Func]
					for i, arg := range node.Args {
						id, ok := ast.Unparen(arg).(*ast.Ident)
						if !ok {
							continue
						}
						st, shared := sharedState(state, id)
						if !shared {
							continue
						}
						ci := calleeParamIndex(f, i)
						if ci >= 0 && ci < len(cs.mutatesParam) && cs.mutatesParam[ci] {
							pass.Reportf(arg.Pos(), "container obtained from Get passed to %s, which mutates its parameter%s; Clone it first", f.Name(), somePath(st))
						}
					}
				}
			}
			return true
		})
	}
	graph.forwardDataflow(transfer, report)
}
