package analysis

import (
	"go/ast"
	"go/types"
)

// summary.go computes the per-function summaries the interprocedural
// checks consume: does the function (transitively) perform I/O, reach
// an uncounted raw container.Store.Get, return a shared *Container,
// mutate / retain / release particular parameters. Summaries are
// computed bottom-up over the call graph's SCCs, iterating each SCC to
// a fixpoint (every bit is monotone, so the iteration terminates).
//
// Conservative defaults, stated once here and documented in DESIGN.md:
// interface dispatch, function values, and calls out of the load set
// have no call edge — they are assumed to perform no I/O, reach no raw
// Get, and neither mutate nor retain nor release their arguments.
// Escapes the checks *can* see (fields, channels, composite literals,
// known-retaining callees) are flagged; what vanishes through an
// interface is the analysis' blind spot, not a proof of safety.

// Summary is the interprocedural fact sheet for one declared function.
type Summary struct {
	// directIO names the os./io./net. entry point called in this body
	// ("os.Open"), or "" when I/O is only reachable through callees.
	directIO string
	// ioVia is the module callee through which transitive I/O was first
	// discovered; nil when directIO != "" or no I/O is reachable.
	ioVia *types.Func

	// rawGetDirect: this body contains an unsuppressed raw Store.Get in
	// an accounting-exempt package outside any counting boundary.
	rawGetDirect bool
	// rawGetVia is the callee through which a raw Get is reachable.
	rawGetVia *types.Func

	// returnsShared: some return path yields a *Container aliasing a
	// Store.Get / Fetcher.Get result (a shared snapshot).
	returnsShared bool

	// Per-parameter facts, indexed by flat parameter position.
	mutatesParam  []bool // calls a *Container mutator / writes a field
	retainsParam  []bool // stores the param somewhere outliving the call
	releasesParam []bool // passes the param to bufpool Pool.Release

	// boundary marks the counting seam: a Store.Get implementation or a
	// restorecache Fetcher.Get implementation. Raw gets inside are the
	// counted read itself and taint nothing.
	boundary bool
}

func (s *Summary) reachesIO() bool     { return s.directIO != "" || s.ioVia != nil }
func (s *Summary) reachesRawGet() bool { return s.rawGetDirect || s.rawGetVia != nil }

// Program is the whole-module view handed to checks when
// Config.Interprocedural is on.
type Program struct {
	Graph     *CallGraph
	Summaries map[*types.Func]*Summary

	cfg     Config
	store   *types.Interface // container.Store, nil when unresolvable
	fetcher *types.Interface // restorecache.Fetcher, nil when unresolvable
	sup     *suppressions    // taint stops at audited (suppressed) raw gets
}

// buildProgram constructs the call graph and runs the bottom-up summary
// computation. sup may be nil (no suppressions collected).
func buildProgram(pkgs []*Package, cfg Config, sup *suppressions) *Program {
	p := &Program{
		Graph:     buildCallGraph(pkgs),
		Summaries: make(map[*types.Func]*Summary),
		cfg:       cfg,
		sup:       sup,
	}
	for _, pkg := range pkgs {
		if p.store == nil {
			p.store = containerStoreInterface(pkg.Types)
		}
		if p.fetcher == nil {
			p.fetcher = lookupInterface(pkg.Types, "internal/restorecache", "Fetcher")
		}
	}
	for _, node := range p.Graph.Nodes {
		p.Summaries[node.Func] = &Summary{boundary: p.isBoundary(node.Func)}
	}
	for _, scc := range p.Graph.SCCs {
		for changed := true; changed; {
			changed = false
			for _, node := range scc {
				if p.update(node) {
					changed = true
				}
			}
		}
	}
	return p
}

// isBoundary reports whether fn is a counting-seam Get: a method named
// Get whose receiver implements container.Store, or a restorecache
// Fetcher.Get implementation.
func (p *Program) isBoundary(fn *types.Func) bool {
	if fn.Name() != "Get" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if implementsStore(recv, p.store) {
		return true
	}
	if p.fetcher != nil && fn.Pkg() != nil &&
		PathHasSuffix(fn.Pkg().Path(), []string{"internal/restorecache"}) {
		if types.Implements(recv, p.fetcher) {
			return true
		}
		if _, isPtr := recv.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(recv), p.fetcher) {
			return true
		}
	}
	return false
}

// isStoreSeamFunc reports whether fn is part of a container.Store
// implementation (the documented ctx-free seam) at the types level.
func (p *Program) isStoreSeamFunc(fn *types.Func) bool {
	if !storeMethodNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return implementsStore(sig.Recv().Type(), p.store)
}

// isRawStoreGet reports whether call reads a container straight off a
// container.Store (the uncounted read the accounting checks police).
func (p *Program) isRawStoreGet(info *types.Info, call *ast.CallExpr) bool {
	if p.store == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && implementsStore(tv.Type, p.store)
}

// isSharedOriginCall reports whether call yields a shared *Container:
// any Get method returning one (Store.Get, Fetcher.Get, cache Gets) or
// a module function summarized as returning a shared container.
func (p *Program) isSharedOriginCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	if s, ok := p.Summaries[f]; ok && s.returnsShared {
		return true
	}
	if f.Name() != "Get" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() == 0 {
		return false
	}
	return isContainerPtr(sig.Results().At(0).Type())
}

// auditedRawGet reports whether the raw Get at pos carries an
// accounting/accounting-path suppression: the read is vouched for, so
// it must not taint callers. Consulting the directive marks it used.
func (p *Program) auditedRawGet(node *FuncNode, call *ast.CallExpr) bool {
	if p.sup == nil {
		return false
	}
	pos := node.Pkg.Fset.Position(call.Pos())
	return p.sup.covers(pos.Filename, pos.Line, "accounting") ||
		p.sup.covers(pos.Filename, pos.Line, "accounting-path")
}

// paramIndexes maps each named parameter object of decl to its flat
// position, returning the total parameter count.
func paramIndexes(info *types.Info, decl *ast.FuncDecl) (map[types.Object]int, int) {
	idx := make(map[types.Object]int)
	n := 0
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			n++
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				idx[obj] = n
			}
			n++
		}
	}
	return idx, n
}

// calleeParamIndex maps argument position i of a call to f onto f's
// parameter index, folding variadic tails onto the last parameter.
// Returns -1 when the position has no parameter (e.g. f()).
func calleeParamIndex(f *types.Func, i int) int {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return -1
	}
	np := sig.Params().Len()
	if np == 0 {
		return -1
	}
	if i >= np {
		if sig.Variadic() {
			return np - 1
		}
		return -1
	}
	return i
}

func hasCtxInSig(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// update recomputes node's summary against the current summaries of its
// callees, reporting whether anything changed.
func (p *Program) update(node *FuncNode) bool {
	s := p.Summaries[node.Func]
	info := node.Pkg.Info
	paramIdx, nparams := paramIndexes(info, node.Decl)
	if s.mutatesParam == nil {
		s.mutatesParam = make([]bool, nparams)
		s.retainsParam = make([]bool, nparams)
		s.releasesParam = make([]bool, nparams)
	}
	before := snapshotSummary(s)

	exempt := PathHasSuffix(node.Pkg.Path, p.cfg.AccountingExemptPackages)

	paramOf := func(expr ast.Expr) int {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return -1
		}
		obj := info.Uses[id]
		if obj == nil {
			return -1
		}
		if i, ok := paramIdx[obj]; ok {
			return i
		}
		return -1
	}

	// Pass 1: flow-insensitive set of variables aliasing a shared
	// container (assigned from a Get / shared-returning call).
	sharedVars := make(map[types.Object]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !p.isSharedOriginCall(info, call) {
			return true
		}
		if id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				sharedVars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				sharedVars[obj] = true
			}
		}
		return true
	})

	// Pass 2: everything else.
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if s.directIO == "" {
				if name, ok := directIOCall(info, x); ok {
					s.directIO = name
				}
			}
			if exempt && !s.boundary && !s.rawGetDirect &&
				p.isRawStoreGet(info, x) && !p.auditedRawGet(node, x) {
				s.rawGetDirect = true
			}
			f := calleeFunc(info, x)
			if f == nil {
				return true
			}
			// bufpool Release of a parameter.
			if len(x.Args) == 1 && isBufpoolMethod(info, x, "Release") {
				if i := paramOf(x.Args[0]); i >= 0 {
					s.releasesParam[i] = true
				}
			}
			// *Container mutator invoked on a parameter.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && containerMutators[sel.Sel.Name] {
				if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil && isContainerPtr(sig.Recv().Type()) {
					if i := paramOf(sel.X); i >= 0 {
						s.mutatesParam[i] = true
					}
				}
			}
			callee, known := p.Graph.Nodes[f]
			if !known {
				return true
			}
			cs := p.Summaries[callee.Func]
			// Transitive I/O: cut where the callee accepts a context (the
			// cancellation point exists there) and at the Store seam.
			if s.directIO == "" && s.ioVia == nil && cs.reachesIO() &&
				!hasCtxInSig(f) && !p.isStoreSeamFunc(f) {
				s.ioVia = f
			}
			// Raw-get taint flows through everything except boundaries.
			if !s.boundary && !s.rawGetDirect && s.rawGetVia == nil &&
				cs.reachesRawGet() && !cs.boundary {
				s.rawGetVia = f
			}
			// Parameter facts propagate through identifier arguments.
			for i, arg := range x.Args {
				pi := paramOf(arg)
				if pi < 0 {
					continue
				}
				ci := calleeParamIndex(f, i)
				if ci < 0 || ci >= len(cs.mutatesParam) {
					continue
				}
				if cs.mutatesParam[ci] {
					s.mutatesParam[pi] = true
				}
				if cs.retainsParam[ci] {
					s.retainsParam[pi] = true
				}
				if cs.releasesParam[ci] {
					s.releasesParam[pi] = true
				}
			}

		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				pi := paramOf(rhs)
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
					for _, arg := range call.Args[1:] {
						if j := paramOf(arg); j >= 0 {
							pi = j
						}
					}
				}
				if pi < 0 {
					continue
				}
				if _, plain := ast.Unparen(x.Lhs[i]).(*ast.Ident); !plain {
					s.retainsParam[pi] = true // lands in a field, map, or slice
				}
			}
			// A field write through a *Container parameter is mutation.
			for _, lhs := range x.Lhs {
				if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
					continue
				}
				if obj := identObject(info, lhs); obj != nil && isContainerPtr(obj.Type()) {
					if i, ok := paramIdx[obj]; ok {
						s.mutatesParam[i] = true
					}
				}
			}

		case *ast.SendStmt:
			if i := paramOf(x.Value); i >= 0 {
				s.retainsParam[i] = true
			}

		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if i := paramOf(v); i >= 0 {
					s.retainsParam[i] = true
				}
			}

		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && p.isSharedOriginCall(info, call) {
					s.returnsShared = true
				}
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && sharedVars[obj] {
						s.returnsShared = true
					}
				}
			}
		}
		return true
	})

	return snapshotSummary(s) != before
}

// summarySnapshot is a comparable digest of a Summary's monotone bits.
type summarySnapshot struct {
	directIO      string
	ioVia         *types.Func
	rawGetDirect  bool
	rawGetVia     *types.Func
	returnsShared bool
	params        string
}

func snapshotSummary(s *Summary) summarySnapshot {
	buf := make([]byte, 0, 3*len(s.mutatesParam))
	bit := func(b bool) byte {
		if b {
			return '1'
		}
		return '0'
	}
	for i := range s.mutatesParam {
		buf = append(buf, bit(s.mutatesParam[i]), bit(s.retainsParam[i]), bit(s.releasesParam[i]))
	}
	return summarySnapshot{
		directIO:      s.directIO,
		ioVia:         s.ioVia,
		rawGetDirect:  s.rawGetDirect,
		rawGetVia:     s.rawGetVia,
		returnsShared: s.returnsShared,
		params:        string(buf),
	}
}

// ioChain renders the witness path from fn to its I/O call:
// "helper → flush → os.Rename". Bounded and cycle-safe.
func (p *Program) ioChain(fn *types.Func) string {
	var parts []string
	seen := map[*types.Func]bool{fn: true}
	cur := p.Summaries[fn]
	for i := 0; cur != nil && i < 10; i++ {
		if cur.directIO != "" {
			parts = append(parts, cur.directIO)
			break
		}
		next := cur.ioVia
		if next == nil || seen[next] {
			break
		}
		seen[next] = true
		parts = append(parts, next.Name())
		cur = p.Summaries[next]
	}
	return joinArrow(parts)
}

// rawGetChain renders the witness path from fn to the raw Store.Get.
func (p *Program) rawGetChain(fn *types.Func) string {
	parts := []string{fn.Name()}
	seen := map[*types.Func]bool{fn: true}
	cur := p.Summaries[fn]
	for i := 0; cur != nil && i < 10; i++ {
		if cur.rawGetDirect {
			parts = append(parts, "Store.Get")
			break
		}
		next := cur.rawGetVia
		if next == nil || seen[next] {
			break
		}
		seen[next] = true
		parts = append(parts, next.Name())
		cur = p.Summaries[next]
	}
	return joinArrow(parts)
}

func joinArrow(parts []string) string {
	out := ""
	for i, s := range parts {
		if i > 0 {
			out += " → "
		}
		out += s
	}
	return out
}

// lookupInterface finds the named interface in a package whose import
// path ends in pathSuffix, searching pkg and its transitive imports.
func lookupInterface(pkg *types.Package, pathSuffix, name string) *types.Interface {
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if PathHasSuffix(p.Path(), []string{pathSuffix}) {
			if obj := p.Scope().Lookup(name); obj != nil {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
		}
		for _, q := range p.Imports() {
			if r := find(q); r != nil {
				return r
			}
		}
		return nil
	}
	return find(pkg)
}
