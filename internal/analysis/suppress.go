package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// suppressionCheck is the pseudo-check name under which malformed
// //hidelint:ignore comments are reported. It is not registered: it
// cannot be disabled and a malformed suppression cannot suppress
// itself.
const suppressionCheck = "suppression"

// unusedSuppressionCheck is the pseudo-check name under which stale
// //hidelint:ignore comments are reported in -unused-suppressions
// mode. Like "suppression", it is not registered.
const unusedSuppressionCheck = "unused-suppression"

const ignorePrefix = "//hidelint:ignore"

// suppressKey addresses one (file, line, check) a suppression covers.
type suppressKey struct {
	file  string
	line  int
	check string
}

// directive is one well-formed //hidelint:ignore comment, tracked so
// stale suppressions can be reported.
type directive struct {
	pos   token.Position
	check string
	used  bool
}

type suppressions struct {
	// keys maps each covered (file, line, check) to the indices of the
	// directives covering it — two directives can cover the same line
	// (a trailing comment and a standalone one above).
	keys       map[suppressKey][]int
	directives []directive
}

// collect scans every comment in files for //hidelint:ignore
// directives. A well-formed directive names a registered check and
// gives a non-empty reason; it silences that check on its own line and
// on the line directly below (so it works both as a trailing comment
// and as a standalone line above the finding). Malformed directives
// are reported into diags under the "suppression" pseudo-check.
func (s *suppressions) collect(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) {
	if s.keys == nil {
		s.keys = make(map[suppressKey][]int)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //hidelint:ignored — not a directive
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					*diags = append(*diags, Diagnostic{Pos: pos, Check: suppressionCheck,
						Message: "hidelint:ignore needs a check name and a reason"})
					continue
				}
				name := fields[0]
				if strings.Contains(name, ",") {
					// `//hidelint:ignore a,b reason` is a common slip; the
					// diagnostic names the fix instead of "unknown check".
					*diags = append(*diags, Diagnostic{Pos: pos, Check: suppressionCheck,
						Message: fmt.Sprintf("hidelint:ignore takes one check per directive; split %q into separate comments", name)})
					continue
				}
				if _, ok := checkByName(name); !ok {
					*diags = append(*diags, Diagnostic{Pos: pos, Check: suppressionCheck,
						Message: fmt.Sprintf("hidelint:ignore names unknown check %q", name)})
					continue
				}
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{Pos: pos, Check: suppressionCheck,
						Message: "hidelint:ignore " + name + " needs a reason"})
					continue
				}
				if _, second := checkByName(fields[1]); second {
					// Two check names back to back: the "reason" is really a
					// second check, and one of the two would be silently
					// unsuppressed. Reported rather than guessed at.
					*diags = append(*diags, Diagnostic{Pos: pos, Check: suppressionCheck,
						Message: fmt.Sprintf("hidelint:ignore names two checks (%q, %q); use one directive per check, each with its own reason", name, fields[1])})
					continue
				}
				idx := len(s.directives)
				s.directives = append(s.directives, directive{pos: pos, check: name})
				own := suppressKey{pos.Filename, pos.Line, name}
				below := suppressKey{pos.Filename, pos.Line + 1, name}
				s.keys[own] = append(s.keys[own], idx)
				s.keys[below] = append(s.keys[below], idx)
			}
		}
	}
}

// filter drops diagnostics covered by a collected suppression and
// marks the covering directives used.
func (s *suppressions) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if d.Check != suppressionCheck {
			if idxs := s.keys[suppressKey{d.Pos.Filename, d.Pos.Line, d.Check}]; len(idxs) > 0 {
				for _, i := range idxs {
					s.directives[i].used = true
				}
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// covers reports whether a well-formed directive for check covers
// (file, line), marking it used: the interprocedural summary pass asks
// this to stop raw-Get taint at audited reads, and an audit that stops
// taint has done its job even when no intraprocedural finding existed
// on that line.
func (s *suppressions) covers(file string, line int, check string) bool {
	idxs := s.keys[suppressKey{file, line, check}]
	for _, i := range idxs {
		s.directives[i].used = true
	}
	return len(idxs) > 0
}

// unused reports every well-formed directive that suppressed nothing,
// restricted to directives whose check actually ran (ranChecks) — a
// partial-check run cannot prove a suppression for an unselected
// check stale.
func (s *suppressions) unused(ranChecks []Check) []Diagnostic {
	ran := make(map[string]bool, len(ranChecks))
	for _, c := range ranChecks {
		ran[c.Name] = true
	}
	var out []Diagnostic
	for _, d := range s.directives {
		if d.used || !ran[d.check] {
			continue
		}
		out = append(out, Diagnostic{Pos: d.pos, Check: unusedSuppressionCheck,
			Message: fmt.Sprintf("hidelint:ignore %s matches no finding; remove the stale suppression", d.check)})
	}
	return out
}
