package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// suppressionCheck is the pseudo-check name under which malformed
// //hidelint:ignore comments are reported. It is not registered: it
// cannot be disabled and a malformed suppression cannot suppress
// itself.
const suppressionCheck = "suppression"

const ignorePrefix = "//hidelint:ignore"

// suppressKey addresses one (file, line, check) a suppression covers.
type suppressKey struct {
	file  string
	line  int
	check string
}

type suppressions struct {
	keys map[suppressKey]bool
}

// collect scans every comment in files for //hidelint:ignore
// directives. A well-formed directive names a registered check and
// gives a non-empty reason; it silences that check on its own line and
// on the line directly below (so it works both as a trailing comment
// and as a standalone line above the finding). Malformed directives
// are reported into diags under the "suppression" pseudo-check.
func (s *suppressions) collect(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) {
	if s.keys == nil {
		s.keys = make(map[suppressKey]bool)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //hidelint:ignored — not a directive
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					*diags = append(*diags, Diagnostic{Pos: pos, Check: suppressionCheck,
						Message: "hidelint:ignore needs a check name and a reason"})
					continue
				}
				name := fields[0]
				if _, ok := checkByName(name); !ok {
					*diags = append(*diags, Diagnostic{Pos: pos, Check: suppressionCheck,
						Message: fmt.Sprintf("hidelint:ignore names unknown check %q", name)})
					continue
				}
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{Pos: pos, Check: suppressionCheck,
						Message: "hidelint:ignore " + name + " needs a reason"})
					continue
				}
				s.keys[suppressKey{pos.Filename, pos.Line, name}] = true
				s.keys[suppressKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
}

// filter drops diagnostics covered by a collected suppression.
func (s *suppressions) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if d.Check != suppressionCheck && s.keys[suppressKey{d.Pos.Filename, d.Pos.Line, d.Check}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
