// Package accounting seeds uncounted direct Store.Get reads — the
// reads that would silently inflate the paper's speed factor — next to
// the sanctioned patterns: fetcher-mediated reads and a reasoned
// suppression.
package accounting

import (
	"context"

	"hidestore/internal/container"
	"hidestore/internal/restorecache"
)

// Uncounted reads a container behind the accounting layer's back.
func Uncounted(s container.Store, id container.ID) (*container.Container, error) {
	return s.Get(id) // finding: uncounted container read
}

// Counted reads through the fetcher layer; silent.
func Counted(ctx context.Context, s container.Store, id container.ID) (*container.Container, error) {
	return restorecache.StoreFetcher(s).Get(ctx, id)
}

// Audited is a sanctioned direct read; the suppression names why.
func Audited(s container.Store, id container.ID) (*container.Container, error) {
	//hidelint:ignore accounting integrity audit outside any restore run
	return s.Get(id)
}
