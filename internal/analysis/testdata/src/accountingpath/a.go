// Package accountingpath seeds the accounting laundering hole: no raw
// Store.Get appears anywhere in this package, yet restore reads bypass
// the counting fetcher layer through the exempt helper — so the
// intraprocedural accounting check is silent and the speed-factor
// denominator silently drops reads.
package accountingpath

import (
	"hidestore/internal/analysis/testdata/src/accountingpath/rawhelper"
	"hidestore/internal/container"
)

// RestoreSweep launders an uncounted read through the helper.
func RestoreSweep(s container.Store, id container.ID) error {
	ctn, err := rawhelper.ReadRaw(s, id) // finding: reaches a raw Store.Get
	if err != nil {
		return err
	}
	_ = ctn
	return nil
}

// wrap is a middle frame for the witness-chain rendering.
func wrap(s container.Store, id container.ID) (*container.Container, error) {
	return rawhelper.ReadRaw(s, id) // finding: reaches a raw Store.Get
}

// DeepSweep reaches the raw read two frames down.
func DeepSweep(s container.Store, id container.ID) error {
	_, err := wrap(s, id) // finding: wrap → ReadRaw → Store.Get
	return err
}

// AuditedSweep rides the audited helper; silent.
func AuditedSweep(s container.Store, id container.ID) error {
	_, err := rawhelper.ReadAudited(s, id)
	return err
}
