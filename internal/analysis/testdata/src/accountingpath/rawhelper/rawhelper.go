// Package rawhelper wraps raw Store reads for the accountingpath
// corpus. It is configured accounting-exempt, so the intraprocedural
// accounting check allows the Gets here; the call-graph summaries
// carry the taint to callers in other packages instead.
package rawhelper

import "hidestore/internal/container"

// ReadRaw is an uncounted read: callers outside this package that
// reach it bypass Stats.ContainerReads.
func ReadRaw(s container.Store, id container.ID) (*container.Container, error) {
	return s.Get(id)
}

// ReadAudited carries an audit directive: the read is vouched for, so
// it must not taint callers.
func ReadAudited(s container.Store, id container.ID) (*container.Container, error) {
	return s.Get(id) //hidelint:ignore accounting-path audited quarantine-scan read; the caller reconciles it against Stats.ContainerReads
}
