// Package ctxtransitive seeds the laundering hole the intraprocedural
// ignored-ctx check cannot see: an exported entry point that performs
// no I/O in its own body but reaches os.WriteFile two frames down,
// with no context anywhere to carry cancellation.
package ctxtransitive

import (
	"context"

	"hidestore/internal/analysis/testdata/src/ctxtransitive/helper"
)

// save is the middle frame: still no direct I/O visible from the
// exported caller's body.
func save(path string, data []byte) error {
	return helper.Flush(path, data)
}

// Checkpoint is exported, ctx-less, and I/O-free on its face, so the
// old pass is silent. finding (interprocedural): transitively performs
// I/O through save → Flush → os.WriteFile.
func Checkpoint(path string, data []byte) error {
	return save(path, data)
}

// CheckpointCtx plumbs a context and is silent: the cancellation
// point the check demands exists here.
func CheckpointCtx(ctx context.Context, path string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return save(path, data)
}
