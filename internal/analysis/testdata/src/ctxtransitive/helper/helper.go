// Package helper is the I/O layer the ctxtransitive corpus reaches
// through: it is not a ctx-scoped package itself, so the
// intraprocedural ignored-ctx pass has nothing to say about it.
package helper

import "os"

// Flush rewrites a recipe file. Direct I/O with no context is legal
// here — this package is outside CtxPackages; the defect is the
// ctx-less caller two frames up.
func Flush(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}
