// Package discardederror seeds every shape of the discarded-error
// defect class, plus the allowed idioms that must stay silent. The
// golden file pins the exact diagnostic positions.
package discardederror

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func bareCall() {
	fallible() // finding: bare call statement
}

func blankAssign() {
	_ = fallible() // finding: explicit discard
}

func tupleBlank() int {
	n, _ := pair() // finding: tuple error into _
	return n
}

func goAndDefer() {
	go fallible()    // finding
	defer fallible() // finding
}

func allowed() string {
	var sb strings.Builder
	sb.WriteString("strings.Builder never fails")
	var buf bytes.Buffer
	buf.WriteString("neither does bytes.Buffer")
	fmt.Println("console prints are fine")
	fmt.Fprintf(os.Stderr, "stderr too\n")
	fmt.Fprintf(&sb, "and in-memory Fprintf\n")
	if err := fallible(); err != nil {
		return err.Error()
	}
	return sb.String() + buf.String()
}
