// Package ignoredctx seeds dead-context defects: unused ctx
// parameters, ctx in the wrong position, blank ctx on exported
// functions, minted contexts, and ctx-less I/O entry points. The test
// config adds this package to CtxPackages.
package ignoredctx

import (
	"context"
	"os"
)

// DeadCtx accepts a context and never consults it — the PR 1 restore
// bug shape.
func DeadCtx(ctx context.Context, n int) int { // finding: ctx unused
	return n + 1
}

// LateCtx hides the context in second position.
func LateCtx(n int, ctx context.Context) error { // finding: ctx not first
	_ = n
	return ctx.Err()
}

// BlankCtx discards its context outright.
func BlankCtx(_ context.Context) error { // finding: blank ctx on exported
	return nil
}

// Minted severs the caller's cancellation chain.
func Minted() error {
	ctx := context.Background() // finding: minted context
	return ctx.Err()
}

// ReadSide performs I/O no caller can cancel.
func ReadSide(path string) ([]byte, error) { // finding: I/O without ctx
	return os.ReadFile(path)
}

// used is correct: ctx first and consulted.
func used(ctx context.Context) error {
	return ctx.Err()
}
