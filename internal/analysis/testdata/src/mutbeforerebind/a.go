// Package mutbeforerebind seeds the order-sensitive half of the
// store-ownership contract: the flow-insensitive pass forgives any
// function containing a `ctn = ctn.Clone()` rebind, wherever it sits;
// the CFG pass only forgives the paths the rebind dominates.
package mutbeforerebind

import "hidestore/internal/container"

// mutateThenClone mutates the shared snapshot BEFORE rebinding to a
// clone. AST-order rebind tracking sees the rebind and drops the
// variable; the CFG knows the first SetID ran on the shared image.
func mutateThenClone(s container.Store, id container.ID) (*container.Container, error) {
	ctn, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	ctn.SetID(1) // finding: mutation above the rebind
	ctn = ctn.Clone()
	ctn.SetID(2) // silent: private from here on
	return ctn, nil
}

// cloneOnOneBranch clones only when asked: after the merge the
// variable may still alias the store's snapshot.
func cloneOnOneBranch(s container.Store, id container.ID, deep bool) error {
	ctn, err := s.Get(id)
	if err != nil {
		return err
	}
	if deep {
		ctn = ctn.Clone()
	}
	ctn.SetID(3) // finding: shared on the deep=false path
	return nil
}

// cloneBothBranches covers every path before the mutation; silent.
func cloneBothBranches(s container.Store, id container.ID, deep bool) error {
	ctn, err := s.Get(id)
	if err != nil {
		return err
	}
	if deep {
		ctn = ctn.Clone()
	} else {
		ctn = ctn.Clone()
	}
	ctn.SetID(4)
	return nil
}
