// Package nopanic seeds process-killing and stdout-writing calls that
// library code must never make.
package nopanic

import (
	"fmt"
	"log"
	"os"
)

func kill() {
	panic("library code must return errors") // finding
}

func prints(v int) {
	fmt.Println("hi")   // finding
	fmt.Printf("%d", v) // finding
	println(v)          // finding
}

func fatal(die bool) {
	if die {
		log.Fatal("kills the process") // finding
	}
	os.Exit(1) // finding
}

// ok surfaces its failure like a library should.
func ok() error {
	return fmt.Errorf("reported, not printed")
}
