// Package pooledescape seeds the bufpool ownership defects: pooled
// buffers escaping into longer-lived structures, and buffers used after
// they were Released back to the pool.
package pooledescape

import "hidestore/internal/bufpool"

type holder struct {
	buf  []byte
	bufs [][]byte
}

type box struct {
	data []byte
}

// escapes seeds every escape shape the check must catch.
func escapes(p *bufpool.Pool, h *holder, m map[int][]byte, ch chan []byte) box {
	b := p.Get(64)
	h.buf = b                   // finding: field store
	m[0] = b                    // finding: map store
	h.bufs[0] = b               // finding: slice-element store
	h.bufs = append(h.bufs, b)  // finding: retained via append
	ch <- b                     // finding: channel send
	bx := box{data: b}          // finding: composite literal
	_ = [][]byte{b}             // finding: composite literal (positional)
	return bx
}

// useAfterRelease seeds the second defect class.
func useAfterRelease(p *bufpool.Pool) byte {
	b := p.Get(32)
	b[0] = 1
	p.Release(b)
	return b[0] // finding: use after Release
}

// selectorRelease releases through a selector path; later uses of the
// same path are findings, sibling fields are not.
func selectorRelease(p *bufpool.Pool, bx *box) int {
	n := len(bx.data)
	p.Release(bx.data)
	n += len(bx.data) // finding: bx.data used after Release
	return n
}

// ok shows the legal patterns: local aliasing, copying out, returning
// (ownership transfer), and rebinding after a Release.
func ok(p *bufpool.Pool, h *holder) []byte {
	b := p.Get(16)
	alias := b // local alias is fine until something retains it
	_ = alias
	snapshot := make([]byte, len(b))
	copy(snapshot, b)
	h.buf = snapshot // the copy escapes, not the pooled buffer
	p.Release(b)
	b = p.Get(16) // rebind ends the released taint
	return b      // returning transfers ownership to the caller
}

// suppressed shows an audited ownership transfer riding on the
// suppression mechanism.
func suppressed(p *bufpool.Pool, ch chan []byte) {
	b := p.Get(8)
	ch <- b //hidelint:ignore pooled-escape receiver releases; audited handoff for this seed corpus
}
