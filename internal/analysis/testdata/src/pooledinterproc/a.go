// Package pooledinterproc seeds the pooled-buffer defects only the
// call-graph pass can see: retention and release happening one call
// away, and a release/use pair joined by a loop back-edge so the use
// sits ABOVE the release in source order.
package pooledinterproc

import "hidestore/internal/bufpool"

type cache struct {
	bufs [][]byte
}

// keep retains its parameter in the cache; call sites see only the
// summary.
func (c *cache) keep(b []byte) {
	c.bufs = append(c.bufs, b)
}

// recycle hands its parameter back to the pool for its caller.
func recycle(p *bufpool.Pool, b []byte) {
	p.Release(b)
}

// keepPooled hands a pooled buffer to the retaining helper.
func keepPooled(p *bufpool.Pool, c *cache) {
	b := p.Get(32)
	c.keep(b) // finding: the callee retains the buffer
}

// useAfterHelperRelease reads the buffer after recycle returned it to
// the pool; no Release call appears in this body.
func useAfterHelperRelease(p *bufpool.Pool) byte {
	b := p.Get(16)
	recycle(p, b)
	return b[0] // finding: released by recycle
}

// releaseInLoop releases on the first iteration and reads on the
// second: the read is above the Release in source order, so the
// position matcher is blind; the back edge is not.
func releaseInLoop(p *bufpool.Pool) int {
	sum := 0
	b := p.Get(8)
	for i := 0; i < 2; i++ {
		sum += int(b[0]) // finding: released on the prior iteration
		if i == 0 {
			p.Release(b)
		}
	}
	return sum
}

// okHandoff: returning transfers ownership, and copies may be kept.
func okHandoff(p *bufpool.Pool, c *cache) []byte {
	b := p.Get(4)
	snapshot := make([]byte, len(b))
	copy(snapshot, b)
	c.keep(snapshot) // the copy escapes, not the pooled buffer
	return b
}
