// Package storeownership seeds the PR 1 MemStore.Put defect (a Put
// that retains the caller's *Container) and the call-site half of the
// contract: mutating a container obtained from Get.
package storeownership

import (
	"hidestore/internal/container"
	"hidestore/internal/fp"
)

// leakyStore implements container.Store but keeps the caller's pointer
// instead of a snapshot — later caller mutations corrupt the "stored"
// image.
type leakyStore struct {
	m   map[container.ID]*container.Container
	all []*container.Container
}

func (s *leakyStore) Put(c *container.Container) error {
	s.m[c.ID()] = c          // finding: retained in a map
	s.all = append(s.all, c) // finding: retained via append
	return nil
}

func (s *leakyStore) Get(id container.ID) (*container.Container, error) { return s.m[id], nil }
func (s *leakyStore) Delete(id container.ID) error                      { delete(s.m, id); return nil }
func (s *leakyStore) Has(id container.ID) (bool, error)                 { _, ok := s.m[id]; return ok, nil }
func (s *leakyStore) IDs() ([]container.ID, error)                      { return nil, nil }
func (s *leakyStore) Len() (int, error)                                 { return len(s.m), nil }
func (s *leakyStore) Stats() container.StoreStats                       { return container.StoreStats{} }
func (s *leakyStore) ResetStats()                                       {}

// okStore snapshots on Put; must stay silent.
type okStore struct{ *leakyStore }

func (s *okStore) Put(c *container.Container) error {
	s.m[c.ID()] = c.Clone()
	return nil
}

// mutateShared mutates a container fetched from a store: the image is
// shared with the store and with concurrent restores.
func mutateShared(s container.Store, id container.ID, f fp.FP) error {
	ctn, err := s.Get(id)
	if err != nil {
		return err
	}
	ctn.SetID(99)                // finding: mutator on shared image
	return ctn.Add(f, []byte{1}) // finding: mutator on shared image
}

// cloneFirst rebinds to a private copy before mutating; silent.
func cloneFirst(s container.Store, id container.ID) (*container.Container, error) {
	ctn, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	ctn = ctn.Clone()
	ctn.SetID(100)
	return ctn, nil
}
