// Package suppress exercises the suppression grammar: a well-formed
// //hidelint:ignore silences its line and the next; reasonless,
// unknown-check, and bare directives are findings themselves and
// silence nothing.
package suppress

func sanctionedAbove() {
	//hidelint:ignore no-panic golden-file fixture for the standalone form
	panic("suppressed")
}

func sanctionedTrailing() {
	panic("suppressed") //hidelint:ignore no-panic golden-file fixture for the trailing form
}

func reasonless() {
	//hidelint:ignore no-panic
	panic("still flagged") // finding: reasonless suppression suppresses nothing
}

func unknownCheck() {
	//hidelint:ignore not-a-check because reasons
	panic("still flagged") // finding
}

func bareDirective() {
	//hidelint:ignore
	panic("still flagged") // finding
}
