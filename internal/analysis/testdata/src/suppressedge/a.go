// Package suppressedge seeds the directive mistakes: a comma-spliced
// check list, two check names in one directive, an unknown check, and
// a directive anchored to the wrong line. Each leaves its finding
// unsuppressed — the corpus pins both the malformed-directive
// diagnostics and the survival of the underlying findings.
package suppressedge

// wrongLine: the directive sits two lines above the call, covering
// neither its own line nor the line below, so the finding survives
// and the directive itself is stale.
func wrongLine() {
	//hidelint:ignore no-panic directive is two lines above the offending call
	_ = 0
	panic("unreachable") // finding: no-panic, plus the stale directive above
}

// commaList: one directive cannot cover two checks.
func commaList() {
	//hidelint:ignore no-panic,discarded-error one comma-spliced directive
	panic("boom") // finding: the malformed directive suppressed nothing
}

// twoNames: the "reason" is really a second check name, so one of the
// two would be silently unsuppressed; reported rather than guessed at.
func twoNames() {
	//hidelint:ignore no-panic discarded-error forgot the reason
	panic("boom") // finding: the malformed directive suppressed nothing
}

// unknownCheck: a typo'd name suppresses nothing.
func unknownCheck() {
	//hidelint:ignore no-panics typo in the check name
	panic("boom") // finding: the malformed directive suppressed nothing
}
