// Package unusedsuppress seeds the -unused-suppressions mode: a live
// directive (it silences a real finding) must stay quiet, a stale one
// (it silences nothing) must be flagged, and one naming a check
// outside the selected set must be left alone — a partial run cannot
// prove it stale.
package unusedsuppress

func live() {
	//hidelint:ignore no-panic golden-file fixture for a suppression that earns its keep
	panic("suppressed")
}

func stale() int {
	//hidelint:ignore no-panic golden-file fixture for a suppression with nothing to suppress
	return 1 // finding: the directive above covers no panic
}

func outOfScope() int {
	//hidelint:ignore discarded-error the golden case runs no-panic only, so this cannot be proven stale
	return 2
}
