// Package xpkgownership seeds the ownership violations that only the
// call-graph pass can see: shared Get results handed to mutating
// helpers in another package, laundered through helper return values,
// or parked where a far-side mutation is invisible.
package xpkgownership

import (
	"hidestore/internal/analysis/testdata/src/xpkgownership/stamp"
	"hidestore/internal/container"
	"hidestore/internal/fp"
)

type archive struct {
	keep *container.Container
}

// brandShared hands a shared snapshot to a helper the old pass never
// looked inside.
func brandShared(s container.Store, id container.ID) error {
	ctn, err := s.Get(id)
	if err != nil {
		return err
	}
	stamp.Brand(ctn) // finding: the callee mutates its parameter
	return nil
}

// fillShared: same hole through a second mutator and extra arguments.
func fillShared(s container.Store, id container.ID, f fp.FP) error {
	ctn, err := s.Get(id)
	if err != nil {
		return err
	}
	return stamp.Fill(ctn, f, []byte{1}) // finding: the callee mutates its parameter
}

// fetchThenMutate mutates a snapshot laundered through stamp.Fetch's
// return value; no method named Get appears in this body.
func fetchThenMutate(s container.Store, id container.ID) error {
	ctn, err := stamp.Fetch(s, id)
	if err != nil {
		return err
	}
	ctn.SetID(5) // finding: shared via the helper's summary
	return nil
}

// escapeShapes parks a shared snapshot where a far-side mutation is
// invisible to this function.
func escapeShapes(s container.Store, id container.ID, a *archive, ch chan *container.Container) {
	ctn, _ := s.Get(id)
	a.keep = ctn                    // finding: escapes into a field
	ch <- ctn                       // finding: sent on a channel
	_ = []*container.Container{ctn} // finding: placed in a composite literal
}

// cloneForBrand snapshots before the handoff; silent.
func cloneForBrand(s container.Store, id container.ID) error {
	ctn, err := s.Get(id)
	if err != nil {
		return err
	}
	c := ctn.Clone()
	stamp.Brand(c)
	return nil
}
