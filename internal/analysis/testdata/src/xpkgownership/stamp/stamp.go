// Package stamp is the far side of the xpkgownership corpus: helpers
// that mutate or launder containers. Callers see these bodies only
// through their summaries.
package stamp

import (
	"hidestore/internal/container"
	"hidestore/internal/fp"
)

// Brand mutates its parameter; a caller passing a shared Get result is
// the finding, on the caller's side.
func Brand(c *container.Container) {
	c.SetID(77)
}

// Fill also mutates, through a different mutator.
func Fill(c *container.Container, f fp.FP, data []byte) error {
	return c.Add(f, data)
}

// Fetch launders the shared snapshot through a return value: the
// caller never sees a method named Get.
func Fetch(s container.Store, id container.ID) (*container.Container, error) {
	return s.Get(id)
}
