// Package backend abstracts the byte-blob storage the stores sit on.
//
// Everything HiDeStore persists — container images, recipes, the engine
// state file — is a named blob written atomically and read back whole.
// Backend captures exactly that contract, so the same store code runs
// against a local directory, an in-memory map, or a simulated remote
// with latency, bandwidth caps and transient faults. Layers compose by
// wrapping (restic-style):
//
//	Cache( Retry( Limiter( RemoteSim( Local ))))
//
// The composition rules are part of the design (DESIGN.md "Storage
// backends"): the retry layer sits above the limiter so every attempt
// is rate-limited, and the read cache sits on top so cache hits skip
// the whole remote path.
//
// Error taxonomy: a missing blob is ErrNotFound and must fail fast
// through every layer — retrying it cannot help and hides real bugs.
// Failures that a retry can plausibly cure (network blips, throttling)
// are marked ErrTransient; only those are retried. Anything else
// (corruption, permission errors) also fails fast.
package backend

import (
	"context"
	"errors"
)

// ErrNotFound reports a blob that does not exist. Every layer must
// preserve it under errors.Is — a missing container is a permanent
// condition and must never be retried.
var ErrNotFound = errors.New("backend: blob not found")

// ErrTransient marks failures that may succeed on retry (simulated
// network faults, throttling). The retry layer retries exactly the
// errors matching this sentinel.
var ErrTransient = errors.New("backend: transient failure")

// IsTransient reports whether err is safe to retry.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient)
}

// Backend stores named byte blobs. Names are slash-separated relative
// paths ("c_12.ctn", "quarantine/c_12.ctn"). Implementations must be
// safe for concurrent use: the restore prefetcher issues overlapping
// Gets from its worker pool.
//
// Put must be atomic: after a crash a name holds either its old or its
// new content in full, never a prefix (the local backend inherits this
// from durable.WriteFileAtomic).
type Backend interface {
	// Put writes or replaces the blob atomically.
	Put(ctx context.Context, name string, data []byte) error
	// Get reads a whole blob; a missing name is ErrNotFound.
	Get(ctx context.Context, name string) ([]byte, error)
	// Delete removes a blob durably; a missing name is ErrNotFound.
	Delete(ctx context.Context, name string) error
	// Has reports existence without reading. The error is non-nil only
	// when existence could not be determined.
	Has(ctx context.Context, name string) (bool, error)
	// List returns the names with the given prefix, in lexical order.
	// An unreadable backend must error, not answer "empty".
	List(ctx context.Context, prefix string) ([]string, error)
}
