package backend

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"hidestore/internal/durable"
	"hidestore/internal/obs"
)

// backendsUnderTest builds every Backend configuration the blob-level
// conformance tests run against, including the full composed stack.
func backendsUnderTest(t *testing.T) map[string]Backend {
	t.Helper()
	local, err := NewLocal(filepath.Join(t.TempDir(), "local"))
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	stackDir := t.TempDir()
	stackBase, err := NewLocal(filepath.Join(stackDir, "remote"))
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	stack, _, err := NewStack(stackBase, StackOptions{
		Sim: SimOptions{
			FailEveryN: 5, // deterministic transient faults, absorbed by retry
			Seed:       42,
		},
		Retry:      RetryOptions{MinDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
		RateBps:    1 << 30,
		CacheDir:   filepath.Join(stackDir, "cache"),
		CacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	return map[string]Backend{
		"mem":   NewMem(),
		"local": local,
		"stack": stack,
	}
}

func TestBackendConformance(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			if _, err := b.Get(ctx, "nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
			}
			if err := b.Delete(ctx, "nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Delete(missing) = %v, want ErrNotFound", err)
			}
			if ok, err := b.Has(ctx, "nope"); err != nil || ok {
				t.Fatalf("Has(missing) = %v, %v; want false, nil", ok, err)
			}

			if err := b.Put(ctx, "a_1.bin", []byte("alpha")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := b.Put(ctx, "a_2.bin", []byte("beta")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := b.Put(ctx, "b_1.bin", []byte("gamma")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := b.Get(ctx, "a_1.bin")
			if err != nil || string(got) != "alpha" {
				t.Fatalf("Get = %q, %v; want alpha", got, err)
			}

			// Overwrite replaces content.
			if err := b.Put(ctx, "a_1.bin", []byte("alpha2")); err != nil {
				t.Fatalf("Put overwrite: %v", err)
			}
			got, err = b.Get(ctx, "a_1.bin")
			if err != nil || string(got) != "alpha2" {
				t.Fatalf("Get after overwrite = %q, %v; want alpha2", got, err)
			}

			names, err := b.List(ctx, "a_")
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			if want := []string{"a_1.bin", "a_2.bin"}; !reflect.DeepEqual(names, want) {
				t.Fatalf("List(a_) = %v, want %v", names, want)
			}

			if err := b.Delete(ctx, "a_1.bin"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if ok, _ := b.Has(ctx, "a_1.bin"); ok {
				t.Fatal("Has after delete = true")
			}
			if _, err := b.Get(ctx, "a_1.bin"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after delete = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestBackendCancelledContext(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := b.Put(ctx, "x", []byte("y")); !errors.Is(err, context.Canceled) {
				t.Fatalf("Put(cancelled) = %v, want context.Canceled", err)
			}
			if _, err := b.Get(ctx, "x"); !errors.Is(err, context.Canceled) {
				t.Fatalf("Get(cancelled) = %v, want context.Canceled", err)
			}
		})
	}
}

func TestLocalNameEscapesRejected(t *testing.T) {
	l, err := NewLocal(t.TempDir())
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	ctx := context.Background()
	for _, name := range []string{"", "../evil", "/abs", "a/../../evil"} {
		if err := l.Put(ctx, name, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted, want error", name)
		}
	}
	// Subdirectory names are legitimate (quarantine/...).
	if err := l.Put(ctx, "quarantine/c_1.ctn", []byte("x")); err != nil {
		t.Fatalf("Put(quarantine/c_1.ctn): %v", err)
	}
	names, err := l.List(ctx, "quarantine/")
	if err != nil || len(names) != 1 || names[0] != "quarantine/c_1.ctn" {
		t.Fatalf("List = %v, %v", names, err)
	}
}

func TestLocalSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "quarantine")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		filepath.Join(dir, durable.TempPrefix+"stale1"),
		filepath.Join(sub, durable.TempPrefix+"stale2"),
	} {
		if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewLocal(dir); err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	for _, p := range []string{
		filepath.Join(dir, durable.TempPrefix+"stale1"),
		filepath.Join(sub, durable.TempPrefix+"stale2"),
	} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("stale temp %s survived reopen", p)
		}
	}
}

func TestRemoteSimDeterminism(t *testing.T) {
	run := func() SimStats {
		sim := NewRemoteSim(NewMem(), SimOptions{ErrRate: 0.3, Seed: 7})
		ctx := context.Background()
		for i := 0; i < 50; i++ {
			//hidelint:ignore discarded-error fault injection makes failures expected; the stats are the assertion
			_ = sim.Put(ctx, fmt.Sprintf("blob%d", i), []byte("payload"))
		}
		return sim.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Transient == 0 {
		t.Fatal("ErrRate 0.3 over 50 ops injected nothing")
	}
	if a.Transient == a.Ops {
		t.Fatal("every op failed; injection is not probabilistic")
	}
}

func TestRemoteSimFailEveryN(t *testing.T) {
	sim := NewRemoteSim(NewMem(), SimOptions{FailEveryN: 3})
	ctx := context.Background()
	var failed int
	for i := 0; i < 9; i++ {
		err := sim.Put(ctx, "x", []byte("y"))
		if err != nil {
			if !IsTransient(err) {
				t.Fatalf("injected error not transient: %v", err)
			}
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("FailEveryN=3 over 9 ops failed %d times, want 3", failed)
	}
}

func TestRemoteSimModeledTime(t *testing.T) {
	// Negative SleepScale: no real sleeping, but the model accumulates
	// latency and transfer time deterministically.
	sim := NewRemoteSim(NewMem(), SimOptions{
		Latency:      time.Millisecond,
		BandwidthBps: 1000, // 1000 bytes/s: a 500-byte blob costs 500ms
		SleepScale:   -1,
	})
	ctx := context.Background()
	start := time.Now()
	if err := sim.Put(ctx, "x", make([]byte, 500)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if wall := time.Since(start); wall > 100*time.Millisecond {
		t.Fatalf("SleepScale 0 slept for real (%v)", wall)
	}
	st := sim.Stats()
	want := time.Millisecond + 500*time.Millisecond
	if st.Modeled != want {
		t.Fatalf("Modeled = %v, want %v", st.Modeled, want)
	}
	if st.Bytes != 500 {
		t.Fatalf("Bytes = %d, want 500", st.Bytes)
	}
}

// flaky fails every op with a transient error until n attempts have
// been made, then delegates.
type flaky struct {
	Backend
	mu       sync.Mutex
	failures int
	attempts int
}

func (f *flaky) Get(ctx context.Context, name string) ([]byte, error) {
	f.mu.Lock()
	f.attempts++
	fail := f.attempts <= f.failures
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("%w: flaky", ErrTransient)
	}
	return f.Backend.Get(ctx, name)
}

func TestRetryRecoversTransient(t *testing.T) {
	mem := NewMem()
	if err := mem.Put(context.Background(), "x", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	f := &flaky{Backend: mem, failures: 2}
	var slept []time.Duration
	r := NewRetry(f, RetryOptions{
		Tries:    4,
		MinDelay: 10 * time.Millisecond,
		MaxDelay: time.Second,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	})
	got, err := r.Get(context.Background(), "x")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if st := r.Stats(); st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries", st)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Jittered exponential: retry n draws from [d/2, d], d = 10ms·2^(n-1).
	if slept[0] < 5*time.Millisecond || slept[0] > 10*time.Millisecond {
		t.Errorf("first backoff %v outside [5ms, 10ms]", slept[0])
	}
	if slept[1] < 10*time.Millisecond || slept[1] > 20*time.Millisecond {
		t.Errorf("second backoff %v outside [10ms, 20ms]", slept[1])
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	f := &flaky{Backend: NewMem(), failures: 100}
	r := NewRetry(f, RetryOptions{
		Tries: 3,
		Sleep: func(context.Context, time.Duration) error { return nil },
	})
	_, err := r.Get(context.Background(), "x")
	if !IsTransient(err) {
		t.Fatalf("exhausted retry returned %v, want the transient error", err)
	}
	if st := r.Stats(); st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", st.Attempts)
	}
}

func TestRetryNotFoundFailsFast(t *testing.T) {
	r := NewRetry(NewMem(), RetryOptions{
		Sleep: func(context.Context, time.Duration) error {
			t.Fatal("retry slept for ErrNotFound")
			return nil
		},
	})
	_, err := r.Get(context.Background(), "missing")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get = %v, want ErrNotFound", err)
	}
	if st := r.Stats(); st.Attempts != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want exactly one attempt and no retries", st)
	}
}

func TestLimiterPacesThroughput(t *testing.T) {
	var clock time.Time
	var slept time.Duration
	l := NewLimiter(NewMem(), 1000, 1000) // 1000 B/s, 1000 B burst
	l.now = func() time.Time { return clock }
	l.last = clock
	l.sleep = func(_ context.Context, d time.Duration) error {
		slept += d
		clock = clock.Add(d)
		return nil
	}
	ctx := context.Background()
	// First 1000 bytes ride the burst; the next 500 must be paid for.
	if err := l.Put(ctx, "a", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if slept != 0 {
		t.Fatalf("burst-sized write slept %v", slept)
	}
	if err := l.Put(ctx, "b", make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	if want := 500 * time.Millisecond; slept != want {
		t.Fatalf("slept %v, want %v", slept, want)
	}
}

func TestLimiterChargesGets(t *testing.T) {
	mem := NewMem()
	ctx := context.Background()
	if err := mem.Put(ctx, "x", make([]byte, 600)); err != nil {
		t.Fatal(err)
	}
	var clock time.Time
	var slept time.Duration
	l := NewLimiter(mem, 100, 100)
	l.now = func() time.Time { return clock }
	l.last = clock
	l.sleep = func(_ context.Context, d time.Duration) error {
		slept += d
		clock = clock.Add(d)
		return nil
	}
	if _, err := l.Get(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	// 600 bytes against a 100-token burst leaves 500 tokens of debt.
	if want := 5 * time.Second; slept != want {
		t.Fatalf("slept %v, want %v", slept, want)
	}
}

func TestCacheHitSkipsRemote(t *testing.T) {
	dir := t.TempDir()
	mem := NewMem()
	ctx := context.Background()
	if err := mem.Put(ctx, "c_1.ctn", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	sim := NewRemoteSim(mem, SimOptions{})
	mx := obs.NewBackendMetrics(obs.NewRegistry())
	c, err := NewCache(sim, dir, 1<<20, mx)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.Get(ctx, "c_1.ctn")
		if err != nil || string(got) != "payload" {
			t.Fatalf("Get #%d = %q, %v", i, got, err)
		}
	}
	if ops := sim.Stats().Ops; ops != 1 {
		t.Fatalf("remote saw %d ops, want 1 (cache misses only)", ops)
	}
	if h, m := mx.CacheHits.Value(), mx.CacheMisses.Value(); h != 2 || m != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", h, m)
	}
	if mx.CacheBytes.Value() != int64(len("payload")) {
		t.Fatalf("CacheBytes = %d, want %d", mx.CacheBytes.Value(), len("payload"))
	}
}

func TestCacheSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	mem := NewMem()
	ctx := context.Background()
	if err := mem.Put(ctx, "c_1.ctn", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	sim := NewRemoteSim(mem, SimOptions{})
	c, err := NewCache(sim, dir, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "c_1.ctn"); err != nil {
		t.Fatal(err)
	}
	// Drop a stale temp to verify reopen sweeps it.
	stale := filepath.Join(dir, durable.TempPrefix+"stale")
	if err := os.WriteFile(stale, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Reopen over the same directory: the entry must be served without
	// touching the remote.
	c2, err := NewCache(sim, dir, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := sim.Stats().Ops
	got, err := c2.Get(ctx, "c_1.ctn")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}
	if sim.Stats().Ops != before {
		t.Fatal("reopened cache read through to the remote")
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("reopen did not sweep the stale temp file")
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	mem := NewMem()
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		if err := mem.Put(ctx, fmt.Sprintf("c_%d.ctn", i), make([]byte, 400)); err != nil {
			t.Fatal(err)
		}
	}
	sim := NewRemoteSim(mem, SimOptions{})
	mx := obs.NewBackendMetrics(obs.NewRegistry())
	c, err := NewCache(sim, dir, 1000, mx) // fits two 400-byte blobs
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := c.Get(ctx, fmt.Sprintf("c_%d.ctn", i)); err != nil {
			t.Fatal(err)
		}
	}
	if ev := mx.CacheEvictions.Value(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// c_1 was evicted; re-reading it must go remote.
	before := sim.Stats().Ops
	if _, err := c.Get(ctx, "c_1.ctn"); err != nil {
		t.Fatal(err)
	}
	if sim.Stats().Ops != before+1 {
		t.Fatal("evicted entry served from cache")
	}
	// On-disk footprint matches the index.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, e := range entries {
		if !e.IsDir() {
			files++
		}
	}
	if files != 2 {
		t.Fatalf("%d cache files on disk, want 2", files)
	}
}

func TestCacheInvalidatesBeforeWrite(t *testing.T) {
	dir := t.TempDir()
	mem := NewMem()
	ctx := context.Background()
	if err := mem.Put(ctx, "c_1.ctn", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(mem, dir, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "c_1.ctn"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, "c_1.ctn", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, "c_1.ctn")
	if err != nil || string(got) != "v2" {
		t.Fatalf("Get after overwrite = %q, %v; want v2 (stale cache?)", got, err)
	}
	if err := c.Delete(ctx, "c_1.ctn"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "c_1.ctn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
}

// TestErrNotFoundThroughComposedStack is the satellite audit: the
// sentinel must survive every layer, and the retry layer must not
// re-attempt a missing blob.
func TestErrNotFoundThroughComposedStack(t *testing.T) {
	dir := t.TempDir()
	base, err := NewLocal(filepath.Join(dir, "remote"))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewRemoteSim(base, SimOptions{})
	meter := NewMeter(sim, nil)
	limiter := NewLimiter(meter, 1<<30, 0)
	retry := NewRetry(limiter, RetryOptions{
		Sleep: func(context.Context, time.Duration) error {
			t.Fatal("retry backoff ran for ErrNotFound")
			return nil
		},
	})
	cache, err := NewCache(retry, filepath.Join(dir, "cache"), 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	top := NewObserver(cache, nil, nil)

	if _, err := top.Get(context.Background(), "c_404.ctn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("composed Get(missing) = %v, want errors.Is ErrNotFound", err)
	}
	if st := retry.Stats(); st.Attempts != 1 || st.Retries != 0 {
		t.Fatalf("retry stats for missing blob = %+v, want one attempt, no retries", st)
	}
	if err := top.Delete(context.Background(), "c_404.ctn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("composed Delete(missing) = %v, want ErrNotFound", err)
	}
}
