package backend

import (
	"context"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sync"

	"hidestore/internal/cleanup"
	"hidestore/internal/durable"
	"hidestore/internal/lru"
	"hidestore/internal/obs"
)

// Cache is a persistent local read cache in front of a remote backend:
// fetched blobs are written to a local directory (one file per blob,
// LRU-evicted by total bytes) so repeated restores of the same
// containers skip the remote round-trip. The cache survives process
// restarts — reopening rebuilds the LRU index from the directory, with
// file modification times approximating recency — and sweeps stale
// tmp-* files via internal/durable like every other on-disk component.
//
// Coherence rule: writes and deletes invalidate the cached copy
// *before* they reach the inner backend. A crash between the two steps
// leaves the cache cold for that name, never stale — the cache may
// only ever disagree with the remote by missing an entry.
type Cache struct {
	inner Backend
	dir   string
	mx    *obs.BackendMetrics

	mu    sync.Mutex
	index *lru.Cache[string, int64] // blob name -> cached size (bytes)
}

var _ Backend = (*Cache)(nil)

// NewCache opens (creating if needed) a disk cache at dir holding at
// most capacity bytes of blobs fetched through inner. mx (nil for no
// instrumentation) receives hit/miss/eviction counts and the live
// cache footprint.
func NewCache(inner Backend, dir string, capacity int64, mx *obs.BackendMetrics) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("backend: create cache dir: %w", err)
	}
	if _, err := durable.SweepTemp(dir); err != nil {
		return nil, fmt.Errorf("backend: sweep cache temp files: %w", err)
	}
	index, err := lru.New[string, int64](capacity)
	if err != nil {
		return nil, fmt.Errorf("backend: cache index: %w", err)
	}
	c := &Cache{inner: inner, dir: dir, mx: mx, index: index}
	index.SetOnEvict(func(name string, _ int64) {
		// Callback runs with c.mu held (every index mutation does).
		// Eviction is advisory: a file that refuses to die only wastes
		// disk, so the error is dropped rather than failing the op that
		// triggered the eviction.
		cleanup.Remove(c.filePath(name))
		if c.mx != nil {
			c.mx.CacheEvictions.Inc()
		}
	})
	if err := c.rebuild(); err != nil {
		return nil, err
	}
	return c, nil
}

// filePath maps a blob name to its cache file. Names are URL-escaped
// into a flat namespace so slashes in blob names ("quarantine/…")
// cannot escape the cache directory.
func (c *Cache) filePath(name string) string {
	return filepath.Join(c.dir, url.QueryEscape(name))
}

// rebuild scans the cache directory into the LRU index, oldest
// modification first so the most recently written entries are the last
// to be evicted.
func (c *Cache) rebuild() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("backend: scan cache dir: %w", err)
	}
	type cached struct {
		name string
		size int64
		mod  int64
	}
	var files []cached
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), durable.TempPrefix) {
			continue
		}
		name, err := url.QueryUnescape(e.Name())
		if err != nil {
			// Not one of ours; leave it alone.
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, cached{name: name, size: info.Size(), mod: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	c.mu.Lock()
	for _, f := range files {
		c.index.Add(f.name, f.size, f.size)
	}
	c.syncGauge()
	c.mu.Unlock()
	return nil
}

// syncGauge publishes the cache footprint; callers hold c.mu.
func (c *Cache) syncGauge() {
	if c.mx != nil {
		c.mx.CacheBytes.Set(c.index.Used())
	}
}

// invalidate drops name from the cache (index entry and file); callers
// hold c.mu. Removing the file directly covers blobs the index never
// admitted (oversized entries rejected by the LRU).
func (c *Cache) invalidate(name string) {
	if !c.index.Remove(name) {
		cleanup.Remove(c.filePath(name))
	}
	c.syncGauge()
}

// Get implements Backend: a cached blob is served from disk; a miss
// reads through, then caches the result. Concurrent misses on the same
// name each fetch (the writes are idempotent last-wins renames).
func (c *Cache) Get(ctx context.Context, name string) ([]byte, error) {
	c.mu.Lock()
	if _, ok := c.index.Get(name); ok {
		data, err := os.ReadFile(c.filePath(name))
		if err == nil {
			c.mu.Unlock()
			if c.mx != nil {
				c.mx.CacheHits.Inc()
			}
			return data, nil
		}
		// The cached file is unreadable (tampered, swept, disk fault):
		// drop it and fall through to a remote read. Serving the error
		// would turn a cache problem into a restore failure.
		c.invalidate(name)
	}
	c.mu.Unlock()
	if c.mx != nil {
		c.mx.CacheMisses.Inc()
	}
	data, err := c.inner.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if werr := durable.WriteFileAtomic(c.filePath(name), data, 0o644); werr == nil {
		c.index.Add(name, int64(len(data)), int64(len(data)))
		c.syncGauge()
	}
	// A failed cache write is not a failed Get — the data is in hand;
	// the blob simply stays uncached.
	c.mu.Unlock()
	return data, nil
}

// Put implements Backend, invalidating the cached copy first (see the
// coherence rule above).
func (c *Cache) Put(ctx context.Context, name string, data []byte) error {
	c.mu.Lock()
	c.invalidate(name)
	c.mu.Unlock()
	return c.inner.Put(ctx, name, data)
}

// Delete implements Backend, invalidating the cached copy first.
func (c *Cache) Delete(ctx context.Context, name string) error {
	c.mu.Lock()
	c.invalidate(name)
	c.mu.Unlock()
	return c.inner.Delete(ctx, name)
}

// Has implements Backend. Existence checks go to the source of truth:
// the cache can lag behind deletes performed by another writer, and
// Has must not resurrect them.
func (c *Cache) Has(ctx context.Context, name string) (bool, error) {
	return c.inner.Has(ctx, name)
}

// List implements Backend, from the source of truth.
func (c *Cache) List(ctx context.Context, prefix string) ([]string, error) {
	return c.inner.List(ctx, prefix)
}
