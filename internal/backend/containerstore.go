package backend

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hidestore/internal/container"
)

// containerPrefix/containerExt mirror the FileStore naming scheme so a
// backend rooted over an existing container directory reads the same
// images.
const (
	containerPrefix = "c_"
	containerExt    = ".ctn"
)

// ContainerName returns the blob name of a container image.
func ContainerName(id container.ID) string {
	return containerPrefix + strconv.FormatUint(uint64(id), 10) + containerExt
}

// ContainerStore adapts a Backend to container.Store. The Store
// interface is deliberately context-free (the engines own cancellation
// at a higher level), so ops run under context.Background; restores
// that need cancellable fetches get it from the restorecache layer,
// which checks its ctx before every read.
//
// Error contract: a blob the backend reports as ErrNotFound surfaces
// as container.ErrNotFound — the sentinel every caller (and the retry
// layer below) keys on — with the original error preserved in the
// chain.
type ContainerStore struct {
	b Backend

	mu    sync.Mutex
	stats container.StoreStats
}

var (
	_ container.Store       = (*ContainerStore)(nil)
	_ container.Quarantiner = (*ContainerStore)(nil)
)

// NewContainerStore adapts b to a container store.
func NewContainerStore(b Backend) *ContainerStore {
	return &ContainerStore{b: b}
}

// Put implements container.Store.
func (s *ContainerStore) Put(c *container.Container) error {
	if c == nil {
		return fmt.Errorf("backend: Put nil container")
	}
	if c.ID() == 0 {
		return fmt.Errorf("backend: Put container with reserved ID 0")
	}
	buf, err := c.MarshalBinary()
	if err != nil {
		return fmt.Errorf("backend: marshal container %d: %w", c.ID(), err)
	}
	if err := s.b.Put(context.Background(), ContainerName(c.ID()), buf); err != nil {
		return fmt.Errorf("backend: put container %d: %w", c.ID(), err)
	}
	s.mu.Lock()
	s.stats.Writes++
	s.stats.BytesWritten += uint64(c.LiveSize())
	s.mu.Unlock()
	return nil
}

// Get implements container.Store.
func (s *ContainerStore) Get(id container.ID) (*container.Container, error) {
	buf, err := s.b.Get(context.Background(), ContainerName(id))
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, fmt.Errorf("%w: container %d: %w", container.ErrNotFound, id, err)
		}
		return nil, fmt.Errorf("backend: read container %d: %w", id, err)
	}
	c, err := container.UnmarshalBinary(buf)
	if err != nil {
		return nil, fmt.Errorf("container %d: %w", id, err)
	}
	s.mu.Lock()
	s.stats.Reads++
	s.stats.BytesRead += uint64(c.LiveSize())
	s.mu.Unlock()
	return c, nil
}

// Delete implements container.Store.
func (s *ContainerStore) Delete(id container.ID) error {
	if err := s.b.Delete(context.Background(), ContainerName(id)); err != nil {
		if errors.Is(err, ErrNotFound) {
			return fmt.Errorf("%w: container %d: %w", container.ErrNotFound, id, err)
		}
		return fmt.Errorf("backend: delete container %d: %w", id, err)
	}
	s.mu.Lock()
	s.stats.Deletes++
	s.mu.Unlock()
	return nil
}

// Has implements container.Store.
func (s *ContainerStore) Has(id container.ID) (bool, error) {
	ok, err := s.b.Has(context.Background(), ContainerName(id))
	if err != nil {
		return false, fmt.Errorf("backend: stat container %d: %w", id, err)
	}
	return ok, nil
}

// IDs implements container.Store. Quarantined images live under the
// "quarantine/" prefix and are excluded by construction.
func (s *ContainerStore) IDs() ([]container.ID, error) {
	names, err := s.b.List(context.Background(), containerPrefix)
	if err != nil {
		return nil, fmt.Errorf("backend: list containers: %w", err)
	}
	ids := make([]container.ID, 0, len(names))
	for _, name := range names {
		if !strings.HasSuffix(name, containerExt) {
			continue
		}
		n, err := strconv.ParseUint(name[len(containerPrefix):len(name)-len(containerExt)], 10, 32)
		if err != nil {
			continue
		}
		ids = append(ids, container.ID(n))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Len implements container.Store.
func (s *ContainerStore) Len() (int, error) {
	ids, err := s.IDs()
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// Quarantine implements container.Quarantiner by copying the image
// under the quarantine/ prefix and then deleting the original — copy
// before delete, so no crash point loses the only copy of the bytes.
// The returned path is the quarantine blob name.
func (s *ContainerStore) Quarantine(id container.ID) (string, error) {
	ctx := context.Background()
	src := ContainerName(id)
	buf, err := s.b.Get(ctx, src)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return "", fmt.Errorf("%w: container %d: %w", container.ErrNotFound, id, err)
		}
		return "", fmt.Errorf("backend: quarantine read %d: %w", id, err)
	}
	dst := container.QuarantineDir + "/" + src
	if err := s.b.Put(ctx, dst, buf); err != nil {
		return "", fmt.Errorf("backend: quarantine copy %d: %w", id, err)
	}
	if err := s.b.Delete(ctx, src); err != nil {
		return "", fmt.Errorf("backend: quarantine remove %d: %w", id, err)
	}
	return dst, nil
}

// Stats implements container.Store.
func (s *ContainerStore) Stats() container.StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements container.Store.
func (s *ContainerStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = container.StoreStats{}
}
