package backend

import (
	"context"
	"sync"
	"time"
)

// Limiter caps a Backend's payload throughput with a token bucket:
// each byte moved costs one token, tokens refill at Rate per second up
// to Burst. An op that overdraws the bucket sleeps until the debt is
// repaid (a negative-balance bucket: the op proceeds immediately but
// pays its transfer time before returning), which paces sustained
// throughput at Rate without stalling small metadata ops.
//
// Puts charge before the inner write (the size is known up front);
// Gets charge after the read (the size is only known then). Delete,
// Has and List move no payload and are not charged.
type Limiter struct {
	inner Backend

	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time

	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

var _ Backend = (*Limiter)(nil)

// NewLimiter wraps inner with a token bucket of rate bytes/second.
// Burst defaults to one second's worth of tokens when burst <= 0.
func NewLimiter(inner Backend, rate float64, burst float64) *Limiter {
	if burst <= 0 {
		burst = rate
	}
	l := &Limiter{
		inner: inner,
		rate:  rate,
		burst: burst,
		now:   time.Now,
		sleep: sleepCtx,
	}
	l.tokens = burst
	l.last = l.now()
	return l
}

// take withdraws n tokens, sleeping off any resulting debt.
func (l *Limiter) take(ctx context.Context, n int) error {
	if n <= 0 || l.rate <= 0 {
		return ctx.Err()
	}
	l.mu.Lock()
	now := l.now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	l.last = now
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.tokens -= float64(n)
	var wait time.Duration
	if l.tokens < 0 {
		wait = time.Duration(-l.tokens / l.rate * float64(time.Second))
	}
	l.mu.Unlock()
	return l.sleep(ctx, wait)
}

// Put implements Backend.
func (l *Limiter) Put(ctx context.Context, name string, data []byte) error {
	if err := l.take(ctx, len(data)); err != nil {
		return err
	}
	return l.inner.Put(ctx, name, data)
}

// Get implements Backend.
func (l *Limiter) Get(ctx context.Context, name string) ([]byte, error) {
	data, err := l.inner.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	if err := l.take(ctx, len(data)); err != nil {
		return nil, err
	}
	return data, nil
}

// Delete implements Backend.
func (l *Limiter) Delete(ctx context.Context, name string) error {
	return l.inner.Delete(ctx, name)
}

// Has implements Backend.
func (l *Limiter) Has(ctx context.Context, name string) (bool, error) {
	return l.inner.Has(ctx, name)
}

// List implements Backend.
func (l *Limiter) List(ctx context.Context, prefix string) ([]string, error) {
	return l.inner.List(ctx, prefix)
}
