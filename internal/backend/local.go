package backend

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hidestore/internal/durable"
)

// Local is a Backend over a directory tree. Blob names map to relative
// paths under the root; writes go through durable.WriteFileAtomic so
// the crash contract matches the file stores it replaces.
type Local struct {
	root string
}

var _ Backend = (*Local)(nil)

// NewLocal opens (creating if needed) a local backend rooted at dir,
// sweeping stale tmp-* files a crashed writer left anywhere under it.
func NewLocal(dir string) (*Local, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("backend: create root: %w", err)
	}
	if err := sweepTree(dir); err != nil {
		return nil, err
	}
	return &Local{root: dir}, nil
}

// sweepTree runs durable.SweepTemp over dir and every subdirectory
// (blob names may contain slashes, so temps can be anywhere).
func sweepTree(dir string) error {
	return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return fmt.Errorf("backend: walk %s: %w", path, err)
		}
		if !d.IsDir() {
			return nil
		}
		if _, err := durable.SweepTemp(path); err != nil {
			return fmt.Errorf("backend: sweep stale temp files: %w", err)
		}
		return nil
	})
}

// Root returns the backing directory.
func (l *Local) Root() string { return l.root }

// path maps a blob name to its file path, rejecting escapes from the
// root ("..", absolute names).
func (l *Local) path(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("backend: empty blob name")
	}
	clean := filepath.Clean(filepath.FromSlash(name))
	if filepath.IsAbs(clean) || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("backend: blob name %q escapes root", name)
	}
	return filepath.Join(l.root, clean), nil
}

// Put implements Backend.
func (l *Local) Put(ctx context.Context, name string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := l.path(name)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(p); dir != l.root {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("backend: create dir for %s: %w", name, err)
		}
	}
	if err := durable.WriteFileAtomic(p, data, 0o644); err != nil {
		return fmt.Errorf("backend: put %s: %w", name, err)
	}
	return nil
}

// Get implements Backend.
func (l *Local) Get(ctx context.Context, name string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := l.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return nil, fmt.Errorf("backend: get %s: %w", name, err)
	}
	return data, nil
}

// Delete implements Backend.
func (l *Local) Delete(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := l.path(name)
	if err != nil {
		return err
	}
	if err := durable.Remove(p); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return fmt.Errorf("backend: delete %s: %w", name, err)
	}
	return nil
}

// Has implements Backend. A stat failure other than not-exist surfaces
// instead of reading as "absent".
func (l *Local) Has(ctx context.Context, name string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	p, err := l.path(name)
	if err != nil {
		return false, err
	}
	_, err = os.Stat(p)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, fs.ErrNotExist):
		return false, nil
	default:
		return false, fmt.Errorf("backend: stat %s: %w", name, err)
	}
}

// List implements Backend, walking the tree and returning slash-form
// relative names. In-flight temp files are invisible.
func (l *Local) List(ctx context.Context, prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(l.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return fmt.Errorf("backend: list: %w", err)
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), durable.TempPrefix) {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return fmt.Errorf("backend: list: %w", err)
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}
