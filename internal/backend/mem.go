package backend

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Mem is an in-memory Backend, the blob-level analogue of the memory
// stores: experiments and tests compose it under the remote simulator
// when no directory is configured.
type Mem struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

var _ Backend = (*Mem)(nil)

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{blobs: make(map[string][]byte)}
}

// Put implements Backend. The data is copied: callers may reuse their
// buffer, mirroring the snapshot semantics of the stores above.
func (m *Mem) Put(ctx context.Context, name string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("backend: empty blob name")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.blobs[name] = cp
	m.mu.Unlock()
	return nil
}

// Get implements Backend. The returned slice is a copy.
func (m *Mem) Get(ctx context.Context, name string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.blobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Delete implements Backend.
func (m *Mem) Delete(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(m.blobs, name)
	return nil
}

// Has implements Backend.
func (m *Mem) Has(ctx context.Context, name string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.blobs[name]
	return ok, nil
}

// List implements Backend.
func (m *Mem) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.blobs))
	for name := range m.blobs {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}
