package backend

import (
	"context"
	"time"

	"hidestore/internal/obs"
)

// Meter counts the traffic that passes through it into a BackendMetrics
// bundle. Placed directly above the remote layer it counts remote ops,
// payload bytes and transient failures — the cache sits higher, so
// cache hits never reach it.
type Meter struct {
	inner Backend
	mx    *obs.BackendMetrics
}

var _ Backend = (*Meter)(nil)

// NewMeter wraps inner; a nil mx passes through uncounted.
func NewMeter(inner Backend, mx *obs.BackendMetrics) *Meter {
	return &Meter{inner: inner, mx: mx}
}

func (m *Meter) count(n int, err error) {
	if m.mx == nil {
		return
	}
	m.mx.RemoteOps.Inc()
	if n > 0 {
		m.mx.RemoteBytes.Add(uint64(n))
	}
	if IsTransient(err) {
		m.mx.TransientErrors.Inc()
	}
}

// Put implements Backend.
func (m *Meter) Put(ctx context.Context, name string, data []byte) error {
	err := m.inner.Put(ctx, name, data)
	m.count(len(data), err)
	return err
}

// Get implements Backend.
func (m *Meter) Get(ctx context.Context, name string) ([]byte, error) {
	data, err := m.inner.Get(ctx, name)
	m.count(len(data), err)
	return data, err
}

// Delete implements Backend.
func (m *Meter) Delete(ctx context.Context, name string) error {
	err := m.inner.Delete(ctx, name)
	m.count(0, err)
	return err
}

// Has implements Backend.
func (m *Meter) Has(ctx context.Context, name string) (bool, error) {
	ok, err := m.inner.Has(ctx, name)
	m.count(0, err)
	return ok, err
}

// List implements Backend.
func (m *Meter) List(ctx context.Context, prefix string) ([]string, error) {
	names, err := m.inner.List(ctx, prefix)
	m.count(0, err)
	return names, err
}

// Observer sits at the top of a backend stack and records per-read
// fetch latency (through every layer below, cache hits included) and
// trace spans for reads and writes. Metadata ops pass through.
type Observer struct {
	inner  Backend
	mx     *obs.BackendMetrics
	tracer *obs.Tracer
}

var _ Backend = (*Observer)(nil)

// NewObserver wraps inner. Both mx and tracer may be nil.
func NewObserver(inner Backend, mx *obs.BackendMetrics, tracer *obs.Tracer) *Observer {
	return &Observer{inner: inner, mx: mx, tracer: tracer}
}

// Get implements Backend.
func (o *Observer) Get(ctx context.Context, name string) ([]byte, error) {
	span := o.tracer.Start("backend.get", nil)
	start := time.Now()
	data, err := o.inner.Get(ctx, name)
	if o.mx != nil {
		o.mx.FetchNS.Observe(uint64(time.Since(start)))
	}
	span.SetAttr("bytes", int64(len(data)))
	span.End()
	return data, err
}

// Put implements Backend.
func (o *Observer) Put(ctx context.Context, name string, data []byte) error {
	span := o.tracer.Start("backend.put", nil)
	span.SetAttr("bytes", int64(len(data)))
	err := o.inner.Put(ctx, name, data)
	span.End()
	return err
}

// Delete implements Backend.
func (o *Observer) Delete(ctx context.Context, name string) error {
	return o.inner.Delete(ctx, name)
}

// Has implements Backend.
func (o *Observer) Has(ctx context.Context, name string) (bool, error) {
	return o.inner.Has(ctx, name)
}

// List implements Backend.
func (o *Observer) List(ctx context.Context, prefix string) ([]string, error) {
	return o.inner.List(ctx, prefix)
}
