package backend

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hidestore/internal/recipe"
)

const (
	recipePrefix = "r_"
	recipeExt    = ".rcp"
)

// RecipeName returns the blob name of a version's recipe.
func RecipeName(version int) string {
	return recipePrefix + strconv.Itoa(version) + recipeExt
}

// RecipeStore adapts a Backend to recipe.Store, mirroring the
// FileStore naming scheme (r_<version>.rcp). Like ContainerStore, the
// Store interface is context-free by design, so ops run under
// context.Background. ErrNotFound maps to recipe.ErrNotFound with the
// chain preserved.
type RecipeStore struct {
	b Backend
}

var _ recipe.Store = (*RecipeStore)(nil)

// NewRecipeStore adapts b to a recipe store.
func NewRecipeStore(b Backend) *RecipeStore {
	return &RecipeStore{b: b}
}

// Put implements recipe.Store.
func (s *RecipeStore) Put(r *recipe.Recipe) error {
	if r == nil {
		return fmt.Errorf("backend: Put nil recipe")
	}
	if r.Version <= 0 {
		return fmt.Errorf("backend: Put version %d (must be positive)", r.Version)
	}
	buf, err := r.MarshalBinary()
	if err != nil {
		return fmt.Errorf("backend: marshal recipe v%d: %w", r.Version, err)
	}
	if err := s.b.Put(context.Background(), RecipeName(r.Version), buf); err != nil {
		return fmt.Errorf("backend: put recipe v%d: %w", r.Version, err)
	}
	return nil
}

// Get implements recipe.Store.
func (s *RecipeStore) Get(version int) (*recipe.Recipe, error) {
	buf, err := s.b.Get(context.Background(), RecipeName(version))
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, fmt.Errorf("%w: version %d: %w", recipe.ErrNotFound, version, err)
		}
		return nil, fmt.Errorf("backend: read recipe v%d: %w", version, err)
	}
	r, err := recipe.UnmarshalBinary(buf)
	if err != nil {
		return nil, fmt.Errorf("recipe v%d: %w", version, err)
	}
	return r, nil
}

// Delete implements recipe.Store.
func (s *RecipeStore) Delete(version int) error {
	if err := s.b.Delete(context.Background(), RecipeName(version)); err != nil {
		if errors.Is(err, ErrNotFound) {
			return fmt.Errorf("%w: version %d: %w", recipe.ErrNotFound, version, err)
		}
		return fmt.Errorf("backend: delete recipe v%d: %w", version, err)
	}
	return nil
}

// Has implements recipe.Store.
func (s *RecipeStore) Has(version int) (bool, error) {
	ok, err := s.b.Has(context.Background(), RecipeName(version))
	if err != nil {
		return false, fmt.Errorf("backend: stat recipe v%d: %w", version, err)
	}
	return ok, nil
}

// Versions implements recipe.Store.
func (s *RecipeStore) Versions() ([]int, error) {
	names, err := s.b.List(context.Background(), recipePrefix)
	if err != nil {
		return nil, fmt.Errorf("backend: list recipes: %w", err)
	}
	out := make([]int, 0, len(names))
	for _, name := range names {
		if !strings.HasSuffix(name, recipeExt) {
			continue
		}
		n, err := strconv.Atoi(name[len(recipePrefix) : len(name)-len(recipeExt)])
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// Len implements recipe.Store.
func (s *RecipeStore) Len() (int, error) {
	versions, err := s.Versions()
	if err != nil {
		return 0, err
	}
	return len(versions), nil
}
