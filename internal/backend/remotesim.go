package backend

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// SimOptions configures the remote simulator.
type SimOptions struct {
	// Latency is the fixed per-operation round-trip added to every op.
	Latency time.Duration
	// BandwidthBps caps payload transfer in bytes per second; 0 means
	// unlimited. Gets charge the fetched size, Puts the written size.
	BandwidthBps float64
	// ErrRate is the probability (0..1) that an op fails with a
	// transient error before touching the inner backend; the op is then
	// safe to retry. Draws come from a deterministic seeded stream, like
	// internal/fault.
	ErrRate float64
	// FailEveryN, when positive, deterministically fails every Nth op
	// transiently (counting from 1) — the crash matrix and conformance
	// tests use it so one retry always succeeds. Composes with ErrRate.
	FailEveryN int
	// Seed seeds the error stream; the same seed and op sequence yields
	// the same injected failures.
	Seed int64
	// SleepScale scales the real sleeps (latency and transfer time):
	// 0 (the default) sleeps in full, a fraction sleeps that fraction,
	// and any negative value disables real sleeping entirely while
	// still accumulating modeled time. Experiments use -1 to sweep
	// multi-ms latencies without multi-minute runs; the Modeled stat
	// stays exact either way.
	SleepScale float64
}

// SimStats counts what the simulated remote saw. Modeled is the
// deterministic time the configured latency and bandwidth would have
// cost — the experiment harness reports it instead of wall time, so
// sweep results are reproducible on any machine.
type SimStats struct {
	Ops       uint64
	Bytes     uint64
	Transient uint64
	Modeled   time.Duration
}

// RemoteSim wraps a Backend with deterministic remote-storage behavior:
// per-op latency, a bandwidth cap on payload bytes, and seeded
// transient faults. Injection happens before the inner op runs, so a
// failed op has no side effects and is always safe to retry.
type RemoteSim struct {
	inner Backend
	opts  SimOptions

	mu    sync.Mutex
	rng   *rand.Rand
	ops   uint64
	stats SimStats
}

var _ Backend = (*RemoteSim)(nil)

// NewRemoteSim wraps inner with the simulated remote behavior.
func NewRemoteSim(inner Backend, opts SimOptions) *RemoteSim {
	return &RemoteSim{
		inner: inner,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
}

// Stats returns a snapshot of the simulator's counters.
func (s *RemoteSim) Stats() SimStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// begin counts one op and decides whether to inject a transient
// failure. The rng sits behind the mutex so concurrent prefetch
// workers draw from one deterministic stream.
func (s *RemoteSim) begin() (op uint64, inject bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	s.stats.Ops++
	s.stats.Modeled += s.opts.Latency
	op = s.ops
	if s.opts.FailEveryN > 0 && op%uint64(s.opts.FailEveryN) == 0 {
		inject = true
	}
	if !inject && s.opts.ErrRate > 0 && s.rng.Float64() < s.opts.ErrRate {
		inject = true
	}
	if inject {
		s.stats.Transient++
	}
	return op, inject
}

// charge accounts payload bytes and returns the modeled transfer time.
func (s *RemoteSim) charge(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Bytes += uint64(n)
	if s.opts.BandwidthBps <= 0 {
		return 0
	}
	d := time.Duration(float64(n) / s.opts.BandwidthBps * float64(time.Second))
	s.stats.Modeled += d
	return d
}

// sleep waits the scaled duration or until ctx is done.
func (s *RemoteSim) sleep(ctx context.Context, d time.Duration) error {
	scale := s.opts.SleepScale
	if scale == 0 {
		scale = 1
	}
	d = time.Duration(float64(d) * scale)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enter pays the op's latency and injects a fault if one was drawn.
func (s *RemoteSim) enter(ctx context.Context, verb, name string) error {
	op, inject := s.begin()
	if err := s.sleep(ctx, s.opts.Latency); err != nil {
		return err
	}
	if inject {
		return fmt.Errorf("%w: simulated %s %s (op %d)", ErrTransient, verb, name, op)
	}
	return nil
}

// Put implements Backend.
func (s *RemoteSim) Put(ctx context.Context, name string, data []byte) error {
	if err := s.enter(ctx, "put", name); err != nil {
		return err
	}
	if err := s.sleep(ctx, s.charge(len(data))); err != nil {
		return err
	}
	return s.inner.Put(ctx, name, data)
}

// Get implements Backend.
func (s *RemoteSim) Get(ctx context.Context, name string) ([]byte, error) {
	if err := s.enter(ctx, "get", name); err != nil {
		return nil, err
	}
	data, err := s.inner.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	if err := s.sleep(ctx, s.charge(len(data))); err != nil {
		return nil, err
	}
	return data, nil
}

// Delete implements Backend.
func (s *RemoteSim) Delete(ctx context.Context, name string) error {
	if err := s.enter(ctx, "delete", name); err != nil {
		return err
	}
	return s.inner.Delete(ctx, name)
}

// Has implements Backend.
func (s *RemoteSim) Has(ctx context.Context, name string) (bool, error) {
	if err := s.enter(ctx, "has", name); err != nil {
		return false, err
	}
	return s.inner.Has(ctx, name)
}

// List implements Backend.
func (s *RemoteSim) List(ctx context.Context, prefix string) ([]string, error) {
	if err := s.enter(ctx, "list", prefix); err != nil {
		return nil, err
	}
	return s.inner.List(ctx, prefix)
}
