package backend

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RetryOptions configures the retry layer.
type RetryOptions struct {
	// Tries is the total attempt budget per op (default 4).
	Tries int
	// MinDelay is the backoff before the first retry (default 10ms);
	// it doubles per retry, capped at MaxDelay (default 1s).
	MinDelay time.Duration
	MaxDelay time.Duration
	// Seed seeds the jitter stream (deterministic tests).
	Seed int64
	// Sleep replaces the backoff sleep (tests inject a recorder; nil
	// uses a real ctx-aware sleep).
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, observes each retry after its backoff is
	// scheduled — the composition layer bumps metrics through it.
	OnRetry func(attempt int, err error)
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.Tries <= 0 {
		o.Tries = 4
	}
	if o.MinDelay <= 0 {
		o.MinDelay = 10 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = time.Second
	}
	if o.Sleep == nil {
		o.Sleep = sleepCtx
	}
	return o
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryStats counts the layer's activity.
type RetryStats struct {
	// Attempts counts every inner call, first tries included.
	Attempts uint64
	// Retries counts re-attempts after a transient failure.
	Retries uint64
}

// Retry wraps a Backend with jittered exponential backoff over
// transient failures. The classification is strict: only errors
// matching ErrTransient are retried; ErrNotFound, corruption and every
// other error fail fast — retrying a missing container cannot help and
// only hides bugs (see DESIGN.md's retry classification table).
type Retry struct {
	inner Backend
	opts  RetryOptions

	mu    sync.Mutex
	rng   *rand.Rand
	stats RetryStats
}

var _ Backend = (*Retry)(nil)

// NewRetry wraps inner with retry behavior.
func NewRetry(inner Backend, opts RetryOptions) *Retry {
	opts = opts.withDefaults()
	return &Retry{
		inner: inner,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
}

// Stats returns a snapshot of the attempt counters.
func (r *Retry) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// backoff returns the jittered delay before retry number n (1-based):
// uniformly drawn from [d/2, d) where d = MinDelay·2^(n-1), capped at
// MaxDelay.
func (r *Retry) backoff(n int) time.Duration {
	d := r.opts.MinDelay << (n - 1)
	if d > r.opts.MaxDelay || d <= 0 {
		d = r.opts.MaxDelay
	}
	r.mu.Lock()
	jitter := time.Duration(r.rng.Int63n(int64(d/2) + 1))
	r.mu.Unlock()
	return d/2 + jitter
}

// do runs op under the retry policy.
func (r *Retry) do(ctx context.Context, op func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		r.mu.Lock()
		r.stats.Attempts++
		r.mu.Unlock()
		err = op()
		if err == nil || !IsTransient(err) || attempt >= r.opts.Tries {
			return err
		}
		if serr := r.opts.Sleep(ctx, r.backoff(attempt)); serr != nil {
			return serr
		}
		r.mu.Lock()
		r.stats.Retries++
		r.mu.Unlock()
		if r.opts.OnRetry != nil {
			r.opts.OnRetry(attempt, err)
		}
	}
}

// Put implements Backend.
func (r *Retry) Put(ctx context.Context, name string, data []byte) error {
	return r.do(ctx, func() error { return r.inner.Put(ctx, name, data) })
}

// Get implements Backend.
func (r *Retry) Get(ctx context.Context, name string) ([]byte, error) {
	var out []byte
	err := r.do(ctx, func() error {
		var err error
		out, err = r.inner.Get(ctx, name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Delete implements Backend.
func (r *Retry) Delete(ctx context.Context, name string) error {
	return r.do(ctx, func() error { return r.inner.Delete(ctx, name) })
}

// Has implements Backend.
func (r *Retry) Has(ctx context.Context, name string) (bool, error) {
	var out bool
	err := r.do(ctx, func() error {
		var err error
		out, err = r.inner.Has(ctx, name)
		return err
	})
	if err != nil {
		return false, err
	}
	return out, nil
}

// List implements Backend.
func (r *Retry) List(ctx context.Context, prefix string) ([]string, error) {
	var out []string
	err := r.do(ctx, func() error {
		var err error
		out, err = r.inner.List(ctx, prefix)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
