package backend

import (
	"hidestore/internal/obs"
)

// StackOptions assembles the canonical remote stack over a base
// backend. Zero values disable the optional layers.
type StackOptions struct {
	// Sim configures the remote simulator (always present in a stack —
	// a zero SimOptions is a perfect remote with no latency or faults).
	Sim SimOptions
	// Retry configures the retry layer (zero fields take defaults).
	Retry RetryOptions
	// RateBps caps payload throughput in bytes/second; 0 disables the
	// limiter.
	RateBps float64
	// CacheDir and CacheBytes enable the persistent read cache when
	// both are set; the cache fronts container fetches only, so recipe
	// and state stacks leave them zero.
	CacheDir   string
	CacheBytes int64
	// Metrics and Tracer wire the stack into the observability plane
	// (both may be nil).
	Metrics *obs.BackendMetrics
	Tracer  *obs.Tracer
}

// NewStack composes base into Observer(Cache(Retry(Limiter(Meter(
// RemoteSim(base)))))): the cache sits above the retry layer so hits
// skip the whole remote path, retry sits above the limiter so every
// attempt is paced, and the meter hugs the simulator so it counts only
// traffic that actually reached the remote. The returned *RemoteSim
// exposes the deterministic traffic counters the experiment harness
// reports.
func NewStack(base Backend, opts StackOptions) (Backend, *RemoteSim, error) {
	sim := NewRemoteSim(base, opts.Sim)
	var b Backend = NewMeter(sim, opts.Metrics)
	if opts.RateBps > 0 {
		b = NewLimiter(b, opts.RateBps, 0)
	}
	retryOpts := opts.Retry
	if mx := opts.Metrics; mx != nil {
		prev := retryOpts.OnRetry
		retryOpts.OnRetry = func(attempt int, err error) {
			mx.Retries.Inc()
			if prev != nil {
				prev(attempt, err)
			}
		}
	}
	b = NewRetry(b, retryOpts)
	if opts.CacheDir != "" && opts.CacheBytes > 0 {
		c, err := NewCache(b, opts.CacheDir, opts.CacheBytes, opts.Metrics)
		if err != nil {
			return nil, nil, err
		}
		b = c
	}
	return NewObserver(b, opts.Metrics, opts.Tracer), sim, nil
}
