package backend

import (
	"testing"
	"time"

	"hidestore/internal/container"
	"hidestore/internal/container/containertest"
	"hidestore/internal/obs"
)

// composedStack builds the full remote-sim × retry × cache stack the
// CLI's remote backend uses, with deterministic fault injection tuned
// so the retry layer absorbs every transient.
func composedStack(t *testing.T) Backend {
	t.Helper()
	base, err := NewLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := NewStack(base, StackOptions{
		Sim: SimOptions{FailEveryN: 5, Seed: 42, SleepScale: -1},
		Retry: RetryOptions{
			Tries:    4,
			MinDelay: 10 * time.Microsecond,
			MaxDelay: 100 * time.Microsecond,
			Seed:     1,
		},
		RateBps:    1 << 30,
		CacheDir:   t.TempDir(),
		CacheBytes: 1 << 20,
		Metrics:    obs.NewBackendMetrics(obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestContainerStoreConformance runs the container.Store contract suite
// against the backend adapter at three composition depths: a bare
// in-memory backend, a bare local-filesystem backend, and the full
// composed stack. The ISSUE's accounting requirement rides on the
// StatsCounting subtest: reads and writes counted by the adapter must be
// identical with the cache interposed, because the cache accelerates
// fetches below the adapter rather than swallowing them above it.
func TestContainerStoreConformance(t *testing.T) {
	t.Run("backend-mem", func(t *testing.T) {
		containertest.RunStoreSuite(t, func(t *testing.T) container.Store {
			return NewContainerStore(NewMem())
		})
	})
	t.Run("backend-local", func(t *testing.T) {
		containertest.RunStoreSuite(t, func(t *testing.T) container.Store {
			base, err := NewLocal(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return NewContainerStore(base)
		})
	})
	t.Run("backend-stack", func(t *testing.T) {
		containertest.RunStoreSuite(t, func(t *testing.T) container.Store {
			return NewContainerStore(composedStack(t))
		})
	})
}
