// Package backup defines the engine abstraction shared by the baseline
// destor-style engine (internal/dedup) and the HiDeStore engine
// (internal/core): backing up version streams, restoring them, deleting
// expired versions, and reporting the metrics the paper's evaluation is
// built from.
package backup

import (
	"context"
	"fmt"
	"io"
	"time"

	"hidestore/internal/index"
	"hidestore/internal/layout"
	"hidestore/internal/restorecache"
	"hidestore/internal/rewrite"
)

// BackupReport summarizes one version's deduplication.
type BackupReport struct {
	// Version is the version number assigned (1-based, sequential).
	Version int
	// LogicalBytes is the size of the incoming stream.
	LogicalBytes uint64
	// StoredBytes is the payload newly written to containers (unique +
	// rewritten chunks).
	StoredBytes uint64
	// Chunks and UniqueChunks count the stream's chunks and how many were
	// stored.
	Chunks       int
	UniqueChunks int
	// IndexStats snapshots the index counters for this version alone.
	IndexStats index.Stats
	// RewriteStats snapshots rewriting counters for this version alone
	// (zero-valued for engines that never rewrite).
	RewriteStats rewrite.Stats
	// Duration is the wall time of the dedup phase.
	Duration time.Duration
	// MaintenanceDuration is HiDeStore's post-version work: migrating
	// cold chunks, merging sparse containers and updating the previous
	// recipe (§5.4, Figure 12). Zero for the baseline engine.
	MaintenanceDuration time.Duration
	// MigrateDuration is the move-chunks + merge-sparse-containers part
	// of maintenance (Figure 12's "moving chunks" series).
	MigrateDuration time.Duration
	// RecipeUpdateDuration is the previous-recipe rewrite part of
	// maintenance (Figure 12's "updating recipes" series).
	RecipeUpdateDuration time.Duration
}

// DedupRatio is eliminated bytes over logical bytes for this version.
func (r BackupReport) DedupRatio() float64 {
	if r.LogicalBytes == 0 {
		return 0
	}
	return float64(r.LogicalBytes-r.StoredBytes) / float64(r.LogicalBytes)
}

// RestoreReport summarizes one restore run.
type RestoreReport struct {
	Version int
	Stats   restorecache.Stats
	// Duration includes any recipe flattening needed before reading.
	Duration time.Duration
	// RecipeUpdateDuration is the offline Algorithm 1 time (HiDeStore
	// only; zero for the baseline engine).
	RecipeUpdateDuration time.Duration
}

// DeleteReport summarizes removing an expired version.
type DeleteReport struct {
	Version int
	// ContainersDeleted counts containers removed outright.
	ContainersDeleted int
	// ContainersRewritten counts containers compacted in place (baseline
	// garbage collection; always zero for HiDeStore, §5.5).
	ContainersRewritten int
	// ChunksScanned is the reference-detection effort: how many chunk
	// references had to be examined to decide what was garbage.
	ChunksScanned int
	// BytesReclaimed is the payload space freed.
	BytesReclaimed uint64
	Duration       time.Duration
}

// Stats is an engine-wide snapshot.
type Stats struct {
	Versions      int
	LogicalBytes  uint64
	StoredBytes   uint64
	Containers    int
	IndexStats    index.Stats
	IndexMemBytes int64
	RewriteStats  rewrite.Stats
	// Degraded names snapshot fields that could not be computed (e.g. a
	// container directory that failed to enumerate), with the reason,
	// plus any persistent damage the online scrubber has found ("scrub:"
	// prefixed). Empty means every field above is trustworthy and no
	// scrubbed container was corrupt. Stats itself stays infallible — a
	// monitoring read must not fail outright because one counter is
	// unavailable — but the gap is flagged, not silent.
	Degraded []string
}

// DedupRatio is the cumulative eliminated-bytes ratio (the paper's
// Figure 8 metric: eliminated size / dataset size).
func (s Stats) DedupRatio() float64 {
	if s.LogicalBytes == 0 {
		return 0
	}
	return float64(s.LogicalBytes-s.StoredBytes) / float64(s.LogicalBytes)
}

// CheckReport summarizes an integrity check (fsck) of a backup store.
type CheckReport struct {
	// Versions and Chunks are the recipes walked and entries resolved.
	Versions int
	Chunks   int
	// Containers and StoredChunks are the container images verified.
	Containers   int
	StoredChunks int
	// Problems lists every inconsistency found, in discovery order.
	Problems []string
}

// OK reports whether the check found no problems.
func (r CheckReport) OK() bool { return len(r.Problems) == 0 }

// Problemf appends a formatted problem.
func (r *CheckReport) Problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Checker is implemented by engines that support offline integrity
// verification.
type Checker interface {
	// Check verifies containers, chunk contents and recipe resolvability
	// without mutating anything.
	Check() (CheckReport, error)
}

// RepairReport summarizes a repairing integrity check (fsck -repair).
// The embedded CheckReport lists what the pass found, including the
// problems the quarantines resolve.
type RepairReport struct {
	CheckReport
	// Quarantined lists the destination paths of container images moved
	// aside because they failed to decode or CRC-check.
	Quarantined []string
	// AffectedVersions lists (ascending) the versions with at least one
	// chunk lost to a quarantined container — the versions an operator
	// must re-seed or accept as damaged.
	AffectedVersions []int
}

// Repairer is implemented by engines whose integrity check can also
// repair: corrupt containers are quarantined (moved aside, never
// deleted) and the versions that lost chunks to them are named.
type Repairer interface {
	Repair() (RepairReport, error)
}

// ScrubStepReport describes one online-scrubber step: one container
// image content-verified (or skipped).
type ScrubStepReport struct {
	// Container is the verified container's ID; 0 when Skipped.
	Container uint64
	// Chunks and Bytes are the stored chunks and payload bytes verified
	// by this step — the step's I/O cost, which throttles the caller.
	Chunks int
	Bytes  uint64
	// Corrupt describes damage that survived the definitive re-read
	// ("" when the container is healthy). Transient read failures that
	// the re-read absorbs are not reported.
	Corrupt string
	// Quarantined is the path the corrupt image was moved to ("" when
	// nothing was quarantined — healthy, or the store cannot).
	Quarantined string
	// PassComplete is true when this step verified the cycle's last
	// container; the next step snapshots a fresh container list.
	PassComplete bool
	// Skipped is true when there was nothing to verify (empty store, or
	// the cursor's container was legitimately deleted since the
	// snapshot).
	Skipped bool
}

// Scrubber is implemented by engines that support online integrity
// scrubbing: continuous VerifyRestore-style verification of container
// images, one container per step so the caller controls the I/O
// throttle. Steps must be serialized with the engine's other
// operations by the caller (engines are single-writer).
type Scrubber interface {
	ScrubStep(ctx context.Context) (ScrubStepReport, error)
}

// ScrubProgressReporter exposes the online scrubber's cursor: how many
// containers of the current pass's snapshot have been verified. done
// equals total between passes (or before the first step). Implemented
// alongside Scrubber; the ops /healthz endpoint reads it.
type ScrubProgressReporter interface {
	ScrubProgress() (done, total int)
}

// LayoutAnalyzer is implemented by engines that can compute a
// version's physical-locality profile — fragmentation, container
// utilization, simulated per-policy restore cost — without performing
// a restore and without mutating any stored state.
type LayoutAnalyzer interface {
	AnalyzeLayout(ctx context.Context, version int, policies []string) (*layout.Report, error)
}

// Engine is a deduplicating backup system.
type Engine interface {
	// Backup deduplicates one version stream and persists it. Versions
	// are numbered sequentially from 1.
	Backup(ctx context.Context, version io.Reader) (BackupReport, error)
	// Restore reassembles a stored version into w.
	Restore(ctx context.Context, version int, w io.Writer) (RestoreReport, error)
	// Delete removes an expired version and reclaims its exclusive space.
	Delete(version int) (DeleteReport, error)
	// Versions lists stored version numbers in ascending order.
	Versions() []int
	// Stats returns an engine-wide snapshot.
	Stats() Stats
}
