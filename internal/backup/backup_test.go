package backup

import (
	"testing"

	"hidestore/internal/restorecache"
)

func TestBackupReportDedupRatio(t *testing.T) {
	tests := []struct {
		name string
		rep  BackupReport
		want float64
	}{
		{"empty", BackupReport{}, 0},
		{"all unique", BackupReport{LogicalBytes: 100, StoredBytes: 100}, 0},
		{"all duplicate", BackupReport{LogicalBytes: 100, StoredBytes: 0}, 1},
		{"half", BackupReport{LogicalBytes: 100, StoredBytes: 50}, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.rep.DedupRatio(); got != tt.want {
				t.Fatalf("DedupRatio = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStatsDedupRatio(t *testing.T) {
	if got := (Stats{}).DedupRatio(); got != 0 {
		t.Fatalf("empty Stats ratio = %v", got)
	}
	st := Stats{LogicalBytes: 1000, StoredBytes: 85}
	if got := st.DedupRatio(); got != 0.915 {
		t.Fatalf("ratio = %v, want 0.915", got)
	}
}

func TestCheckReport(t *testing.T) {
	var rep CheckReport
	if !rep.OK() {
		t.Fatal("empty report should be OK")
	}
	rep.Problemf("container %d is sad", 7)
	if rep.OK() {
		t.Fatal("report with problems should not be OK")
	}
	if rep.Problems[0] != "container 7 is sad" {
		t.Fatalf("Problemf formatting: %q", rep.Problems[0])
	}
}

func TestRestoreReportCarriesStats(t *testing.T) {
	rep := RestoreReport{
		Version: 3,
		Stats:   restorecache.Stats{BytesRestored: 4 << 20, ContainerReads: 2},
	}
	if got := rep.Stats.SpeedFactor(); got != 2.0 {
		t.Fatalf("SpeedFactor = %v", got)
	}
}
