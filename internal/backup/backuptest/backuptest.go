// Package backuptest provides shared helpers for exercising backup.Engine
// implementations (the baseline engine and HiDeStore) against synthetic
// version chains: back up every version, then prove each one restores to
// the exact original bytes.
package backuptest

import (
	"bytes"
	"context"
	"io"
	"testing"

	"hidestore/internal/backup"
	"hidestore/internal/workload"
)

// SmallWorkload returns a laptop-instant workload configuration with the
// given number of versions and flap rate (0 for kernel-like, >0 for
// macos-like).
func SmallWorkload(versions int, flapRate float64) workload.Config {
	return workload.Config{
		Name:          "enginetest",
		Versions:      versions,
		Files:         12,
		BlocksPerFile: 10,
		BlockSize:     4096,
		ModifyRate:    0.08,
		InsertRate:    0.005,
		DeleteRate:    0.003,
		FileChurn:     0.02,
		FlapRate:      flapRate,
		Seed:          1234,
	}
}

// Materialize generates every version of cfg as a byte slice.
func Materialize(t testing.TB, cfg workload.Config) [][]byte {
	t.Helper()
	g, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for g.HasNext() {
		r, err := g.NextVersion()
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

// BackupAll feeds every version into the engine and returns the reports.
func BackupAll(t testing.TB, e backup.Engine, versions [][]byte) []backup.BackupReport {
	t.Helper()
	reports := make([]backup.BackupReport, 0, len(versions))
	for i, data := range versions {
		rep, err := e.Backup(context.Background(), bytes.NewReader(data))
		if err != nil {
			t.Fatalf("backup of version %d: %v", i+1, err)
		}
		if rep.Version != i+1 {
			t.Fatalf("version numbering: got %d, want %d", rep.Version, i+1)
		}
		if rep.LogicalBytes != uint64(len(data)) {
			t.Fatalf("version %d logical bytes %d, want %d", i+1, rep.LogicalBytes, len(data))
		}
		reports = append(reports, rep)
	}
	return reports
}

// CheckRestoreAll restores every version and compares it byte-for-byte
// with the original stream.
func CheckRestoreAll(t testing.TB, e backup.Engine, versions [][]byte) []backup.RestoreReport {
	t.Helper()
	reports := make([]backup.RestoreReport, 0, len(versions))
	for i, want := range versions {
		var buf bytes.Buffer
		rep, err := e.Restore(context.Background(), i+1, &buf)
		if err != nil {
			t.Fatalf("restore of version %d: %v", i+1, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("version %d: restored %d bytes differ from original %d bytes",
				i+1, buf.Len(), len(want))
		}
		reports = append(reports, rep)
	}
	return reports
}

// CheckRestoreOne restores a single version and compares bytes.
func CheckRestoreOne(t testing.TB, e backup.Engine, version int, want []byte) backup.RestoreReport {
	t.Helper()
	var buf bytes.Buffer
	rep, err := e.Restore(context.Background(), version, &buf)
	if err != nil {
		t.Fatalf("restore of version %d: %v", version, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("version %d: restored bytes differ from original", version)
	}
	return rep
}
