package backuptest

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"

	"hidestore/internal/backup"
	"hidestore/internal/fault"
)

// CrashOpen builds an engine over dir with inj spliced into every
// persistence layer (container store, recipe store, and — for engines
// that keep one — the state writer). It is called once per matrix cell
// with a fresh directory and once more, with an inert injector, to
// reopen the "crashed" directory; the reopen must run the engine's
// startup recovery.
type CrashOpen func(dir string, inj *fault.Injector) (backup.Engine, error)

// CrashStep is one scripted operation of a crash-matrix run: a backup
// of Data, a full scrub pass when Scrub is set, or — when neither is
// set — a delete of version Delete.
type CrashStep struct {
	Data   []byte
	Delete int
	// Scrub runs online-scrubber steps until a pass completes, proving
	// the scrubber interleaves with the commit sequence without
	// disturbing it. Over healthy data a pass draws no mutating ops
	// (verification is read-only; only quarantining corrupt data
	// mutates), so the matrix's op numbering is unchanged.
	Scrub bool
}

// BackupSteps turns materialized version streams into backup steps.
func BackupSteps(versions [][]byte) []CrashStep {
	steps := make([]CrashStep, len(versions))
	for i, data := range versions {
		steps[i] = CrashStep{Data: data}
	}
	return steps
}

// CrashMatrix proves the engine's durable commit order end to end: no
// mutating-op crash point loses committed data.
//
// A probe run over a fresh directory counts the script's mutating ops
// (container and recipe Put/Delete plus state writes all draw from one
// shared counter). Then, for each fault kind and op index, the script
// replays against a fresh directory with the fault armed at that index
// — modeling a process that dies there — and the directory is reopened
// with an inert injector, which runs startup recovery. After recovery:
//
//   - every version whose step completed before the fault must be
//     present and restore byte-identically;
//   - the step in flight at the fault is allowed either outcome (a
//     crashing client cannot know), but if its version is present it
//     too must restore byte-identically, and a version it deleted may
//     only be missing or intact — never half-deleted;
//   - no other versions may exist;
//   - the engine's integrity check must report zero problems.
//
// Every op index runs when HIDESTORE_CRASH_FULL=1 (the make crash
// target). By default a deterministic sample of indices keeps the
// regular suite fast; the sample always includes the first and last op.
func CrashMatrix(t *testing.T, open CrashOpen, steps []CrashStep, kinds []fault.Kind) {
	t.Helper()
	total, opLog := crashProbe(t, open, steps)
	indices := crashIndices(total)
	for _, kind := range kinds {
		for _, i := range indices {
			t.Run(fmt.Sprintf("%s-op%03d", kind, i), func(t *testing.T) {
				crashCell(t, open, steps, kind, i, opLog[i-1])
			})
		}
	}
}

// crashProbe runs the script fault-free and returns the op count and
// per-op labels.
func crashProbe(t *testing.T, open CrashOpen, steps []CrashStep) (int, []string) {
	t.Helper()
	inj := fault.NewInjector()
	e, err := open(t.TempDir(), inj)
	if err != nil {
		t.Fatalf("probe: open: %v", err)
	}
	for s, step := range steps {
		if err := runStep(e, step); err != nil {
			t.Fatalf("probe: step %d: %v", s, err)
		}
	}
	total := inj.Ops()
	if total == 0 {
		t.Fatal("probe: the script performed no mutating ops; nothing to test")
	}
	return total, inj.OpLog()
}

// crashIndices picks the op indices to exercise: all of them under
// HIDESTORE_CRASH_FULL=1, otherwise a deterministic sample.
func crashIndices(total int) []int {
	if os.Getenv("HIDESTORE_CRASH_FULL") == "1" {
		all := make([]int, total)
		for i := range all {
			all[i] = i + 1
		}
		return all
	}
	const samples = 24
	stride := (total + samples - 1) / samples
	if stride < 1 {
		stride = 1
	}
	var out []int
	for i := 1; i <= total; i += stride {
		out = append(out, i)
	}
	if out[len(out)-1] != total {
		out = append(out, total)
	}
	return out
}

// crashCell is one matrix cell: crash at op index i, reopen, verify.
func crashCell(t *testing.T, open CrashOpen, steps []CrashStep, kind fault.Kind, i int, opLabel string) {
	t.Helper()
	dir := t.TempDir()
	inj := fault.NewInjector()
	inj.Arm(kind, i)

	// Run the script until the injected crash. Track what committed:
	// a step that returns nil completed in full before the fault.
	expect := make(map[int][]byte)
	indeterminate := -1 // version whose step was in flight at the fault
	var indeterminateData []byte
	e, err := open(dir, inj)
	if err == nil {
		ver := 0 // backups number sequentially regardless of deletes
		for _, step := range steps {
			if step.Data != nil {
				ver++
			}
			if err = runStep(e, step); err != nil {
				if step.Data != nil {
					indeterminate = ver
					indeterminateData = step.Data
				} else if step.Scrub {
					// An interrupted scrub never changes which versions
					// exist (it only quarantines corrupt containers, and
					// the matrix's data is healthy), so expectations are
					// unchanged.
				} else {
					// An interrupted delete leaves the version either
					// intact or gone; mark it so both are accepted.
					indeterminate = step.Delete
					indeterminateData = expect[step.Delete]
					delete(expect, step.Delete)
				}
				break
			}
			if step.Data != nil {
				expect[ver] = step.Data
			} else {
				delete(expect, step.Delete)
			}
		}
	}
	if err == nil {
		t.Fatalf("fault %s at op %d (%s) never fired: op order changed vs probe", kind, i, opLabel)
	}
	if !inj.Tripped() {
		t.Fatalf("script failed before the armed fault at op %d (%s): %v", i, opLabel, err)
	}

	// "Reboot": reopen the directory fault-free; this runs recovery.
	e2, err := open(dir, fault.NewInjector())
	if err != nil {
		t.Fatalf("reopen after %s at op %d (%s): %v", kind, i, opLabel, err)
	}
	got := e2.Versions()
	present := make(map[int]bool, len(got))
	for _, v := range got {
		present[v] = true
		if _, ok := expect[v]; !ok && v != indeterminate {
			t.Errorf("after %s at op %d (%s): version %d exists but was never committed", kind, i, opLabel, v)
		}
	}
	for v := range expect {
		if !present[v] {
			t.Errorf("after %s at op %d (%s): committed version %d lost", kind, i, opLabel, v)
		}
	}
	if c, ok := e2.(backup.Checker); ok {
		rep, err := c.Check()
		if err != nil {
			t.Fatalf("fsck after %s at op %d (%s): %v", kind, i, opLabel, err)
		}
		for _, p := range rep.Problems {
			t.Errorf("fsck after %s at op %d (%s): %s", kind, i, opLabel, p)
		}
	}
	if t.Failed() {
		return
	}
	for v, data := range expect {
		checkCrashRestore(t, e2, v, data, kind, i, opLabel)
	}
	if indeterminate > 0 && present[indeterminate] && indeterminateData != nil {
		checkCrashRestore(t, e2, indeterminate, indeterminateData, kind, i, opLabel)
	}
}

// runStep executes one scripted operation.
func runStep(e backup.Engine, step CrashStep) error {
	if step.Data != nil {
		_, err := e.Backup(context.Background(), bytes.NewReader(step.Data))
		return err
	}
	if step.Scrub {
		s, ok := e.(backup.Scrubber)
		if !ok {
			return fmt.Errorf("crash step: engine %T does not scrub", e)
		}
		for {
			rep, err := s.ScrubStep(context.Background())
			if err != nil {
				return err
			}
			if rep.PassComplete {
				return nil
			}
		}
	}
	_, err := e.Delete(step.Delete)
	return err
}

// checkCrashRestore asserts one version restores byte-identically.
func checkCrashRestore(t *testing.T, e backup.Engine, v int, data []byte, kind fault.Kind, i int, opLabel string) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := e.Restore(context.Background(), v, &buf); err != nil {
		t.Errorf("restore v%d after %s at op %d (%s): %v", v, kind, i, opLabel, err)
		return
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Errorf("restore v%d after %s at op %d (%s): %d bytes differ from the %d backed up",
			v, kind, i, opLabel, buf.Len(), len(data))
	}
}
