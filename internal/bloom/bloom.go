// Package bloom implements a Bloom filter.
//
// DDFS (Zhu et al., FAST'08) — one of the baselines the paper compares
// against — keeps an in-memory Bloom filter ("summary vector") in front of
// the on-disk full fingerprint index: if the filter reports "absent", the
// chunk is definitely unique and the expensive disk lookup is skipped.
// Destor adopts the same trick, which is why the paper's lookup-overhead
// metric (§5.2.2) only counts lookups for *duplicate* candidates.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"

	"hidestore/internal/fp"
)

// Filter is a standard k-hash Bloom filter over chunk fingerprints.
// The zero value is not usable; construct with New.
//
// Filter is not safe for concurrent use; callers that share one across
// goroutines must synchronize externally.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
	added  uint64
}

// New creates a filter sized for the expected number of elements n at the
// given false-positive probability p (0 < p < 1). DDFS-style deployments
// use p ≈ 0.01.
func New(n int, p float64) (*Filter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bloom: expected elements must be positive, got %d", n)
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("bloom: false-positive rate must be in (0,1), got %g", p)
	}
	// Optimal parameters: m = -n·ln(p)/ln(2)^2, k = (m/n)·ln(2).
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Filter{
		bits:   make([]uint64, (m+63)/64),
		nbits:  m,
		hashes: k,
	}, nil
}

// indexes derives the k bit positions for a fingerprint using the
// Kirsch–Mitzenmitzer double-hashing construction: position_i = h1 + i·h2.
// SHA-1 fingerprints are already uniform, so two disjoint 8-byte slices of
// the digest serve as independent hash values.
func (f *Filter) indexes(key fp.FP, out []uint64) {
	h1 := binary.BigEndian.Uint64(key[0:8])
	h2 := binary.BigEndian.Uint64(key[8:16]) | 1 // odd so it cycles all bits
	for i := range out {
		out[i] = (h1 + uint64(i)*h2) % f.nbits
	}
}

// Add inserts a fingerprint.
func (f *Filter) Add(key fp.FP) {
	idx := make([]uint64, f.hashes)
	f.indexes(key, idx)
	for _, b := range idx {
		f.bits[b/64] |= 1 << (b % 64)
	}
	f.added++
}

// MayContain reports whether the fingerprint might have been added.
// False means definitely not added; true may be a false positive.
func (f *Filter) MayContain(key fp.FP) bool {
	idx := make([]uint64, f.hashes)
	f.indexes(key, idx)
	for _, b := range idx {
		if f.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// Added returns the number of Add calls so far.
func (f *Filter) Added() uint64 { return f.added }

// SizeBytes returns the memory footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// EstimatedFalsePositiveRate returns the theoretical false-positive
// probability at the current fill level: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	k := float64(f.hashes)
	n := float64(f.added)
	m := float64(f.nbits)
	return math.Pow(1-math.Exp(-k*n/m), k)
}

// Reset clears the filter without reallocating.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.added = 0
}
