package bloom

import (
	"strconv"
	"testing"
	"testing/quick"

	"hidestore/internal/fp"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		p       float64
		wantErr bool
	}{
		{"ok", 1000, 0.01, false},
		{"zero n", 0, 0.01, true},
		{"negative n", -5, 0.01, true},
		{"p zero", 100, 0, true},
		{"p one", 100, 1, true},
		{"p big", 100, 1.5, true},
		{"tiny", 1, 0.5, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.n, tt.p)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d, %g) err = %v, wantErr %v", tt.n, tt.p, err, tt.wantErr)
			}
		})
	}
}

// TestNoFalseNegatives is the fundamental Bloom filter invariant:
// every added key must be reported as possibly present.
func TestNoFalseNegatives(t *testing.T) {
	f, err := New(10000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]fp.FP, 10000)
	for i := range keys {
		keys[i] = fp.Of([]byte("key-" + strconv.Itoa(i)))
		f.Add(keys[i])
	}
	for i, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	if f.Added() != 10000 {
		t.Fatalf("Added() = %d, want 10000", f.Added())
	}
}

// TestQuickNoFalseNegatives property-tests the invariant on arbitrary data.
func TestQuickNoFalseNegatives(t *testing.T) {
	f, err := New(1000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	check := func(data []byte) bool {
		k := fp.Of(data)
		f.Add(k)
		return f.MayContain(k)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFalsePositiveRate checks that the observed FP rate on unseen keys is
// within a small factor of the configured rate.
func TestFalsePositiveRate(t *testing.T) {
	const n = 20000
	f, err := New(n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f.Add(fp.Of([]byte("in-" + strconv.Itoa(i))))
	}
	falsePos := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain(fp.Of([]byte("out-" + strconv.Itoa(i)))) {
			falsePos++
		}
	}
	rate := float64(falsePos) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f exceeds 3x configured 0.01", rate)
	}
	if est := f.EstimatedFalsePositiveRate(); est > 0.02 {
		t.Fatalf("estimated FP rate %.4f too high", est)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f, err := New(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if f.MayContain(fp.Of([]byte(strconv.Itoa(i)))) {
			hits++
		}
	}
	if hits != 0 {
		t.Fatalf("empty filter reported %d hits", hits)
	}
}

func TestReset(t *testing.T) {
	f, err := New(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	k := fp.Of([]byte("x"))
	f.Add(k)
	if !f.MayContain(k) {
		t.Fatal("added key missing")
	}
	f.Reset()
	if f.MayContain(k) {
		t.Fatal("key survived Reset")
	}
	if f.Added() != 0 {
		t.Fatalf("Added() after Reset = %d", f.Added())
	}
}

func TestSizeScalesWithN(t *testing.T) {
	small, err := New(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(100000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("size did not grow with n: %d <= %d", big.SizeBytes(), small.SizeBytes())
	}
}

func BenchmarkAdd(b *testing.B) {
	f, err := New(1<<20, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	k := fp.Of([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k[0] = byte(i)
		f.Add(k)
	}
}

func BenchmarkMayContain(b *testing.B) {
	f, err := New(1<<20, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		f.Add(fp.Of([]byte(strconv.Itoa(i))))
	}
	k := fp.Of([]byte("probe"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k[0] = byte(i)
		f.MayContain(k)
	}
}
