// Package bufpool is a slab-backed, size-classed pool for the chunk
// payload buffers that dominate the backup hot loop. Before it existed,
// chunker.Next allocated a fresh []byte per chunk — at 4 KB average
// chunk size that is ~256k allocations per GB backed up, all of them
// garbage the moment the chunk is found duplicate or copied into a
// container.
//
// Ownership contract (enforced by the hidelint pooled-escape check and
// documented in DESIGN.md §"Backup write path"):
//
//   - Get hands the caller exclusive ownership of the returned slice.
//   - Ownership may be transferred (e.g. through a pipeline channel),
//     but exactly one owner exists at a time.
//   - The final owner calls Release exactly once, after which the slice
//     must not be read or written. Double release corrupts the pool.
//   - Holders must not store the slice into longer-lived structures;
//     anything that must outlive the ownership window gets a copy
//     (container.Add already copies).
//
// Buffers are carved from slabs (slabBuffers buffers per allocation)
// using full slice expressions, so an out-of-bounds append on one
// pooled buffer can never bleed into its neighbor. Requests larger
// than the largest class fall through to plain make and Release
// recognizes them as foreign (their capacity is never a class size).
//
// All methods are nil-safe: a nil *Pool degrades to plain allocation,
// so callers can thread an optional pool without branching.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minClassBits fixes the smallest class at 256 B: smaller chunks
	// exist (Params.Min can be tiny in tests) but sub-256 B classes
	// would multiply bookkeeping for no measurable win.
	minClassBits = 8
	// slabBuffers is how many buffers one slab allocation yields.
	slabBuffers = 16
)

// Stats is a point-in-time snapshot of pool activity, exported as obs
// gauges by the engines.
type Stats struct {
	// Gets counts every Get, pooled or oversize.
	Gets uint64
	// Releases counts Release calls that returned a buffer to a class.
	Releases uint64
	// SlabAllocs counts slab allocations (each slabBuffers buffers).
	SlabAllocs uint64
	// Oversize counts Gets larger than the largest class, served by
	// plain make.
	Oversize uint64
	// Foreign counts Release calls whose argument was not carved from
	// this pool's classes (oversize buffers land here by design).
	Foreign uint64
	// InUse is the number of pooled buffers currently checked out.
	InUse int64
	// InUseBytes is the pooled capacity currently checked out.
	InUseBytes int64
}

// Pool is a size-classed buffer pool. Classes are powers of two from
// 256 B up to the next power of two >= the maxSize given to New.
// Get and Release are safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free [][][]byte // per-class stacks of released buffers

	classBits int // log2 of the largest class size
	maxClass  int // largest class size in bytes (1 << classBits)

	gets       atomic.Uint64
	releases   atomic.Uint64
	slabAllocs atomic.Uint64
	oversize   atomic.Uint64
	foreign    atomic.Uint64
	inUse      atomic.Int64
	inUseBytes atomic.Int64
}

// New builds a pool whose largest class covers maxSize (the chunker's
// Params.Max, typically). maxSize <= 0 falls back to 64 KB.
func New(maxSize int) *Pool {
	if maxSize <= 0 {
		maxSize = 64 << 10
	}
	top := classFor(maxSize)
	n := top - minClassBits + 1
	return &Pool{
		free:      make([][][]byte, n),
		classBits: top,
		maxClass:  1 << top,
	}
}

// classFor returns bits.Len of the class that fits n bytes, clamped to
// the minimum class.
func classFor(n int) int {
	b := bits.Len(uint(n - 1))
	if n <= 1 {
		b = 0
	}
	if b < minClassBits {
		b = minClassBits
	}
	return b
}

// Get returns a slice with len == n, owned by the caller until it is
// released or ownership is handed off. Contents are unspecified (the
// caller overwrites exactly the bytes it uses). On a nil pool, or for
// n larger than the largest class, Get falls back to plain make.
func (p *Pool) Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	if p == nil {
		return make([]byte, n)
	}
	p.gets.Add(1)
	b := classFor(n)
	if b > p.classBits {
		p.oversize.Add(1)
		return make([]byte, n)
	}
	idx := b - minClassBits
	cls := 1 << b

	p.mu.Lock()
	for len(p.free[idx]) == 0 {
		// Refill outside the lock; loop in case a concurrent Get
		// drained the fresh slab before we reacquired.
		p.mu.Unlock()
		p.slab(idx, cls)
		p.mu.Lock()
	}
	stack := p.free[idx]
	buf := stack[len(stack)-1]
	p.free[idx] = stack[:len(stack)-1]
	p.mu.Unlock()

	p.inUse.Add(1)
	p.inUseBytes.Add(int64(cls))
	return buf[:n]
}

// slab allocates one slab for class idx and pushes its buffers onto the
// free stack. The three-index carve caps every buffer's capacity at its
// class size, so appends cannot cross into a neighbor.
func (p *Pool) slab(idx, cls int) {
	p.slabAllocs.Add(1)
	slab := make([]byte, cls*slabBuffers)
	bufs := make([][]byte, 0, slabBuffers)
	for off := 0; off < len(slab); off += cls {
		bufs = append(bufs, slab[off:off+cls:off+cls])
	}
	p.mu.Lock()
	p.free[idx] = append(p.free[idx], bufs...)
	p.mu.Unlock()
}

// Release returns a buffer obtained from Get to its class. It is a
// safe no-op for nil slices, nil pools, and foreign slices (anything
// whose capacity is not one of this pool's class sizes — which covers
// the oversize fallback path by construction). Releasing the same
// buffer twice is a contract violation the pool cannot detect: the
// next two Gets would share memory.
func (p *Pool) Release(b []byte) {
	if p == nil || b == nil {
		return
	}
	c := cap(b)
	if c < 1<<minClassBits || c > p.maxClass || c&(c-1) != 0 {
		p.foreign.Add(1)
		return
	}
	idx := bits.Len(uint(c)) - 1 - minClassBits
	buf := b[:c]
	p.mu.Lock()
	p.free[idx] = append(p.free[idx], buf)
	p.mu.Unlock()
	p.releases.Add(1)
	p.inUse.Add(-1)
	p.inUseBytes.Add(-int64(c))
}

// Stats returns a snapshot of the pool's counters. Zero value on a nil
// pool.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{
		Gets:       p.gets.Load(),
		Releases:   p.releases.Load(),
		SlabAllocs: p.slabAllocs.Load(),
		Oversize:   p.oversize.Load(),
		Foreign:    p.foreign.Load(),
		InUse:      p.inUse.Load(),
		InUseBytes: p.inUseBytes.Load(),
	}
}
