package bufpool

import (
	"sync"
	"testing"
)

func TestGetLenAndClassCap(t *testing.T) {
	p := New(16 << 10)
	cases := []struct {
		n       int
		wantCap int
	}{
		{1, 256},
		{255, 256},
		{256, 256},
		{257, 512},
		{1000, 1024},
		{1024, 1024},
		{16 << 10, 16 << 10},
	}
	for _, tc := range cases {
		b := p.Get(tc.n)
		if len(b) != tc.n {
			t.Errorf("Get(%d): len = %d, want %d", tc.n, len(b), tc.n)
		}
		if cap(b) != tc.wantCap {
			t.Errorf("Get(%d): cap = %d, want class %d", tc.n, cap(b), tc.wantCap)
		}
		p.Release(b)
	}
}

func TestReuseAfterRelease(t *testing.T) {
	p := New(4 << 10)
	b := p.Get(1024)
	b[0] = 0xAB
	p.Release(b)
	// Drain the class: the released buffer must come back out before a
	// new slab is carved.
	seen := false
	var held [][]byte
	for i := 0; i < slabBuffers; i++ {
		g := p.Get(1024)
		if &g[0] == &b[0] {
			seen = true
		}
		held = append(held, g)
	}
	if !seen {
		t.Fatal("released buffer was not reused within one slab's worth of Gets")
	}
	for _, g := range held {
		p.Release(g)
	}
	st := p.Stats()
	if st.InUse != 0 || st.InUseBytes != 0 {
		t.Fatalf("after releasing everything: InUse = %d (%d bytes), want 0", st.InUse, st.InUseBytes)
	}
}

func TestNeighborIsolation(t *testing.T) {
	p := New(1 << 10)
	// Check out a whole slab's worth of one class, mark each buffer,
	// then append past every buffer's end: the three-index carve caps
	// capacity at the class size, so the appends must reallocate rather
	// than spill into the neighboring buffer in the slab.
	bufs := make([][]byte, slabBuffers)
	for i := range bufs {
		bufs[i] = p.Get(256)
		bufs[i][0] = byte(i + 1)
	}
	if got := p.Stats().SlabAllocs; got != 1 {
		t.Fatalf("expected one slab for %d same-class Gets, got %d slab allocs", slabBuffers, got)
	}
	for i := range bufs {
		if cap(bufs[i]) != 256 {
			t.Fatalf("buffer %d: cap = %d, want exactly the class size", i, cap(bufs[i]))
		}
		_ = append(bufs[i], 0xFF)
	}
	for i := range bufs {
		if bufs[i][0] != byte(i+1) {
			t.Fatalf("buffer %d clobbered by a neighbor's append", i)
		}
	}
	for _, b := range bufs {
		p.Release(b)
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	p := New(4 << 10)
	b := p.Get(64 << 10)
	if len(b) != 64<<10 {
		t.Fatalf("oversize Get returned len %d", len(b))
	}
	st := p.Stats()
	if st.Oversize != 1 {
		t.Fatalf("Oversize = %d, want 1", st.Oversize)
	}
	if st.InUse != 0 {
		t.Fatalf("oversize buffers must not count as pooled in-use, got %d", st.InUse)
	}
	p.Release(b)
	st = p.Stats()
	if st.Foreign != 1 {
		t.Fatalf("releasing an oversize buffer should count Foreign, got %d", st.Foreign)
	}
	if st.Releases != 0 {
		t.Fatalf("oversize release must not enter a class, Releases = %d", st.Releases)
	}
}

func TestForeignAndNilRelease(t *testing.T) {
	p := New(4 << 10)
	p.Release(nil)
	p.Release(make([]byte, 100)) // cap 100: not a class size
	if got := p.Stats().Foreign; got != 1 {
		t.Fatalf("Foreign = %d, want 1", got)
	}
	var nilPool *Pool
	b := nilPool.Get(128)
	if len(b) != 128 {
		t.Fatalf("nil pool Get returned len %d", len(b))
	}
	nilPool.Release(b)
	if nilPool.Stats() != (Stats{}) {
		t.Fatal("nil pool stats should be zero")
	}
}

func TestConcurrentGetRelease(t *testing.T) {
	p := New(8 << 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sizes := []int{200, 700, 4096, 8192, 33}
			for i := 0; i < 2000; i++ {
				n := sizes[(i+seed)%len(sizes)]
				b := p.Get(n)
				if len(b) != n {
					t.Errorf("len = %d, want %d", len(b), n)
					return
				}
				b[0] = byte(i)
				b[n-1] = byte(i >> 8)
				p.Release(b)
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	if st.InUse != 0 {
		t.Fatalf("InUse = %d after all releases", st.InUse)
	}
	if st.Gets != 8*2000 {
		t.Fatalf("Gets = %d, want %d", st.Gets, 8*2000)
	}
}

func TestSteadyStateAllocFree(t *testing.T) {
	p := New(8 << 10)
	// Warm the classes once; AllocsPerRun's own warmup run also covers
	// slab growth, so steady-state Get/Release must be allocation-free.
	warm := p.Get(4096)
	p.Release(warm)
	avg := testing.AllocsPerRun(200, func() {
		b := p.Get(4096)
		p.Release(b)
	})
	if avg > 0 {
		t.Fatalf("steady-state Get/Release allocates %.1f allocs/op, want 0", avg)
	}
}
