package chunker

// AE is the Asymmetric Extremum algorithm (Zhang et al., INFOCOM'15).
// A cut is declared when a local-maximum byte value is followed by a
// full window of w bytes none of which exceeds it. AE needs no rolling
// hash and touches each byte once; byte values are mixed through the
// gear table so that low-entropy data (runs of equal bytes) still
// produces well-distributed extrema.
//
// The expected chunk size of pure AE is roughly w·(e−1)/1 ≈ 1.72·w; we
// derive w from Params.Avg accordingly (in newDecider, decide.go) and
// additionally enforce the Min/Max bounds for parity with the other
// chunkers.

// aeScan returns the cut offset in win. The reference loop (kept in
// reference_test.go) scans from 0 but ignores every byte before Min, so
// the hot loop starts at Min-1 directly, seeds the extremum with the
// first considered byte, and drops the per-byte "have we seen a
// maximum yet" test. Pinned bit-identical by the differential fuzz
// harness.
func aeScan(win []byte, min, window int) int {
	n := len(win)
	i := min - 1
	if i < 0 {
		i = 0
	}
	// n > min >= 1, so the seed position exists.
	maxVal := _gear[win[i]]
	maxPos := i
	for i++; i < n; i++ {
		v := _gear[win[i]]
		if v > maxVal {
			maxVal, maxPos = v, i
			continue
		}
		if i-maxPos >= window {
			return i + 1
		}
	}
	return n
}

