package chunker

import "io"

// ae implements the Asymmetric Extremum algorithm (Zhang et al.,
// INFOCOM'15). A cut is declared when a local-maximum byte value is
// followed by a full window of w bytes none of which exceeds it. AE needs
// no rolling hash and touches each byte once; byte values are mixed through
// the gear table so that low-entropy data (runs of equal bytes) still
// produces well-distributed extrema.
//
// The expected chunk size of pure AE is roughly w·(e−1)/1 ≈ 1.72·w; we
// derive w from Params.Avg accordingly and additionally enforce the
// Min/Max bounds for parity with the other chunkers.
type ae struct {
	s      *scanner
	p      Params
	window int
}

func newAE(r io.Reader, p Params) *ae {
	w := int(float64(p.Avg) / 1.72)
	if w < 1 {
		w = 1
	}
	return &ae{s: newScanner(r, p.Max), p: p, window: w}
}

func (c *ae) Next() ([]byte, error) {
	win := c.s.window(c.p.Max)
	if err := c.s.failed(); err != nil {
		return nil, err
	}
	if len(win) == 0 {
		return nil, io.EOF
	}
	if len(win) <= c.p.Min {
		return c.s.take(len(win)), nil
	}
	maxVal := uint64(0)
	maxPos := -1
	cut := len(win)
	for i := 0; i < len(win); i++ {
		v := _gear[win[i]]
		if i+1 < c.p.Min {
			continue
		}
		if maxPos < 0 || v > maxVal {
			maxVal, maxPos = v, i
			continue
		}
		if i-maxPos >= c.window {
			cut = i + 1
			break
		}
	}
	return c.s.take(cut), nil
}
