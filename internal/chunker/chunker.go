// Package chunker splits data streams into variable-size chunks.
//
// Chunk-based deduplication (§2.1 of the paper) divides each backup stream
// into chunks of 4-8 KB on average. This package implements the chunking
// algorithms referenced by the paper: fixed-size chunking, Rabin-based CDC,
// TTTD (the algorithm HiDeStore's prototype uses), FastCDC, and AE. All are
// content-defined except the fixed-size chunker, so inserting bytes near
// the front of a stream only disturbs chunk boundaries locally (the
// boundary-shift problem, §4.2).
//
// All chunkers are deterministic: the same input bytes always produce the
// same chunk sequence, which is what makes fingerprint-based deduplication
// possible across backup versions.
package chunker

import (
	"errors"
	"fmt"
	"io"

	"hidestore/internal/bufpool"
)

// Algorithm selects a chunking algorithm.
type Algorithm int

// Supported chunking algorithms.
const (
	Fixed Algorithm = iota + 1
	Rabin
	TTTD
	FastCDC
	AE
)

// String returns the conventional lowercase name of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Fixed:
		return "fixed"
	case Rabin:
		return "rabin"
	case TTTD:
		return "tttd"
	case FastCDC:
		return "fastcdc"
	case AE:
		return "ae"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a name (as produced by String) to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "fixed":
		return Fixed, nil
	case "rabin":
		return Rabin, nil
	case "tttd":
		return TTTD, nil
	case "fastcdc":
		return FastCDC, nil
	case "ae":
		return AE, nil
	default:
		return 0, fmt.Errorf("chunker: unknown algorithm %q", s)
	}
}

// Params bound the chunk sizes produced by a chunker.
type Params struct {
	// Min is the minimum chunk size in bytes. Only the final chunk of a
	// stream may be smaller.
	Min int
	// Avg is the target average chunk size in bytes; content-defined
	// chunkers derive their divisors from it. Must be a power of two for
	// mask-based algorithms; non-powers are rounded up.
	Avg int
	// Max is the maximum chunk size in bytes; a cut is forced at Max.
	Max int
}

// DefaultParams returns the paper's configuration: 4 KB average chunks
// with 2 KB / 16 KB bounds (the common destor defaults).
func DefaultParams() Params {
	return Params{Min: 2 * 1024, Avg: 4 * 1024, Max: 16 * 1024}
}

// Validate checks the parameter invariants.
func (p Params) Validate() error {
	switch {
	case p.Min <= 0 || p.Avg <= 0 || p.Max <= 0:
		return errors.New("chunker: sizes must be positive")
	case p.Min > p.Avg:
		return fmt.Errorf("chunker: min %d > avg %d", p.Min, p.Avg)
	case p.Avg > p.Max:
		return fmt.Errorf("chunker: avg %d > max %d", p.Avg, p.Max)
	default:
		return nil
	}
}

// Chunker produces successive chunks from a data stream.
type Chunker interface {
	// Next returns the next chunk's bytes. The returned slice is owned by
	// the caller. At end of stream Next returns nil, io.EOF. A non-EOF
	// error reports a failure of the underlying reader.
	Next() ([]byte, error)
}

// New constructs a Chunker of the given algorithm over r. Chunks are
// plain allocations owned by the caller.
func New(alg Algorithm, r io.Reader, p Params) (Chunker, error) {
	return NewPooled(alg, r, p, nil)
}

// NewPooled is New with chunk buffers drawn from pool: every slice
// Next returns is a pooled buffer the consumer must Release (or hand
// off to an owner who will) once the chunk is dealt with. A nil pool
// degrades to plain allocation. Cut points are identical to New's —
// pooling changes only where the copy lands.
func NewPooled(alg Algorithm, r io.Reader, p Params, pool *bufpool.Pool) (Chunker, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d, err := newDecider(alg, p)
	if err != nil {
		return nil, err
	}
	s := newScanner(r, d.winBytes())
	s.pool = pool
	return &seq{s: s, d: d}, nil
}

// seq is the sequential chunker: one decision window at a time, cut
// decided by the shared decider, chunk copied out by the scanner.
type seq struct {
	s *scanner
	d decider
}

func (c *seq) Next() ([]byte, error) {
	win := c.s.window(c.d.winBytes())
	if err := c.s.failed(); err != nil {
		return nil, err
	}
	if len(win) == 0 {
		return nil, io.EOF
	}
	return c.s.take(c.d.cutLen(win)), nil
}

// Split is a convenience that chunks an entire byte slice in memory and
// returns the chunk boundaries as sub-slice copies.
func Split(alg Algorithm, data []byte, p Params) ([][]byte, error) {
	c, err := New(alg, bytesReader(data), p)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for {
		chunk, err := c.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, chunk)
	}
}

// bytesReader avoids importing bytes just for bytes.NewReader.
func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// scanner maintains a sliding window over an io.Reader so chunkers can
// examine up to Max bytes ahead before deciding a cut point.
type scanner struct {
	r     io.Reader
	buf   []byte
	start int // first unconsumed byte
	end   int // one past last valid byte
	err   error
	pool  *bufpool.Pool // nil: take() allocates
}

func newScanner(r io.Reader, maxChunk int) *scanner {
	// Buffer twice the max chunk size so that a full window is usually
	// available without shifting on every chunk.
	return &scanner{r: r, buf: make([]byte, 2*maxChunk)}
}

// window ensures up to want bytes are buffered and returns the available
// prefix. It returns a shorter slice only at end of stream. A nil slice
// with s.err == io.EOF means the stream is exhausted.
func (s *scanner) window(want int) []byte {
	if s.end-s.start >= want {
		return s.buf[s.start : s.start+want]
	}
	if s.err == nil {
		if len(s.buf)-s.start < want {
			// Shift remaining bytes to the front to make room.
			copy(s.buf, s.buf[s.start:s.end])
			s.end -= s.start
			s.start = 0
		}
		for s.end-s.start < want && s.err == nil {
			var n int
			n, s.err = s.r.Read(s.buf[s.end:])
			s.end += n
		}
	}
	if avail := s.end - s.start; avail < want {
		return s.buf[s.start : s.start+avail]
	}
	return s.buf[s.start : s.start+want]
}

// take consumes n bytes from the window and returns them as a fresh
// copy — pooled when the scanner has a pool (the caller then owns the
// buffer until Release), plain-allocated otherwise.
func (s *scanner) take(n int) []byte {
	var out []byte
	if s.pool != nil {
		out = s.pool.Get(n)
	} else {
		out = make([]byte, n)
	}
	copy(out, s.buf[s.start:s.start+n])
	s.start += n
	return out
}

// failed returns the pending non-EOF reader error, if any.
func (s *scanner) failed() error {
	if s.err != nil && !errors.Is(s.err, io.EOF) {
		return s.err
	}
	return nil
}

// nextPow2 rounds v up to the next power of two.
func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}
