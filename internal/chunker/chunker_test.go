package chunker

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/iotest"
	"testing/quick"
)

var _allAlgs = []Algorithm{Fixed, Rabin, TTTD, FastCDC, AE}

func testParams() Params {
	return Params{Min: 512, Avg: 1024, Max: 4096}
}

func randomData(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestAlgorithmStringRoundTrip(t *testing.T) {
	for _, alg := range _allAlgs {
		got, err := ParseAlgorithm(alg.String())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%s): %v", alg, err)
		}
		if got != alg {
			t.Fatalf("round trip %v -> %v", alg, got)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Fatal("ParseAlgorithm(bogus) should fail")
	}
	if s := Algorithm(99).String(); s != "Algorithm(99)" {
		t.Fatalf("unknown String() = %q", s)
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"default", DefaultParams(), false},
		{"zero", Params{}, true},
		{"negative", Params{Min: -1, Avg: 2, Max: 3}, true},
		{"min>avg", Params{Min: 10, Avg: 5, Max: 20}, true},
		{"avg>max", Params{Min: 1, Avg: 30, Max: 20}, true},
		{"equal", Params{Min: 8, Avg: 8, Max: 8}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(Rabin, bytes.NewReader(nil), Params{}); err == nil {
		t.Fatal("New with zero params should fail")
	}
	if _, err := New(Algorithm(42), bytes.NewReader(nil), testParams()); err == nil {
		t.Fatal("New with unknown algorithm should fail")
	}
}

// TestReassembly checks that concatenating the chunks reproduces the input
// exactly, for every algorithm and several stream sizes including edge
// cases around the min/max bounds.
func TestReassembly(t *testing.T) {
	p := testParams()
	sizes := []int{0, 1, p.Min - 1, p.Min, p.Min + 1, p.Avg, p.Max, p.Max + 1, 3*p.Max + 17, 256 * 1024}
	for _, alg := range _allAlgs {
		for _, n := range sizes {
			data := randomData(int64(n)+7, n)
			chunks, err := Split(alg, data, p)
			if err != nil {
				t.Fatalf("%s size %d: %v", alg, n, err)
			}
			var joined []byte
			for _, c := range chunks {
				joined = append(joined, c...)
			}
			if !bytes.Equal(joined, data) {
				t.Fatalf("%s size %d: reassembly mismatch (%d chunks)", alg, n, len(chunks))
			}
		}
	}
}

// TestBounds checks that all chunks except the last respect Min and that
// no chunk exceeds Max.
func TestBounds(t *testing.T) {
	p := testParams()
	data := randomData(42, 512*1024)
	for _, alg := range _allAlgs {
		chunks, err := Split(alg, data, p)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for i, c := range chunks {
			if len(c) > p.Max {
				t.Fatalf("%s: chunk %d size %d exceeds max %d", alg, i, len(c), p.Max)
			}
			if i < len(chunks)-1 && len(c) < p.Min {
				t.Fatalf("%s: chunk %d size %d below min %d", alg, i, len(c), p.Min)
			}
		}
	}
}

// TestDeterminism verifies identical input yields identical chunking.
func TestDeterminism(t *testing.T) {
	p := testParams()
	data := randomData(7, 200*1024)
	for _, alg := range _allAlgs {
		a, err := Split(alg, data, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Split(alg, data, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: chunk count differs: %d vs %d", alg, len(a), len(b))
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("%s: chunk %d differs", alg, i)
			}
		}
	}
}

// TestSmallReads runs each chunker over a one-byte-at-a-time reader to
// exercise the scanner's refill path.
func TestSmallReads(t *testing.T) {
	p := testParams()
	data := randomData(3, 64*1024)
	for _, alg := range _allAlgs {
		want, err := Split(alg, data, p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(alg, iotest.OneByteReader(bytes.NewReader(data)), p)
		if err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		for {
			chunk, err := c.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, chunk)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: one-byte reader yields %d chunks, want %d", alg, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("%s: chunk %d differs under small reads", alg, i)
			}
		}
	}
}

// TestReaderError propagates a mid-stream reader failure.
func TestReaderError(t *testing.T) {
	p := testParams()
	boom := errors.New("boom")
	for _, alg := range _allAlgs {
		r := io.MultiReader(bytes.NewReader(randomData(1, 8192)), iotest.ErrReader(boom))
		c, err := New(alg, r, p)
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, err := c.Next()
			if err == nil {
				continue
			}
			if !errors.Is(err, boom) {
				t.Fatalf("%s: got %v, want boom", alg, err)
			}
			break
		}
	}
}

// TestContentDefinedLocality checks the core CDC property: appending a
// prefix to the stream does not change chunk boundaries far from the edit.
// The tail chunks (content-defined ones) must re-synchronize.
func TestContentDefinedLocality(t *testing.T) {
	p := testParams()
	base := randomData(11, 128*1024)
	shifted := append(randomData(13, 777), base...) // insert 777 bytes at front
	for _, alg := range _allAlgs {
		if alg == Fixed {
			continue // fixed-size chunking has no such property
		}
		a, err := Split(alg, base, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Split(alg, shifted, p)
		if err != nil {
			t.Fatal(err)
		}
		// Count how many trailing chunks match exactly.
		match := 0
		for i, j := len(a)-1, len(b)-1; i >= 0 && j >= 0; i, j = i-1, j-1 {
			if !bytes.Equal(a[i], b[j]) {
				break
			}
			match++
		}
		if match < len(a)/2 {
			t.Errorf("%s: only %d/%d trailing chunks re-synchronized after prefix insert", alg, match, len(a))
		}
	}
}

// TestAverageSize sanity-checks that content-defined chunkers land within
// a loose factor of the configured average on random data.
func TestAverageSize(t *testing.T) {
	p := testParams()
	data := randomData(21, 1024*1024)
	for _, alg := range _allAlgs {
		chunks, err := Split(alg, data, p)
		if err != nil {
			t.Fatal(err)
		}
		mean := float64(len(data)) / float64(len(chunks))
		if mean < float64(p.Min) || mean > float64(p.Max) {
			t.Errorf("%s: mean chunk size %.0f outside [min,max] = [%d,%d]", alg, mean, p.Min, p.Max)
		}
		if alg != Fixed && (mean < 0.3*float64(p.Avg) || mean > 3*float64(p.Avg)) {
			t.Errorf("%s: mean chunk size %.0f too far from avg %d", alg, mean, p.Avg)
		}
	}
}

// TestQuickReassembly is a property-based test: for arbitrary byte slices,
// chunking then joining is the identity, under every algorithm.
func TestQuickReassembly(t *testing.T) {
	p := Params{Min: 64, Avg: 128, Max: 512}
	for _, alg := range _allAlgs {
		alg := alg
		f := func(data []byte) bool {
			chunks, err := Split(alg, data, p)
			if err != nil {
				return false
			}
			var joined []byte
			for _, c := range chunks {
				joined = append(joined, c...)
			}
			return bytes.Equal(joined, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

// TestQuickBounds property-tests the size bounds for arbitrary inputs.
func TestQuickBounds(t *testing.T) {
	p := Params{Min: 64, Avg: 128, Max: 512}
	for _, alg := range _allAlgs {
		alg := alg
		f := func(data []byte) bool {
			chunks, err := Split(alg, data, p)
			if err != nil {
				return false
			}
			for i, c := range chunks {
				if len(c) > p.Max {
					return false
				}
				if i < len(chunks)-1 && len(c) < p.Min && alg != Fixed {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestFixedChunkSizes(t *testing.T) {
	p := Params{Min: 100, Avg: 100, Max: 100}
	data := randomData(5, 1050)
	chunks, err := Split(Fixed, data, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 11 {
		t.Fatalf("got %d chunks, want 11", len(chunks))
	}
	for i := 0; i < 10; i++ {
		if len(chunks[i]) != 100 {
			t.Fatalf("chunk %d size %d, want 100", i, len(chunks[i]))
		}
	}
	if len(chunks[10]) != 50 {
		t.Fatalf("last chunk size %d, want 50", len(chunks[10]))
	}
}

func TestPolyMod(t *testing.T) {
	// x^4+x+1 mod x^2+1: (10011) mod (101).
	got := polyMod(0b10011, 0b101)
	if polyDeg(got) >= polyDeg(0b101) {
		t.Fatalf("polyMod left degree %d >= divisor degree", polyDeg(got))
	}
	if polyDeg(Poly(0)) != -1 {
		t.Fatal("deg(0) should be -1")
	}
	if polyDeg(Poly(1)) != 0 {
		t.Fatal("deg(1) should be 0")
	}
	if polyDeg(_rabinPoly) != 53 {
		t.Fatalf("deg(rabinPoly) = %d, want 53", polyDeg(_rabinPoly))
	}
}

func TestGearTableStable(t *testing.T) {
	a := makeGear(0x9E3779B97F4A7C15)
	b := makeGear(0x9E3779B97F4A7C15)
	if a != b {
		t.Fatal("gear table must be deterministic")
	}
	// All entries distinct (splitmix64 is a bijection over the counter).
	seen := make(map[uint64]bool, 256)
	for _, v := range a {
		if seen[v] {
			t.Fatal("gear table has duplicate entries")
		}
		seen[v] = true
	}
}

func TestSplitEmptyInput(t *testing.T) {
	for _, alg := range _allAlgs {
		chunks, err := Split(alg, nil, testParams())
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(chunks) != 0 {
			t.Fatalf("%s: empty input produced %d chunks", alg, len(chunks))
		}
	}
}

func BenchmarkChunkers(b *testing.B) {
	data := randomData(99, 4*1024*1024)
	p := DefaultParams()
	for _, alg := range _allAlgs {
		b.Run(alg.String(), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := Split(alg, data, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
