package chunker

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRegenParallelFuzzCorpus rewrites the committed seed corpus for
// FuzzParallelDifferential under testdata/fuzz from seamCorpus, so the
// segment-boundary adversarial shapes run on plain `go test` (the go
// tool executes testdata seeds as regular test cases without -fuzz).
// Skipped unless CHUNKER_REGEN_CORPUS is set; rerun after changing
// seamCorpus or the fuzz target's argument list.
func TestRegenParallelFuzzCorpus(t *testing.T) {
	if os.Getenv("CHUNKER_REGEN_CORPUS") == "" {
		t.Skip("set CHUNKER_REGEN_CORPUS=1 to rewrite the committed fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzParallelDifferential")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Small decision windows keep the committed files compact while
	// still crossing several lane seams and batch boundaries.
	for _, p := range []Params{{Min: 48, Avg: 64, Max: 129}, {Min: 1000, Avg: 1024, Max: 1025}} {
		for _, lanes := range diffLanes {
			for name, data := range seamCorpus(p, lanes) {
				// Raw values invert the fuzz target's parameter
				// derivation (Min = 1 + raw%2048, lanes = 2 + raw%7).
				body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\nuint16(%d)\nuint16(%d)\nuint16(%d)\nuint8(%d)\n",
					data, p.Min-1, p.Avg-p.Min, p.Max-p.Avg, lanes-2)
				file := filepath.Join(dir, fmt.Sprintf("seam-%s-max%d-l%d", name, p.Max, lanes))
				if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}
