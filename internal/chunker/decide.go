package chunker

import (
	"fmt"
	"math/bits"
)

// decider is the pure cut-point decision for one algorithm: parameters
// and derived masks, no stream state. Both the sequential chunker and
// the multi-lane parallel chunker drive their scans through the same
// decider, which is what makes their chunk sequences bit-identical —
// a cut is a pure function of the bytes in one decision window.
type decider struct {
	alg Algorithm
	p   Params

	mask     Poly   // rabin: divisor mask
	mainDiv  Poly   // tttd: main divisor mask
	backDiv  Poly   // tttd: backup divisor mask
	maskS    uint64 // fastcdc: strict mask (before the normalization point)
	maskL    uint64 // fastcdc: loose mask (after it)
	aeWindow int    // ae: extremum window
}

func newDecider(alg Algorithm, p Params) (decider, error) {
	d := decider{alg: alg, p: p}
	switch alg {
	case Fixed:
		// No derived state: cuts at multiples of Avg.
	case Rabin:
		d.mask = Poly(nextPow2(p.Avg) - 1)
	case TTTD:
		// Divisors derived from the target average: with min-size skipping,
		// the expected chunk size is roughly Min + D, so choose D = Avg - Min
		// (rounded to a power of two for cheap masking).
		dv := nextPow2(p.Avg - p.Min)
		if dv < 2 {
			dv = 2
		}
		d.mainDiv = Poly(dv - 1)
		d.backDiv = Poly(dv/2 - 1)
	case FastCDC:
		avgBits := bits.TrailingZeros64(uint64(nextPow2(p.Avg)))
		strict := avgBits + 2
		loose := avgBits - 2
		if loose < 1 {
			loose = 1
		}
		if strict > 63 {
			strict = 63
		}
		d.maskS = uint64(1)<<strict - 1
		d.maskL = uint64(1)<<loose - 1
	case AE:
		w := int(float64(p.Avg) / 1.72)
		if w < 1 {
			w = 1
		}
		d.aeWindow = w
	default:
		return decider{}, fmt.Errorf("chunker: unknown algorithm %v", alg)
	}
	return d, nil
}

// winBytes is the lookahead a final cut decision needs: a chunk
// starting at position p is fully determined by the next winBytes()
// bytes (or by the stream tail when fewer remain).
func (d *decider) winBytes() int {
	if d.alg == Fixed {
		return d.p.Avg
	}
	return d.p.Max
}

// cutLen returns the length of the chunk starting at win[0]. win must
// be either a full winBytes() window or the entire remainder of the
// stream; len(win) > 0.
func (d *decider) cutLen(win []byte) int {
	if d.alg == Fixed {
		return len(win)
	}
	if len(win) <= d.p.Min {
		return len(win)
	}
	switch d.alg {
	case Rabin:
		return rabinScan(_rabinTab, win, d.p.Min, d.mask)
	case TTTD:
		return tttdScan(_rabinTab, win, d.p.Min, d.mainDiv, d.backDiv, len(win) == d.p.Max)
	case FastCDC:
		return fastcdcScan(win, d.p.Min, d.p.Avg, d.maskS, d.maskL)
	default: // AE; the constructor rejects unknown algorithms.
		return aeScan(win, d.p.Min, d.aeWindow)
	}
}
