package chunker

import (
	"bytes"
	"crypto/sha1"
	"fmt"
	"math/rand"
	"testing"

	"hidestore/internal/bufpool"
)

// diffAlgorithms are the content-defined chunkers whose inner loops
// were restructured; Fixed rides along as a sanity case.
var diffAlgorithms = []Algorithm{Fixed, Rabin, TTTD, FastCDC, AE}

// diffParams stresses the phase boundaries of the restructured loops:
// Min below/at/above the 48-byte Rabin window and the 64-bit FastCDC
// influence window, tiny divisors, and the defaults.
func diffParams() []Params {
	return []Params{
		{Min: 1, Avg: 2, Max: 8},
		{Min: 2, Avg: 4, Max: 64},
		{Min: 40, Avg: 64, Max: 100},
		{Min: 47, Avg: 64, Max: 128},
		{Min: 48, Avg: 64, Max: 129},
		{Min: 49, Avg: 128, Max: 256},
		{Min: 64, Avg: 256, Max: 1024},
		{Min: 65, Avg: 128, Max: 300},
		{Min: 512, Avg: 1024, Max: 4096},
		{Min: 1000, Avg: 1024, Max: 1025},
		DefaultParams(),
	}
}

// diffCorpus returns deterministic streams covering the interesting
// shapes: empty, shorter than Min, zeros (guard-byte path), constant
// bytes, a ramp, and seeded random data around the window sizes.
func diffCorpus() map[string][]byte {
	rng := rand.New(rand.NewSource(42))
	random := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	ramp := make([]byte, 8192)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	return map[string][]byte{
		"empty":      nil,
		"one":        {0x7F},
		"tiny":       random(37),
		"zeros":      make([]byte, 6000),
		"ones":       bytes.Repeat([]byte{0x01}, 6000),
		"ramp":       ramp,
		"rand-47":    random(47),
		"rand-48":    random(48),
		"rand-49":    random(49),
		"rand-1k":    random(1024),
		"rand-100k":  random(100 << 10),
		"rand-1M":    random(1 << 20),
		"mixed-runs": append(append(random(5000), make([]byte, 5000)...), random(5000)...),
	}
}

// assertIdentical chunks data both ways and fails on the first
// divergence in chunk count, length, or content digest.
func assertIdentical(t *testing.T, alg Algorithm, data []byte, p Params) {
	t.Helper()
	got, err := Split(alg, data, p)
	if err != nil {
		t.Fatalf("%v %+v: Split: %v", alg, p, err)
	}
	want := refSplit(alg, data, p)
	if len(got) != len(want) {
		t.Fatalf("%v %+v: %d chunks, reference %d", alg, p, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%v %+v: chunk %d len %d, reference %d", alg, p, i, len(got[i]), len(want[i]))
		}
		if sha1.Sum(got[i]) != sha1.Sum(want[i]) {
			t.Fatalf("%v %+v: chunk %d content diverges from reference", alg, p, i)
		}
	}
}

// TestDifferentialAgainstReference is the deterministic pin: every
// algorithm, every boundary-stressing parameter set, every corpus
// shape must reproduce the pre-optimization cut points exactly.
func TestDifferentialAgainstReference(t *testing.T) {
	corpus := diffCorpus()
	for _, alg := range diffAlgorithms {
		for _, p := range diffParams() {
			for name, data := range corpus {
				t.Run(fmt.Sprintf("%v/%d-%d-%d/%s", alg, p.Min, p.Avg, p.Max, name), func(t *testing.T) {
					assertIdentical(t, alg, data, p)
				})
			}
		}
	}
}

// TestPooledCutPointsMatchUnpooled pins that pooling changes only
// buffer provenance, never cut decisions.
func TestPooledCutPointsMatchUnpooled(t *testing.T) {
	data := diffCorpus()["rand-100k"]
	p := DefaultParams()
	pool := bufpool.New(p.Max)
	for _, alg := range diffAlgorithms {
		plain, err := Split(alg, data, p)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := NewPooled(alg, bytes.NewReader(data), p, pool)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for {
			chunk, err := ch.Next()
			if err != nil {
				break
			}
			if i >= len(plain) {
				t.Fatalf("%v: pooled produced extra chunk %d", alg, i)
			}
			if !bytes.Equal(chunk, plain[i]) {
				t.Fatalf("%v: pooled chunk %d differs", alg, i)
			}
			pool.Release(chunk)
			i++
		}
		if i != len(plain) {
			t.Fatalf("%v: pooled produced %d chunks, plain %d", alg, i, len(plain))
		}
	}
}

// FuzzChunkerDifferential lets the fuzzer hunt for inputs where a
// restructured loop diverges from its reference. Parameters are
// derived from the fuzz input so boundary-adjacent Min/Avg/Max values
// get explored too.
func FuzzChunkerDifferential(f *testing.F) {
	f.Add([]byte("hello world, hello world, hello world"), uint16(4), uint16(4), uint16(6))
	f.Add(make([]byte, 4096), uint16(48), uint16(16), uint16(64))
	f.Add(bytes.Repeat([]byte{0xA5, 0x01, 0x00}, 2000), uint16(63), uint16(1), uint16(1000))
	rng := rand.New(rand.NewSource(7))
	big := make([]byte, 32<<10)
	rng.Read(big)
	f.Add(big, uint16(512), uint16(512), uint16(3072))
	f.Fuzz(func(t *testing.T, data []byte, minRaw, avgSpread, maxSpread uint16) {
		p := Params{
			Min: 1 + int(minRaw)%2048,
		}
		p.Avg = p.Min + int(avgSpread)%2048
		p.Max = p.Avg + int(maxSpread)%4096
		if p.Validate() != nil {
			t.Skip()
		}
		if len(data) > 1<<20 {
			data = data[:1<<20]
		}
		for _, alg := range diffAlgorithms {
			assertIdentical(t, alg, data, p)
		}
	})
}
