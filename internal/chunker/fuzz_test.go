package chunker

import (
	"bytes"
	"testing"
)

// FuzzSplitReassembly checks, for every algorithm on arbitrary input:
// chunks concatenate back to the input, and bounds hold.
func FuzzSplitReassembly(f *testing.F) {
	f.Add([]byte("hello world"))
	f.Add(bytes.Repeat([]byte{0}, 5000))
	f.Add(bytes.Repeat([]byte("abcdef"), 1000))
	f.Add([]byte{})
	p := Params{Min: 64, Avg: 256, Max: 1024}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, alg := range []Algorithm{Fixed, Rabin, TTTD, FastCDC, AE} {
			chunks, err := Split(alg, data, p)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			var joined []byte
			for i, c := range chunks {
				joined = append(joined, c...)
				if len(c) > p.Max {
					t.Fatalf("%s: chunk %d exceeds max", alg, i)
				}
				if len(c) == 0 {
					t.Fatalf("%s: empty chunk %d", alg, i)
				}
			}
			if !bytes.Equal(joined, data) {
				t.Fatalf("%s: reassembly mismatch", alg)
			}
		}
	})
}
