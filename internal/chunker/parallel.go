package chunker

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"hidestore/internal/bufpool"
)

// The parallel chunker exploits that every cut decision is local: the
// chunk starting at position p is fully determined by the next
// winBytes() bytes (decider.cutLen is a pure function of that window).
// A batch of input is split into one contiguous segment per lane; each
// lane speculatively chunks its segment as if the segment base were a
// true chunk start. The stitch pass then walks the lanes in stream
// order: when the true position entering a lane equals the lane's
// base, every speculative cut is correct and is adopted wholesale;
// otherwise cuts are re-derived sequentially from the true position
// until one coincides with a speculative cut — from that point on the
// lane's remaining cuts are the true cuts, because the decision
// process restarts identically at every cut. Decisions are only made
// at positions with a full lookahead window (or at EOF), so the
// emitted chunk sequence is bit-identical to the sequential chunker.

// _laneSegWindows sizes each lane's segment in decision windows per
// batch. Larger segments amortize the per-batch fan-out; smaller ones
// bound the carry and the re-scan cost after a stitch miss.
const _laneSegWindows = 4

// LaneStat reports one lane's activity, for throughput and
// stitch-agreement inspection (cmd/chunkstat -lanes).
type LaneStat struct {
	Bytes   int64 // bytes speculatively scanned
	Cuts    int64 // speculative cuts produced
	Adopted int64 // speculative cuts adopted into the true sequence
	Resyncs int64 // batches needing a sequential re-scan in this lane
	BusyNS  int64 // time spent scanning in this lane
}

// LaneReporter is implemented by chunkers that run multiple lanes.
type LaneReporter interface {
	// LaneStats returns a snapshot of per-lane statistics.
	LaneStats() []LaneStat
}

// NewParallel constructs a multi-lane chunker over r: the stream is
// chunked by lanes workers and re-stitched so the emitted chunk
// sequence is bit-identical to New's for the same algorithm and
// parameters. lanes <= 1 degrades to the sequential chunker.
func NewParallel(alg Algorithm, r io.Reader, p Params, lanes int) (Chunker, error) {
	return NewParallelPooled(alg, r, p, lanes, nil)
}

// NewParallelPooled is NewParallel with chunk buffers drawn from pool,
// under the same ownership contract as NewPooled.
func NewParallelPooled(alg Algorithm, r io.Reader, p Params, lanes int, pool *bufpool.Pool) (Chunker, error) {
	if lanes < 0 {
		return nil, fmt.Errorf("chunker: lanes %d: must be >= 0", lanes)
	}
	if lanes <= 1 {
		return NewPooled(alg, r, p, pool)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d, err := newDecider(alg, p)
	if err != nil {
		return nil, err
	}
	win := d.winBytes()
	c := &parallel{
		r:     r,
		pool:  pool,
		d:     d,
		lanes: lanes,
		win:   win,
		// One extra window of lookahead past the lane segments so every
		// in-batch decision sees a full window.
		buf:      make([]byte, lanes*_laneSegWindows*win+win),
		bounds:   make([]int, lanes+1),
		laneCuts: make([][]int, lanes),
		stats:    make([]LaneStat, lanes),
	}
	return c, nil
}

// parallel is the multi-lane chunker. It is not safe for concurrent
// Next calls; the lanes parallelize work inside one Next.
type parallel struct {
	r     io.Reader
	pool  *bufpool.Pool
	d     decider
	lanes int
	win   int // decision-window bytes

	buf []byte // current batch
	n   int    // valid bytes in buf
	pos int    // emit cursor (start of the next chunk)
	err error  // terminal reader state (io.EOF included)

	cuts    []int // stitched true cut offsets for the current batch
	nextCut int   // next index in cuts to emit

	bounds   []int   // lane segment bounds for the current batch
	laneCuts [][]int // per-lane speculative cut offsets
	stats    []LaneStat

	mu sync.Mutex // guards stats against concurrent LaneStats snapshots
}

// LaneStats implements LaneReporter.
func (c *parallel) LaneStats() []LaneStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LaneStat, len(c.stats))
	copy(out, c.stats)
	return out
}

func (c *parallel) Next() ([]byte, error) {
	if c.nextCut >= len(c.cuts) {
		if err := c.refill(); err != nil {
			return nil, err
		}
	}
	cut := c.cuts[c.nextCut]
	c.nextCut++
	return c.take(cut - c.pos), nil
}

// take consumes n bytes from the batch buffer as a fresh copy — pooled
// when the chunker has a pool (the caller then owns the buffer until
// Release), plain-allocated otherwise.
func (c *parallel) take(n int) []byte {
	var out []byte
	if c.pool != nil {
		out = c.pool.Get(n)
	} else {
		out = make([]byte, n)
	}
	copy(out, c.buf[c.pos:c.pos+n])
	c.pos += n
	return out
}

// refill reads the next batch, chunks it across the lanes, and
// stitches the speculative cuts into the true sequence. On return
// either c.cuts holds at least one cut or the stream is done.
func (c *parallel) refill() error {
	// Carry the undecided suffix (past the last emitted cut) to the
	// front. The batch base is always a true chunk start.
	copy(c.buf, c.buf[c.pos:c.n])
	c.n -= c.pos
	c.pos = 0
	c.cuts = c.cuts[:0]
	c.nextCut = 0

	for c.n < len(c.buf) && c.err == nil {
		var m int
		m, c.err = c.r.Read(c.buf[c.n:])
		c.n += m
	}
	if c.err != nil && !errors.Is(c.err, io.EOF) {
		// Reader failure: surface it, matching the sequential chunker,
		// which drops buffered-but-unchunked bytes on error too.
		return c.err
	}
	if c.n == 0 {
		return io.EOF
	}
	eof := c.err != nil

	// Decisions are only allowed where a full window is buffered; at
	// EOF the short tail window is the true stream tail, so everything
	// is decidable.
	limit := c.n
	if !eof {
		limit = c.n - c.win
	}
	c.split(limit)
	c.scatter()
	c.stitch()
	return nil
}

// split computes the lane segment bounds over [0, limit).
func (c *parallel) split(limit int) {
	seg := (limit + c.lanes - 1) / c.lanes
	if c.d.alg == Fixed {
		// Align lane bases to the fixed block grid so speculative cuts
		// always coincide with the true ones.
		if r := seg % c.d.p.Avg; r != 0 {
			seg += c.d.p.Avg - r
		}
	}
	if seg < 1 {
		seg = 1
	}
	for k := 0; k <= c.lanes; k++ {
		b := k * seg
		if b > limit {
			b = limit
		}
		c.bounds[k] = b
	}
}

// scatter runs the speculative per-lane scans for the current batch.
// Lanes 1..n-1 fan out to goroutines; lane 0 runs on the calling
// goroutine, which saves one scheduling hop per batch.
func (c *parallel) scatter() {
	var wg sync.WaitGroup
	for k := c.lanes - 1; k >= 0; k-- {
		base, end := c.bounds[k], c.bounds[k+1]
		c.laneCuts[k] = c.laneCuts[k][:0]
		if base >= end {
			continue
		}
		if k == 0 {
			c.scanLane(0, base, end)
			continue
		}
		wg.Add(1)
		go func(k, base, end int) {
			defer wg.Done()
			c.scanLane(k, base, end)
		}(k, base, end)
	}
	wg.Wait()
}

// scanLane speculatively chunks [base, end) as if base were a true
// chunk start, recording the cuts and the lane's activity.
func (c *parallel) scanLane(k, base, end int) {
	start := time.Now()
	cuts := c.laneCuts[k]
	p := base
	for p < end {
		p += c.d.cutLen(c.window(p))
		cuts = append(cuts, p)
	}
	c.laneCuts[k] = cuts
	c.mu.Lock()
	st := &c.stats[k]
	st.BusyNS += time.Since(start).Nanoseconds()
	st.Bytes += int64(p - base)
	st.Cuts += int64(len(cuts))
	c.mu.Unlock()
}

// window returns the decision window for a chunk starting at p.
func (c *parallel) window(p int) []byte {
	w := p + c.win
	if w > c.n {
		w = c.n
	}
	return c.buf[p:w]
}

// stitch merges the speculative lane cuts into the true cut sequence.
func (c *parallel) stitch() {
	c.mu.Lock()
	defer c.mu.Unlock()
	truePos := 0
	for k := 0; k < c.lanes; k++ {
		base, end := c.bounds[k], c.bounds[k+1]
		if base >= end || truePos >= end {
			// Empty lane, or a previous lane's adopted tail already
			// crossed this whole segment.
			continue
		}
		lc := c.laneCuts[k]
		if truePos == base {
			// The lane's speculative start was a true chunk start, so
			// every one of its cuts is correct.
			c.cuts = append(c.cuts, lc...)
			c.stats[k].Adopted += int64(len(lc))
			truePos = lc[len(lc)-1]
			continue
		}
		// The true position entered mid-segment: re-derive cuts until
		// one lands on a speculative cut, then adopt the rest — the
		// decision process restarts identically at every cut, so from
		// the first coincidence on, the lane's cuts are the true cuts.
		c.stats[k].Resyncs++
		for truePos < end {
			truePos += c.d.cutLen(c.window(truePos))
			c.cuts = append(c.cuts, truePos)
			j := sort.SearchInts(lc, truePos)
			if j < len(lc) && lc[j] == truePos {
				rest := lc[j+1:]
				c.cuts = append(c.cuts, rest...)
				c.stats[k].Adopted += int64(len(rest) + 1)
				if len(rest) > 0 {
					truePos = rest[len(rest)-1]
				}
				break
			}
		}
	}
}
