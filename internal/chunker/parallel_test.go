package chunker

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"hidestore/internal/bufpool"
)

// diffLanes are the lane counts the acceptance criteria pin.
var diffLanes = []int{2, 4, 8}

// splitParallel chunks data through the multi-lane chunker and returns
// the chunks.
func splitParallel(tb testing.TB, alg Algorithm, data []byte, p Params, lanes int) [][]byte {
	tb.Helper()
	ch, err := NewParallel(alg, bytes.NewReader(data), p, lanes)
	if err != nil {
		tb.Fatalf("%v %+v lanes=%d: %v", alg, p, lanes, err)
	}
	var out [][]byte
	for {
		chunk, err := ch.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			tb.Fatalf("%v %+v lanes=%d: Next: %v", alg, p, lanes, err)
		}
		out = append(out, chunk)
	}
}

// assertParallelIdentical chunks data sequentially and with lanes
// workers and fails on the first divergence.
func assertParallelIdentical(t *testing.T, alg Algorithm, data []byte, p Params, lanes int) {
	t.Helper()
	want, err := Split(alg, data, p)
	if err != nil {
		t.Fatalf("%v %+v: Split: %v", alg, p, err)
	}
	got := splitParallel(t, alg, data, p, lanes)
	if len(got) != len(want) {
		t.Fatalf("%v %+v lanes=%d: %d chunks, sequential %d", alg, p, lanes, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%v %+v lanes=%d: chunk %d diverges (len %d vs %d)",
				alg, p, lanes, i, len(got[i]), len(want[i]))
		}
	}
}

// TestParallelMatchesSequential is the multi-lane pin: for every
// algorithm, boundary-stressing parameter set, corpus shape, and lane
// count the stitched chunk sequence must be bit-identical to the
// sequential chunker's.
func TestParallelMatchesSequential(t *testing.T) {
	corpus := diffCorpus()
	for _, alg := range diffAlgorithms {
		for _, p := range diffParams() {
			for name, data := range corpus {
				for _, lanes := range diffLanes {
					t.Run(fmt.Sprintf("%v/%d-%d-%d/%s/l%d", alg, p.Min, p.Avg, p.Max, name, lanes), func(t *testing.T) {
						assertParallelIdentical(t, alg, data, p, lanes)
					})
				}
			}
		}
	}
}

// seamCorpus builds inputs adversarial to the lane-stitching rule for
// a given geometry: cut points exactly at, one byte before, and
// straddling a lane boundary, plus min- and max-size chunks at the
// seam. The lane segment for a single-batch input of n bytes is
// ceil(n/lanes), so the shapes below position their content runs
// relative to that.
func seamCorpus(p Params, lanes int) map[string][]byte {
	rng := rand.New(rand.NewSource(1337))
	random := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	seg := _laneSegWindows * p.Max
	out := map[string][]byte{
		// Zeros produce forced max-size cuts on the Max grid; a batch of
		// exactly lanes segments puts every lane boundary on that grid:
		// cut exactly at the seam.
		"cut-at-seam": make([]byte, lanes*seg),
		// One byte short per lane: every boundary lands one byte before
		// a forced cut, so each lane's first cut straddles its seam.
		"cut-just-before-seam": make([]byte, lanes*seg-lanes),
		// A random prefix shifts the zero run's forced-cut grid by an
		// arbitrary offset: cuts straddle every boundary.
		"cut-straddling-seam": append(random(p.Max/3+7), make([]byte, (lanes-1)*seg)...),
		// Random data right at the seam makes content-defined (often
		// min-adjacent) cuts there instead of forced max-size ones.
		"random-at-seam": append(append(make([]byte, seg-p.Min), random(2*p.Max)...), make([]byte, (lanes-1)*seg)...),
		// Multiple batches with a misaligned tail: the carry across the
		// batch boundary is itself a straddling chunk.
		"multi-batch-straddle": append(random(2*lanes*seg+p.Max/2), make([]byte, seg)...),
	}
	return out
}

// TestParallelSeamAdversarial exercises the stitch edge cases the
// fuzz corpus seeds pin: boundary-aligned, boundary-adjacent, and
// boundary-straddling cut points for every algorithm and lane count.
func TestParallelSeamAdversarial(t *testing.T) {
	for _, p := range []Params{DefaultParams(), {Min: 48, Avg: 64, Max: 129}} {
		for _, lanes := range diffLanes {
			for name, data := range seamCorpus(p, lanes) {
				for _, alg := range diffAlgorithms {
					t.Run(fmt.Sprintf("%v/%d-%d-%d/%s/l%d", alg, p.Min, p.Avg, p.Max, name, lanes), func(t *testing.T) {
						assertParallelIdentical(t, alg, data, p, lanes)
					})
				}
			}
		}
	}
}

// TestParallelPooled pins that the pooled parallel chunker returns the
// same chunks and leaks no pooled buffers.
func TestParallelPooled(t *testing.T) {
	data := diffCorpus()["rand-1M"]
	p := DefaultParams()
	for _, alg := range diffAlgorithms {
		pool := bufpool.New(p.Max)
		plain, err := Split(alg, data, p)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := NewParallelPooled(alg, bytes.NewReader(data), p, 4, pool)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for {
			chunk, err := ch.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if i >= len(plain) || !bytes.Equal(chunk, plain[i]) {
				t.Fatalf("%v: pooled parallel chunk %d diverges", alg, i)
			}
			pool.Release(chunk)
			i++
		}
		if i != len(plain) {
			t.Fatalf("%v: pooled parallel produced %d chunks, plain %d", alg, i, len(plain))
		}
		if st := pool.Stats(); st.InUse != 0 {
			t.Errorf("%v: %d pooled buffers leaked", alg, st.InUse)
		}
	}
}

// TestParallelLaneStats checks the LaneReporter surface: every lane
// reports activity on a large stream, adopted cuts never exceed
// produced cuts, and snapshots are safe to take while chunking runs
// (the race tier makes that guarantee meaningful).
func TestParallelLaneStats(t *testing.T) {
	data := diffCorpus()["rand-1M"]
	p := DefaultParams()
	ch, err := NewParallel(FastCDC, bytes.NewReader(data), p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := ch.(LaneReporter)
	if !ok {
		t.Fatal("parallel chunker does not implement LaneReporter")
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				rep.LaneStats()
			}
		}
	}()
	for {
		if _, err := ch.Next(); err != nil {
			break
		}
	}
	close(done)
	wg.Wait()
	stats := rep.LaneStats()
	if len(stats) != 4 {
		t.Fatalf("LaneStats returned %d lanes, want 4", len(stats))
	}
	for k, st := range stats {
		if st.Bytes == 0 || st.Cuts == 0 {
			t.Errorf("lane %d: no activity recorded: %+v", k, st)
		}
		if st.Adopted > st.Cuts {
			t.Errorf("lane %d: adopted %d > produced %d", k, st.Adopted, st.Cuts)
		}
	}
	if stats[0].Adopted == 0 {
		t.Error("lane 0 adopted no cuts; its base is always a true chunk start")
	}
}

// TestParallelDegenerate covers the lanes<=1 and error paths.
func TestParallelDegenerate(t *testing.T) {
	if _, err := NewParallel(Rabin, bytes.NewReader(nil), DefaultParams(), -1); err == nil {
		t.Error("negative lanes accepted")
	}
	ch, err := NewParallel(Rabin, bytes.NewReader([]byte("abc")), DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ch.(LaneReporter); ok {
		t.Error("single-lane chunker should be the sequential implementation")
	}
	if _, err := NewParallel(Algorithm(99), bytes.NewReader(nil), DefaultParams(), 4); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := NewParallel(Rabin, bytes.NewReader(nil), Params{Min: -1, Avg: 4, Max: 8}, 4); err == nil {
		t.Error("invalid params accepted")
	}
}

// failReader yields n bytes, then a non-EOF error.
type failReader struct {
	rest []byte
	err  error
}

func (r *failReader) Read(p []byte) (int, error) {
	if len(r.rest) == 0 {
		return 0, r.err
	}
	n := copy(p, r.rest)
	r.rest = r.rest[n:]
	return n, nil
}

// TestParallelReaderError pins that a reader failure surfaces as-is,
// matching the sequential chunker's contract.
func TestParallelReaderError(t *testing.T) {
	boom := errors.New("boom")
	ch, err := NewParallel(FastCDC, &failReader{rest: make([]byte, 1000), err: boom}, DefaultParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := ch.Next()
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("got %v, want the reader's error", err)
			}
			return
		}
	}
}

// FuzzParallelDifferential lets the fuzzer hunt for inputs where the
// lane stitching diverges from the sequential chunker. The committed
// corpus under testdata/fuzz seeds the segment-boundary adversarial
// shapes (cut exactly at / just before / straddling a lane seam) so
// plain `go test` exercises them without -fuzz.
func FuzzParallelDifferential(f *testing.F) {
	f.Add([]byte("hello world, hello world, hello world"), uint16(4), uint16(4), uint16(6), uint8(2))
	f.Add(make([]byte, 8192), uint16(48), uint16(16), uint16(64), uint8(3))
	p := Params{Min: 48, Avg: 64, Max: 129}
	for _, lanes := range diffLanes {
		for _, data := range seamCorpus(p, lanes) {
			// Raw values invert the parameter derivation below
			// (Min = 1 + raw%2048, lanes = 2 + raw%7).
			f.Add(data, uint16(p.Min-1), uint16(p.Avg-p.Min), uint16(p.Max-p.Avg), uint8(lanes-2))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, minRaw, avgSpread, maxSpread uint16, laneRaw uint8) {
		p := Params{
			Min: 1 + int(minRaw)%2048,
		}
		p.Avg = p.Min + int(avgSpread)%2048
		p.Max = p.Avg + int(maxSpread)%4096
		if p.Validate() != nil {
			t.Skip()
		}
		lanes := 2 + int(laneRaw)%7
		if len(data) > 1<<20 {
			data = data[:1<<20]
		}
		for _, alg := range diffAlgorithms {
			assertParallelIdentical(t, alg, data, p, lanes)
		}
	})
}

// BenchmarkParallelChunkers measures multi-lane throughput against the
// single-lane baseline for each algorithm (make microbench).
func BenchmarkParallelChunkers(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	data := make([]byte, 8<<20)
	rng.Read(data)
	p := DefaultParams()
	for _, alg := range []Algorithm{Rabin, TTTD, FastCDC} {
		for _, lanes := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%v/l%d", alg, lanes), func(b *testing.B) {
				pool := bufpool.New(p.Max)
				b.SetBytes(int64(len(data)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ch, err := NewParallelPooled(alg, bytes.NewReader(data), p, lanes, pool)
					if err != nil {
						b.Fatal(err)
					}
					for {
						chunk, err := ch.Next()
						if err != nil {
							break
						}
						pool.Release(chunk)
					}
				}
			})
		}
	}
}
