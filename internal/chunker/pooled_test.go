package chunker

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"hidestore/internal/bufpool"
)

// poolTestData is a deterministic ~1 MB stream for the allocation and
// throughput measurements.
func poolTestData() []byte {
	rng := rand.New(rand.NewSource(99))
	b := make([]byte, 1<<20)
	rng.Read(b)
	return b
}

// drainPooled chunks data once through a pooled chunker, releasing
// every chunk, and returns the chunk count.
func drainPooled(tb testing.TB, alg Algorithm, data []byte, p Params, pool *bufpool.Pool) int {
	ch, err := NewPooled(alg, bytes.NewReader(data), p, pool)
	if err != nil {
		tb.Fatal(err)
	}
	n := 0
	for {
		chunk, err := ch.Next()
		if errors.Is(err, io.EOF) {
			return n
		}
		if err != nil {
			tb.Fatal(err)
		}
		n++
		pool.Release(chunk)
	}
}

// TestPooledNextAllocCeiling is the tentpole's allocation target: the
// per-chunk path (Next + Release) must average under 0.1 allocations
// per chunk in steady state — a >=10x reduction from the one
// allocation per chunk the pre-PR take() performed. The small budget
// covers per-run setup (chunker, scanner buffer, reader), which
// amortizes over the chunk count.
func TestPooledNextAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	data := poolTestData()
	p := DefaultParams()
	for _, alg := range diffAlgorithms {
		pool := bufpool.New(p.Max)
		chunks := drainPooled(t, alg, data, p, pool) // warm the pool's slabs
		if chunks == 0 {
			t.Fatalf("%v: no chunks", alg)
		}
		avg := testing.AllocsPerRun(5, func() {
			drainPooled(t, alg, data, p, pool)
		})
		perChunk := avg / float64(chunks)
		if perChunk > 0.1 {
			t.Errorf("%v: %.3f allocs/chunk (%.0f allocs for %d chunks), ceiling 0.1",
				alg, perChunk, avg, chunks)
		}
		if st := pool.Stats(); st.InUse != 0 {
			t.Errorf("%v: %d pooled buffers leaked", alg, st.InUse)
		}
	}
}

// BenchmarkChunkersPooled measures the production backup configuration
// of each chunker: pooled buffers, release after use. Compare against
// BenchmarkChunkers (the unpooled Split path) with -benchmem to see
// the allocation delta.
func BenchmarkChunkersPooled(b *testing.B) {
	data := poolTestData()
	p := DefaultParams()
	for _, alg := range diffAlgorithms {
		b.Run(alg.String(), func(b *testing.B) {
			pool := bufpool.New(p.Max)
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drainPooled(b, alg, data, p, pool)
			}
		})
	}
}

// BenchmarkScan measures the raw cut-point scan (window already
// buffered, no copy, no allocation) — the inner loops this PR
// restructured.
func BenchmarkScan(b *testing.B) {
	data := poolTestData()
	p := DefaultParams()
	run := func(name string, scan func(win []byte) int) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for pos := 0; pos < len(data); {
					end := pos + p.Max
					if end > len(data) {
						end = len(data)
					}
					win := data[pos:end]
					cut := len(win)
					if len(win) > p.Min {
						cut = scan(win)
					}
					pos += cut
				}
			}
		})
	}
	rb, _ := newDecider(Rabin, p)
	run("rabin", func(win []byte) int { return rabinScan(_rabinTab, win, p.Min, rb.mask) })
	tt, _ := newDecider(TTTD, p)
	run("tttd", func(win []byte) int {
		return tttdScan(_rabinTab, win, p.Min, tt.mainDiv, tt.backDiv, len(win) == p.Max)
	})
	fc, _ := newDecider(FastCDC, p)
	run("fastcdc", func(win []byte) int { return fastcdcScan(win, p.Min, p.Avg, fc.maskS, fc.maskL) })
	ar, _ := newDecider(AE, p)
	run("ae", func(win []byte) int { return aeScan(win, p.Min, ar.aeWindow) })
}
