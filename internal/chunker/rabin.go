package chunker

import (
	"io"
	"math/bits"
)

// Poly is a polynomial over GF(2), bit i representing the coefficient of x^i.
type Poly uint64

// _rabinPoly is an irreducible polynomial of degree 53, the same default
// used by well-known Rabin chunker implementations. Irreducibility makes
// the rolling fingerprint behave like a uniform hash of the window.
const _rabinPoly Poly = 0x3DA3358B4DC173

// _rabinWindow is the number of bytes the rolling fingerprint covers.
// 48 bytes is the classic choice (LBFS and descendants).
const _rabinWindow = 48

func polyDeg(p Poly) int {
	if p == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(p))
}

func polyMod(x, p Poly) Poly {
	dp := polyDeg(p)
	for d := polyDeg(x); d >= dp; d = polyDeg(x) {
		x ^= p << uint(d-dp)
	}
	return x
}

// appendByte folds one byte into hash, reducing modulo pol.
func appendByte(hash Poly, b byte, pol Poly) Poly {
	hash <<= 8
	hash |= Poly(b)
	return polyMod(hash, pol)
}

// rabinTables holds the precomputed shift-out and reduction tables for a
// given polynomial and window size.
type rabinTables struct {
	out   [256]Poly // contribution of the byte leaving the window
	mod   [256]Poly // reduction values for the rolling append
	shift uint      // digest bits above which reduction applies
}

func calcRabinTables(pol Poly, window int) *rabinTables {
	t := &rabinTables{shift: uint(polyDeg(pol) - 8)}
	for b := 0; b < 256; b++ {
		var h Poly
		h = appendByte(h, byte(b), pol)
		for i := 0; i < window-1; i++ {
			h = appendByte(h, 0, pol)
		}
		t.out[b] = h
	}
	k := uint(polyDeg(pol))
	for b := 0; b < 256; b++ {
		t.mod[b] = polyMod(Poly(b)<<k, pol) | Poly(b)<<k
	}
	return t
}

// _rabinTab is shared by all rabin chunkers; the polynomial and window are
// fixed so the table is computed once.
var _rabinTab = calcRabinTables(_rabinPoly, _rabinWindow)

// rabinHash is a rolling Rabin fingerprint over a fixed-size window.
type rabinHash struct {
	tab    *rabinTables
	window [_rabinWindow]byte
	wpos   int
	digest Poly
}

func (h *rabinHash) reset() {
	h.window = [_rabinWindow]byte{}
	h.wpos = 0
	h.digest = 0
	// Feed a single 1-byte so an all-zero window does not yield digest 0
	// (which would match any mask immediately).
	h.slide(1)
}

func (h *rabinHash) slide(b byte) {
	out := h.window[h.wpos]
	h.window[h.wpos] = b
	h.digest ^= h.tab.out[out]
	h.wpos++
	if h.wpos >= _rabinWindow {
		h.wpos = 0
	}
	index := byte(h.digest >> h.tab.shift)
	h.digest <<= 8
	h.digest |= Poly(b)
	h.digest ^= h.tab.mod[index]
}

// rabin is the Rabin-based content-defined chunker.
type rabin struct {
	s    *scanner
	h    rabinHash
	p    Params
	mask Poly
}

func newRabin(r io.Reader, p Params) *rabin {
	c := &rabin{
		s:    newScanner(r, p.Max),
		p:    p,
		mask: Poly(nextPow2(p.Avg) - 1),
	}
	c.h.tab = _rabinTab
	return c
}

func (c *rabin) Next() ([]byte, error) {
	win := c.s.window(c.p.Max)
	if err := c.s.failed(); err != nil {
		return nil, err
	}
	if len(win) == 0 {
		return nil, io.EOF
	}
	if len(win) <= c.p.Min {
		return c.s.take(len(win)), nil
	}
	c.h.reset()
	cut := len(win)
	for i := 0; i < len(win); i++ {
		c.h.slide(win[i])
		if i+1 < c.p.Min {
			continue
		}
		if c.h.digest&c.mask == c.mask {
			cut = i + 1
			break
		}
	}
	return c.s.take(cut), nil
}
