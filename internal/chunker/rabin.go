package chunker

import (
	"encoding/binary"
	"math/bits"
)

// Poly is a polynomial over GF(2), bit i representing the coefficient of x^i.
type Poly uint64

// _rabinPoly is an irreducible polynomial of degree 53, the same default
// used by well-known Rabin chunker implementations. Irreducibility makes
// the rolling fingerprint behave like a uniform hash of the window.
const _rabinPoly Poly = 0x3DA3358B4DC173

// _rabinWindow is the number of bytes the rolling fingerprint covers.
// 48 bytes is the classic choice (LBFS and descendants).
const _rabinWindow = 48

func polyDeg(p Poly) int {
	if p == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(p))
}

func polyMod(x, p Poly) Poly {
	dp := polyDeg(p)
	for d := polyDeg(x); d >= dp; d = polyDeg(x) {
		x ^= p << uint(d-dp)
	}
	return x
}

// appendByte folds one byte into hash, reducing modulo pol.
func appendByte(hash Poly, b byte, pol Poly) Poly {
	hash <<= 8
	hash |= Poly(b)
	return polyMod(hash, pol)
}

// rabinTables holds the precomputed shift-out and reduction tables for a
// given polynomial and window size.
type rabinTables struct {
	out   [256]Poly // contribution of the byte leaving the window
	mod   [256]Poly // reduction values for the rolling append
	shift uint      // digest bits above which reduction applies
}

func calcRabinTables(pol Poly, window int) *rabinTables {
	t := &rabinTables{shift: uint(polyDeg(pol) - 8)}
	for b := 0; b < 256; b++ {
		var h Poly
		h = appendByte(h, byte(b), pol)
		for i := 0; i < window-1; i++ {
			h = appendByte(h, 0, pol)
		}
		t.out[b] = h
	}
	k := uint(polyDeg(pol))
	for b := 0; b < 256; b++ {
		t.mod[b] = polyMod(Poly(b)<<k, pol) | Poly(b)<<k
	}
	return t
}

// _rabinTab is shared by all rabin chunkers; the polynomial and window are
// fixed so the table is computed once.
var _rabinTab = calcRabinTables(_rabinPoly, _rabinWindow)

// _rabinSeed is the digest after the rolling hash's reset: one 0x01
// guard byte folded into an all-zero window, so an all-zero stream does
// not yield digest 0 (which would match any mask immediately). Computed
// from the tables rather than hard-coded so it tracks _rabinPoly.
var _rabinSeed = func() Poly {
	var d Poly
	d ^= _rabinTab.out[0] // the zero byte leaving an empty window
	idx := byte(d >> _rabinTab.shift)
	d = d<<8 | 1
	d ^= _rabinTab.mod[idx]
	return d
}()

// rabinScan returns the cut offset (1..len(win)) the rolling Rabin
// fingerprint picks in win: the first position >= min whose digest
// matches mask, or len(win) if none does.
//
// It is the hot-loop form of the textbook implementation (kept as
// refRabinHash in reference_test.go and pinned bit-identical by the
// differential fuzz harness): instead of maintaining a circular window
// buffer and calling a slide method per byte, the loop derives the
// outgoing window byte positionally in three phases —
//
//	phase 1, i < window-1: the outgoing byte is one of the reset's
//	  zeros, and tab.out[0] == 0, so the fold-out is a no-op;
//	phase 2, i == window-1: the 0x01 guard byte leaves;
//	phase 3, i >= window: win[i-window] leaves.
func rabinScan(tab *rabinTables, win []byte, min int, mask Poly) int {
	if min > _rabinWindow {
		return rabinScanSkip(tab, win, min, mask)
	}
	n := len(win)
	shift := tab.shift
	digest := _rabinSeed
	i := 0
	p1 := _rabinWindow - 1
	if p1 > n {
		p1 = n
	}
	for ; i < p1; i++ {
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
		if i+1 >= min && digest&mask == mask {
			return i + 1
		}
	}
	if i < n {
		digest ^= tab.out[1]
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
		if i+1 >= min && digest&mask == mask {
			return i + 1
		}
		i++
	}
	for ; i < n; i++ {
		digest ^= tab.out[win[i-_rabinWindow]]
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
		if i+1 >= min && digest&mask == mask {
			return i + 1
		}
	}
	return n
}

// rabinScanSkip is rabinScan for min > window, the production
// configuration (2 KB min, 48-byte window). Because the fold-out in
// phase 3 is exact, the digest at any position i >= window-1 is a
// pure function of the trailing window bytes, so the scan starts a
// window before the first tested position instead of at 0 — the
// cut-point-skip trick fastcdcScan uses, transplanted to the rolling
// Rabin hash. Two further restructurings over rabinScan:
//
//   - the i+1 >= min test is hoisted out entirely: the warm-up prefix
//     tests nothing, and every position from the guard step on is
//     >= min by construction;
//   - the steady-state loop strides 8 bytes: one 64-bit load each for
//     the incoming and outgoing bytes replaces 16 bounds-checked byte
//     loads, and the 8 steps consume the loaded words from registers.
//
// Bit-identical to rabinScan by the differential fuzz harness.
func rabinScanSkip(tab *rabinTables, win []byte, min int, mask Poly) int {
	n := len(win)
	shift := tab.shift
	digest := _rabinSeed
	// Warm the hash over the window preceding the first tested
	// position; no cut tests happen here.
	i := min - _rabinWindow
	for e := min - 1; i < e; i++ {
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
	}
	// Guard step: the 0x01 reset byte leaves; the first tested cut is
	// min itself.
	digest ^= tab.out[1]
	idx := byte(digest >> shift)
	digest = digest<<8 | Poly(win[i])
	digest ^= tab.mod[idx]
	if digest&mask == mask {
		return i + 1
	}
	i++
	for ; i+8 <= n; i += 8 {
		in := binary.LittleEndian.Uint64(win[i:])
		out := binary.LittleEndian.Uint64(win[i-_rabinWindow:])
		for k := 0; k < 8; k++ {
			digest ^= tab.out[byte(out)]
			out >>= 8
			idx := byte(digest >> shift)
			digest = digest<<8 | Poly(byte(in))
			in >>= 8
			digest ^= tab.mod[idx]
			if digest&mask == mask {
				return i + k + 1
			}
		}
	}
	for ; i < n; i++ {
		digest ^= tab.out[win[i-_rabinWindow]]
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
		if digest&mask == mask {
			return i + 1
		}
	}
	return n
}

