package chunker

// This file preserves the pre-optimization chunker inner loops as
// executable references. The production loops in rabin.go, tttd.go,
// fastcdc.go and ae.go were restructured for speed (positional
// out-byte derivation, cut-point skip, hoisted masks); their cut
// points are required to be bit-identical to these, and
// differential_test.go pins that on deterministic corpora and under
// fuzzing. Touch these only to mirror an intentional, documented
// chunking-format change.

// refRabinHash is the original rolling Rabin fingerprint: a circular
// window buffer and a per-byte slide method.
type refRabinHash struct {
	tab    *rabinTables
	window [_rabinWindow]byte
	wpos   int
	digest Poly
}

func (h *refRabinHash) reset() {
	h.window = [_rabinWindow]byte{}
	h.wpos = 0
	h.digest = 0
	// Feed a single 1-byte so an all-zero window does not yield digest 0
	// (which would match any mask immediately).
	h.slide(1)
}

func (h *refRabinHash) slide(b byte) {
	out := h.window[h.wpos]
	h.window[h.wpos] = b
	h.digest ^= h.tab.out[out]
	h.wpos++
	if h.wpos >= _rabinWindow {
		h.wpos = 0
	}
	index := byte(h.digest >> h.tab.shift)
	h.digest <<= 8
	h.digest |= Poly(b)
	h.digest ^= h.tab.mod[index]
}

// refRabinCut is the original rabin.Next cut decision for one window.
func refRabinCut(win []byte, p Params) int {
	mask := Poly(nextPow2(p.Avg) - 1)
	h := refRabinHash{tab: _rabinTab}
	h.reset()
	cut := len(win)
	for i := 0; i < len(win); i++ {
		h.slide(win[i])
		if i+1 < p.Min {
			continue
		}
		if h.digest&mask == mask {
			cut = i + 1
			break
		}
	}
	return cut
}

// refTTTDCut is the original tttd.Next cut decision for one window.
func refTTTDCut(win []byte, p Params) int {
	d := nextPow2(p.Avg - p.Min)
	if d < 2 {
		d = 2
	}
	mainDiv := Poly(d - 1)
	backDiv := Poly(d/2 - 1)
	h := refRabinHash{tab: _rabinTab}
	h.reset()
	backup := 0
	cut := len(win)
	for i := 0; i < len(win); i++ {
		h.slide(win[i])
		if i+1 < p.Min {
			continue
		}
		if h.digest&backDiv == backDiv {
			backup = i + 1
		}
		if h.digest&mainDiv == mainDiv {
			cut = i + 1
			backup = 0
			break
		}
	}
	if cut == len(win) && len(win) == p.Max && backup > 0 {
		cut = backup
	}
	return cut
}

// refFastCDCCut is the original fastCDC.Next cut decision for one window.
func refFastCDCCut(win []byte, p Params) int {
	c, _ := newDecider(FastCDC, p) // only for the masks
	var h uint64
	normal := p.Avg
	if normal > len(win) {
		normal = len(win)
	}
	cut := len(win)
	for i := 0; i < len(win); i++ {
		h = h<<1 + _gear[win[i]]
		if i+1 < p.Min {
			continue
		}
		mask := c.maskL
		if i+1 < normal {
			mask = c.maskS
		}
		if h&mask == 0 {
			cut = i + 1
			break
		}
	}
	return cut
}

// refAECut is the original ae.Next cut decision for one window.
func refAECut(win []byte, p Params) int {
	w := int(float64(p.Avg) / 1.72)
	if w < 1 {
		w = 1
	}
	maxVal := uint64(0)
	maxPos := -1
	cut := len(win)
	for i := 0; i < len(win); i++ {
		v := _gear[win[i]]
		if i+1 < p.Min {
			continue
		}
		if maxPos < 0 || v > maxVal {
			maxVal, maxPos = v, i
			continue
		}
		if i-maxPos >= w {
			cut = i + 1
			break
		}
	}
	return cut
}

// refCut dispatches one window's cut decision to the reference loop,
// including the shared short-window fast return every chunker applies
// before scanning.
func refCut(alg Algorithm, win []byte, p Params) int {
	if len(win) <= p.Min {
		return len(win)
	}
	switch alg {
	case Rabin:
		return refRabinCut(win, p)
	case TTTD:
		return refTTTDCut(win, p)
	case FastCDC:
		return refFastCDCCut(win, p)
	case AE:
		return refAECut(win, p)
	}
	return len(win)
}

// refSplit chunks data with the reference cut decisions, simulating the
// scanner's windowing (a full Max-byte window when available, the tail
// otherwise; the fixed chunker windows by Avg).
func refSplit(alg Algorithm, data []byte, p Params) [][]byte {
	var out [][]byte
	for pos := 0; pos < len(data); {
		end := pos + p.Max
		if alg == Fixed {
			end = pos + p.Avg
		}
		if end > len(data) {
			end = len(data)
		}
		win := data[pos:end]
		cut := len(win)
		if alg != Fixed && len(win) > p.Min {
			cut = refCut(alg, win, p)
		}
		out = append(out, data[pos:pos+cut])
		pos += cut
	}
	return out
}
