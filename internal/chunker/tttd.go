package chunker

import "io"

// tttd implements the Two Thresholds, Two Divisors algorithm (Eshghi &
// Tang, HP Labs), the chunker HiDeStore's prototype uses (§5.1). It scans
// with a rolling Rabin fingerprint and keeps two divisors: the main divisor
// D yields the target average size; the backup divisor D' = D/2 fires twice
// as often and records a fallback cut point. If no main cut appears before
// the maximum threshold, the most recent backup cut is used, which keeps
// forced cuts content-defined instead of positional.
type tttd struct {
	s       *scanner
	h       rabinHash
	p       Params
	mainDiv Poly
	backDiv Poly
}

func newTTTD(r io.Reader, p Params) *tttd {
	// Divisors derived from the target average: with min-size skipping, the
	// expected chunk size is roughly Min + D, so choose D = Avg - Min
	// (rounded to a power of two for cheap masking).
	d := nextPow2(p.Avg - p.Min)
	if d < 2 {
		d = 2
	}
	c := &tttd{
		s:       newScanner(r, p.Max),
		p:       p,
		mainDiv: Poly(d - 1),
		backDiv: Poly(d/2 - 1),
	}
	c.h.tab = _rabinTab
	return c
}

func (c *tttd) Next() ([]byte, error) {
	win := c.s.window(c.p.Max)
	if err := c.s.failed(); err != nil {
		return nil, err
	}
	if len(win) == 0 {
		return nil, io.EOF
	}
	if len(win) <= c.p.Min {
		return c.s.take(len(win)), nil
	}
	c.h.reset()
	backup := 0
	cut := len(win) // forced cut at max (or end of stream)
	for i := 0; i < len(win); i++ {
		c.h.slide(win[i])
		if i+1 < c.p.Min {
			continue
		}
		if c.h.digest&c.backDiv == c.backDiv {
			backup = i + 1
		}
		if c.h.digest&c.mainDiv == c.mainDiv {
			cut = i + 1
			backup = 0
			break
		}
	}
	if cut == len(win) && len(win) == c.p.Max && backup > 0 {
		cut = backup
	}
	return c.s.take(cut), nil
}
