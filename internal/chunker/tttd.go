package chunker

import "io"

// tttd implements the Two Thresholds, Two Divisors algorithm (Eshghi &
// Tang, HP Labs), the chunker HiDeStore's prototype uses (§5.1). It scans
// with a rolling Rabin fingerprint and keeps two divisors: the main divisor
// D yields the target average size; the backup divisor D' = D/2 fires twice
// as often and records a fallback cut point. If no main cut appears before
// the maximum threshold, the most recent backup cut is used, which keeps
// forced cuts content-defined instead of positional.
type tttd struct {
	s       *scanner
	tab     *rabinTables
	p       Params
	mainDiv Poly
	backDiv Poly
}

func newTTTD(s *scanner, p Params) *tttd {
	// Divisors derived from the target average: with min-size skipping, the
	// expected chunk size is roughly Min + D, so choose D = Avg - Min
	// (rounded to a power of two for cheap masking).
	d := nextPow2(p.Avg - p.Min)
	if d < 2 {
		d = 2
	}
	return &tttd{
		s:       s,
		tab:     _rabinTab,
		p:       p,
		mainDiv: Poly(d - 1),
		backDiv: Poly(d/2 - 1),
	}
}

// tttdScan returns the cut offset in win: the first position >= min
// matching the main divisor; failing that, the last position matching
// the backup divisor if the window is a full max-size window; failing
// that, len(win). Same three-phase digest walk as rabinScan (the
// outgoing window byte is derived positionally); bit-identical to the
// reference implementation by the differential fuzz harness.
func tttdScan(tab *rabinTables, win []byte, min int, mainDiv, backDiv Poly, isMaxWindow bool) int {
	n := len(win)
	shift := tab.shift
	digest := _rabinSeed
	backup := 0
	i := 0
	p1 := _rabinWindow - 1
	if p1 > n {
		p1 = n
	}
	for ; i < p1; i++ {
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
		if i+1 >= min {
			if digest&backDiv == backDiv {
				backup = i + 1
			}
			if digest&mainDiv == mainDiv {
				return i + 1
			}
		}
	}
	if i < n {
		digest ^= tab.out[1]
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
		if i+1 >= min {
			if digest&backDiv == backDiv {
				backup = i + 1
			}
			if digest&mainDiv == mainDiv {
				return i + 1
			}
		}
		i++
	}
	for ; i < n; i++ {
		digest ^= tab.out[win[i-_rabinWindow]]
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
		if i+1 >= min {
			if digest&backDiv == backDiv {
				backup = i + 1
			}
			if digest&mainDiv == mainDiv {
				return i + 1
			}
		}
	}
	if isMaxWindow && backup > 0 {
		return backup
	}
	return n
}

func (c *tttd) Next() ([]byte, error) {
	win := c.s.window(c.p.Max)
	if err := c.s.failed(); err != nil {
		return nil, err
	}
	if len(win) == 0 {
		return nil, io.EOF
	}
	if len(win) <= c.p.Min {
		return c.s.take(len(win)), nil
	}
	cut := tttdScan(c.tab, win, c.p.Min, c.mainDiv, c.backDiv, len(win) == c.p.Max)
	return c.s.take(cut), nil
}
