package chunker

import "encoding/binary"

// TTTD implements the Two Thresholds, Two Divisors algorithm (Eshghi &
// Tang, HP Labs), the chunker HiDeStore's prototype uses (§5.1). It scans
// with a rolling Rabin fingerprint and keeps two divisors: the main divisor
// D yields the target average size; the backup divisor D' = D/2 fires twice
// as often and records a fallback cut point. If no main cut appears before
// the maximum threshold, the most recent backup cut is used, which keeps
// forced cuts content-defined instead of positional. Divisor derivation
// lives in newDecider (decide.go).

// tttdScan returns the cut offset in win: the first position >= min
// matching the main divisor; failing that, the last position matching
// the backup divisor if the window is a full max-size window; failing
// that, len(win). Same three-phase digest walk as rabinScan (the
// outgoing window byte is derived positionally); bit-identical to the
// reference implementation by the differential fuzz harness.
func tttdScan(tab *rabinTables, win []byte, min int, mainDiv, backDiv Poly, isMaxWindow bool) int {
	if min > _rabinWindow {
		return tttdScanSkip(tab, win, min, mainDiv, backDiv, isMaxWindow)
	}
	n := len(win)
	shift := tab.shift
	digest := _rabinSeed
	backup := 0
	i := 0
	p1 := _rabinWindow - 1
	if p1 > n {
		p1 = n
	}
	for ; i < p1; i++ {
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
		if i+1 >= min {
			if digest&backDiv == backDiv {
				backup = i + 1
			}
			if digest&mainDiv == mainDiv {
				return i + 1
			}
		}
	}
	if i < n {
		digest ^= tab.out[1]
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
		if i+1 >= min {
			if digest&backDiv == backDiv {
				backup = i + 1
			}
			if digest&mainDiv == mainDiv {
				return i + 1
			}
		}
		i++
	}
	for ; i < n; i++ {
		digest ^= tab.out[win[i-_rabinWindow]]
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
		if i+1 >= min {
			if digest&backDiv == backDiv {
				backup = i + 1
			}
			if digest&mainDiv == mainDiv {
				return i + 1
			}
		}
	}
	if isMaxWindow && backup > 0 {
		return backup
	}
	return n
}

// tttdScanSkip is tttdScan for min > window: same restructurings as
// rabinScanSkip (start a window before the first tested position,
// hoist the min test, 8-byte strides in the steady state). The backup
// divisor fires often — roughly every D/2 bytes — so its tracking is
// written as a plain conditional assignment, which the compiler turns
// into a branch-free conditional move. Bit-identical to tttdScan by
// the differential fuzz harness.
func tttdScanSkip(tab *rabinTables, win []byte, min int, mainDiv, backDiv Poly, isMaxWindow bool) int {
	n := len(win)
	shift := tab.shift
	digest := _rabinSeed
	backup := 0
	i := min - _rabinWindow
	for e := min - 1; i < e; i++ {
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
	}
	digest ^= tab.out[1]
	idx := byte(digest >> shift)
	digest = digest<<8 | Poly(win[i])
	digest ^= tab.mod[idx]
	if digest&backDiv == backDiv {
		backup = i + 1
	}
	if digest&mainDiv == mainDiv {
		return i + 1
	}
	i++
	for ; i+8 <= n; i += 8 {
		in := binary.LittleEndian.Uint64(win[i:])
		out := binary.LittleEndian.Uint64(win[i-_rabinWindow:])
		for k := 0; k < 8; k++ {
			digest ^= tab.out[byte(out)]
			out >>= 8
			idx := byte(digest >> shift)
			digest = digest<<8 | Poly(byte(in))
			in >>= 8
			digest ^= tab.mod[idx]
			if digest&backDiv == backDiv {
				backup = i + k + 1
			}
			if digest&mainDiv == mainDiv {
				return i + k + 1
			}
		}
	}
	for ; i < n; i++ {
		digest ^= tab.out[win[i-_rabinWindow]]
		idx := byte(digest >> shift)
		digest = digest<<8 | Poly(win[i])
		digest ^= tab.mod[idx]
		if digest&backDiv == backDiv {
			backup = i + 1
		}
		if digest&mainDiv == mainDiv {
			return i + 1
		}
	}
	if isMaxWindow && backup > 0 {
		return backup
	}
	return n
}

