// Package cleanup holds the project's best-effort teardown helpers.
//
// hidelint's discarded-error check forbids dropping error results, but
// error paths legitimately release resources while a more important
// error is already on its way to the caller (close-and-remove of a
// temp file after a failed write, closing a read-only fd). Funnelling
// those discards through this package keeps the policy auditable: the
// only sanctioned error discards in the tree are the two suppressions
// below, each with its reason, instead of ad-hoc `_ =` scattered
// through every error path.
package cleanup

import (
	"io"
	"os"
)

// Close releases c on a path where its error cannot change the
// outcome: an error path already returning a more important error, or
// a read-only fd whose Close reports nothing actionable. Do NOT use it
// for the final Close of a written file — that error means data loss
// and must be returned.
func Close(c io.Closer) {
	//hidelint:ignore discarded-error best-effort release; the caller is already returning the error that matters
	_ = c.Close()
}

// Remove deletes path best-effort, for error-path teardown of temp
// files whose leak is harmless next to the error being returned.
func Remove(path string) {
	//hidelint:ignore discarded-error best-effort temp-file removal on an error path
	_ = os.Remove(path)
}
