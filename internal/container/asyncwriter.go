package container

import (
	"context"
	"errors"
	"sync"
	"time"

	"hidestore/internal/pipeline"
)

// AsyncWriter hides container-commit latency behind the backup hot
// loop: sealed container images are queued to one background goroutine
// that issues the Store.Put (an fsync'd file write on the durable
// store), so chunking/hashing/lookup proceed while the previous
// container commits. This is the write-path symmetric of PR 1's
// restore read-ahead, after destor's pipelined container log.
//
// Correctness constraints, relied on by the engines' crash matrix:
//
//   - Single writer goroutine, channel-ordered: Puts reach the store in
//     seal order, exactly as the synchronous path did, keeping the
//     fault injector's op sequence deterministic.
//   - The producer must not mutate a container after queueing it; the
//     channel handoff is the ownership transfer. (The engines only
//     mutate sealed actives during post-barrier maintenance.)
//   - Errors are never dropped: a failed Put is reported by the next
//     Put call or, at the latest, by Barrier, which the engines invoke
//     before the recipe commit — preserving the documented
//     containers → recipe → state crash-consistency order.
type AsyncWriter struct {
	store   Store
	ch      chan *Container
	g       *pipeline.Group
	ctx     context.Context
	flushed func(c *Container, start time.Time, d time.Duration)

	mu     sync.Mutex
	closed bool
}

// NewAsyncWriter starts the background writer. depth bounds how many
// sealed images may be queued (and thus held in memory) ahead of the
// store; depth <= 0 selects the default of 2. flushed, when non-nil,
// is called from the writer goroutine after each successful Put —
// callers use it for metrics/trace emission and it must be
// concurrency-safe with the producing goroutines.
func NewAsyncWriter(ctx context.Context, store Store, depth int, flushed func(*Container, time.Time, time.Duration)) *AsyncWriter {
	if depth <= 0 {
		depth = 2
	}
	g, gctx := pipeline.WithContext(ctx)
	w := &AsyncWriter{
		store:   store,
		ch:      make(chan *Container, depth),
		g:       g,
		ctx:     gctx,
		flushed: flushed,
	}
	g.Go(func() error {
		for {
			select {
			case c, ok := <-w.ch:
				if !ok {
					return nil
				}
				start := time.Now()
				if err := store.Put(c); err != nil {
					// Returning cancels the group context, which
					// unblocks any Put waiting on a full queue; queued
					// images are abandoned (the backup fails past this
					// point anyway).
					return err
				}
				if w.flushed != nil {
					w.flushed(c, start, time.Since(start))
				}
			case <-gctx.Done():
				// Parent cancellation: stop promptly so Put/Barrier
				// callers observing the context are not left waiting
				// for a close that may never come.
				return gctx.Err()
			}
		}
	})
	return w
}

// Put queues a sealed container for a background commit, blocking only
// when depth images are already in flight. It returns the writer's
// first error if one has occurred — a failed background Put surfaces
// on the next seal, never silently.
func (w *AsyncWriter) Put(c *Container) error {
	w.mu.Lock()
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return errors.New("container: AsyncWriter.Put after Barrier")
	}
	select {
	case w.ch <- c:
		return nil
	case <-w.ctx.Done():
		if err := w.g.Wait(); err != nil {
			return err
		}
		return w.ctx.Err()
	}
}

// Barrier closes the queue and blocks until every queued image is
// durably in the store, returning the writer's first error. It is the
// commit-order fence: engines call it after the last seal and before
// the recipe Put. Barrier is idempotent; the writer accepts no Puts
// afterwards.
func (w *AsyncWriter) Barrier() error {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.ch)
	}
	w.mu.Unlock()
	return w.g.Wait()
}
