package container

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// orderedStore wraps a MemStore and records Put order, optionally
// failing the nth Put (1-based).
type orderedStore struct {
	*MemStore
	mu     sync.Mutex
	order  []ID
	failAt int
	puts   int
	errPut error
}

func (s *orderedStore) Put(c *Container) error {
	s.mu.Lock()
	s.puts++
	fail := s.failAt > 0 && s.puts == s.failAt
	s.mu.Unlock()
	if fail {
		return s.errPut
	}
	if err := s.MemStore.Put(c); err != nil {
		return err
	}
	s.mu.Lock()
	s.order = append(s.order, c.ID())
	s.mu.Unlock()
	return nil
}

func sealed(t *testing.T, id ID) *Container {
	t.Helper()
	c := NewWithCapacity(id, 1<<20)
	if err := c.Add([20]byte{byte(id)}, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAsyncWriterCommitsInOrder(t *testing.T) {
	st := &orderedStore{MemStore: NewMemStore()}
	var flushes []ID
	w := NewAsyncWriter(context.Background(), st, 2, func(c *Container, _ time.Time, _ time.Duration) {
		flushes = append(flushes, c.ID()) // writer goroutine only; read after Barrier
	})
	for id := ID(1); id <= 5; id++ {
		if err := w.Put(sealed(t, id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Barrier(); err != nil {
		t.Fatal(err)
	}
	if len(st.order) != 5 {
		t.Fatalf("store saw %d puts, want 5", len(st.order))
	}
	for i, id := range st.order {
		if id != ID(i+1) {
			t.Fatalf("put order %v: seal order not preserved", st.order)
		}
	}
	if len(flushes) != 5 {
		t.Fatalf("flushed callback ran %d times, want 5", len(flushes))
	}
}

func TestAsyncWriterSurfacesErrorOnPutOrBarrier(t *testing.T) {
	boom := errors.New("disk full")
	st := &orderedStore{MemStore: NewMemStore(), failAt: 1, errPut: boom}
	w := NewAsyncWriter(context.Background(), st, 1, nil)
	// The first queued Put fails in the background. Keep queueing until
	// the error surfaces, then confirm Barrier reports it too.
	var got error
	for i := 0; i < 100 && got == nil; i++ {
		got = w.Put(sealed(t, ID(i+1)))
	}
	if got != nil && !errors.Is(got, boom) {
		t.Fatalf("Put surfaced %v, want %v", got, boom)
	}
	if err := w.Barrier(); !errors.Is(err, boom) {
		t.Fatalf("Barrier = %v, want %v", err, boom)
	}
}

func TestAsyncWriterBarrierIdempotentAndFinal(t *testing.T) {
	st := &orderedStore{MemStore: NewMemStore()}
	w := NewAsyncWriter(context.Background(), st, 2, nil)
	if err := w.Put(sealed(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := w.Barrier(); err != nil {
		t.Fatalf("second Barrier = %v, want nil", err)
	}
	if err := w.Put(sealed(t, 2)); err == nil {
		t.Fatal("Put after Barrier succeeded; want error")
	}
}

func TestAsyncWriterUnblocksOnParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	st := &orderedStore{MemStore: NewMemStore()}
	w := NewAsyncWriter(ctx, st, 1, nil)
	cancel()
	// With the context gone the writer exits; Put must not hang even if
	// the queue backs up.
	done := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 10 && err == nil; i++ {
			err = w.Put(sealed(t, ID(i+1)))
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Put kept succeeding after cancel; want context error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Put blocked past context cancellation")
	}
	if err := w.Barrier(); err == nil {
		t.Fatal("Barrier after cancel = nil, want context error")
	}
}
