package container

import (
	"math/rand"
	"testing"

	"hidestore/internal/fp"
)

func benchContainer(b *testing.B, chunkSize int) *Container {
	b.Helper()
	c := NewWithCapacity(1, DefaultCapacity)
	rng := rand.New(rand.NewSource(1))
	for c.Free() > chunkSize {
		data := make([]byte, chunkSize)
		rng.Read(data)
		if err := c.Add(fp.Of(data), data); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

func BenchmarkMarshal(b *testing.B) {
	c := benchContainer(b, 4096)
	b.SetBytes(int64(c.DataSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	c := benchContainer(b, 4096)
	buf, err := c.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(data)
	f := fp.Of(data)
	b.SetBytes(4096)
	b.ResetTimer()
	c := NewWithCapacity(1, DefaultCapacity)
	for i := 0; i < b.N; i++ {
		if !c.HasRoom(len(data)) {
			c = NewWithCapacity(1, DefaultCapacity)
		}
		f[0], f[1] = byte(i), byte(i>>8) // vary the key
		if err := c.Add(f, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	c := benchContainer(b, 4096)
	fps := c.Fingerprints()
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(fps[i%len(fps)]); err != nil {
			b.Fatal(err)
		}
	}
}
