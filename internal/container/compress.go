package container

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"

	"hidestore/internal/fp"
)

// CompressedStore wraps a Store, transparently DEFLATE-compressing
// container images at rest. Production deduplication systems compress
// containers after chunking (compression composes with deduplication:
// dedup removes repeated chunks, compression shrinks what remains); the
// paper's testbed leaves it off, so the experiment harness does too, but
// the CLI can enable it for real use.
//
// The wrapper stores each container as a fresh DEFLATE stream of its
// MarshalBinary image. Reads decompress and decode; the inner store only
// ever sees opaque compressed bytes packed inside a single-chunk carrier
// container, so any Store implementation can back it.
type CompressedStore struct {
	inner Store
	level int

	mu    sync.Mutex
	stats StoreStats
	// rawBytes and compressedBytes track the compression ratio.
	rawBytes        uint64
	compressedBytes uint64
}

var _ Store = (*CompressedStore)(nil)

// NewCompressedStore wraps inner; level is a flate level (flate.
// DefaultCompression when 0).
func NewCompressedStore(inner Store, level int) (*CompressedStore, error) {
	if level == 0 {
		level = flate.DefaultCompression
	}
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		return nil, fmt.Errorf("container: invalid compression level %d", level)
	}
	return &CompressedStore{inner: inner, level: level}, nil
}

// carrierFP is the fixed fingerprint under which the compressed image is
// stored inside the carrier container. It is metadata, not content
// (carriers are never deduplicated), so a constant is fine.
var carrierFP = func() fp.FP {
	var f fp.FP
	copy(f[:], "HDS-COMPRESSED-IMAGE")
	return f
}()

// Put implements Store.
func (s *CompressedStore) Put(c *Container) error {
	if c == nil {
		return fmt.Errorf("container: Put nil container")
	}
	raw, err := c.MarshalBinary()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, s.level)
	if err != nil {
		return fmt.Errorf("container: compressor: %w", err)
	}
	if _, err := w.Write(raw); err != nil {
		return fmt.Errorf("container: compress %d: %w", c.ID(), err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("container: compress %d: %w", c.ID(), err)
	}
	carrier := NewWithCapacity(c.ID(), buf.Len())
	if err := carrier.Add(carrierFP, buf.Bytes()); err != nil {
		return err
	}
	if err := s.inner.Put(carrier); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Writes++
	s.stats.BytesWritten += uint64(c.LiveSize())
	s.rawBytes += uint64(len(raw))
	s.compressedBytes += uint64(buf.Len())
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *CompressedStore) Get(id ID) (*Container, error) {
	carrier, err := s.inner.Get(id)
	if err != nil {
		return nil, err
	}
	compressed, err := carrier.Get(carrierFP)
	if err != nil {
		return nil, fmt.Errorf("container %d: not a compressed carrier: %w", id, err)
	}
	raw, err := io.ReadAll(flate.NewReader(bytes.NewReader(compressed)))
	if err != nil {
		return nil, fmt.Errorf("container %d: decompress: %w", id, err)
	}
	c, err := UnmarshalBinary(raw)
	if err != nil {
		return nil, fmt.Errorf("container %d: %w", id, err)
	}
	s.mu.Lock()
	s.stats.Reads++
	s.stats.BytesRead += uint64(c.LiveSize())
	s.mu.Unlock()
	return c, nil
}

// Delete implements Store.
func (s *CompressedStore) Delete(id ID) error {
	if err := s.inner.Delete(id); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Deletes++
	s.mu.Unlock()
	return nil
}

// Has implements Store.
func (s *CompressedStore) Has(id ID) (bool, error) { return s.inner.Has(id) }

// IDs implements Store.
func (s *CompressedStore) IDs() ([]ID, error) { return s.inner.IDs() }

// Len implements Store.
func (s *CompressedStore) Len() (int, error) { return s.inner.Len() }

// Quarantine forwards to the inner store when it can quarantine;
// compression is transparent to the on-disk layout, so the carrier
// file is the right thing to move aside.
func (s *CompressedStore) Quarantine(id ID) (string, error) {
	q, ok := s.inner.(Quarantiner)
	if !ok {
		return "", fmt.Errorf("container: inner store of CompressedStore cannot quarantine")
	}
	return q.Quarantine(id)
}

// Stats implements Store: logical (uncompressed) byte counts, so restore
// speed factors stay comparable with uncompressed stores.
func (s *CompressedStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *CompressedStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = StoreStats{}
}

// CompressionRatio returns compressed bytes over raw bytes written so far
// (1.0 = incompressible, smaller is better); 0 before any write.
func (s *CompressedStore) CompressionRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rawBytes == 0 {
		return 0
	}
	return float64(s.compressedBytes) / float64(s.rawBytes)
}
