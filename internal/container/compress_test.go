package container

import (
	"bytes"
	"compress/flate"
	"strings"
	"testing"
)

func newCompressed(t *testing.T) *CompressedStore {
	t.Helper()
	s, err := NewCompressedStore(NewMemStore(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompressedRoundTrip(t *testing.T) {
	s := newCompressed(t)
	orig := fillContainer(t, 5, 20)
	fps := orig.Fingerprints()
	want := make(map[string][]byte)
	for _, f := range fps {
		d, err := orig.Get(f)
		if err != nil {
			t.Fatal(err)
		}
		want[f.String()] = d
	}
	if err := s.Put(orig); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != 5 || got.Len() != len(fps) {
		t.Fatalf("shape: id=%d len=%d", got.ID(), got.Len())
	}
	for _, f := range fps {
		d, err := got.Get(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d, want[f.String()]) {
			t.Fatalf("chunk %s corrupted", f.Short())
		}
	}
}

func TestCompressedActuallyCompresses(t *testing.T) {
	mem := NewMemStore()
	s, err := NewCompressedStore(mem, flate.BestCompression)
	if err != nil {
		t.Fatal(err)
	}
	// Highly compressible payload.
	c := NewWithCapacity(1, DefaultCapacity)
	data := []byte(strings.Repeat("compress me! ", 4096))
	if err := c.Add(carrierFPForTest("x"), data); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(c); err != nil {
		t.Fatal(err)
	}
	ratio := s.CompressionRatio()
	if ratio <= 0 || ratio >= 0.2 {
		t.Fatalf("compression ratio %.3f; repeated text should compress hard", ratio)
	}
	// The inner store holds fewer bytes than the logical payload.
	if mem.TotalLiveBytes() >= uint64(len(data)) {
		t.Fatalf("inner store holds %d bytes for %d logical", mem.TotalLiveBytes(), len(data))
	}
}

func TestCompressedStoreInterface(t *testing.T) {
	s := newCompressed(t)
	if err := s.Put(fillContainer(t, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fillContainer(t, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if has, err := s.Has(1); err != nil || !has {
		t.Fatalf("Has(1) = %v, %v", has, err)
	}
	if has, err := s.Has(9); err != nil || has {
		t.Fatalf("Has(9) = %v, %v", has, err)
	}
	ids, err := s.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != 2 || len(ids) != 2 {
		t.Fatalf("Len/IDs wrong: %d, %v, %d ids", n, err, len(ids))
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if has, err := s.Has(1); err != nil || has {
		t.Fatal("Delete did not stick")
	}
	st := s.Stats()
	if st.Writes != 2 || st.Deletes != 1 {
		t.Fatalf("stats %+v", st)
	}
	s.ResetStats()
	if s.Stats() != (StoreStats{}) {
		t.Fatal("ResetStats failed")
	}
	if err := s.Put(nil); err == nil {
		t.Fatal("Put(nil) should fail")
	}
}

func TestCompressedBadLevel(t *testing.T) {
	if _, err := NewCompressedStore(NewMemStore(), 42); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestCompressedRejectsPlainCarrier(t *testing.T) {
	mem := NewMemStore()
	s, err := NewCompressedStore(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A container written directly to the inner store is not a valid
	// carrier; Get must fail loudly, not return garbage.
	if err := mem.Put(fillContainer(t, 7, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(7); err == nil {
		t.Fatal("plain container accepted as compressed carrier")
	}
}

// carrierFPForTest builds a distinct fingerprint for test payloads.
func carrierFPForTest(s string) (f [20]byte) {
	copy(f[:], s)
	return f
}
