// Package container implements the container abstraction of chunk-based
// deduplication systems.
//
// Unique chunks are packed into fixed-capacity containers (4 MB in the
// paper, §2.1) which are the unit of disk I/O: restoring data reads whole
// containers, so restore performance is governed by how many containers a
// backup stream's chunks are scattered across (the chunk-fragmentation
// problem, §2.3). Each container carries its own metadata hash table
// (fingerprint → offset/size, Figure 6) so that a container read makes all
// of its chunks addressable.
//
// HiDeStore distinguishes *active* containers (mutable, holding hot chunks
// of the current/previous version) from *archival* containers (immutable,
// holding cold chunks). Both share this representation; activeness is a
// property of how the engine uses them. Containers support chunk removal
// (leaving dead space) and report utilization so the engine can decide when
// to merge sparse active containers (§4.2).
package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"hidestore/internal/fp"
)

// ID identifies a container. IDs are positive; 0 is reserved as "invalid"
// (HiDeStore recipes use CID 0 to mean "still in active containers").
type ID uint32

// DefaultCapacity is the paper's container size: 4 MB of chunk data.
const DefaultCapacity = 4 << 20

// Container errors.
var (
	ErrFull      = errors.New("container: not enough free space")
	ErrDuplicate = errors.New("container: fingerprint already present")
	ErrNotFound  = errors.New("container: chunk not found")
	ErrCorrupt   = errors.New("container: corrupt encoding")
)

// Entry locates one chunk inside a container.
type Entry struct {
	FP     fp.FP
	Offset uint32
	Size   uint32
}

// Container is an in-memory container image. It is not safe for concurrent
// use; stores and engines synchronize around it.
type Container struct {
	id       ID
	capacity int
	entries  map[fp.FP]Entry
	order    []fp.FP // insertion order of live chunks
	data     []byte  // chunk payloads, including dead space after removals
	dead     int     // bytes belonging to removed chunks
}

// New creates an empty container with the given ID and DefaultCapacity.
func New(id ID) *Container {
	return NewWithCapacity(id, DefaultCapacity)
}

// NewWithCapacity creates an empty container with an explicit capacity.
// Small capacities are useful in tests; the paper's systems all use 4 MB.
func NewWithCapacity(id ID, capacity int) *Container {
	return &Container{
		id:       id,
		capacity: capacity,
		entries:  make(map[fp.FP]Entry),
	}
}

// ID returns the container's identifier.
func (c *Container) ID() ID { return c.id }

// SetID reassigns the identifier (used when compaction renumbers).
func (c *Container) SetID(id ID) { c.id = id }

// Capacity returns the data capacity in bytes.
func (c *Container) Capacity() int { return c.capacity }

// SetCapacity adjusts the capacity, e.g. after decoding (the wire format
// does not record capacity). It fails if the existing payload would no
// longer fit.
func (c *Container) SetCapacity(n int) error {
	if n < len(c.data) {
		return fmt.Errorf("container: capacity %d below payload %d", n, len(c.data))
	}
	c.capacity = n
	return nil
}

// Len returns the number of live chunks.
func (c *Container) Len() int { return len(c.entries) }

// DataSize returns the bytes of payload written, including dead space.
func (c *Container) DataSize() int { return len(c.data) }

// LiveSize returns the bytes of payload belonging to live chunks.
func (c *Container) LiveSize() int { return len(c.data) - c.dead }

// Free returns the remaining appendable space.
func (c *Container) Free() int { return c.capacity - len(c.data) }

// Utilization is live payload over capacity — the sparseness measure
// HiDeStore uses to pick merge candidates (§4.2).
func (c *Container) Utilization() float64 {
	return float64(c.LiveSize()) / float64(c.capacity)
}

// HasRoom reports whether a chunk of n bytes can be appended.
func (c *Container) HasRoom(n int) bool { return n <= c.Free() }

// Add appends a chunk. It fails with ErrFull when the payload would exceed
// capacity and with ErrDuplicate when the fingerprint is already live.
func (c *Container) Add(f fp.FP, data []byte) error {
	if !c.HasRoom(len(data)) {
		return fmt.Errorf("%w: %d bytes, %d free", ErrFull, len(data), c.Free())
	}
	if _, ok := c.entries[f]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, f.Short())
	}
	c.entries[f] = Entry{FP: f, Offset: uint32(len(c.data)), Size: uint32(len(data))}
	c.order = append(c.order, f)
	c.data = append(c.data, data...)
	return nil
}

// Has reports whether the fingerprint is live in this container.
func (c *Container) Has(f fp.FP) bool {
	_, ok := c.entries[f]
	return ok
}

// Get returns a copy of the chunk payload for f.
func (c *Container) Get(f fp.FP) ([]byte, error) {
	e, ok := c.entries[f]
	if !ok {
		return nil, fmt.Errorf("%w: %s in container %d", ErrNotFound, f.Short(), c.id)
	}
	out := make([]byte, e.Size)
	copy(out, c.data[e.Offset:e.Offset+e.Size])
	return out, nil
}

// Entry returns the metadata entry for f.
func (c *Container) Entry(f fp.FP) (Entry, bool) {
	e, ok := c.entries[f]
	return e, ok
}

// Remove deletes the chunk's metadata, leaving its payload as dead space
// (the paper's Figure 6: freed holes are not directly reusable because
// chunk sizes vary; compaction reclaims them).
func (c *Container) Remove(f fp.FP) error {
	e, ok := c.entries[f]
	if !ok {
		return fmt.Errorf("%w: %s in container %d", ErrNotFound, f.Short(), c.id)
	}
	delete(c.entries, f)
	c.dead += int(e.Size)
	// Lazily drop from order on iteration; keep removal O(1).
	return nil
}

// Fingerprints returns the live fingerprints in insertion order.
func (c *Container) Fingerprints() []fp.FP {
	out := make([]fp.FP, 0, len(c.entries))
	for _, f := range c.order {
		if _, ok := c.entries[f]; ok {
			out = append(out, f)
		}
	}
	return out
}

// Entries returns the live entries in insertion order.
func (c *Container) Entries() []Entry {
	out := make([]Entry, 0, len(c.entries))
	for _, f := range c.order {
		if e, ok := c.entries[f]; ok {
			out = append(out, e)
		}
	}
	return out
}

// Compacted returns a new container with the given ID holding only the
// live chunks, packed contiguously in insertion order.
func (c *Container) Compacted(id ID) *Container {
	out := NewWithCapacity(id, c.capacity)
	for _, f := range c.order {
		if e, ok := c.entries[f]; ok {
			// Add cannot fail: live size necessarily fits capacity and
			// fingerprints are unique within a container.
			if err := out.Add(f, c.data[e.Offset:e.Offset+e.Size]); err != nil {
				//hidelint:ignore no-panic unreachable by construction: live chunks fit capacity and fingerprints are unique
				panic(fmt.Sprintf("container: compaction invariant violated: %v", err))
			}
		}
	}
	return out
}

// Clone returns a deep copy.
func (c *Container) Clone() *Container {
	out := &Container{
		id:       c.id,
		capacity: c.capacity,
		entries:  make(map[fp.FP]Entry, len(c.entries)),
		order:    append([]fp.FP(nil), c.order...),
		data:     append([]byte(nil), c.data...),
		dead:     c.dead,
	}
	for k, v := range c.entries {
		out.entries[k] = v
	}
	return out
}

// Binary format constants.
const (
	_magic         = 0x48445343 // "HDSC"
	_formatVersion = 1
	_headerSize    = 4 + 2 + 2 + 4 + 4 + 4 + 4 // magic, ver, pad, id, count, dataSize, crc
	_entrySize     = fp.Size + 4 + 4
)

// MarshalBinary encodes the container (live chunks only, compacted) as:
//
//	magic u32 | version u16 | pad u16 | id u32 | count u32 | dataSize u32 |
//	crc u32 | count×(fp[20] | offset u32 | size u32) | data bytes
//
// The CRC covers entries and data, enabling corruption detection on read.
func (c *Container) MarshalBinary() ([]byte, error) {
	packed := c
	if c.dead > 0 {
		packed = c.Compacted(c.id)
	}
	entries := packed.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Offset < entries[j].Offset })
	buf := make([]byte, _headerSize+len(entries)*_entrySize+len(packed.data))
	binary.BigEndian.PutUint32(buf[0:], _magic)
	binary.BigEndian.PutUint16(buf[4:], _formatVersion)
	binary.BigEndian.PutUint32(buf[8:], uint32(packed.id))
	binary.BigEndian.PutUint32(buf[12:], uint32(len(entries)))
	binary.BigEndian.PutUint32(buf[16:], uint32(len(packed.data)))
	off := _headerSize
	for _, e := range entries {
		copy(buf[off:], e.FP[:])
		binary.BigEndian.PutUint32(buf[off+fp.Size:], e.Offset)
		binary.BigEndian.PutUint32(buf[off+fp.Size+4:], e.Size)
		off += _entrySize
	}
	copy(buf[off:], packed.data)
	crc := crc32.ChecksumIEEE(buf[_headerSize:])
	binary.BigEndian.PutUint32(buf[20:], crc)
	return buf, nil
}

// UnmarshalBinary decodes a container encoded by MarshalBinary. The
// capacity is restored to DefaultCapacity unless the payload is larger.
func UnmarshalBinary(buf []byte) (*Container, error) {
	if len(buf) < _headerSize {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(buf))
	}
	if binary.BigEndian.Uint32(buf[0:]) != _magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint16(buf[4:]); v != _formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	id := ID(binary.BigEndian.Uint32(buf[8:]))
	count := int(binary.BigEndian.Uint32(buf[12:]))
	dataSize := int(binary.BigEndian.Uint32(buf[16:]))
	wantCRC := binary.BigEndian.Uint32(buf[20:])
	need := _headerSize + count*_entrySize + dataSize
	if len(buf) != need {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrCorrupt, len(buf), need)
	}
	if crc32.ChecksumIEEE(buf[_headerSize:]) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	capacity := DefaultCapacity
	if dataSize > capacity {
		capacity = dataSize
	}
	c := NewWithCapacity(id, capacity)
	off := _headerSize
	dataStart := _headerSize + count*_entrySize
	for i := 0; i < count; i++ {
		f, err := fp.FromBytes(buf[off : off+fp.Size])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		chunkOff := binary.BigEndian.Uint32(buf[off+fp.Size:])
		chunkSize := binary.BigEndian.Uint32(buf[off+fp.Size+4:])
		if int(chunkOff)+int(chunkSize) > dataSize {
			return nil, fmt.Errorf("%w: entry %d out of range", ErrCorrupt, i)
		}
		payload := buf[dataStart+int(chunkOff) : dataStart+int(chunkOff)+int(chunkSize)]
		if err := c.Add(f, payload); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		off += _entrySize
	}
	return c, nil
}
