package container

import (
	"bytes"
	"errors"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"hidestore/internal/fp"
)

func chunkOf(s string) (fp.FP, []byte) {
	b := []byte(s)
	return fp.Of(b), b
}

func TestAddGet(t *testing.T) {
	c := NewWithCapacity(1, 1024)
	f, data := chunkOf("hello")
	if err := c.Add(f, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	if !c.Has(f) {
		t.Fatal("Has should report true")
	}
	if c.Len() != 1 || c.DataSize() != len(data) || c.LiveSize() != len(data) {
		t.Fatalf("sizes wrong: len=%d data=%d live=%d", c.Len(), c.DataSize(), c.LiveSize())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	c := NewWithCapacity(1, 1024)
	f, data := chunkOf("immutable")
	if err := c.Add(f, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(f)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	again, err := c.Get(f)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] == 'X' {
		t.Fatal("Get must return an independent copy")
	}
}

func TestAddFull(t *testing.T) {
	c := NewWithCapacity(1, 10)
	f, _ := chunkOf("0123456789AB")
	if err := c.Add(f, []byte("0123456789AB")); !errors.Is(err, ErrFull) {
		t.Fatalf("got %v, want ErrFull", err)
	}
	// Exactly fitting is fine.
	f2, d2 := chunkOf("0123456789")
	if err := c.Add(f2, d2); err != nil {
		t.Fatal(err)
	}
	if c.Free() != 0 {
		t.Fatalf("Free = %d, want 0", c.Free())
	}
}

func TestAddDuplicate(t *testing.T) {
	c := NewWithCapacity(1, 1024)
	f, d := chunkOf("dup")
	if err := c.Add(f, d); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(f, d); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("got %v, want ErrDuplicate", err)
	}
}

func TestRemoveAndUtilization(t *testing.T) {
	c := NewWithCapacity(7, 100)
	f1, d1 := chunkOf("aaaaaaaaaa")           // 10 bytes
	f2, d2 := chunkOf("bbbbbbbbbbbbbbbbbbbb") // 20 bytes
	if err := c.Add(f1, d1); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(f2, d2); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(f1); err != nil {
		t.Fatal(err)
	}
	if c.Has(f1) {
		t.Fatal("removed chunk still present")
	}
	if c.LiveSize() != 20 || c.DataSize() != 30 {
		t.Fatalf("live=%d data=%d, want 20/30", c.LiveSize(), c.DataSize())
	}
	if got, want := c.Utilization(), 0.20; got != want {
		t.Fatalf("Utilization = %v, want %v", got, want)
	}
	if err := c.Remove(f1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: got %v, want ErrNotFound", err)
	}
	if _, err := c.Get(f1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get removed: got %v, want ErrNotFound", err)
	}
}

func TestFingerprintsOrder(t *testing.T) {
	c := NewWithCapacity(1, 1024)
	var want []fp.FP
	for i := 0; i < 5; i++ {
		f, d := chunkOf("chunk-" + strconv.Itoa(i))
		if err := c.Add(f, d); err != nil {
			t.Fatal(err)
		}
		want = append(want, f)
	}
	if err := c.Remove(want[2]); err != nil {
		t.Fatal(err)
	}
	got := c.Fingerprints()
	wantLive := []fp.FP{want[0], want[1], want[3], want[4]}
	if len(got) != len(wantLive) {
		t.Fatalf("got %d fingerprints, want %d", len(got), len(wantLive))
	}
	for i := range got {
		if got[i] != wantLive[i] {
			t.Fatalf("fingerprint %d out of order", i)
		}
	}
}

func TestCompacted(t *testing.T) {
	c := NewWithCapacity(3, 100)
	f1, d1 := chunkOf("one")
	f2, d2 := chunkOf("two")
	f3, d3 := chunkOf("three")
	for _, x := range []struct {
		f fp.FP
		d []byte
	}{{f1, d1}, {f2, d2}, {f3, d3}} {
		if err := c.Add(x.f, x.d); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Remove(f2); err != nil {
		t.Fatal(err)
	}
	packed := c.Compacted(9)
	if packed.ID() != 9 {
		t.Fatalf("ID = %d, want 9", packed.ID())
	}
	if packed.DataSize() != len(d1)+len(d3) {
		t.Fatalf("DataSize = %d, want %d", packed.DataSize(), len(d1)+len(d3))
	}
	if packed.Len() != 2 || packed.Has(f2) {
		t.Fatal("compacted container content wrong")
	}
	got, err := packed.Get(f3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, d3) {
		t.Fatal("payload corrupted by compaction")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := NewWithCapacity(42, DefaultCapacity)
	rng := rand.New(rand.NewSource(1))
	var fps []fp.FP
	for i := 0; i < 50; i++ {
		d := make([]byte, 100+rng.Intn(400))
		rng.Read(d)
		f := fp.Of(d)
		if err := c.Add(f, d); err != nil {
			t.Fatal(err)
		}
		fps = append(fps, f)
	}
	// Remove some chunks so marshal exercises the compaction path.
	for i := 0; i < 10; i++ {
		if err := c.Remove(fps[i*3]); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != c.ID() {
		t.Fatalf("ID = %d, want %d", got.ID(), c.ID())
	}
	if got.Len() != c.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), c.Len())
	}
	for _, f := range c.Fingerprints() {
		want, err := c.Get(f)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Get(f)
		if err != nil {
			t.Fatalf("decoded container missing %s: %v", f.Short(), err)
		}
		if !bytes.Equal(want, have) {
			t.Fatalf("chunk %s corrupted", f.Short())
		}
	}
}

func TestUnmarshalCorruption(t *testing.T) {
	c := NewWithCapacity(1, 1024)
	f, d := chunkOf("payload")
	if err := c.Add(f, d); err != nil {
		t.Fatal(err)
	}
	buf, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short", func(b []byte) []byte { return b[:10] }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"bad version", func(b []byte) []byte { b[5] = 99; return b }},
		{"flipped data bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"flipped entry bit", func(b []byte) []byte { b[_headerSize] ^= 0x01; return b }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mutated := tt.mutate(append([]byte(nil), buf...))
			if _, err := UnmarshalBinary(mutated); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		c := NewWithCapacity(5, DefaultCapacity)
		for _, p := range payloads {
			if len(p) == 0 || !c.HasRoom(len(p)) {
				continue
			}
			_ = c.Add(fp.Of(p), p) // duplicates allowed to fail
		}
		buf, err := c.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := UnmarshalBinary(buf)
		if err != nil {
			return false
		}
		if got.Len() != c.Len() {
			return false
		}
		for _, f := range c.Fingerprints() {
			want, _ := c.Get(f)
			have, err := got.Get(f)
			if err != nil || !bytes.Equal(want, have) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	c := NewWithCapacity(1, 1024)
	f, d := chunkOf("orig")
	if err := c.Add(f, d); err != nil {
		t.Fatal(err)
	}
	cl := c.Clone()
	f2, d2 := chunkOf("extra")
	if err := cl.Add(f2, d2); err != nil {
		t.Fatal(err)
	}
	if c.Has(f2) {
		t.Fatal("mutating clone affected the original")
	}
}
