// Package containertest exports the container.Store conformance suite
// so store implementations outside this package tree — notably the
// composed backend stacks in internal/backend, which cannot be imported
// from container's own tests without a cycle — prove the same contract
// as MemStore and FileStore.
package containertest

import (
	"bytes"
	"errors"
	"strconv"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/fp"
)

// Fill builds a container with n distinct chunks for suite fixtures.
func Fill(t *testing.T, id container.ID, n int) *container.Container {
	t.Helper()
	c := container.NewWithCapacity(id, container.DefaultCapacity)
	for i := 0; i < n; i++ {
		d := []byte("chunk-" + strconv.Itoa(int(id)) + "-" + strconv.Itoa(i))
		if err := c.Add(fp.Of(d), d); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// RunStoreSuite runs the shared container.Store contract against a
// store implementation; open must return a fresh, empty store per call.
func RunStoreSuite(t *testing.T, open func(t *testing.T) container.Store) {
	t.Run("PutGet", func(t *testing.T) {
		s := open(t)
		orig := Fill(t, 3, 10)
		firstFP := orig.Fingerprints()[0]
		wantChunk, err := orig.Get(firstFP)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(orig); err != nil {
			t.Fatal(err)
		}
		//hidelint:ignore accounting the suite verifies the Store.Get contract itself; no restore is being measured
		got, err := s.Get(3)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != 3 || got.Len() != 10 {
			t.Fatalf("got id=%d len=%d", got.ID(), got.Len())
		}
		have, err := got.Get(firstFP)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(have, wantChunk) {
			t.Fatal("chunk corrupted through store")
		}
	})
	t.Run("GetMissing", func(t *testing.T) {
		//hidelint:ignore accounting the suite verifies the Store.Get contract itself; no restore is being measured
		if _, err := open(t).Get(99); !errors.Is(err, container.ErrNotFound) {
			t.Fatalf("got %v, want ErrNotFound", err)
		}
	})
	t.Run("Delete", func(t *testing.T) {
		s := open(t)
		if err := s.Put(Fill(t, 1, 2)); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(1); err != nil {
			t.Fatal(err)
		}
		if has, err := s.Has(1); err != nil || has {
			t.Fatal("container survives Delete")
		}
		if err := s.Delete(1); !errors.Is(err, container.ErrNotFound) {
			t.Fatalf("double delete: got %v, want ErrNotFound", err)
		}
	})
	t.Run("IDsSorted", func(t *testing.T) {
		s := open(t)
		for _, id := range []container.ID{5, 1, 3} {
			if err := s.Put(Fill(t, id, 1)); err != nil {
				t.Fatal(err)
			}
		}
		ids, err := s.IDs()
		if err != nil {
			t.Fatal(err)
		}
		want := []container.ID{1, 3, 5}
		if len(ids) != len(want) {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
		for i := range want {
			if ids[i] != want[i] {
				t.Fatalf("IDs = %v, want %v", ids, want)
			}
		}
		if n, err := s.Len(); err != nil || n != 3 {
			t.Fatalf("Len = %d, %v, want 3", n, err)
		}
	})
	t.Run("StatsCounting", func(t *testing.T) {
		s := open(t)
		if err := s.Put(Fill(t, 1, 3)); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(Fill(t, 2, 3)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			//hidelint:ignore accounting the StatsCounting subtest exists to count these raw Gets; not a restore
			if _, err := s.Get(1); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Stats()
		if st.Writes != 2 {
			t.Fatalf("Writes = %d, want 2", st.Writes)
		}
		if st.Reads != 5 {
			t.Fatalf("Reads = %d, want 5", st.Reads)
		}
		if st.BytesRead == 0 || st.BytesWritten == 0 {
			t.Fatal("byte counters should be non-zero")
		}
		s.ResetStats()
		if got := s.Stats(); got != (container.StoreStats{}) {
			t.Fatalf("stats after reset = %+v", got)
		}
	})
	t.Run("PutValidation", func(t *testing.T) {
		s := open(t)
		if err := s.Put(nil); err == nil {
			t.Fatal("Put(nil) should fail")
		}
		if err := s.Put(container.New(0)); err == nil {
			t.Fatal("Put(ID 0) should fail")
		}
	})
}
