package container

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hidestore/internal/durable"
)

// FileStore is a Store backed by one file per container in a directory,
// named c_<id>.ctn. Writes go through durable.WriteFileAtomic (temp
// file + fsync + rename + directory fsync) so a crash or power loss
// never leaves a half-written or vanished container visible.
type FileStore struct {
	dir   string
	mu    sync.Mutex
	stats StoreStats
}

var (
	_ Store       = (*FileStore)(nil)
	_ Quarantiner = (*FileStore)(nil)
)

const (
	_fileExt = ".ctn"
	// QuarantineDir is the subdirectory (of the store root) that
	// Quarantine moves corrupt images into.
	QuarantineDir = "quarantine"
)

// NewFileStore opens (creating if needed) a file-backed store rooted at
// dir, sweeping any stale tmp-* files a crashed writer left behind.
//
//hidelint:ignore ignored-ctx one-time MkdirAll + temp sweep at open; no meaningful cancellation point
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("container: create store dir: %w", err)
	}
	if _, err := durable.SweepTemp(dir); err != nil {
		return nil, fmt.Errorf("container: sweep stale temp files: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) path(id ID) string {
	return filepath.Join(s.dir, "c_"+strconv.FormatUint(uint64(id), 10)+_fileExt)
}

// Path returns the on-disk path of id's image. Exported for fault
// injection and forensics tooling; normal clients go through Store.
func (s *FileStore) Path(id ID) string { return s.path(id) }

// Put implements Store.
func (s *FileStore) Put(c *Container) error {
	if c == nil {
		return fmt.Errorf("container: Put nil container")
	}
	if c.ID() == 0 {
		return fmt.Errorf("container: Put container with reserved ID 0")
	}
	buf, err := c.MarshalBinary()
	if err != nil {
		return fmt.Errorf("container: marshal %d: %w", c.ID(), err)
	}
	if err := durable.WriteFileAtomic(s.path(c.ID()), buf, 0o644); err != nil {
		return fmt.Errorf("container: put %d: %w", c.ID(), err)
	}
	s.mu.Lock()
	s.stats.Writes++
	s.stats.BytesWritten += uint64(c.LiveSize())
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *FileStore) Get(id ID) (*Container, error) {
	buf, err := os.ReadFile(s.path(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: container %d", ErrNotFound, id)
		}
		return nil, fmt.Errorf("container: read %d: %w", id, err)
	}
	c, err := UnmarshalBinary(buf)
	if err != nil {
		return nil, fmt.Errorf("container %d: %w", id, err)
	}
	s.mu.Lock()
	s.stats.Reads++
	s.stats.BytesRead += uint64(c.LiveSize())
	s.mu.Unlock()
	return c, nil
}

// Delete implements Store. The removal is fsynced: a deleted
// container must stay deleted across power loss, or GC would resurrect
// space it already accounted as reclaimed.
func (s *FileStore) Delete(id ID) error {
	err := durable.Remove(s.path(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: container %d", ErrNotFound, id)
		}
		return fmt.Errorf("container: delete %d: %w", id, err)
	}
	s.mu.Lock()
	s.stats.Deletes++
	s.mu.Unlock()
	return nil
}

// Has implements Store. A stat failure other than not-exist (e.g. a
// permission error) surfaces instead of reading as "absent".
func (s *FileStore) Has(id ID) (bool, error) {
	_, err := os.Stat(s.path(id))
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, fs.ErrNotExist):
		return false, nil
	default:
		return false, fmt.Errorf("container: stat %d: %w", id, err)
	}
}

// IDs implements Store.
func (s *FileStore) IDs() ([]ID, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		// An unreadable directory must not masquerade as an empty store:
		// fsck and Len would happily report a healthy empty system.
		return nil, fmt.Errorf("container: list store dir: %w", err)
	}
	ids := make([]ID, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "c_") || !strings.HasSuffix(name, _fileExt) {
			continue
		}
		n, err := strconv.ParseUint(name[2:len(name)-len(_fileExt)], 10, 32)
		if err != nil {
			continue
		}
		ids = append(ids, ID(n))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Len implements Store.
func (s *FileStore) Len() (int, error) {
	ids, err := s.IDs()
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// Quarantine implements Quarantiner: the image moves (durably) into
// the quarantine/ subdirectory under its original file name, where
// IDs() no longer sees it but the bytes survive for forensics.
func (s *FileStore) Quarantine(id ID) (string, error) {
	qdir := filepath.Join(s.dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return "", fmt.Errorf("container: create quarantine dir: %w", err)
	}
	dst := filepath.Join(qdir, filepath.Base(s.path(id)))
	if err := os.Rename(s.path(id), dst); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return "", fmt.Errorf("%w: container %d", ErrNotFound, id)
		}
		return "", fmt.Errorf("container: quarantine %d: %w", id, err)
	}
	// The rename crossed directories: sync both so neither the
	// disappearance nor the arrival can be lost.
	if err := durable.SyncDir(qdir); err != nil {
		return dst, err
	}
	return dst, durable.SyncDir(s.dir)
}

// Stats implements Store.
func (s *FileStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *FileStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = StoreStats{}
}
