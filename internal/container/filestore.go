package container

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hidestore/internal/cleanup"
)

// FileStore is a Store backed by one file per container in a directory,
// named c_<id>.ctn. Writes go through a temp file + rename so a crash
// never leaves a half-written container visible.
type FileStore struct {
	dir   string
	mu    sync.Mutex
	stats StoreStats
}

var _ Store = (*FileStore)(nil)

const _fileExt = ".ctn"

// NewFileStore opens (creating if needed) a file-backed store rooted at dir.
//
//hidelint:ignore ignored-ctx one-time MkdirAll at open; no meaningful cancellation point
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("container: create store dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) path(id ID) string {
	return filepath.Join(s.dir, "c_"+strconv.FormatUint(uint64(id), 10)+_fileExt)
}

// Put implements Store.
func (s *FileStore) Put(c *Container) error {
	if c == nil {
		return fmt.Errorf("container: Put nil container")
	}
	if c.ID() == 0 {
		return fmt.Errorf("container: Put container with reserved ID 0")
	}
	buf, err := c.MarshalBinary()
	if err != nil {
		return fmt.Errorf("container: marshal %d: %w", c.ID(), err)
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("container: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		cleanup.Close(tmp)
		cleanup.Remove(tmpName)
		return fmt.Errorf("container: write %d: %w", c.ID(), err)
	}
	if err := tmp.Close(); err != nil {
		cleanup.Remove(tmpName)
		return fmt.Errorf("container: close %d: %w", c.ID(), err)
	}
	if err := os.Rename(tmpName, s.path(c.ID())); err != nil {
		cleanup.Remove(tmpName)
		return fmt.Errorf("container: rename %d: %w", c.ID(), err)
	}
	s.mu.Lock()
	s.stats.Writes++
	s.stats.BytesWritten += uint64(c.LiveSize())
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *FileStore) Get(id ID) (*Container, error) {
	buf, err := os.ReadFile(s.path(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: container %d", ErrNotFound, id)
		}
		return nil, fmt.Errorf("container: read %d: %w", id, err)
	}
	c, err := UnmarshalBinary(buf)
	if err != nil {
		return nil, fmt.Errorf("container %d: %w", id, err)
	}
	s.mu.Lock()
	s.stats.Reads++
	s.stats.BytesRead += uint64(c.LiveSize())
	s.mu.Unlock()
	return c, nil
}

// Delete implements Store.
func (s *FileStore) Delete(id ID) error {
	err := os.Remove(s.path(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: container %d", ErrNotFound, id)
		}
		return fmt.Errorf("container: delete %d: %w", id, err)
	}
	s.mu.Lock()
	s.stats.Deletes++
	s.mu.Unlock()
	return nil
}

// Has implements Store.
func (s *FileStore) Has(id ID) bool {
	_, err := os.Stat(s.path(id))
	return err == nil
}

// IDs implements Store.
func (s *FileStore) IDs() ([]ID, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		// An unreadable directory must not masquerade as an empty store:
		// fsck and Len would happily report a healthy empty system.
		return nil, fmt.Errorf("container: list store dir: %w", err)
	}
	ids := make([]ID, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "c_") || !strings.HasSuffix(name, _fileExt) {
			continue
		}
		n, err := strconv.ParseUint(name[2:len(name)-len(_fileExt)], 10, 32)
		if err != nil {
			continue
		}
		ids = append(ids, ID(n))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Len implements Store.
func (s *FileStore) Len() int {
	ids, err := s.IDs()
	if err != nil {
		return -1
	}
	return len(ids)
}

// Stats implements Store.
func (s *FileStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *FileStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = StoreStats{}
}
