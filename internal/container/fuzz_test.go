package container

import (
	"bytes"
	"testing"

	"hidestore/internal/fp"
)

// FuzzUnmarshalBinary hardens the container decoder against arbitrary
// bytes: it must never panic, and anything it accepts must round-trip.
func FuzzUnmarshalBinary(f *testing.F) {
	c := NewWithCapacity(3, 4096)
	for _, s := range []string{"alpha", "beta", "gamma"} {
		if err := c.Add(fp.Of([]byte(s)), []byte(s)); err != nil {
			f.Fatal(err)
		}
	}
	seed, err := c.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalBinary(data)
		if err != nil {
			return
		}
		// Accepted input must re-encode and decode to the same content.
		again, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted container failed to marshal: %v", err)
		}
		back, err := UnmarshalBinary(again)
		if err != nil {
			t.Fatalf("re-encoded container failed to decode: %v", err)
		}
		if back.Len() != got.Len() || back.ID() != got.ID() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.ID(), back.Len(), got.ID(), got.Len())
		}
		for _, fpr := range got.Fingerprints() {
			want, err := got.Get(fpr)
			if err != nil {
				t.Fatal(err)
			}
			have, err := back.Get(fpr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, have) {
				t.Fatal("round trip changed payload")
			}
		}
	})
}
