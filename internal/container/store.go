package container

import (
	"fmt"
	"sort"
	"sync"
)

// StoreStats counts I/O operations against a container store. Reads are
// the quantity that matters for the paper's evaluation: the restore speed
// factor (§5.3) is MB restored per container read.
type StoreStats struct {
	Reads        uint64
	Writes       uint64
	Deletes      uint64
	BytesRead    uint64
	BytesWritten uint64
}

// Store persists containers. Implementations must be safe for concurrent
// use. Put snapshots the container: later caller mutations are not
// visible to the store (file-backed stores marshal immediately; the
// memory store deep-copies). Get returns a container the caller must
// treat as read-only (file-backed stores return fresh decodes; the
// memory store returns the stored snapshot, which concurrent restores
// may share).
type Store interface {
	// Put writes or overwrites a snapshot of the container under its ID.
	Put(c *Container) error
	// Get reads a container by ID, counting one container read.
	Get(id ID) (*Container, error)
	// Delete removes a container. Deleting a missing ID is an error.
	Delete(id ID) error
	// Has reports whether the ID exists, without counting a read. The
	// error is non-nil only when existence could not be determined (an
	// I/O failure); a missing container is (false, nil). Conflating the
	// two misleads fsck and GC into treating unreadable as absent.
	Has(id ID) (bool, error)
	// IDs returns all stored IDs in ascending order, or the error that
	// prevented enumerating them (an unreadable store must not look
	// empty).
	IDs() ([]ID, error)
	// Len returns the number of stored containers, or the error that
	// prevented counting them.
	Len() (int, error)
	// Stats returns cumulative I/O counters.
	Stats() StoreStats
	// ResetStats zeroes the I/O counters (between experiment phases).
	ResetStats()
}

// Quarantiner is implemented by stores that can move a corrupt
// container image aside instead of deleting it. Fsck's repair mode
// quarantines rather than removes, so no repair decision destroys the
// only copy of the bytes.
type Quarantiner interface {
	// Quarantine moves the container's on-disk image into the store's
	// quarantine area and returns the destination path.
	Quarantine(id ID) (string, error)
}

// MemStore is an in-memory Store, used by experiments where only I/O
// *counts* matter and by tests.
type MemStore struct {
	mu         sync.Mutex
	containers map[ID]*Container
	stats      StoreStats
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{containers: make(map[ID]*Container)}
}

// Put implements Store.
func (s *MemStore) Put(c *Container) error {
	if c == nil {
		return fmt.Errorf("container: Put nil container")
	}
	if c.ID() == 0 {
		return fmt.Errorf("container: Put container with reserved ID 0")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Snapshot: the engine keeps mutating active containers after Put
	// (repacking, cold migration); sharing the image would race with
	// concurrent Gets from the restore path.
	s.containers[c.ID()] = c.Clone()
	s.stats.Writes++
	s.stats.BytesWritten += uint64(c.LiveSize())
	return nil
}

// Get implements Store.
func (s *MemStore) Get(id ID) (*Container, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.containers[id]
	if !ok {
		return nil, fmt.Errorf("%w: container %d", ErrNotFound, id)
	}
	s.stats.Reads++
	s.stats.BytesRead += uint64(c.LiveSize())
	return c, nil
}

// Delete implements Store.
func (s *MemStore) Delete(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.containers[id]; !ok {
		return fmt.Errorf("%w: container %d", ErrNotFound, id)
	}
	delete(s.containers, id)
	s.stats.Deletes++
	return nil
}

// Has implements Store.
func (s *MemStore) Has(id ID) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.containers[id]
	return ok, nil
}

// IDs implements Store.
func (s *MemStore) IDs() ([]ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]ID, 0, len(s.containers))
	for id := range s.containers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Len implements Store.
func (s *MemStore) Len() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.containers), nil
}

// Stats implements Store.
func (s *MemStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *MemStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = StoreStats{}
}

// TotalLiveBytes sums the live payload across all stored containers —
// the "space actually consumed" figure used for deduplication ratios.
func (s *MemStore) TotalLiveBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, c := range s.containers {
		total += uint64(c.LiveSize())
	}
	return total
}
