package container_test

import (
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/container/containertest"
)

// The shared Store contract (put/get, missing, delete, sorted IDs,
// stats, validation) lives in containertest so the backend package can
// run it against composed remote stacks; here it pins the two native
// implementations.
func TestStoreConformance(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		containertest.RunStoreSuite(t, func(t *testing.T) container.Store {
			return container.NewMemStore()
		})
	})
	t.Run("file", func(t *testing.T) {
		containertest.RunStoreSuite(t, func(t *testing.T) container.Store {
			fs, err := container.NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		})
	})
}
