package container

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"hidestore/internal/durable"
	"hidestore/internal/fp"
)

func fillContainer(t *testing.T, id ID, n int) *Container {
	t.Helper()
	c := NewWithCapacity(id, DefaultCapacity)
	for i := 0; i < n; i++ {
		d := []byte("chunk-" + strconv.Itoa(int(id)) + "-" + strconv.Itoa(i))
		if err := c.Add(fp.Of(d), d); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestFileStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	orig := fillContainer(t, 7, 4)
	fps := orig.Fingerprints()
	if err := s1.Put(orig); err != nil {
		t.Fatal(err)
	}
	// Re-open the directory as a fresh store: data must persist.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 || !got.Has(fps[0]) {
		t.Fatal("container not persisted across reopen")
	}
}

func TestFileStoreCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fillContainer(t, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Flip a data byte on disk; Get must detect the corruption via CRC.
	path := filepath.Join(dir, "c_1.ctn")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestFileStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "c_notanum.ctn"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fillContainer(t, 2, 1)); err != nil {
		t.Fatal(err)
	}
	ids, err := s.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("IDs = %v, want [2]", ids)
	}
}

// TestMemStorePutSnapshots: Put must capture the container's state at
// the time of the call. The engine keeps appending to active containers
// after persisting them; readers of the store must never observe those
// later mutations (the file store gets this for free via serialization).
func TestMemStorePutSnapshots(t *testing.T) {
	s := NewMemStore()
	c := fillContainer(t, 1, 1)
	if err := s.Put(c); err != nil {
		t.Fatal(err)
	}
	late := []byte("added after Put")
	if err := c.Add(fp.Of(late), late); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("snapshot has %d chunks; mutation after Put leaked into the store", got.Len())
	}
	if got.Has(fp.Of(late)) {
		t.Fatal("chunk added after Put is visible through the store")
	}
}

// TestFileStoreIDsErrorSurfaces: an unreadable store directory must
// report an error, not masquerade as an empty store — callers like
// Check() and the delete sweep would otherwise conclude every container
// is missing (or already swept) and report garbage.
func TestFileStoreIDsErrorSurfaces(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "store")
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fillContainer(t, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Replace the directory with a regular file so ReadDir fails. (chmod
	// tricks don't work here: the suite may run as root, which bypasses
	// permission checks.)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IDs(); err == nil {
		t.Fatal("IDs() on an unreadable store dir returned nil error")
	}
	if _, err := s.Len(); err == nil {
		t.Fatal("Len() on an unreadable store dir returned nil error")
	}
	if _, err := s.Has(1); err == nil {
		t.Fatal("Has() on an unreadable store dir returned nil error")
	}
}

func TestMemStoreTotalLiveBytes(t *testing.T) {
	s := NewMemStore()
	c1 := fillContainer(t, 1, 2)
	c2 := fillContainer(t, 2, 3)
	want := uint64(c1.LiveSize() + c2.LiveSize())
	if err := s.Put(c1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(c2); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalLiveBytes(); got != want {
		t.Fatalf("TotalLiveBytes = %d, want %d", got, want)
	}
}

// TestFileStoreSweepsTempsAtOpen: stale tmp-* debris a crashed writer
// left behind is removed when the store is reopened; committed images
// are untouched.
func TestFileStoreSweepsTempsAtOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fillContainer(t, 1, 2)); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, durable.TempPrefix+"123456")
	if err := os.WriteFile(stale, []byte("half a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file survived reopen: %v", err)
	}
	if has, err := s2.Has(1); err != nil || !has {
		t.Fatalf("committed image lost by the sweep: %v, %v", has, err)
	}
}
