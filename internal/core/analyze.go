package core

import (
	"context"
	"fmt"

	"hidestore/internal/fp"
	"hidestore/internal/layout"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
)

// archivalTable is the read-only counterpart of FlattenRecipes'
// Algorithm 1 walk: the same newest→floor traversal building the same
// fp → archival-CID table, but resolving forward pointers into a local
// view instead of patching and persisting the recipes. Within one
// recipe the resolve pass runs before the harvest pass, exactly as the
// in-place mutation orders them, so chained forward pointers resolve
// transitively to the same targets FlattenRecipes would commit.
func (e *Engine) archivalTable(floor int) (map[fp.FP]int32, error) {
	versions, err := e.cfg.Recipes.Versions()
	if err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	if len(versions) == 0 {
		return nil, nil
	}
	if floor < versions[0] {
		floor = versions[0]
	}
	table := make(map[fp.FP]int32)
	for i := len(versions) - 1; i >= 0; i-- {
		v := versions[i]
		if v < floor {
			break
		}
		rec, err := e.cfg.Recipes.Get(v)
		if err != nil {
			return nil, fmt.Errorf("core: analyze: %w", err)
		}
		for _, entry := range rec.Entries {
			cid := entry.CID
			if cid < 0 {
				if t, ok := table[entry.FP]; ok {
					cid = t
				}
			}
			if cid > 0 {
				table[entry.FP] = cid
			}
		}
	}
	return table, nil
}

// resolveForAnalysis returns version's recipe entries with every CID
// positive, mirroring restoreWith's resolution — flatten forward
// pointers, then look the remaining hot chunks up in the active
// index — but without restoreWith's side effect of persisting the
// flattened recipes. Analysis must leave the store byte-identical.
func (e *Engine) resolveForAnalysis(version int) ([]recipe.Entry, error) {
	rec, err := e.cfg.Recipes.Get(version)
	if err != nil {
		return nil, err
	}
	var table map[fp.FP]int32
	if hasForward(rec) {
		if table, err = e.archivalTable(version); err != nil {
			return nil, err
		}
	}
	resolved := make([]recipe.Entry, len(rec.Entries))
	for i, entry := range rec.Entries {
		if entry.CID < 0 {
			if cid, ok := table[entry.FP]; ok {
				resolved[i] = recipe.Entry{FP: entry.FP, Size: entry.Size, CID: cid}
				continue
			}
		}
		if entry.CID > 0 {
			resolved[i] = entry
			continue
		}
		// CID 0 or a forward pointer that still ends on a hot chunk.
		cid, ok := e.activeByFP[entry.FP]
		if !ok {
			return nil, fmt.Errorf(
				"core: analyze v%d: chunk %s unresolved (CID %d)", version, entry.FP.Short(), entry.CID)
		}
		resolved[i] = recipe.Entry{FP: entry.FP, Size: entry.Size, CID: int32(cid)}
	}
	return resolved, nil
}

// AnalyzeLayout implements backup.LayoutAnalyzer: it reports version's
// physical-locality profile (CFL, utilization, per-policy simulated
// restore cost) without restoring it and without mutating any state —
// unlike Restore, the recipe flattening it needs stays in memory. The
// simulation replays the same resolved reference stream Restore would
// feed the cache policies, so its container-read counts match a real
// restore's Stats.ContainerReads exactly.
func (e *Engine) AnalyzeLayout(ctx context.Context, version int, policies []string) (*layout.Report, error) {
	resolved, err := e.resolveForAnalysis(version)
	if err != nil {
		return nil, err
	}
	// The same source Restore hands the cache policies: the store. Active
	// containers are persisted on every mutation, so both paths see
	// identical container images — a precondition of the exact
	// container-read identity between analysis and a real restore.
	return layout.Analyze(ctx, version, resolved, restorecache.StoreFetcher(e.cfg.Store), e.cfg.ContainerCapacity, policies)
}
