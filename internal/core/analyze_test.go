package core

import (
	"bytes"
	"context"
	"io"
	"testing"

	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/recipe"
	"hidestore/internal/workload"
)

// TestAnalyzeLayoutDoesNotMutateRecipes: Restore resolves old versions
// by *persisting* flattened recipes (Algorithm 1); AnalyzeLayout must
// resolve the same chains read-only. After analyzing an old version
// whose recipe still holds forward pointers, the stored recipes are
// bit-identical — and a subsequent real restore still works and agrees
// with the analysis.
func TestAnalyzeLayoutDoesNotMutateRecipes(t *testing.T) {
	g, err := workload.New(workload.Config{
		Name: "analyze-mut", Versions: 4, Files: 8, BlocksPerFile: 20,
		BlockSize: 4096, ModifyRate: 0.10, InsertRate: 0.01,
		DeleteRate: 0.005, FileChurn: 0.03, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Store:             container.NewMemStore(),
		Recipes:           recipe.NewMemStore(),
		ContainerCapacity: 64 << 10,
		Chunker:           chunker.FastCDC,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n := 0
	for g.HasNext() {
		r, err := g.NextVersion()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Backup(ctx, r); err != nil {
			t.Fatal(err)
		}
		n++
	}

	snapshot := func() map[int][]recipe.Entry {
		out := make(map[int][]recipe.Entry)
		for v := 1; v <= n; v++ {
			rec, err := e.cfg.Recipes.Get(v)
			if err != nil {
				t.Fatal(err)
			}
			out[v] = append([]recipe.Entry(nil), rec.Entries...)
		}
		return out
	}
	before := snapshot()
	var forwards int
	for _, entry := range before[1] {
		if entry.CID < 0 {
			forwards++
		}
	}
	if forwards == 0 {
		t.Fatal("test degenerate: version 1 has no forward pointers to resolve")
	}

	rep, err := e.AnalyzeLayout(ctx, 1, []string{"faa"})
	if err != nil {
		t.Fatal(err)
	}
	after := snapshot()
	for v := 1; v <= n; v++ {
		if !bytes.Equal(entryBytes(before[v]), entryBytes(after[v])) {
			t.Fatalf("analysis mutated recipe v%d", v)
		}
	}

	// The real restore (which does flatten and persist) must agree.
	real, err := e.Restore(ctx, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policies[0].ContainerReads != real.Stats.ContainerReads {
		t.Fatalf("analysis %d reads, restore %d", rep.Policies[0].ContainerReads, real.Stats.ContainerReads)
	}
	// And the restore's flattening must be observable — otherwise the
	// mutation check above checks nothing.
	flattened := snapshot()
	changed := false
	for v := 1; v <= n; v++ {
		if !bytes.Equal(entryBytes(before[v]), entryBytes(flattened[v])) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("restore flattened nothing; mutation check is vacuous")
	}
}

func entryBytes(entries []recipe.Entry) []byte {
	var buf bytes.Buffer
	for _, e := range entries {
		buf.Write(e.FP[:])
		buf.WriteByte(byte(e.Size))
		buf.WriteByte(byte(e.Size >> 8))
		buf.WriteByte(byte(e.Size >> 16))
		buf.WriteByte(byte(e.Size >> 24))
		buf.WriteByte(byte(e.CID))
		buf.WriteByte(byte(e.CID >> 8))
		buf.WriteByte(byte(e.CID >> 16))
		buf.WriteByte(byte(e.CID >> 24))
	}
	return buf.Bytes()
}
