package core

import (
	"bytes"
	"context"
	"testing"

	"hidestore/internal/backup/backuptest"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
)

// BenchmarkBackup measures the end-to-end backup hot loop — pooled
// chunking, parallel fingerprinting, cache lookup, container packing,
// and commit — over a multi-version workload on the memory store.
// The sync/async split isolates what the background container
// committer buys; -benchmem shows what the pooled chunk path buys.
func BenchmarkBackup(b *testing.B) {
	versions := backuptest.Materialize(b, backuptest.SmallWorkload(4, 0.2))
	var logical int64
	for _, v := range versions {
		logical += int64(len(v))
	}
	run := func(name string, asyncDepth int) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(logical)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := New(Config{
					Store:             container.NewMemStore(),
					Recipes:           recipe.NewMemStore(),
					ContainerCapacity: 64 << 10,
					ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
					RestoreCache:      restorecache.NewFAA(1 << 20),
					AsyncCommitDepth:  asyncDepth,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, v := range versions {
					if _, err := e.Backup(context.Background(), bytes.NewReader(v)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
	run("async", 0)
	run("sync", -1)
}
