// Package core implements HiDeStore, the paper's contribution: a
// deduplication backup engine that preserves physical locality for new
// backup versions by construction.
//
// The pieces map onto the paper's design sections:
//
//   - the double-hash fingerprint cache (§4.1, Figure 5): the previous
//     version's chunks (T1) and the current version's chunks (T2); chunks
//     are deduplicated against the cache alone, never against an on-disk
//     index;
//   - the chunk filter (§4.2, Figure 6): unique chunks go to mutable
//     *active* containers; after each version, chunks left in T1 (cold —
//     absent from the version just processed) migrate to immutable
//     *archival* containers, and sparse active containers are merged;
//   - recipe updating (§4.3, Figure 7, Algorithm 1): only the recipe
//     leaving the cache window is rewritten per version; entries point
//     into archival containers or chain forward to newer recipes;
//   - restore (§4.4) resolves the three CID kinds and streams through a
//     restore cache;
//   - deletion (§4.5): expired versions drop whole archival containers —
//     no reference counting, no garbage collection.
package core

import (
	"sync"
	"sync/atomic"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
)

// EntryBytes is the in-memory footprint the paper assigns to one
// fingerprint-cache entry: 20-byte fingerprint + 4-byte container ID +
// 4-byte size (§4.1).
const EntryBytes = fp.Size + 4 + 4

// DefaultIndexShards is the fingerprint cache's default shard count.
// Sixteen shards keep the collision probability for a handful of hash
// workers low while the per-shard maps stay large enough to amortize
// map overhead.
const DefaultIndexShards = 16

// cacheShard is one lock domain of the fingerprint cache: a slice of
// the fingerprint space selected by the fingerprint's leading byte,
// with its own maps and its own statistics.
//
// The stats counters are atomics, not mutex-guarded fields, for two
// reasons: a concurrent Stats() scrape (metrics exposition, progress
// reporting) never blocks the backup pipeline, and per-shard counts
// sum exactly at snapshot time, so concurrent chunk classification on
// different shards never loses an increment.
type cacheShard struct {
	mu       sync.RWMutex
	active   map[fp.FP]container.ID
	lastSeen map[fp.FP]int

	lookups        atomic.Uint64
	cacheHits      atomic.Uint64
	duplicates     atomic.Uint64
	uniques        atomic.Uint64
	duplicateBytes atomic.Uint64
	uniqueBytes    atomic.Uint64
}

// IndexView is HiDeStore's fingerprint cache exposed through the common
// index.Index interface, so the lookup-overhead and index-memory
// experiments (Figures 9 and 10) can compare it directly against DDFS,
// Sparse Indexing and SiLo on identical chunk streams.
//
// Internally the two (or, with Window > 1, N+1) hash tables of Figure 5
// are represented as one map plus a last-seen version per chunk: a chunk
// with lastSeen == current version is in T2; lastSeen == current-1 is in
// T1; anything older has been evicted (migrated to archival containers by
// the full engine). The set of reachable chunks is identical to the
// paper's construction; only the bookkeeping differs.
//
// The map is sharded by fingerprint prefix (power-of-two shard count,
// one RWMutex per shard) so concurrent lookups from the backup
// pipeline's hash workers — and, in the daemon, many tenants — do not
// serialize on one lock. The speculative read path (probe) takes only
// a shard read-lock; mutating classifications take the shard's write
// lock. Version transitions (EndVersion) are not concurrency-safe with
// classification; the engine runs them strictly between pipelines.
type IndexView struct {
	// window is how many previous versions the cache covers (1 for most
	// workloads; 2 for macos-like workloads, §4.1).
	window  int
	version int
	mask    uint8
	shards  []cacheShard
}

var _ index.Index = (*IndexView)(nil)

// NewIndexView creates a HiDeStore fingerprint cache with the given
// window (0 means the default of 1) and the default shard count.
func NewIndexView(window int) *IndexView {
	return NewIndexViewSharded(window, 0)
}

// NewIndexViewSharded is NewIndexView with an explicit shard count,
// rounded up to a power of two and capped at 256 (the shard selector
// is the fingerprint's leading byte). 0 selects DefaultIndexShards.
func NewIndexViewSharded(window, shards int) *IndexView {
	if window <= 0 {
		window = 1
	}
	if shards <= 0 {
		shards = DefaultIndexShards
	}
	if shards > 256 {
		shards = 256
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	v := &IndexView{
		window: window,
		mask:   uint8(n - 1),
		shards: make([]cacheShard, n),
	}
	for i := range v.shards {
		v.shards[i].active = make(map[fp.FP]container.ID)
		v.shards[i].lastSeen = make(map[fp.FP]int)
	}
	return v
}

// shard selects the lock domain for a fingerprint.
func (v *IndexView) shard(f fp.FP) *cacheShard {
	return &v.shards[f[0]&v.mask]
}

// Name implements index.Index.
func (v *IndexView) Name() string { return "hidestore" }

// Dedup implements index.Index: chunks are matched against the fingerprint
// cache only — there is no full index and therefore never a disk lookup,
// which is the whole point of Figure 9.
func (v *IndexView) Dedup(seg []index.ChunkRef) []index.Result {
	results := make([]index.Result, len(seg))
	for i, c := range seg {
		cid, dup := v.lookupOne(c.FP, c.Size)
		if dup {
			results[i] = index.Result{Duplicate: true, CID: cid}
		}
	}
	return results
}

// Commit implements index.Index: newly stored chunks enter T2.
func (v *IndexView) Commit(seg []index.ChunkRef, cids []container.ID) {
	for i, c := range seg {
		if i >= len(cids) || cids[i] == 0 {
			continue
		}
		v.commitOne(c.FP, cids[i])
	}
}

// EndVersion implements index.Index: T1's leftovers (chunks not seen
// within the window) are evicted — in the full engine this is the moment
// they migrate to archival containers. Not safe to run concurrently
// with classification; the engine calls it between pipelines.
func (v *IndexView) EndVersion() {
	v.version++
	for i := range v.shards {
		s := &v.shards[i]
		s.mu.Lock()
		for f, seen := range s.lastSeen {
			if seen <= v.version-v.window {
				delete(s.active, f)
				delete(s.lastSeen, f)
			}
		}
		s.mu.Unlock()
	}
}

// Evicted returns the fingerprints that would leave the cache if the
// version ended now (the cold set). Used by tests.
func (v *IndexView) Evicted() []fp.FP {
	var out []fp.FP
	for i := range v.shards {
		s := &v.shards[i]
		s.mu.RLock()
		for f, seen := range s.lastSeen {
			if seen <= v.version+1-v.window {
				out = append(out, f)
			}
		}
		s.mu.RUnlock()
	}
	return out
}

// probe is the hash workers' speculative read: a shard read-lock map
// hit, no statistics, no recency bump. A true result is trustworthy
// for the rest of the version — entries are never removed while a
// backup pipeline runs — so the in-order sink can confirm it with
// touch. A false result is only a hint: an identical chunk earlier in
// the same version may commit between the probe and the sink, so
// misses are re-probed in order by lookupOne.
func (v *IndexView) probe(f fp.FP) (container.ID, bool) {
	s := v.shard(f)
	s.mu.RLock()
	cid, ok := s.active[f]
	s.mu.RUnlock()
	return cid, ok
}

// touch confirms a probe hit on the sink's in-order path: it records
// the same statistics and recency bump lookupOne's hit path would,
// without re-reading the map.
func (v *IndexView) touch(f fp.FP, size uint32) {
	s := v.shard(f)
	s.mu.Lock()
	s.lastSeen[f] = v.version + 1
	s.mu.Unlock()
	s.lookups.Add(1)
	s.cacheHits.Add(1)
	s.duplicates.Add(1)
	s.duplicateBytes.Add(uint64(size))
}

// lookupOne classifies a single chunk without the slice plumbing of
// Dedup — the engine's per-chunk hot path.
func (v *IndexView) lookupOne(f fp.FP, size uint32) (container.ID, bool) {
	s := v.shard(f)
	s.lookups.Add(1)
	s.mu.Lock()
	cid, ok := s.active[f]
	if ok {
		s.lastSeen[f] = v.version + 1 // T1 hit moves the chunk into T2
	}
	s.mu.Unlock()
	if ok {
		s.cacheHits.Add(1)
		s.duplicates.Add(1)
		s.duplicateBytes.Add(uint64(size))
		return cid, true
	}
	s.uniques.Add(1)
	s.uniqueBytes.Add(uint64(size))
	return 0, false
}

// commitOne records a single newly stored chunk.
func (v *IndexView) commitOne(f fp.FP, cid container.ID) {
	s := v.shard(f)
	s.mu.Lock()
	if _, ok := s.active[f]; !ok {
		s.active[f] = cid
	}
	s.lastSeen[f] = v.version + 1
	s.mu.Unlock()
}

// cidOf reports the active location of a hot chunk.
func (v *IndexView) cidOf(f fp.FP) (container.ID, bool) {
	s := v.shard(f)
	s.mu.RLock()
	cid, ok := s.active[f]
	s.mu.RUnlock()
	return cid, ok
}

// setCID rewrites a hot chunk's location (container migration/merge).
func (v *IndexView) setCID(f fp.FP, cid container.ID) {
	s := v.shard(f)
	s.mu.Lock()
	s.active[f] = cid
	s.mu.Unlock()
}

// lastSeenOf reports the version a hot chunk was last seen in.
func (v *IndexView) lastSeenOf(f fp.FP) (int, bool) {
	s := v.shard(f)
	s.mu.RLock()
	seen, ok := s.lastSeen[f]
	s.mu.RUnlock()
	return seen, ok
}

// insertEntry loads one cache entry verbatim (state-file restore).
func (v *IndexView) insertEntry(f fp.FP, cid container.ID, seen int) {
	s := v.shard(f)
	s.mu.Lock()
	s.active[f] = cid
	s.lastSeen[f] = seen
	s.mu.Unlock()
}

// setVersion aligns the cache's version counter after a state-file
// restore.
func (v *IndexView) setVersion(version int) { v.version = version }

// Stats implements index.Index: the per-shard counters summed at
// snapshot time. Safe to call concurrently with classification.
func (v *IndexView) Stats() index.Stats {
	var st index.Stats
	for i := range v.shards {
		s := &v.shards[i]
		st.Lookups += s.lookups.Load()
		st.CacheHits += s.cacheHits.Load()
		st.Duplicates += s.duplicates.Load()
		st.Uniques += s.uniques.Load()
		st.DuplicateBytes += s.duplicateBytes.Load()
		st.UniqueBytes += s.uniqueBytes.Load()
	}
	return st
}

// MemoryBytes implements index.Index. HiDeStore keeps no persistent index
// table: the fingerprint cache is rebuilt from the previous version's
// recipe, so its persistent overhead is zero (§5.2.3, Figure 10). The
// transient cache size is reported by TransientBytes.
func (v *IndexView) MemoryBytes() int64 { return 0 }

// TransientBytes is the current fingerprint-cache footprint — bounded by
// the size of one window of backup versions (§4.1's ~100 MB macos
// example), not by the dataset.
func (v *IndexView) TransientBytes() int64 {
	var n int64
	for i := range v.shards {
		s := &v.shards[i]
		s.mu.RLock()
		n += int64(len(s.active))
		s.mu.RUnlock()
	}
	return n * EntryBytes
}
