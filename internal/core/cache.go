// Package core implements HiDeStore, the paper's contribution: a
// deduplication backup engine that preserves physical locality for new
// backup versions by construction.
//
// The pieces map onto the paper's design sections:
//
//   - the double-hash fingerprint cache (§4.1, Figure 5): the previous
//     version's chunks (T1) and the current version's chunks (T2); chunks
//     are deduplicated against the cache alone, never against an on-disk
//     index;
//   - the chunk filter (§4.2, Figure 6): unique chunks go to mutable
//     *active* containers; after each version, chunks left in T1 (cold —
//     absent from the version just processed) migrate to immutable
//     *archival* containers, and sparse active containers are merged;
//   - recipe updating (§4.3, Figure 7, Algorithm 1): only the recipe
//     leaving the cache window is rewritten per version; entries point
//     into archival containers or chain forward to newer recipes;
//   - restore (§4.4) resolves the three CID kinds and streams through a
//     restore cache;
//   - deletion (§4.5): expired versions drop whole archival containers —
//     no reference counting, no garbage collection.
package core

import (
	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
)

// EntryBytes is the in-memory footprint the paper assigns to one
// fingerprint-cache entry: 20-byte fingerprint + 4-byte container ID +
// 4-byte size (§4.1).
const EntryBytes = fp.Size + 4 + 4

// IndexView is HiDeStore's fingerprint cache exposed through the common
// index.Index interface, so the lookup-overhead and index-memory
// experiments (Figures 9 and 10) can compare it directly against DDFS,
// Sparse Indexing and SiLo on identical chunk streams.
//
// Internally the two (or, with Window > 1, N+1) hash tables of Figure 5
// are represented as one map plus a last-seen version per chunk: a chunk
// with lastSeen == current version is in T2; lastSeen == current-1 is in
// T1; anything older has been evicted (migrated to archival containers by
// the full engine). The set of reachable chunks is identical to the
// paper's construction; only the bookkeeping differs.
type IndexView struct {
	// window is how many previous versions the cache covers (1 for most
	// workloads; 2 for macos-like workloads, §4.1).
	window   int
	version  int
	active   map[fp.FP]container.ID
	lastSeen map[fp.FP]int
	stats    index.Stats
}

var _ index.Index = (*IndexView)(nil)

// NewIndexView creates a HiDeStore fingerprint cache with the given
// window (0 means the default of 1).
func NewIndexView(window int) *IndexView {
	if window <= 0 {
		window = 1
	}
	return &IndexView{
		window:   window,
		active:   make(map[fp.FP]container.ID),
		lastSeen: make(map[fp.FP]int),
	}
}

// Name implements index.Index.
func (v *IndexView) Name() string { return "hidestore" }

// Dedup implements index.Index: chunks are matched against the fingerprint
// cache only — there is no full index and therefore never a disk lookup,
// which is the whole point of Figure 9.
func (v *IndexView) Dedup(seg []index.ChunkRef) []index.Result {
	results := make([]index.Result, len(seg))
	cur := v.version + 1
	for i, c := range seg {
		v.stats.Lookups++
		if cid, ok := v.active[c.FP]; ok {
			results[i] = index.Result{Duplicate: true, CID: cid}
			v.lastSeen[c.FP] = cur // T1 hit moves the chunk into T2
			v.stats.CacheHits++
			v.stats.Duplicates++
			v.stats.DuplicateBytes += uint64(c.Size)
			continue
		}
		v.stats.Uniques++
		v.stats.UniqueBytes += uint64(c.Size)
	}
	return results
}

// Commit implements index.Index: newly stored chunks enter T2.
func (v *IndexView) Commit(seg []index.ChunkRef, cids []container.ID) {
	cur := v.version + 1
	for i, c := range seg {
		if i >= len(cids) || cids[i] == 0 {
			continue
		}
		if _, ok := v.active[c.FP]; !ok {
			v.active[c.FP] = cids[i]
		}
		v.lastSeen[c.FP] = cur
	}
}

// EndVersion implements index.Index: T1's leftovers (chunks not seen
// within the window) are evicted — in the full engine this is the moment
// they migrate to archival containers.
func (v *IndexView) EndVersion() {
	v.version++
	for f, seen := range v.lastSeen {
		if seen <= v.version-v.window {
			delete(v.active, f)
			delete(v.lastSeen, f)
		}
	}
}

// Evicted returns the fingerprints that would leave the cache if the
// version ended now (the cold set). Used by tests.
func (v *IndexView) Evicted() []fp.FP {
	var out []fp.FP
	for f, seen := range v.lastSeen {
		if seen <= v.version+1-v.window {
			out = append(out, f)
		}
	}
	return out
}

// lookupOne classifies a single chunk without the slice plumbing of
// Dedup — the engine's per-chunk hot path.
func (v *IndexView) lookupOne(f fp.FP, size uint32) (container.ID, bool) {
	v.stats.Lookups++
	if cid, ok := v.active[f]; ok {
		v.lastSeen[f] = v.version + 1
		v.stats.CacheHits++
		v.stats.Duplicates++
		v.stats.DuplicateBytes += uint64(size)
		return cid, true
	}
	v.stats.Uniques++
	v.stats.UniqueBytes += uint64(size)
	return 0, false
}

// commitOne records a single newly stored chunk.
func (v *IndexView) commitOne(f fp.FP, cid container.ID) {
	if _, ok := v.active[f]; !ok {
		v.active[f] = cid
	}
	v.lastSeen[f] = v.version + 1
}

// Stats implements index.Index.
func (v *IndexView) Stats() index.Stats { return v.stats }

// MemoryBytes implements index.Index. HiDeStore keeps no persistent index
// table: the fingerprint cache is rebuilt from the previous version's
// recipe, so its persistent overhead is zero (§5.2.3, Figure 10). The
// transient cache size is reported by TransientBytes.
func (v *IndexView) MemoryBytes() int64 { return 0 }

// TransientBytes is the current fingerprint-cache footprint — bounded by
// the size of one window of backup versions (§4.1's ~100 MB macos
// example), not by the dataset.
func (v *IndexView) TransientBytes() int64 {
	return int64(len(v.active)) * EntryBytes
}
