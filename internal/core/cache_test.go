package core

import (
	"sort"
	"strconv"
	"sync"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
)

func refs(prefix string, n int) []index.ChunkRef {
	out := make([]index.ChunkRef, n)
	for i := range out {
		out[i] = index.ChunkRef{FP: fp.Of([]byte(prefix + strconv.Itoa(i))), Size: 4096}
	}
	return out
}

func commit(v *IndexView, seg []index.ChunkRef, res []index.Result, next *container.ID) {
	cids := make([]container.ID, len(seg))
	for i, r := range res {
		if r.Duplicate {
			cids[i] = r.CID
			continue
		}
		*next++
		cids[i] = *next
	}
	v.Commit(seg, cids)
}

func TestIndexViewFigure5Cases(t *testing.T) {
	v := NewIndexView(1)
	var next container.ID

	// Version 1: all unique (case one).
	seg := refs("a", 10)
	res := v.Dedup(seg)
	for i, r := range res {
		if r.Duplicate {
			t.Fatalf("chunk %d should be unique", i)
		}
	}
	commit(v, seg, res, &next)
	v.EndVersion()

	// Version 2: same chunks hit T1 and move to T2 (case two); a repeat
	// within the version hits T2 (case three).
	res = v.Dedup(seg)
	for i, r := range res {
		if !r.Duplicate || r.CID == 0 {
			t.Fatalf("chunk %d: %+v, want duplicate with location", i, r)
		}
	}
	res2 := v.Dedup(seg) // T2 hits
	for i, r := range res2 {
		if !r.Duplicate {
			t.Fatalf("repeat chunk %d should hit T2", i)
		}
	}
	commit(v, seg, res, &next)
	v.EndVersion()
	if got := v.Stats().DiskLookups; got != 0 {
		t.Fatalf("DiskLookups = %d, want 0", got)
	}
}

// TestIndexViewEviction: chunks absent from a version are evicted at its
// end (window 1), so re-presenting them later classifies as unique — the
// deliberate trade the paper makes because such returns are rare.
func TestIndexViewEviction(t *testing.T) {
	v := NewIndexView(1)
	var next container.ID
	seg := refs("x", 5)
	res := v.Dedup(seg)
	commit(v, seg, res, &next)
	v.EndVersion()

	// Version 2 contains none of version 1's chunks.
	other := refs("y", 5)
	res = v.Dedup(other)
	commit(v, other, res, &next)
	v.EndVersion()

	// Version 3 re-presents version 1's chunks: they were evicted.
	res = v.Dedup(seg)
	for i, r := range res {
		if r.Duplicate {
			t.Fatalf("evicted chunk %d still classified duplicate", i)
		}
	}
}

// TestIndexViewWindow2 keeps chunks alive across one absent version.
func TestIndexViewWindow2(t *testing.T) {
	v := NewIndexView(2)
	var next container.ID
	seg := refs("flap", 5)
	res := v.Dedup(seg)
	commit(v, seg, res, &next)
	v.EndVersion()

	other := refs("other", 5)
	res = v.Dedup(other)
	commit(v, other, res, &next)
	v.EndVersion()

	// The flapping chunks return after skipping one version: still hot.
	res = v.Dedup(seg)
	for i, r := range res {
		if !r.Duplicate {
			t.Fatalf("window-2 chunk %d evicted too early", i)
		}
	}
}

func TestIndexViewTransientBounded(t *testing.T) {
	v := NewIndexView(1)
	var next container.ID
	// Ten versions of disjoint chunks: the cache must stay bounded by one
	// window's worth, not grow with the dataset.
	perVersion := 100
	for ver := 0; ver < 10; ver++ {
		seg := refs("v"+strconv.Itoa(ver)+"-", perVersion)
		res := v.Dedup(seg)
		commit(v, seg, res, &next)
		v.EndVersion()
	}
	if got, want := v.TransientBytes(), int64(perVersion)*EntryBytes; got > want {
		t.Fatalf("TransientBytes = %d, want ≤ %d (window-bounded)", got, want)
	}
	if v.MemoryBytes() != 0 {
		t.Fatal("persistent MemoryBytes must be 0")
	}
}

func TestIndexViewName(t *testing.T) {
	if NewIndexView(0).Name() != "hidestore" {
		t.Fatal("wrong name")
	}
}

func TestIndexViewEvictedPreview(t *testing.T) {
	v := NewIndexView(1)
	var next container.ID
	seg := refs("e", 3)
	res := v.Dedup(seg)
	commit(v, seg, res, &next)
	v.EndVersion()
	other := refs("f", 3)
	res = v.Dedup(other)
	commit(v, other, res, &next)
	// Before EndVersion, the would-be-cold set is version 1's chunks.
	if got := len(v.Evicted()); got != 3 {
		t.Fatalf("Evicted preview = %d chunks, want 3", got)
	}
}

func TestLookupOneMatchesDedup(t *testing.T) {
	// The single-chunk fast path must agree with the batch path.
	a := NewIndexView(1)
	b := NewIndexView(1)
	var next container.ID
	seg := refs("agree", 50)
	resBatch := a.Dedup(seg)
	commit(a, seg, resBatch, &next)
	a.EndVersion()
	for _, c := range seg {
		if _, dup := b.lookupOne(c.FP, c.Size); dup {
			t.Fatal("fresh cache claimed a duplicate")
		}
		next++
		b.commitOne(c.FP, next)
	}
	b.EndVersion()
	// Second version: both must classify every chunk as duplicate.
	resBatch = a.Dedup(seg)
	for i, c := range seg {
		cid, dup := b.lookupOne(c.FP, c.Size)
		if dup != resBatch[i].Duplicate {
			t.Fatalf("chunk %d: paths disagree", i)
		}
		if !dup || cid == 0 {
			t.Fatalf("chunk %d: not found by fast path", i)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Duplicates != sb.Duplicates || sa.Uniques != sb.Uniques {
		t.Fatalf("stats diverge: %+v vs %+v", sa, sb)
	}
}

// TestIndexViewShardHammer drives the sharded cache the way the backup
// pipeline does — HashWorkers×4 goroutines probing speculatively while
// a sink goroutine classifies and commits — with a concurrent Stats and
// TransientBytes scrape. Run under -race, this is the shard-contention
// safety proof for the core cache.
func TestIndexViewShardHammer(t *testing.T) {
	v := NewIndexViewSharded(1, 8)
	const probers = 16 // HashWorkers (4) × 4
	seg := refs("hammer", 2000)

	var wg, scrape sync.WaitGroup
	stop := make(chan struct{})
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for {
			select {
			case <-stop:
				return
			default:
				v.Stats()
				v.TransientBytes()
			}
		}
	}()
	for w := 0; w < probers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				for _, c := range seg {
					v.probe(c.FP)
				}
			}
		}(w)
	}
	// The sink: in-order classification and commit, concurrent with the
	// probers — exactly the engine's arrangement.
	var next container.ID
	for round := 0; round < 3; round++ {
		for _, c := range seg {
			if _, hit := v.probe(c.FP); hit {
				v.touch(c.FP, c.Size)
				continue
			}
			if _, dup := v.lookupOne(c.FP, c.Size); !dup {
				next++
				v.commitOne(c.FP, next)
			}
		}
	}
	wg.Wait()
	close(stop)
	scrape.Wait()

	st := v.Stats()
	if want := uint64(3 * len(seg)); st.Lookups != want {
		t.Fatalf("Lookups = %d, want %d (probes must not count as lookups)", st.Lookups, want)
	}
	if want := uint64(2 * len(seg)); st.Duplicates != want {
		t.Fatalf("Duplicates = %d, want %d", st.Duplicates, want)
	}
	if want := uint64(len(seg)); st.Uniques != want {
		t.Fatalf("Uniques = %d, want %d", st.Uniques, want)
	}
}

// TestIndexViewShardedMatchesSingle pins shard transparency: the same
// classification sequence against a 1-shard and a 16-shard cache must
// produce identical verdicts, stats, and eviction sets.
func TestIndexViewShardedMatchesSingle(t *testing.T) {
	one := NewIndexViewSharded(1, 1)
	many := NewIndexViewSharded(1, 16)
	var n1, n2 container.ID
	for ver := 0; ver < 3; ver++ {
		seg := refs("match"+strconv.Itoa(ver%2), 300) // alternate so evictions happen
		r1 := one.Dedup(seg)
		r2 := many.Dedup(seg)
		for i := range seg {
			if r1[i].Duplicate != r2[i].Duplicate || r1[i].CID != r2[i].CID {
				t.Fatalf("v%d chunk %d: 1-shard %+v, 16-shard %+v", ver, i, r1[i], r2[i])
			}
		}
		commit(one, seg, r1, &n1)
		commit(many, seg, r2, &n2)
		e1, e2 := one.Evicted(), many.Evicted()
		sort.Slice(e1, func(i, j int) bool { return e1[i].Less(e1[j]) })
		sort.Slice(e2, func(i, j int) bool { return e2[i].Less(e2[j]) })
		if len(e1) != len(e2) {
			t.Fatalf("v%d: eviction sets differ in size: %d vs %d", ver, len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("v%d: eviction sets differ at %d", ver, i)
			}
		}
		one.EndVersion()
		many.EndVersion()
	}
	if s1, s2 := one.Stats(), many.Stats(); s1 != s2 {
		t.Fatalf("stats diverge:\n1-shard  %+v\n16-shard %+v", s1, s2)
	}
	if one.TransientBytes() != many.TransientBytes() {
		t.Fatal("transient footprint diverges between shard counts")
	}
}

// BenchmarkIndexViewProbe measures the concurrent read fast path at
// increasing shard counts (make microbench).
func BenchmarkIndexViewProbe(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run("shards"+strconv.Itoa(shards), func(b *testing.B) {
			v := NewIndexViewSharded(1, shards)
			seg := refs("bench", 4096)
			var next container.ID
			for _, c := range seg {
				next++
				v.commitOne(c.FP, next)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					v.probe(seg[i%len(seg)].FP)
					i++
				}
			})
		})
	}
}
