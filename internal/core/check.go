package core

import (
	"sort"

	"hidestore/internal/backup"
	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/recipe"
)

var (
	_ backup.Checker  = (*Engine)(nil)
	_ backup.Repairer = (*Engine)(nil)
)

// Check verifies the integrity of everything the engine stores:
//
//   - every container decodes and every stored chunk's content hashes to
//     its fingerprint (file-backed stores additionally CRC-check the
//     container image on read);
//   - every recipe entry is resolvable: archival CIDs point at containers
//     that hold the chunk; active and forward entries terminate at a hot
//     chunk or at an archival location via the recipe chain;
//   - the engine's fingerprint-cache bookkeeping agrees with the
//     containers: every hot chunk's recorded location actually holds it.
//
// Check is read-only and reports problems instead of failing fast, so one
// run inventories all damage.
func (e *Engine) Check() (backup.CheckReport, error) {
	rep, err := e.audit(false)
	return rep.CheckReport, err
}

// Repair implements backup.Repairer: the same audit as Check, but
// containers that fail to decode are quarantined (moved into the
// store's quarantine area, never deleted) and every version with at
// least one chunk lost to a quarantined container is named in
// AffectedVersions. Requires the store to implement
// container.Quarantiner (file-backed stores do).
func (e *Engine) Repair() (backup.RepairReport, error) {
	return e.audit(true)
}

// audit is the shared fsck walk; repair selects quarantine-and-name
// behavior on undecodable containers.
func (e *Engine) audit(repair bool) (backup.RepairReport, error) {
	var report backup.RepairReport
	corrupt := make(map[container.ID]bool)

	// Pass 1: containers and chunk content.
	chunkAt := make(map[fp.FP]map[container.ID]struct{})
	stored, err := e.cfg.Store.IDs()
	if err != nil {
		report.Problemf("store: cannot enumerate containers: %v", err)
	}
	for _, cid := range stored {
		//hidelint:ignore accounting fsck integrity walk, not a restore; its reads must not skew speed-factor stats
		ctn, err := e.cfg.Store.Get(cid)
		if err != nil {
			report.Problemf("container %d: %v", cid, err)
			if repair {
				e.quarantine(cid, corrupt, &report)
			}
			continue
		}
		report.Containers++
		for _, f := range ctn.Fingerprints() {
			data, err := ctn.Get(f)
			if err != nil {
				report.Problemf("container %d chunk %s: %v", cid, f.Short(), err)
				continue
			}
			report.StoredChunks++
			if got := fp.Of(data); got != f {
				report.Problemf("container %d chunk %s: content hashes to %s", cid, f.Short(), got.Short())
				continue
			}
			locs, ok := chunkAt[f]
			if !ok {
				locs = make(map[container.ID]struct{}, 1)
				chunkAt[f] = locs
			}
			locs[cid] = struct{}{}
		}
	}

	// Pass 2: the fingerprint cache's locations are real.
	for f, cid := range e.activeByFP {
		if _, ok := chunkAt[f][cid]; !ok {
			report.Problemf("hot chunk %s: recorded in active container %d but absent", f.Short(), cid)
		}
	}

	// Pass 3: every recipe entry resolves to a stored chunk. Forward
	// pointers are chased through newer recipes without mutating anything.
	recipes := make(map[int]*recipe.Recipe)
	versions, err := e.cfg.Recipes.Versions()
	if err != nil {
		report.Problemf("recipes: cannot enumerate versions: %v", err)
	}
	for _, v := range versions {
		rec, err := e.cfg.Recipes.Get(v)
		if err != nil {
			report.Problemf("recipe v%d: %v", v, err)
			continue
		}
		recipes[v] = rec
	}
	referenced := make(map[container.ID]struct{})
	affected := make(map[int]bool)
	for _, v := range versions {
		rec, ok := recipes[v]
		if !ok {
			continue
		}
		report.Versions++
		for i, entry := range rec.Entries {
			report.Chunks++
			if entry.CID > 0 {
				referenced[container.ID(entry.CID)] = struct{}{}
			}
			ok, terminal := e.checkEntry(entry, recipes, chunkAt)
			if !ok {
				report.Problemf("recipe v%d entry %d (%s, CID %d): unresolvable",
					v, i, entry.FP.Short(), entry.CID)
				if corrupt[terminal] {
					affected[v] = true
				}
			}
		}
	}
	for v := range affected {
		report.AffectedVersions = append(report.AffectedVersions, v)
	}
	sort.Ints(report.AffectedVersions)

	// Pass 4: orphan detection. A container neither active nor referenced
	// by any recipe is unreachable — typically debris from a crash between
	// a store write and the state write. Orphans are harmless (they waste
	// space, not correctness) but worth surfacing; the startup recovery
	// sweep reclaims them on the next open.
	for _, cid := range stored {
		if _, isActive := e.activeContainers[cid]; isActive {
			continue
		}
		if _, isReferenced := referenced[cid]; isReferenced {
			continue
		}
		if e.batchOwns(cid) {
			// Owned by a deletion batch whose recipes still chain to it
			// through forward pointers rather than direct CIDs.
			continue
		}
		if corrupt[cid] {
			// Already quarantined this pass.
			continue
		}
		report.Problemf("container %d: orphaned (not active, not referenced by any recipe)", cid)
	}
	return report, nil
}

// quarantine moves an undecodable container aside, recording the
// destination and marking the CID so recipe resolution can attribute
// losses to it.
func (e *Engine) quarantine(cid container.ID, corrupt map[container.ID]bool, report *backup.RepairReport) {
	q, ok := e.cfg.Store.(container.Quarantiner)
	if !ok {
		report.Problemf("container %d: store cannot quarantine; image left in place", cid)
		return
	}
	dst, err := q.Quarantine(cid)
	if err != nil {
		report.Problemf("container %d: quarantine failed: %v", cid, err)
		return
	}
	corrupt[cid] = true
	report.Quarantined = append(report.Quarantined, dst)
}

// batchOwns reports whether any recorded archival batch owns cid.
func (e *Engine) batchOwns(cid container.ID) bool {
	for _, batch := range e.batches {
		for _, id := range batch.containers {
			if id == cid {
				return true
			}
		}
	}
	return false
}

// checkEntry resolves one recipe entry against the store, following
// forward pointers. It returns whether the entry resolves and the
// terminal container the resolution ended at (0 when resolution dies
// before reaching a container — e.g. a missing recipe in the chain).
func (e *Engine) checkEntry(entry recipe.Entry, recipes map[int]*recipe.Recipe,
	chunkAt map[fp.FP]map[container.ID]struct{}) (bool, container.ID) {
	for hops := 0; hops < len(recipes)+2; hops++ {
		switch {
		case entry.CID > 0:
			_, ok := chunkAt[entry.FP][container.ID(entry.CID)]
			return ok, container.ID(entry.CID)
		case entry.CID == 0:
			cid, hot := e.activeByFP[entry.FP]
			if !hot {
				return false, 0
			}
			_, ok := chunkAt[entry.FP][cid]
			return ok, cid
		default:
			next, ok := recipes[int(-entry.CID)]
			if !ok {
				return false, 0
			}
			found := false
			for _, cand := range next.Entries {
				if cand.FP == entry.FP {
					entry = cand
					found = true
					break
				}
			}
			if !found {
				// The chunk is not listed in the forwarded recipe; it may
				// still be hot (the chain's terminal case).
				cid, hot := e.activeByFP[entry.FP]
				if !hot {
					return false, 0
				}
				_, ok := chunkAt[entry.FP][cid]
				return ok, cid
			}
		}
	}
	return false, 0 // cycle — corrupt chain
}
