package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hidestore/internal/backup/backuptest"
	"hidestore/internal/container"
	"hidestore/internal/fp"
)

func TestCheckHealthyStore(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(6, 0))
	backuptest.BackupAll(t, e, versions)
	rep, err := e.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("healthy store reported problems: %v", rep.Problems)
	}
	if rep.Versions != 6 || rep.Containers == 0 || rep.Chunks == 0 || rep.StoredChunks == 0 {
		t.Fatalf("report %+v under-counts", rep)
	}
}

func TestCheckAfterDeleteAndFlatten(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(7, 0))
	backuptest.BackupAll(t, e, versions)
	if err := e.FlattenRecipes(1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Delete(2); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("store unhealthy after delete+flatten: %v", rep.Problems)
	}
}

func TestCheckDetectsMissingContainer(t *testing.T) {
	e, store, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(5, 0))
	backuptest.BackupAll(t, e, versions)
	// Remove an archival container behind the engine's back.
	var victim container.ID
	ids, err := store.IDs()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, isActive := e.activeContainers[id]; !isActive {
			victim = id
			break
		}
	}
	if victim == 0 {
		t.Skip("no archival container at this scale")
	}
	if err := store.Delete(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("missing container went undetected")
	}
}

func TestCheckDetectsCorruptChunk(t *testing.T) {
	dir := t.TempDir()
	e := newPersistentEngine(t, dir, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(4, 0))
	backuptest.BackupAll(t, e, versions)
	// Corrupt one container file on disk (CRC will catch it at read).
	matches, err := filepath.Glob(filepath.Join(dir, "containers", "c_*.ctn"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no container files: %v", err)
	}
	buf, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(matches[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("corrupt container went undetected")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "container") {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems don't mention the container: %v", rep.Problems)
	}
}

func TestVerifyRestore(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(4, 0))
	backuptest.BackupAll(t, e, versions)
	var buf bytes.Buffer
	rep, err := e.VerifyRestore(context.Background(), 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), versions[3]) {
		t.Fatal("verified restore corrupted bytes")
	}
	if rep.Stats.BytesRestored != uint64(len(versions[3])) {
		t.Fatalf("report %+v", rep)
	}
}

func TestCheckDetectsOrphanContainer(t *testing.T) {
	e, store, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(4, 0))
	backuptest.BackupAll(t, e, versions)
	// Plant an orphan: a container no recipe or active map knows about.
	orphan := container.NewWithCapacity(9999, 64<<10)
	data := []byte("debris from a simulated crash")
	if err := orphan.Add(fpOf(data), data); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(orphan); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Check()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "orphan") {
			found = true
		}
	}
	if !found {
		t.Fatalf("orphan container not flagged: %v", rep.Problems)
	}
}

func fpOf(b []byte) fp.FP { return fp.Of(b) }
