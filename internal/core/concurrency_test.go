package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"hidestore/internal/backup/backuptest"
	"hidestore/internal/container"
)

// TestConcurrentReadDuringMaintenance pins the Store ownership contract:
// once Put hands a container to the store, readers must observe an
// immutable snapshot even while the engine keeps appending to its active
// containers, migrating cold chunks and dropping expired containers.
// Before MemStore.Put snapshotted, the engine's post-Put mutations of
// active containers raced with restore-style readers; run with -race.
func TestConcurrentReadDuringMaintenance(t *testing.T) {
	e, store, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(8, 0.2))
	// Seed one version so readers see data from the first iteration.
	if _, err := e.Backup(context.Background(), bytes.NewReader(versions[0])); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				ids, err := store.IDs()
				if err != nil {
					t.Errorf("IDs during maintenance: %v", err)
					return
				}
				for _, id := range ids {
					c, err := store.Get(id)
					if errors.Is(err, container.ErrNotFound) {
						continue // swept between IDs() and Get()
					}
					if err != nil {
						t.Errorf("Get(%d) during maintenance: %v", id, err)
						return
					}
					for _, f := range c.Fingerprints() {
						if _, err := c.Get(f); err != nil {
							t.Errorf("chunk %s vanished from snapshot %d: %v", f.Short(), id, err)
							return
						}
					}
				}
			}
		}()
	}

	// Backup maintenance in the main goroutine: rotation, cold migration,
	// sparse merging, container deletes — all while readers scan.
	for v := 1; v < len(versions); v++ {
		if _, err := e.Backup(context.Background(), bytes.NewReader(versions[v])); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	backuptest.CheckRestoreAll(t, e, versions)
}

// TestRestoreHonorsContext: the engine-level restore path propagates
// cancellation from the caller's context.
func TestRestoreHonorsContext(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(2, 0))
	backuptest.BackupAll(t, e, versions)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Restore(ctx, 1, &bytes.Buffer{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("restore with cancelled ctx returned %v, want context.Canceled", err)
	}
}
