package core

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hidestore/internal/backend"
	"hidestore/internal/backup"
	"hidestore/internal/backup/backuptest"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/durable"
	"hidestore/internal/fault"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
	"hidestore/internal/workload"
)

// crashWorkload is deliberately tiny: each matrix cell replays the whole
// script, so per-version cost multiplies by (ops × kinds).
func crashWorkload(versions int) workload.Config {
	return workload.Config{
		Name:          "crash",
		Versions:      versions,
		Files:         4,
		BlocksPerFile: 6,
		BlockSize:     2048,
		ModifyRate:    0.10,
		InsertRate:    0.01,
		DeleteRate:    0.005,
		FileChurn:     0.05,
		Seed:          42,
	}
}

// crashOpen builds a file-backed HiDeStore engine with the injector
// spliced into the container store, the recipe store, and the state
// writer — every durable commit step draws from one op counter.
func crashOpen(dir string, inj *fault.Injector) (backup.Engine, error) {
	cs, err := container.NewFileStore(filepath.Join(dir, "containers"))
	if err != nil {
		return nil, err
	}
	rs, err := recipe.NewFileStore(filepath.Join(dir, "recipes"))
	if err != nil {
		return nil, err
	}
	return New(Config{
		Store:             fault.NewStore(cs, inj, cs.Path),
		Recipes:           fault.NewRecipeStore(rs, inj, rs.Path),
		ContainerCapacity: 16 << 10,
		Window:            1,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
		RestoreCache:      restorecache.NewFAA(1 << 20),
		StatePath:         filepath.Join(dir, "state.hds"),
		WriteState:        inj.WrapWrite(durable.WriteFileAtomic),
	})
}

// TestCrashMatrixBackup kills a 3-version backup run at every mutating
// op (clean fail, torn write, ENOSPC), reopens the directory, and
// proves recovery: committed versions restore byte-identically and
// fsck finds nothing.
func TestCrashMatrixBackup(t *testing.T) {
	versions := backuptest.Materialize(t, crashWorkload(3))
	backuptest.CrashMatrix(t, crashOpen, backuptest.BackupSteps(versions),
		[]fault.Kind{fault.Fail, fault.Torn, fault.NoSpace})
}

// crashOpenLanes is crashOpen with multi-lane chunking and a sharded
// fingerprint cache, so the matrix also proves the parallel ingest path
// commits exactly what the sequential path does at every crash point.
func crashOpenLanes(dir string, inj *fault.Injector) (backup.Engine, error) {
	cs, err := container.NewFileStore(filepath.Join(dir, "containers"))
	if err != nil {
		return nil, err
	}
	rs, err := recipe.NewFileStore(filepath.Join(dir, "recipes"))
	if err != nil {
		return nil, err
	}
	return New(Config{
		Store:             fault.NewStore(cs, inj, cs.Path),
		Recipes:           fault.NewRecipeStore(rs, inj, rs.Path),
		ContainerCapacity: 16 << 10,
		Window:            1,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
		ChunkLanes:        2,
		IndexShards:       4,
		RestoreCache:      restorecache.NewFAA(1 << 20),
		StatePath:         filepath.Join(dir, "state.hds"),
		WriteState:        inj.WrapWrite(durable.WriteFileAtomic),
	})
}

// TestCrashMatrixBackupLanes re-runs the backup crash matrix with
// ChunkLanes > 1 and a sharded cache: committed versions must restore
// byte-identically however the parallel pipeline was cut down.
func TestCrashMatrixBackupLanes(t *testing.T) {
	versions := backuptest.Materialize(t, crashWorkload(3))
	backuptest.CrashMatrix(t, crashOpenLanes, backuptest.BackupSteps(versions),
		[]fault.Kind{fault.Fail, fault.Torn, fault.NoSpace})
}

// TestCrashMatrixDelete adds an expiry to the script: backups, a
// delete of the oldest version, and one more backup — so every crash
// point of the Delete commit order (recipe → state → containers) and
// of a post-delete backup is also exercised.
func TestCrashMatrixDelete(t *testing.T) {
	versions := backuptest.Materialize(t, crashWorkload(4))
	steps := backuptest.BackupSteps(versions[:3])
	steps = append(steps, backuptest.CrashStep{Delete: 1})
	steps = append(steps, backuptest.CrashStep{Data: versions[3]})
	backuptest.CrashMatrix(t, crashOpen, steps,
		[]fault.Kind{fault.Fail, fault.Torn, fault.NoSpace})
}

// crashOpenRemote builds the engine over the full composed backend
// stack — remote simulator (with deterministic transients the retry
// layer absorbs) × retry × persistent container cache — with the crash
// injector spliced in above the adapters, modeling a process that dies
// between commit steps. The path funcs point into the backing local
// tree so Torn debris and NoSpace artifacts land where the backend's
// reopen-time temp sweep must find them.
func crashOpenRemote(dir string, inj *fault.Injector) (backup.Engine, error) {
	stack := func(sub string, seed int64, cache bool) (backend.Backend, error) {
		base, err := backend.NewLocal(filepath.Join(dir, "remote", sub))
		if err != nil {
			return nil, err
		}
		opts := backend.StackOptions{
			Sim: backend.SimOptions{FailEveryN: 7, Seed: seed, SleepScale: -1},
			Retry: backend.RetryOptions{
				Tries:    4,
				MinDelay: 10 * time.Microsecond,
				MaxDelay: 100 * time.Microsecond,
				Seed:     seed,
			},
		}
		if cache {
			opts.CacheDir = filepath.Join(dir, "cache")
			opts.CacheBytes = 1 << 20
		}
		b, _, err := backend.NewStack(base, opts)
		return b, err
	}
	cb, err := stack("containers", 1, true)
	if err != nil {
		return nil, err
	}
	rb, err := stack("recipes", 2, false)
	if err != nil {
		return nil, err
	}
	sb, err := stack("state", 3, false)
	if err != nil {
		return nil, err
	}
	const stateName = "state.hds"
	statePath := filepath.Join(dir, "remote", "state", stateName)
	return New(Config{
		Store: fault.NewStore(backend.NewContainerStore(cb), inj, func(id container.ID) string {
			return filepath.Join(dir, "remote", "containers", backend.ContainerName(id))
		}),
		Recipes: fault.NewRecipeStore(backend.NewRecipeStore(rb), inj, func(v int) string {
			return filepath.Join(dir, "remote", "recipes", backend.RecipeName(v))
		}),
		ContainerCapacity: 16 << 10,
		Window:            1,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
		RestoreCache:      restorecache.NewFAA(1 << 20),
		StatePath:         statePath,
		WriteState: inj.WrapWrite(func(path string, data []byte, perm os.FileMode) error {
			return sb.Put(context.Background(), stateName, data)
		}),
		ReadState: func(path string) ([]byte, error) {
			data, err := sb.Get(context.Background(), stateName)
			if err != nil {
				if errors.Is(err, backend.ErrNotFound) {
					return nil, fmt.Errorf("state %s: %w", path, fs.ErrNotExist)
				}
				return nil, err
			}
			return data, nil
		},
	})
}

// TestCrashMatrixRemoteStack re-runs the backup crash matrix with every
// persistence layer behind the composed remote stack: commit ordering
// must survive not just process death but process death while the
// backend below is injecting transient faults that the retry layer
// silently absorbs, and with a persistent read cache interposed that
// must never resurrect uncommitted data after the reopen.
func TestCrashMatrixRemoteStack(t *testing.T) {
	versions := backuptest.Materialize(t, crashWorkload(3))
	backuptest.CrashMatrix(t, crashOpenRemote, backuptest.BackupSteps(versions),
		[]fault.Kind{fault.Fail, fault.Torn, fault.NoSpace})
}

// TestFsckRepairQuarantines corrupts one archival container image on
// disk (bit rot), then verifies the full damage-control path: Repair
// reports the corruption, moves the image into the quarantine
// directory (never deletes it) and names the versions whose chunks it
// held, and a second Repair is clean apart from the now-unresolvable
// entries.
func TestFsckRepairQuarantines(t *testing.T) {
	dir := t.TempDir()
	e, err := crashOpen(dir, fault.NewInjector())
	if err != nil {
		t.Fatal(err)
	}
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(4, 0))
	backuptest.BackupAll(t, e, versions)

	inj := fault.NewInjector()
	e2, err := crashOpen(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	eng := e2.(*Engine)

	// The audit reads stored containers in ascending-ID order, so the
	// 1-based position of the first archival (non-active) container is
	// the read index to corrupt. Corrupting an active container would
	// instead poison the state reload on the next open — a different
	// failure (covered by the reload error path), not bit rot on cold
	// data.
	stored, err := eng.cfg.Store.IDs()
	if err != nil {
		t.Fatal(err)
	}
	readIdx := 0
	for i, cid := range stored {
		if _, active := eng.activeContainers[cid]; !active {
			readIdx = i + 1
			break
		}
	}
	if readIdx == 0 {
		t.Fatal("workload produced no archival containers; nothing cold to corrupt")
	}
	inj.Arm(fault.CorruptRead, readIdx)
	rep, err := eng.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Tripped() {
		t.Fatal("CorruptRead never fired: fsck read no containers")
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("Quarantined = %v, want exactly one image", rep.Quarantined)
	}
	if !strings.Contains(rep.Quarantined[0], container.QuarantineDir) {
		t.Fatalf("quarantined image %q not under the quarantine dir", rep.Quarantined[0])
	}
	if len(rep.Problems) == 0 {
		t.Fatal("a corrupt container produced no problems")
	}

	// The quarantined container held live chunks of at least one stored
	// version; Repair must name it.
	if len(rep.AffectedVersions) == 0 {
		t.Fatalf("no affected versions named; problems: %v", rep.Problems)
	}
	for _, v := range rep.AffectedVersions {
		if v < 1 || v > 4 {
			t.Fatalf("affected version %d out of range", v)
		}
	}

	// Reopen fresh (no injector tricks) and audit again: the corrupt
	// image is out of the way, so the only remaining problems are the
	// dangling references to it — no new decode failures.
	e3, err := crashOpen(dir, fault.NewInjector())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := e3.(*Engine).Repair()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Quarantined) != 0 {
		t.Fatalf("second repair quarantined more images: %v", rep2.Quarantined)
	}
	for _, p := range rep2.Problems {
		if strings.Contains(p, "cannot") {
			t.Fatalf("second repair hit an operational error: %s", p)
		}
	}
}
