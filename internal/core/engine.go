package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"hidestore/internal/backup"
	"hidestore/internal/bufpool"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/durable"
	"hidestore/internal/fp"
	"hidestore/internal/index"
	"hidestore/internal/obs"
	"hidestore/internal/pipeline"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
)

// Config assembles a HiDeStore engine. Store and Recipes are required.
type Config struct {
	// Chunking algorithm and bounds. Defaults to TTTD with the paper's
	// 2/4/16 KB parameters (§5.1).
	Chunker     chunker.Algorithm
	ChunkParams chunker.Params
	// Store persists containers, both active and archival (required).
	Store container.Store
	// Recipes persists recipes (required).
	Recipes recipe.Store
	// ContainerCapacity in bytes (default container.DefaultCapacity).
	ContainerCapacity int
	// Window is the fingerprint-cache window in versions: 1 deduplicates
	// against the previous version (the default), 2 against the previous
	// two (the macos case, §4.1).
	Window int
	// MergeUtilization is the active-container utilization below which
	// containers are merged after each version (§4.2). Default 0.5.
	MergeUtilization float64
	// RestoreCache drives restores after CID resolution (default FAA).
	RestoreCache restorecache.Cache
	// PrefetchDepth bounds the restore read-ahead window in distinct
	// containers: 0 selects restorecache.DefaultPrefetchDepth, negative
	// disables prefetching. Prefetch only reorders when reads happen,
	// never which reads happen, so restore stats are unaffected.
	PrefetchDepth int
	// RestoreWorkers parallelize the restore's fetch and assembly
	// stages: values above 1 widen the prefetch read pool to this many
	// workers and assemble chunk spans out of order behind an in-order
	// reorder window. Output bytes and read accounting are identical to
	// the serial restore by construction (the cache policy remains the
	// single decision-maker). 0 or 1 restores serially (the default).
	RestoreWorkers int
	// HashWorkers parallelize fingerprinting (default 4).
	HashWorkers int
	// ChunkLanes parallelizes content-defined chunking: the stream is
	// speculatively chunked by this many lanes and re-stitched, with a
	// chunk sequence bit-identical to the sequential chunker's. 0 or 1
	// chunks sequentially (the default).
	ChunkLanes int
	// IndexShards is the fingerprint cache's shard count (rounded up to
	// a power of two, max 256). Shards bound lock contention between
	// the hash workers' speculative index probes; they never change
	// dedup decisions. 0 selects DefaultIndexShards.
	IndexShards int
	// AsyncCommitDepth bounds the asynchronous container-commit queue:
	// sealed containers are committed by a background writer while
	// chunking continues, and a barrier before the recipe write
	// preserves the containers → recipe → state durability order.
	// 0 selects the default depth of 2 (async on); negative disables
	// the writer and commits synchronously at each seal.
	AsyncCommitDepth int
	// StatePath, when set, persists the engine's resumable state (the
	// fingerprint cache, active-container locations and deletion batches)
	// after every Backup and Delete, and restores it at New — so a
	// process restart continues the version history where it stopped.
	StatePath string
	// WriteState commits the state file (default durable.WriteFileAtomic,
	// i.e. temp file + fsync + rename + directory fsync). Tests inject
	// fault wrappers here; production code leaves it nil.
	WriteState func(path string, data []byte, perm os.FileMode) error
	// ReadState loads the state file (default os.ReadFile). A missing
	// state must surface as an error matching fs.ErrNotExist. Backend
	// stacks route the state blob through their retry/limiter layers
	// here; tests inject fault wrappers.
	ReadState func(path string) ([]byte, error)
	// Metrics, when set, mirrors the engine's counters and per-stage
	// latencies into the registry. Nil (the default) disables the
	// observability plane at the cost of one nil check per site.
	Metrics *obs.Registry
	// Tracer, when set, records per-operation spans (backup, restore,
	// container.fetch, recovery events) as JSONL. Nil disables tracing.
	Tracer *obs.Tracer
}

func (c *Config) setDefaults() error {
	if c.Store == nil {
		return errors.New("core: Config.Store is required")
	}
	if c.Recipes == nil {
		return errors.New("core: Config.Recipes is required")
	}
	if c.Chunker == 0 {
		c.Chunker = chunker.TTTD
	}
	if c.ChunkParams == (chunker.Params{}) {
		c.ChunkParams = chunker.DefaultParams()
	}
	if err := c.ChunkParams.Validate(); err != nil {
		return err
	}
	if c.ContainerCapacity <= 0 {
		c.ContainerCapacity = container.DefaultCapacity
	}
	if c.Window <= 0 {
		c.Window = 1
	}
	if c.MergeUtilization <= 0 || c.MergeUtilization > 1 {
		c.MergeUtilization = 0.5
	}
	if c.RestoreCache == nil {
		c.RestoreCache = restorecache.NewFAA(0)
	}
	if c.HashWorkers <= 0 {
		c.HashWorkers = 4
	}
	if c.ChunkLanes <= 0 {
		c.ChunkLanes = 1
	}
	if c.WriteState == nil {
		c.WriteState = durable.WriteFileAtomic
	}
	if c.ReadState == nil {
		c.ReadState = os.ReadFile
	}
	return nil
}

// rawBufDepth and hashedBufDepth size the backup pipeline's channels.
// Together with HashWorkers they determine how many chunks can sit
// between the chunker and the in-order sink, which is what the sink's
// reorder credit cap is computed from (see Backup).
const (
	rawBufDepth    = 64
	hashedBufDepth = 64
)

// archivalBatch records the archival containers created when one
// version's exclusive chunks went cold — the unit of §4.5 deletion.
type archivalBatch struct {
	containers []container.ID
	bytes      uint64
}

// Engine is the HiDeStore backup engine. Not safe for concurrent use.
type Engine struct {
	cfg Config

	version int
	nextCID container.ID

	// cache is the double-hash fingerprint cache (T1 ∪ T2 content).
	cache *IndexView
	// activeByFP locates each hot chunk's active container.
	activeByFP map[fp.FP]container.ID
	// activeContainers holds the mutable active container images.
	activeContainers map[container.ID]*container.Container
	openActive       *container.Container

	// batches[v] are the archival containers holding chunks whose last
	// appearance was version v.
	batches map[int]*archivalBatch

	// pendingDeletes are container images superseded during the current
	// operation (copied-on-write actives, merged sparse sources). They
	// are removed only after saveState commits: until then the previous
	// state still references them, and deleting them earlier would make
	// a crash unrecoverable. A crash before the flush leaves them as
	// orphans for the startup sweep.
	pendingDeletes []container.ID

	logicalBytes uint64
	storedBytes  uint64

	// pool recycles chunk buffers through the backup hot loop: the
	// chunker fills a pooled buffer per chunk, the dedup sink releases
	// it once the payload is classified duplicate or copied into a
	// container (Container.Add copies). See DESIGN.md "Backup write
	// path" for the ownership rules.
	pool *bufpool.Pool
	// writer is the asynchronous container committer, non-nil only
	// while a Backup with async commit enabled is running.
	writer *container.AsyncWriter

	// Test hooks, nil in production. hashDelay stalls the fingerprint
	// stage for a chunk to force pipeline reordering; reorderObserve
	// sees the sink's parked-chunk count after each arrival.
	hashDelay      func(seq int)
	reorderObserve func(parked int)

	// Observability bundles; all nil when Config.Metrics is nil, in
	// which case every instrumentation site reduces to one nil check.
	mx     *obs.BackupMetrics
	rmx    *obs.RestoreMetrics
	rcv    *obs.RecoveryMetrics
	smx    *obs.ScrubMetrics
	tracer *obs.Tracer

	// Online-scrubber cursor state (see scrub.go): the container list
	// snapshot being walked, the next position in it, and the damage
	// found so far (bounded; overflow counted separately). Mutated only
	// by ScrubStep, which callers serialize with the engine's other
	// operations.
	scrubQueue    []container.ID
	scrubPos      int
	scrubDamage   []string
	scrubOverflow int
}

var _ backup.Engine = (*Engine)(nil)

// New creates a HiDeStore engine.
//
//hidelint:ignore ignored-ctx startup-time crash-recovery I/O (temp sweep, state load) runs before any request context exists; nothing upstream could cancel it
func New(cfg Config) (*Engine, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:              cfg,
		cache:            NewIndexViewSharded(cfg.Window, cfg.IndexShards),
		activeByFP:       make(map[fp.FP]container.ID),
		activeContainers: make(map[container.ID]*container.Container),
		batches:          make(map[int]*archivalBatch),
		pool:             bufpool.New(cfg.ChunkParams.Max),
		mx:               obs.NewBackupMetrics(cfg.Metrics),
		rmx:              obs.NewRestoreMetrics(cfg.Metrics),
		rcv:              obs.NewRecoveryMetrics(cfg.Metrics),
		smx:              obs.NewScrubMetrics(cfg.Metrics),
		tracer:           cfg.Tracer,
	}
	if e.cfg.StatePath != "" {
		// A crash during a state write can leave a half-written temp file
		// beside the state file (the file stores sweep their own dirs).
		if _, err := durable.SweepTemp(filepath.Dir(e.cfg.StatePath)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("core: sweep state dir: %w", err)
		}
	}
	loaded, err := e.loadState()
	if err != nil {
		return nil, err
	}
	if e.cfg.StatePath != "" {
		if loaded {
			if err := e.recoverStartup(); err != nil {
				return nil, err
			}
		} else if err := e.saveState(); err != nil {
			// Anchor a fresh directory immediately: with a state file
			// present from the start, "recipes exist but state missing"
			// is unambiguously a lost state file (refused by loadState),
			// while a crash during the very first backup stays
			// recoverable — the anchor rolls it back.
			return nil, err
		}
	}
	return e, nil
}

// hashedChunk is one chunk flowing through the backup pipeline. data is
// a pool-owned buffer: the producer fills it (via the pooled chunker),
// the stages in between must not retain it, and the in-order sink
// releases it back to the engine's pool after classification.
type hashedChunk struct {
	seq  int
	fp   fp.FP
	data []byte
	// probeHit is the hash worker's speculative cache probe: true means
	// the fingerprint was already active when the worker saw it, which
	// stays true for the rest of the version (entries are never removed
	// mid-pipeline), so the in-order sink can trust it. False is only a
	// hint — an identical chunk earlier in the same version may commit
	// between the probe and the sink — and is re-probed in order.
	probeHit bool
}

// Backup implements backup.Engine.
//
// The dedup phase is Figure 5's three cases: a chunk matching the cache is
// a duplicate (T1 hits move to T2); everything else is unique and goes to
// the active containers. The recipe records CID 0 for every chunk — their
// physical locations live in the fingerprint cache until the chunks either
// go cold (archival CID patched into the recipe) or stay hot (forward
// pointer patched in).
//
// Durable commit order — containers, then recipes, then state:
//
//  1. container writes (sealed actives, archival migrations, merged and
//     copied-on-write actives) — every byte any metadata will point at;
//  2. recipe writes (the new version, then the departing version's patch);
//  3. the state file — the commit point;
//  4. only after the state commits, deletion of superseded container
//     images (flushPendingDeletes).
//
// Metadata never runs ahead of the container log: at any crash point,
// everything the previous state references is still on disk, so reopening
// rolls forward or back to a consistent history (see recoverStartup).
func (e *Engine) Backup(ctx context.Context, version io.Reader) (rep backup.BackupReport, retErr error) {
	start := time.Now()
	v := e.version + 1
	statsBefore := e.cache.Stats()
	rec := recipe.New(v)
	var logical, stored uint64
	var chunks, unique int

	// obsOn gates every hot-path clock read: with the plane off, a
	// backup performs exactly one extra boolean test per chunk. The
	// histograms are hoisted into locals so the per-chunk record is a
	// nil-safe method call even when only the tracer is live.
	obsOn := e.mx != nil || e.tracer != nil
	span := e.tracer.Start("backup", nil)
	// The span must end on every path — a dozen early error returns
	// follow — or the trace leaks an open span per failed backup.
	// Failures are marked with an error attr instead of being dropped.
	defer func() {
		if retErr != nil {
			span.SetAttr("error", 1)
		}
		span.End()
	}()
	var chunkNS int64           // single-goroutine stage (the producer)
	var fpNS, lookupNS atomic.Int64 // fingerprint and probe run on HashWorkers goroutines
	var mxChunk, mxFP, mxLookup *obs.Histogram
	if e.mx != nil {
		mxChunk, mxFP, mxLookup = e.mx.ChunkingNS, e.mx.FingerprintNS, e.mx.IndexLookupNS
	}

	ch, err := chunker.NewParallelPooled(e.cfg.Chunker, version, e.cfg.ChunkParams, e.cfg.ChunkLanes, e.pool)
	if err != nil {
		return backup.BackupReport{}, err
	}
	if e.cfg.AsyncCommitDepth >= 0 {
		e.writer = container.NewAsyncWriter(ctx, e.cfg.Store, e.cfg.AsyncCommitDepth,
			func(c *container.Container, t0 time.Time, d time.Duration) {
				// Writer-goroutine callback; both sinks are safe for
				// concurrent use.
				if e.mx != nil {
					e.mx.ContainerWriteNS.Observe(uint64(d))
				}
				if e.tracer != nil {
					e.tracer.EmitStage("container.flush.async", span, t0, d,
						map[string]int64{"container": int64(c.ID()), "bytes": int64(c.LiveSize())})
				}
			})
		defer func() {
			// Backstop for early-error returns: no queued commit may
			// outlive Backup, and no commit failure may go unreported.
			// The happy path has already barriered and cleared e.writer.
			if e.writer != nil {
				w := e.writer
				e.writer = nil
				if werr := w.Barrier(); werr != nil && retErr == nil {
					retErr = werr
				}
			}
		}()
	}
	g, gctx := pipeline.WithContext(ctx)
	// credits bounds the chunks in flight between the chunker and the
	// in-order sink: the producer takes one credit per emitted chunk and
	// the sink returns it after processing. The cap — everything the
	// channels and worker hands can hold, plus the one chunk the
	// producer may block on — is therefore also a ceiling on the sink's
	// reorder map, so one slow fingerprint worker cannot make the parked
	// set grow without bound.
	credits := make(chan struct{}, rawBufDepth+hashedBufDepth+e.cfg.HashWorkers+1)
	raw := pipeline.Produce(g, rawBufDepth, func(emit func(hashedChunk) bool) error {
		for seq := 0; ; seq++ {
			var t0 time.Time
			if obsOn {
				t0 = time.Now()
			}
			data, err := ch.Next()
			if obsOn {
				d := time.Since(t0)
				chunkNS += int64(d)
				mxChunk.Observe(uint64(d))
			}
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err != nil {
				return fmt.Errorf("core: chunking: %w", err)
			}
			select {
			case credits <- struct{}{}:
			case <-gctx.Done():
				return nil
			}
			if !emit(hashedChunk{seq: seq, data: data}) {
				return nil
			}
		}
	})
	hashed := pipeline.Transform(g, e.cfg.HashWorkers, hashedBufDepth, raw, func(c hashedChunk) (hashedChunk, error) {
		if e.hashDelay != nil {
			e.hashDelay(c.seq)
		}
		var t0 time.Time
		if obsOn {
			t0 = time.Now()
		}
		c.fp = fp.Of(c.data)
		if obsOn {
			d := time.Since(t0)
			fpNS.Add(int64(d))
			mxFP.Observe(uint64(d))
		}
		// Speculative index probe: a sharded read that overlaps the
		// expensive map lookup with the other workers instead of
		// serializing it behind the sink. The sink confirms hits and
		// re-probes misses, so classification and statistics are
		// identical to a sink-only lookup.
		if obsOn {
			t0 = time.Now()
		}
		_, c.probeHit = e.cache.probe(c.fp)
		if obsOn {
			lookupNS.Add(int64(time.Since(t0)))
		}
		return c, nil
	})
	process := func(item hashedChunk) error {
		size := uint32(len(item.data))
		logical += uint64(size)
		chunks++
		var t0 time.Time
		if obsOn {
			t0 = time.Now()
		}
		dup := item.probeHit
		if dup {
			e.cache.touch(item.fp, size)
		} else {
			// The probe may have raced an identical chunk earlier in
			// this version; only a miss needs the in-order re-probe.
			_, dup = e.cache.lookupOne(item.fp, size)
		}
		if obsOn {
			d := time.Since(t0)
			lookupNS.Add(int64(d))
			mxLookup.Observe(uint64(d))
		}
		if !dup {
			cid, err := e.storeActive(item.fp, item.data)
			if err != nil {
				return err
			}
			e.cache.commitOne(item.fp, cid)
			e.activeByFP[item.fp] = cid
			stored += uint64(size)
			unique++
		}
		// The payload is either a duplicate or copied into the open
		// container by Add; either way the pooled buffer is done.
		e.pool.Release(item.data)
		rec.Append(item.fp, size, 0)
		return nil
	}
	reorder := make(map[int]hashedChunk)
	next := 0
	pipeline.Sink(g, hashed, func(c hashedChunk) error {
		reorder[c.seq] = c
		if e.reorderObserve != nil {
			e.reorderObserve(len(reorder))
		}
		for {
			item, ok := reorder[next]
			if !ok {
				return nil
			}
			delete(reorder, next)
			next++
			err := process(item)
			<-credits
			if err != nil {
				return err
			}
		}
	})
	if err := g.Wait(); err != nil {
		return backup.BackupReport{}, err
	}
	if err := e.sealOpenActive(); err != nil {
		return backup.BackupReport{}, err
	}
	// Async-commit barrier: every sealed container must be durable
	// before the recipe can name its chunks (commit-order step 1 → 2).
	// Clearing e.writer first returns the post-barrier maintenance
	// paths (migrate/merge/copy-on-write) to direct synchronous Puts —
	// they mutate sealed images, which may not happen while a writer
	// could still be reading them.
	if e.writer != nil {
		w := e.writer
		e.writer = nil
		if err := w.Barrier(); err != nil {
			return backup.BackupReport{}, err
		}
	}
	commitStart := time.Now()
	if err := e.cfg.Recipes.Put(rec); err != nil {
		return backup.BackupReport{}, err
	}
	if e.mx != nil {
		e.mx.RecipeCommitNS.Observe(uint64(time.Since(commitStart)))
	}

	// Post-version maintenance: classify cold chunks, migrate them to
	// archival containers, merge sparse active containers, and patch the
	// recipe leaving the window (§4.2, §4.3).
	migrateStart := time.Now()
	e.cache.EndVersion() // evicts the cold set from the cache
	e.version = v
	coldLocs, err := e.migrateCold(v)
	if err != nil {
		return backup.BackupReport{}, err
	}
	if e.mx != nil {
		e.mx.MigrateNS.Observe(uint64(time.Since(migrateStart)))
	}
	mergeStart := time.Now()
	if err := e.mergeSparseActives(); err != nil {
		return backup.BackupReport{}, err
	}
	if e.mx != nil {
		e.mx.MergeNS.Observe(uint64(time.Since(mergeStart)))
	}
	migrateDur := time.Since(migrateStart)

	recipeStart := time.Now()
	if err := e.patchDepartingRecipe(v, coldLocs); err != nil {
		return backup.BackupReport{}, err
	}
	recipeDur := time.Since(recipeStart)

	e.logicalBytes += logical
	e.storedBytes += stored
	stateStart := time.Now()
	if err := e.saveState(); err != nil {
		return backup.BackupReport{}, err
	}
	if e.mx != nil {
		e.mx.StateCommitNS.Observe(uint64(time.Since(stateStart)))
	}
	if err := e.flushPendingDeletes(); err != nil {
		return backup.BackupReport{}, err
	}
	if e.mx != nil {
		e.mx.Versions.Inc()
		e.mx.LogicalBytes.Add(logical)
		e.mx.StoredBytes.Add(stored)
		e.mx.Chunks.Add(uint64(chunks))
		e.mx.UniqueChunks.Add(uint64(unique))
		ps := e.pool.Stats()
		e.mx.PoolInUse.Set(ps.InUse)
		e.mx.PoolInUseBytes.Set(ps.InUseBytes)
		e.mx.PoolSlabs.Set(int64(ps.SlabAllocs))
	}
	if e.tracer != nil {
		// Chunking and fingerprinting run interleaved with the dedup
		// sink, so their cost is the per-item sum, not a wall interval.
		chunkAttrs := map[string]int64{"chunks": int64(chunks), "bytes": int64(logical)}
		if rep, ok := ch.(chunker.LaneReporter); ok {
			// Multi-lane chunking: chunkNS is the producer's wall time in
			// Next (stitch + copy + waiting on the slowest lane); the
			// lanes' aggregate scan work runs concurrently and is
			// reported separately so the span still sums correctly.
			var busy int64
			for _, st := range rep.LaneStats() {
				busy += st.BusyNS
			}
			chunkAttrs["lanes"] = int64(e.cfg.ChunkLanes)
			chunkAttrs["lane_busy_ns"] = busy
		}
		e.tracer.EmitStage("stage.chunking", span, start, time.Duration(chunkNS), chunkAttrs)
		e.tracer.EmitStage("stage.fingerprint", span, start, time.Duration(fpNS.Load()),
			map[string]int64{"chunks": int64(chunks), "bytes": int64(logical)})
		e.tracer.EmitStage("stage.index_lookup", span, start, time.Duration(lookupNS.Load()),
			map[string]int64{"chunks": int64(chunks)})
		span.SetAttr("version", int64(v))
		span.SetAttr("bytes", int64(logical))
		span.SetAttr("chunks", int64(chunks))
		span.SetAttr("unique", int64(unique))
	}
	statsAfter := e.cache.Stats()
	return backup.BackupReport{
		Version:      v,
		LogicalBytes: logical,
		StoredBytes:  stored,
		Chunks:       chunks,
		UniqueChunks: unique,
		IndexStats: index.Stats{
			Lookups:        statsAfter.Lookups - statsBefore.Lookups,
			DiskLookups:    0,
			CacheHits:      statsAfter.CacheHits - statsBefore.CacheHits,
			Duplicates:     statsAfter.Duplicates - statsBefore.Duplicates,
			Uniques:        statsAfter.Uniques - statsBefore.Uniques,
			DuplicateBytes: statsAfter.DuplicateBytes - statsBefore.DuplicateBytes,
			UniqueBytes:    statsAfter.UniqueBytes - statsBefore.UniqueBytes,
		},
		Duration:             time.Since(start),
		MaintenanceDuration:  migrateDur + recipeDur,
		MigrateDuration:      migrateDur,
		RecipeUpdateDuration: recipeDur,
	}, nil
}

// storeActive appends a unique chunk to the open active container.
func (e *Engine) storeActive(f fp.FP, data []byte) (container.ID, error) {
	if e.openActive != nil && !e.openActive.HasRoom(len(data)) {
		if err := e.sealOpenActive(); err != nil {
			return 0, err
		}
	}
	if e.openActive == nil {
		e.nextCID++
		e.openActive = container.NewWithCapacity(e.nextCID, e.cfg.ContainerCapacity)
	}
	if err := e.openActive.Add(f, data); err != nil {
		return 0, err
	}
	return e.openActive.ID(), nil
}

func (e *Engine) sealOpenActive() error {
	if e.openActive == nil {
		return nil
	}
	if e.openActive.Len() == 0 {
		e.openActive = nil
		return nil
	}
	e.activeContainers[e.openActive.ID()] = e.openActive
	if e.writer != nil {
		// Hand the sealed image to the background committer. From here
		// until the barrier the image is read-only: the engine does not
		// touch sealed actives during the hot loop, and the maintenance
		// paths that do mutate them run only after the barrier.
		if err := e.writer.Put(e.openActive); err != nil {
			return err
		}
		e.openActive = nil
		return nil
	}
	var t0 time.Time
	if e.mx != nil {
		t0 = time.Now()
	}
	if err := e.cfg.Store.Put(e.openActive); err != nil {
		return err
	}
	if e.mx != nil {
		e.mx.ContainerWriteNS.Observe(uint64(time.Since(t0)))
	}
	e.openActive = nil
	return nil
}

// migrateCold moves every chunk evicted from the fingerprint cache out of
// the active containers into fresh archival containers, preserving the
// active containers' internal order. It returns the cold chunks' new
// archival locations and registers the batch for §4.5 deletion. The cold
// set after version v is exactly the chunks last seen in version v−Window.
func (e *Engine) migrateCold(v int) (map[fp.FP]container.ID, error) {
	coldVersion := v - e.cfg.Window
	cold := make(map[fp.FP]container.ID) // fp → archival location
	if coldVersion < 1 {
		return cold, nil
	}
	// The cache has already evicted cold fingerprints; anything still in
	// activeByFP but no longer in the cache is cold.
	type coldChunk struct {
		f    fp.FP
		from container.ID
	}
	var victims []coldChunk
	for f, cid := range e.activeByFP {
		if _, hot := e.cache.cidOf(f); !hot {
			victims = append(victims, coldChunk{f: f, from: cid})
		}
	}
	if len(victims) == 0 {
		return cold, nil
	}
	// Stable order: by source container, then by offset within it, so
	// archival containers inherit the old versions' physical order.
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].from != victims[j].from {
			return victims[i].from < victims[j].from
		}
		ei, _ := e.activeContainers[victims[i].from].Entry(victims[i].f)
		ej, _ := e.activeContainers[victims[j].from].Entry(victims[j].f)
		return ei.Offset < ej.Offset
	})
	batch := &archivalBatch{}
	var archival *container.Container
	seal := func() error {
		if archival == nil || archival.Len() == 0 {
			return nil
		}
		if err := e.cfg.Store.Put(archival); err != nil {
			return err
		}
		if e.mx != nil {
			e.mx.ArchivalContainers.Inc()
			e.mx.MigratedChunks.Add(uint64(archival.Len()))
		}
		batch.containers = append(batch.containers, archival.ID())
		batch.bytes += uint64(archival.LiveSize())
		archival = nil
		return nil
	}
	dirty := make(map[container.ID]struct{})
	for _, vc := range victims {
		src, ok := e.activeContainers[vc.from]
		if !ok {
			return nil, fmt.Errorf("core: cold chunk %s references unknown active container %d", vc.f.Short(), vc.from)
		}
		data, err := src.Get(vc.f)
		if err != nil {
			return nil, fmt.Errorf("core: migrate %s: %w", vc.f.Short(), err)
		}
		if archival != nil && !archival.HasRoom(len(data)) {
			if err := seal(); err != nil {
				return nil, err
			}
		}
		if archival == nil {
			e.nextCID++
			archival = container.NewWithCapacity(e.nextCID, e.cfg.ContainerCapacity)
		}
		if err := archival.Add(vc.f, data); err != nil {
			return nil, err
		}
		if err := src.Remove(vc.f); err != nil {
			return nil, err
		}
		dirty[vc.from] = struct{}{}
		cold[vc.f] = archival.ID()
		delete(e.activeByFP, vc.f)
	}
	if err := seal(); err != nil {
		return nil, err
	}
	// Re-persist mutated active containers copy-on-write: the surviving
	// hot chunks go to the store under a fresh CID, and the superseded
	// image is only deleted after the state file commits. Re-Putting in
	// place would overwrite the image the previous (still-committed)
	// state references, making a crash between here and the state write
	// unrecoverable. Sorted order keeps the mutating-op sequence
	// deterministic for fault injection.
	dirtyIDs := make([]container.ID, 0, len(dirty))
	for cid := range dirty {
		dirtyIDs = append(dirtyIDs, cid)
	}
	sort.Slice(dirtyIDs, func(i, j int) bool { return dirtyIDs[i] < dirtyIDs[j] })
	for _, cid := range dirtyIDs {
		src := e.activeContainers[cid]
		delete(e.activeContainers, cid)
		e.pendingDeletes = append(e.pendingDeletes, cid)
		if src.Len() == 0 {
			continue
		}
		e.nextCID++
		src.SetID(e.nextCID)
		e.activeContainers[e.nextCID] = src
		for _, f := range src.Fingerprints() {
			e.activeByFP[f] = e.nextCID
			e.cache.setCID(f, e.nextCID)
		}
		if err := e.cfg.Store.Put(src); err != nil {
			return nil, err
		}
	}
	e.batches[coldVersion] = batch
	return cold, nil
}

// mergeSparseActives compacts active containers whose utilization fell
// below the merge threshold, packing their live chunks into fresh
// containers (§4.2, Figure 6) and updating the fingerprint cache's
// locations. Recipes are unaffected: active chunks are recorded as CID 0
// and resolve through the cache.
func (e *Engine) mergeSparseActives() error {
	var sparse []*container.Container
	for _, c := range e.activeContainers {
		if c.Utilization() < e.cfg.MergeUtilization {
			sparse = append(sparse, c)
		}
	}
	if len(sparse) < 2 {
		return nil
	}
	sort.Slice(sparse, func(i, j int) bool { return sparse[i].ID() < sparse[j].ID() })
	var merged *container.Container
	seal := func() error {
		if merged == nil || merged.Len() == 0 {
			return nil
		}
		e.activeContainers[merged.ID()] = merged
		if err := e.cfg.Store.Put(merged); err != nil {
			return err
		}
		merged = nil
		return nil
	}
	for _, src := range sparse {
		for _, f := range src.Fingerprints() {
			data, err := src.Get(f)
			if err != nil {
				return err
			}
			if merged != nil && !merged.HasRoom(len(data)) {
				if err := seal(); err != nil {
					return err
				}
			}
			if merged == nil {
				e.nextCID++
				merged = container.NewWithCapacity(e.nextCID, e.cfg.ContainerCapacity)
			}
			if err := merged.Add(f, data); err != nil {
				return err
			}
			e.activeByFP[f] = merged.ID()
			e.cache.setCID(f, merged.ID())
		}
		delete(e.activeContainers, src.ID())
		// Deferred: the source image may be referenced by the previous
		// committed state; it is deleted only after the next state save.
		e.pendingDeletes = append(e.pendingDeletes, src.ID())
	}
	return seal()
}

// flushPendingDeletes removes container images superseded during the
// operation. Called only after saveState commits — the new state no
// longer references them, so a crash mid-flush merely leaves orphans
// for the startup sweep.
func (e *Engine) flushPendingDeletes() error {
	for i, cid := range e.pendingDeletes {
		if err := e.cfg.Store.Delete(cid); err != nil {
			e.pendingDeletes = e.pendingDeletes[i:]
			return err
		}
	}
	e.pendingDeletes = nil
	return nil
}

// patchDepartingRecipe rewrites the recipe of the version leaving the
// cache window (§4.3, Figure 7): cold chunks get their archival container
// ID; still-hot chunks get a forward pointer to the most recent version
// containing them. Only this one recipe is touched per backup — the
// bounded update cost Figure 12 measures.
func (e *Engine) patchDepartingRecipe(v int, coldLocs map[fp.FP]container.ID) error {
	departing := v - e.cfg.Window
	if departing < 1 {
		return nil
	}
	present, err := e.cfg.Recipes.Has(departing)
	if err != nil {
		return err
	}
	if !present {
		return nil
	}
	rec, err := e.cfg.Recipes.Get(departing)
	if err != nil {
		return err
	}
	changed := false
	for i := range rec.Entries {
		entry := &rec.Entries[i]
		if entry.CID != 0 {
			continue
		}
		if cid, ok := coldLocs[entry.FP]; ok {
			entry.CID = int32(cid)
			changed = true
			continue
		}
		if seen, ok := e.cache.lastSeenOf(entry.FP); ok {
			entry.CID = -int32(seen)
			changed = true
			continue
		}
		return fmt.Errorf("core: recipe v%d chunk %s neither cold nor hot", departing, entry.FP.Short())
	}
	if !changed {
		return nil
	}
	return e.cfg.Recipes.Put(rec)
}

// Restore implements backup.Engine (§4.4). Negative CIDs are resolved by
// flattening the recipe chain (Algorithm 1, timed separately); CID-0 and
// forward-pointing entries that end at hot chunks resolve through the
// fingerprint cache into active containers.
func (e *Engine) Restore(ctx context.Context, version int, w io.Writer) (backup.RestoreReport, error) {
	return e.restoreWith(ctx, version, w, restorecache.StoreFetcher(e.cfg.Store))
}

// restoreWith is Restore with an explicit chunk source, letting
// VerifyRestore interpose integrity checking.
func (e *Engine) restoreWith(ctx context.Context, version int, w io.Writer, fetch restorecache.Fetcher) (rep backup.RestoreReport, retErr error) {
	start := time.Now()
	obsOn := e.rmx != nil || e.tracer != nil
	span := e.tracer.Start("restore", nil)
	// Deferred so every early return — recipe read failure, flatten
	// failure, an unresolved chunk, the cache's restore error — still
	// closes the span; failures carry an error attr.
	defer func() {
		if retErr != nil {
			span.SetAttr("error", 1)
		}
		span.End()
	}()
	rec, err := e.cfg.Recipes.Get(version)
	if err != nil {
		return backup.RestoreReport{}, err
	}
	if obsOn {
		d := time.Since(start)
		if e.rmx != nil {
			e.rmx.RecipeReadNS.Observe(uint64(d))
		}
		e.tracer.EmitStage("recipe.read", span, start, d, map[string]int64{"version": int64(version)})
	}
	var flattenDur time.Duration
	if hasForward(rec) {
		flattenStart := time.Now()
		if err := e.FlattenRecipes(version); err != nil {
			return backup.RestoreReport{}, err
		}
		flattenDur = time.Since(flattenStart)
		if obsOn {
			if e.rmx != nil {
				e.rmx.FlattenNS.Observe(uint64(flattenDur))
			}
			e.tracer.EmitStage("recipe.flatten", span, flattenStart, flattenDur,
				map[string]int64{"version": int64(version)})
		}
		rec, err = e.cfg.Recipes.Get(version)
		if err != nil {
			return backup.RestoreReport{}, err
		}
	}
	resolved := make([]recipe.Entry, len(rec.Entries))
	for i, entry := range rec.Entries {
		if entry.CID > 0 {
			resolved[i] = entry
			continue
		}
		// CID 0 or a forward pointer that still ends on a hot chunk: the
		// chunk lives in an active container.
		cid, ok := e.activeByFP[entry.FP]
		if !ok {
			return backup.RestoreReport{}, fmt.Errorf(
				"core: restore v%d: chunk %s unresolved (CID %d)", version, entry.FP.Short(), entry.CID)
		}
		resolved[i] = recipe.Entry{FP: entry.FP, Size: entry.Size, CID: int32(cid)}
	}
	// The observed fetcher sits *above* the prefetch layer — the same
	// position as the policy's countingFetcher — so the trace's
	// container.fetch span count, the registry counter and the run's
	// Stats.ContainerReads are equal by construction. The prefetcher's
	// fetch stage runs RestoreWorkers wide (bounded by the window), and
	// with RestoreWorkers > 1 the policy's output is routed through the
	// parallel out-of-order assembler; neither changes which containers
	// the policy requests, so the identity holds at any worker count.
	fetch, done := restorecache.MaybePrefetchParallel(fetch, resolved, e.cfg.PrefetchDepth, e.cfg.RestoreWorkers, e.rmx)
	defer done()
	fetch = restorecache.ObserveFetcher(fetch, e.rmx, e.tracer, span)
	out := w
	if e.cfg.RestoreWorkers > 1 {
		out = restorecache.NewParallelWriter(w, restorecache.ParallelOptions{
			Workers: e.cfg.RestoreWorkers,
			Metrics: e.rmx,
			Tracer:  e.tracer,
			Span:    span,
		})
	}
	stats, err := e.cfg.RestoreCache.Restore(ctx, resolved, fetch, out)
	if err != nil {
		return backup.RestoreReport{}, err
	}
	if e.rmx != nil {
		e.rmx.Restores.Inc()
		e.rmx.BytesRestored.Add(stats.BytesRestored)
		e.rmx.CacheHits.Add(stats.CacheHits)
		e.rmx.Chunks.Add(stats.Chunks)
	}
	span.SetAttr("version", int64(version))
	span.SetAttr("bytes", int64(stats.BytesRestored))
	span.SetAttr("container_reads", int64(stats.ContainerReads))
	return backup.RestoreReport{
		Version:              version,
		Stats:                stats,
		Duration:             time.Since(start),
		RecipeUpdateDuration: flattenDur,
	}, nil
}

// VerifyRestore restores a version into w while recomputing every fetched
// chunk's fingerprint (a scrub-on-read). It costs one hash per stored
// chunk of every container touched, on top of the normal restore.
func (e *Engine) VerifyRestore(ctx context.Context, version int, w io.Writer) (backup.RestoreReport, error) {
	return e.restoreWith(ctx, version, w, restorecache.NewVerifyingFetcher(restorecache.StoreFetcher(e.cfg.Store)))
}

func hasForward(rec *recipe.Recipe) bool {
	for _, entry := range rec.Entries {
		if entry.CID < 0 {
			return true
		}
	}
	return false
}

// Delete implements backup.Engine (§4.5). Expired versions must be
// deleted oldest-first; the chunks exclusive to the expired version are
// exactly the archival batch recorded when they went cold, so deletion is
// dropping those containers plus the recipe — no reference counting, no
// chunk detection, no garbage collection.
//
// Durable commit order — the reverse of Backup's: recipe, then state,
// then containers. A crash after the recipe removal leaves unreferenced
// containers (wasted space the startup recovery reclaims); deleting
// containers first would leave a recipe pointing at missing chunks —
// data loss for a version still listed as restorable.
func (e *Engine) Delete(version int) (backup.DeleteReport, error) {
	start := time.Now()
	report := backup.DeleteReport{Version: version}
	versions, err := e.cfg.Recipes.Versions()
	if err != nil {
		return report, err
	}
	if len(versions) == 0 || versions[0] != version {
		return report, fmt.Errorf("core: delete v%d: only the oldest version (%v) can expire", version, versions)
	}
	if version > e.version-e.cfg.Window {
		return report, fmt.Errorf("core: delete v%d: version still inside the cache window", version)
	}
	batch := e.batches[version]
	if err := e.cfg.Recipes.Delete(version); err != nil {
		return report, err
	}
	if batch != nil {
		report.BytesReclaimed = batch.bytes
		e.storedBytes -= batch.bytes
		delete(e.batches, version)
	}
	if err := e.saveState(); err != nil {
		return report, err
	}
	if batch != nil {
		for _, cid := range batch.containers {
			if err := e.cfg.Store.Delete(cid); err != nil {
				return report, err
			}
			report.ContainersDeleted++
		}
	}
	report.Duration = time.Since(start)
	return report, nil
}

// Versions implements backup.Engine. An enumeration failure yields an
// empty list; Stats().Degraded carries the underlying error.
func (e *Engine) Versions() []int {
	vs, err := e.cfg.Recipes.Versions()
	if err != nil {
		return nil
	}
	return vs
}

// Stats implements backup.Engine. Fields that cannot be computed are
// left zero and named in Degraded.
func (e *Engine) Stats() backup.Stats {
	s := backup.Stats{
		LogicalBytes:  e.logicalBytes,
		StoredBytes:   e.storedBytes,
		IndexStats:    e.cache.Stats(),
		IndexMemBytes: e.cache.MemoryBytes(),
	}
	if vs, err := e.cfg.Recipes.Versions(); err != nil {
		s.Degraded = append(s.Degraded, fmt.Sprintf("versions: %v", err))
	} else {
		s.Versions = len(vs)
	}
	if n, err := e.cfg.Store.Len(); err != nil {
		s.Degraded = append(s.Degraded, fmt.Sprintf("containers: %v", err))
	} else {
		s.Containers = n
	}
	s.Degraded = append(s.Degraded, e.scrubDamage...)
	if e.scrubOverflow > 0 {
		s.Degraded = append(s.Degraded, fmt.Sprintf("scrub: %d more corrupt containers (list truncated)", e.scrubOverflow))
	}
	return s
}

// TransientCacheBytes reports the current fingerprint-cache footprint.
func (e *Engine) TransientCacheBytes() int64 { return e.cache.TransientBytes() }

// ActiveContainers returns the number of active containers (test hook).
func (e *Engine) ActiveContainers() int { return len(e.activeContainers) }
