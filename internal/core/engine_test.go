package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"hidestore/internal/backup/backuptest"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
)

// newTestEngine builds a HiDeStore engine over in-memory stores with small
// containers so tests exercise rotation, migration and merging.
func newTestEngine(t testing.TB, window int) (*Engine, *container.MemStore, *recipe.MemStore) {
	t.Helper()
	store := container.NewMemStore()
	recipes := recipe.NewMemStore()
	e, err := New(Config{
		Store:             store,
		Recipes:           recipes,
		ContainerCapacity: 64 << 10,
		Window:            window,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
		RestoreCache:      restorecache.NewFAA(1 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, store, recipes
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing Store should fail")
	}
	if _, err := New(Config{Store: container.NewMemStore()}); err == nil {
		t.Fatal("missing Recipes should fail")
	}
	e, err := New(Config{Store: container.NewMemStore(), Recipes: recipe.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Window != 1 || e.cfg.MergeUtilization != 0.5 {
		t.Fatalf("defaults not applied: %+v", e.cfg)
	}
}

// TestBackupRestoreAllVersions is the core correctness test: every stored
// version restores byte-for-byte, including old versions whose chunks have
// migrated through archival containers and recipe chains.
func TestBackupRestoreAllVersions(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(8, 0))
	backuptest.BackupAll(t, e, versions)
	backuptest.CheckRestoreAll(t, e, versions)
}

// TestBackupRestoreWindow2 exercises the macos-style two-version window
// with flapping chunks.
func TestBackupRestoreWindow2(t *testing.T) {
	e, _, _ := newTestEngine(t, 2)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(8, 0.05))
	backuptest.BackupAll(t, e, versions)
	backuptest.CheckRestoreAll(t, e, versions)
}

// TestWindow2CatchesFlappingChunks compares dedup ratios: with flapping
// chunks, window 2 must find strictly more duplicates than window 1 (the
// §4.1 macos argument for the extra hash table).
func TestWindow2CatchesFlappingChunks(t *testing.T) {
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(10, 0.10))
	var stored [3]uint64
	for _, window := range []int{1, 2} {
		e, _, _ := newTestEngine(t, window)
		backuptest.BackupAll(t, e, versions)
		stored[window] = e.Stats().StoredBytes
	}
	if stored[2] >= stored[1] {
		t.Fatalf("window 2 stored %d bytes, window 1 stored %d: wider window should dedup flapping chunks",
			stored[2], stored[1])
	}
}

func TestZeroDiskLookups(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(5, 0))
	reports := backuptest.BackupAll(t, e, versions)
	for _, rep := range reports {
		if rep.IndexStats.DiskLookups != 0 {
			t.Fatalf("version %d performed %d disk lookups; HiDeStore must do none",
				rep.Version, rep.IndexStats.DiskLookups)
		}
	}
	if e.Stats().IndexMemBytes != 0 {
		t.Fatal("HiDeStore should report zero persistent index memory")
	}
	if e.TransientCacheBytes() == 0 {
		t.Fatal("transient fingerprint cache should be non-empty")
	}
}

func TestAdjacentVersionDedup(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(6, 0))
	reports := backuptest.BackupAll(t, e, versions)
	// Version 1 is all-unique; later versions should be mostly duplicate.
	if reports[0].DedupRatio() != 0 {
		t.Fatalf("version 1 dedup ratio %.2f, want 0", reports[0].DedupRatio())
	}
	for _, rep := range reports[1:] {
		if rep.DedupRatio() < 0.5 {
			t.Fatalf("version %d dedup ratio %.2f too low; adjacent redundancy should dominate",
				rep.Version, rep.DedupRatio())
		}
	}
}

// TestRecipeChainShapes inspects the three CID kinds across the recipe
// chain after several versions (§4.3, Figure 7).
func TestRecipeChainShapes(t *testing.T) {
	e, _, recipes := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(6, 0))
	backuptest.BackupAll(t, e, versions)
	// The newest recipe must be all zeros (everything still active).
	newest, err := recipes.Get(6)
	if err != nil {
		t.Fatal(err)
	}
	for i, entry := range newest.Entries {
		if entry.CID != 0 {
			t.Fatalf("newest recipe entry %d has CID %d, want 0", i, entry.CID)
		}
	}
	// Older recipes must contain no zeros: each entry is archival or a
	// forward pointer.
	var sawArchival, sawForward bool
	for v := 1; v <= 5; v++ {
		rec, err := recipes.Get(v)
		if err != nil {
			t.Fatal(err)
		}
		for i, entry := range rec.Entries {
			switch {
			case entry.CID == 0:
				t.Fatalf("recipe v%d entry %d still zero after leaving the window", v, i)
			case entry.CID > 0:
				sawArchival = true
			default:
				if fwd, _ := entry.Forward(); fwd <= v {
					t.Fatalf("recipe v%d entry %d forward pointer %d not newer", v, i, fwd)
				}
				sawForward = true
			}
		}
	}
	if !sawArchival || !sawForward {
		t.Fatalf("expected both archival and forward entries (archival=%v forward=%v)",
			sawArchival, sawForward)
	}
}

// TestFlattenRecipes checks Algorithm 1: after flattening, every forward
// pointer that chains to an archived chunk is replaced by its archival
// container, and restores still work.
func TestFlattenRecipes(t *testing.T) {
	e, _, recipes := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(7, 0))
	backuptest.BackupAll(t, e, versions)
	if err := e.FlattenRecipes(1); err != nil {
		t.Fatal(err)
	}
	// Any remaining negative CID must point at a chunk that is still hot
	// (resolvable via the active map).
	vs, err := recipes.Versions()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		rec, err := recipes.Get(v)
		if err != nil {
			t.Fatal(err)
		}
		for i, entry := range rec.Entries {
			if entry.CID >= 0 {
				continue
			}
			if _, hot := e.activeByFP[entry.FP]; !hot {
				t.Fatalf("recipe v%d entry %d unresolved after flatten and not active", v, i)
			}
		}
	}
	// Flattening must be idempotent and restores must still be exact.
	if err := e.FlattenRecipes(1); err != nil {
		t.Fatal(err)
	}
	backuptest.CheckRestoreAll(t, e, versions)
}

// TestDeleteOldestVersions deletes expired versions and verifies space is
// reclaimed with zero scanning and the remaining versions stay intact.
func TestDeleteOldestVersions(t *testing.T) {
	e, store, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(8, 0))
	backuptest.BackupAll(t, e, versions)
	containersBefore, err := store.Len()
	if err != nil {
		t.Fatal(err)
	}
	storedBefore := e.Stats().StoredBytes

	rep, err := e.Delete(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksScanned != 0 {
		t.Fatalf("HiDeStore deletion scanned %d chunks, want 0 (§5.5)", rep.ChunksScanned)
	}
	if rep.ContainersRewritten != 0 {
		t.Fatalf("HiDeStore deletion rewrote %d containers, want 0", rep.ContainersRewritten)
	}
	if rep.ContainersDeleted == 0 || rep.BytesReclaimed == 0 {
		t.Fatalf("deletion reclaimed nothing: %+v", rep)
	}
	containersAfter, err := store.Len()
	if err != nil {
		t.Fatal(err)
	}
	if containersAfter >= containersBefore {
		t.Fatal("container count did not drop")
	}
	if e.Stats().StoredBytes >= storedBefore {
		t.Fatal("stored bytes did not drop")
	}
	// Remaining versions still restore exactly.
	for v := 2; v <= 8; v++ {
		backuptest.CheckRestoreOne(t, e, v, versions[v-1])
	}
	// Deleting out of order is refused.
	if _, err := e.Delete(5); err == nil {
		t.Fatal("non-oldest delete should fail")
	}
	// Delete the rest of the expired range.
	for v := 2; v <= 5; v++ {
		if _, err := e.Delete(v); err != nil {
			t.Fatalf("delete v%d: %v", v, err)
		}
	}
	for v := 6; v <= 8; v++ {
		backuptest.CheckRestoreOne(t, e, v, versions[v-1])
	}
}

func TestDeleteInsideWindowRefused(t *testing.T) {
	e, _, _ := newTestEngine(t, 2)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(3, 0))
	backuptest.BackupAll(t, e, versions)
	// Version 2 is within the window (3 - 2 = 1 < 2).
	if _, err := e.Delete(2); err == nil {
		t.Fatal("deleting a version inside the cache window should fail")
	}
}

// TestActiveContainerMerging drives enough churn that sparse active
// containers appear and verifies they get merged (the Figure 6 compaction).
func TestActiveContainerMerging(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(10, 0))
	backuptest.BackupAll(t, e, versions)
	// After maintenance, no two active containers should both be sparse:
	// merging packs them together.
	sparse := 0
	for _, c := range e.activeContainers {
		if c.Utilization() < e.cfg.MergeUtilization {
			sparse++
		}
	}
	if sparse > 1 {
		t.Fatalf("%d sparse active containers remain; merging should leave at most one", sparse)
	}
	backuptest.CheckRestoreAll(t, e, versions)
}

// TestNewVersionPhysicalLocality is the paper's headline property: the
// newest version's chunks occupy (almost) only active containers, and its
// restore reads barely more containers than the optimal count.
func TestNewVersionPhysicalLocality(t *testing.T) {
	e, store, recipes := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(10, 0))
	backuptest.BackupAll(t, e, versions)

	newest := len(versions)
	rec, err := recipes.Get(newest)
	if err != nil {
		t.Fatal(err)
	}
	optimal := float64(rec.TotalBytes()) / float64(e.cfg.ContainerCapacity)

	store.ResetStats()
	var buf bytes.Buffer
	rep, err := e.Restore(context.Background(), newest, &buf)
	if err != nil {
		t.Fatal(err)
	}
	reads := float64(rep.Stats.ContainerReads)
	if reads > 3*optimal+2 {
		t.Fatalf("newest version needed %.0f container reads; optimal is %.1f — physical locality lost",
			reads, optimal)
	}
}

func TestRestoreUnknownVersion(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	var buf bytes.Buffer
	if _, err := e.Restore(context.Background(), 9, &buf); err == nil {
		t.Fatal("restoring a missing version should fail")
	}
}

func TestDeleteUnknownVersion(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	if _, err := e.Delete(1); err == nil {
		t.Fatal("deleting from an empty engine should fail")
	}
}

func TestVersionsListing(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(3, 0))
	backuptest.BackupAll(t, e, versions)
	got := e.Versions()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Versions = %v", got)
	}
	st := e.Stats()
	if st.Versions != 3 || st.LogicalBytes == 0 || st.StoredBytes == 0 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.DedupRatio() <= 0 {
		t.Fatalf("DedupRatio = %v, want positive", st.DedupRatio())
	}
}

// TestMaintenanceTimingsReported checks the Figure 12 instrumentation.
func TestMaintenanceTimingsReported(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(4, 0))
	reports := backuptest.BackupAll(t, e, versions)
	// From version 2 on, maintenance migrates cold chunks and patches the
	// departing recipe; durations must be recorded.
	for _, rep := range reports[1:] {
		if rep.MaintenanceDuration <= 0 {
			t.Fatalf("version %d maintenance duration not recorded", rep.Version)
		}
		if rep.MaintenanceDuration != rep.MigrateDuration+rep.RecipeUpdateDuration {
			t.Fatalf("version %d maintenance parts don't add up", rep.Version)
		}
	}
}

// TestFileBackedStores runs a full cycle against real files.
func TestFileBackedStores(t *testing.T) {
	store, err := container.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recipes, err := recipe.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Store:             store,
		Recipes:           recipes,
		ContainerCapacity: 64 << 10,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(5, 0))
	backuptest.BackupAll(t, e, versions)
	backuptest.CheckRestoreAll(t, e, versions)
	if _, err := e.Delete(1); err != nil {
		t.Fatal(err)
	}
	for v := 2; v <= 5; v++ {
		backuptest.CheckRestoreOne(t, e, v, versions[v-1])
	}
}

func TestEmptyVersion(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	rep, err := e.Backup(context.Background(), strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks != 0 || rep.LogicalBytes != 0 {
		t.Fatalf("empty version report: %+v", rep)
	}
	var buf bytes.Buffer
	if _, err := e.Restore(context.Background(), 1, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("empty version should restore to empty bytes")
	}
}
