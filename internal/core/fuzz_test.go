package core

import (
	"testing"

	"hidestore/internal/backup/backuptest"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/recipe"
)

// FuzzUnmarshalState hardens the engine-state decoder: arbitrary bytes
// must never panic and must either be rejected or produce a loadable
// state.
func FuzzUnmarshalState(f *testing.F) {
	store := container.NewMemStore()
	recipes := recipe.NewMemStore()
	e, err := New(Config{
		Store:             store,
		Recipes:           recipes,
		ContainerCapacity: 64 << 10,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
	})
	if err != nil {
		f.Fatal(err)
	}
	versions := backuptest.Materialize(f, backuptest.SmallWorkload(3, 0))
	backuptest.BackupAll(f, e, versions)
	f.Add(e.marshalState())
	f.Add([]byte{})
	f.Add(e.marshalState()[:16])
	f.Fuzz(func(t *testing.T, data []byte) {
		twin, err := New(Config{
			Store:             store,
			Recipes:           recipes,
			ContainerCapacity: 64 << 10,
			ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := twin.unmarshalState(data); err != nil {
			return
		}
		// Accepted state must re-marshal without panicking.
		_ = twin.marshalState()
	})
}
