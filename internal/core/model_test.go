package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// TestModelRandomOperations drives the engine with randomized operation
// sequences — backup (mutated stream), restore (any live version), delete
// (oldest, when legal), flatten, integrity check — against a trivial
// model: a map from version number to its original bytes. Every restore
// must reproduce the model's bytes exactly and every check must come back
// clean, whatever the interleaving.
func TestModelRandomOperations(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runModel(t, seed, 120)
		})
	}
}

// mutate produces the next version's bytes from the previous.
func mutate(rng *rand.Rand, prev []byte) []byte {
	out := append([]byte(nil), prev...)
	// Overwrite a few random regions with fresh bytes.
	for i := 0; i < 1+rng.Intn(3); i++ {
		if len(out) < 256 {
			break
		}
		off := rng.Intn(len(out) - 128)
		n := 64 + rng.Intn(64)
		if off+n > len(out) {
			n = len(out) - off
		}
		rng.Read(out[off : off+n])
	}
	// Occasionally insert a region (shifts content).
	if rng.Intn(2) == 0 {
		insert := make([]byte, 256+rng.Intn(1024))
		rng.Read(insert)
		off := rng.Intn(len(out) + 1)
		out = append(out[:off], append(insert, out[off:]...)...)
	}
	// Occasionally delete a region.
	if rng.Intn(3) == 0 && len(out) > 4096 {
		off := rng.Intn(len(out) - 2048)
		n := 256 + rng.Intn(1024)
		out = append(out[:off], out[off+n:]...)
	}
	return out
}

func runModel(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e, _, _ := newTestEngine(t, 1)
	ctx := context.Background()

	model := make(map[int][]byte) // live versions
	current := make([]byte, 64<<10)
	rng.Read(current)
	nextVersion := 1
	oldest := 1

	backupOne := func() {
		rep, err := e.Backup(ctx, bytes.NewReader(current))
		if err != nil {
			t.Fatalf("seed %d: backup: %v", seed, err)
		}
		if rep.Version != nextVersion {
			t.Fatalf("seed %d: version %d, want %d", seed, rep.Version, nextVersion)
		}
		model[nextVersion] = append([]byte(nil), current...)
		nextVersion++
		current = mutate(rng, current)
	}
	backupOne() // ensure at least one version exists

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // backup
			backupOne()
		case op < 7: // restore a random live version
			if len(model) == 0 {
				continue
			}
			versions := e.Versions()
			v := versions[rng.Intn(len(versions))]
			var buf bytes.Buffer
			if _, err := e.Restore(ctx, v, &buf); err != nil {
				t.Fatalf("seed %d step %d: restore v%d: %v", seed, step, v, err)
			}
			if !bytes.Equal(buf.Bytes(), model[v]) {
				t.Fatalf("seed %d step %d: v%d bytes differ from model", seed, step, v)
			}
		case op < 8: // delete the oldest version when legal
			if oldest > nextVersion-1-e.cfg.Window || len(model) < 2 {
				continue
			}
			if _, err := e.Delete(oldest); err != nil {
				t.Fatalf("seed %d step %d: delete v%d: %v", seed, step, oldest, err)
			}
			delete(model, oldest)
			oldest++
		case op < 9: // flatten
			if err := e.FlattenRecipes(oldest); err != nil {
				t.Fatalf("seed %d step %d: flatten: %v", seed, step, err)
			}
		default: // integrity check
			rep, err := e.Check()
			if err != nil {
				t.Fatalf("seed %d step %d: check: %v", seed, step, err)
			}
			if !rep.OK() {
				t.Fatalf("seed %d step %d: store unhealthy: %v", seed, step, rep.Problems)
			}
		}
	}
	// Final sweep: everything still restores and the store is healthy.
	for v, want := range model {
		var buf bytes.Buffer
		if _, err := e.Restore(ctx, v, &buf); err != nil {
			t.Fatalf("seed %d final: restore v%d: %v", seed, v, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("seed %d final: v%d differs", seed, v)
		}
	}
	rep, err := e.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("seed %d final: %v", seed, rep.Problems)
	}
}
