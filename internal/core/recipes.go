package core

import (
	"fmt"

	"hidestore/internal/fp"
)

// FlattenRecipes implements the paper's Algorithm 1: it walks the recipe
// chain from the newest version down to floor, carrying a hash table of
// chunk → archival-container mappings harvested from newer recipes, and
// replaces forward pointers (negative CIDs) with the archival container
// IDs they chain to. Forward pointers whose chunks are still hot remain in
// place — those chunks live in active containers and resolve through the
// fingerprint cache at restore time.
//
// The paper runs this offline, periodically or right before restoring an
// old version; the engine's Restore does the same and reports the time
// spent as RecipeUpdateDuration.
func (e *Engine) FlattenRecipes(floor int) error {
	versions, err := e.cfg.Recipes.Versions()
	if err != nil {
		return fmt.Errorf("core: flatten: %w", err)
	}
	if len(versions) == 0 {
		return nil
	}
	if floor < versions[0] {
		floor = versions[0]
	}
	// T accumulates fp → archival CID while walking newest → oldest. An
	// older recipe's mapping overwrites a newer one's, so when recipe
	// R[u] is processed, T[f] holds the mapping from the oldest recipe
	// newer than u that archived f — exactly the target its forward
	// pointer chains to. (A chunk can be archived more than once if it
	// reappears after leaving the cache window; all copies are
	// byte-identical, so any resolution restores correct data.)
	table := make(map[fp.FP]int32)
	for i := len(versions) - 1; i >= 0; i-- {
		v := versions[i]
		if v < floor {
			break
		}
		rec, err := e.cfg.Recipes.Get(v)
		if err != nil {
			return fmt.Errorf("core: flatten: %w", err)
		}
		changed := false
		for j := range rec.Entries {
			entry := &rec.Entries[j]
			if entry.CID >= 0 {
				continue
			}
			if cid, ok := table[entry.FP]; ok {
				entry.CID = cid
				changed = true
			}
		}
		if changed {
			if err := e.cfg.Recipes.Put(rec); err != nil {
				return fmt.Errorf("core: flatten: %w", err)
			}
		}
		for _, entry := range rec.Entries {
			if entry.CID > 0 {
				table[entry.FP] = entry.CID
			}
		}
	}
	return nil
}
