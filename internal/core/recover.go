package core

import (
	"errors"
	"fmt"
	"sort"

	"hidestore/internal/container"
)

// recoverStartup reconciles the on-disk stores with the committed state
// after a crash. It runs at New whenever a state file was loaded, and
// restores three invariants, in order:
//
//  1. Rollback: recipes newer than the state anchor are removed — the
//     crash hit a Backup between its recipe write and its state commit,
//     so the dedup bookkeeping for those versions is lost and their
//     CID-0 entries can never resolve again. Everything the committed
//     state references is still on disk (commit order: containers →
//     recipe → state, with superseded images deleted only post-state),
//     so the previous versions remain intact.
//  2. Redo: a recorded deletion batch whose recipe is gone is a Delete
//     that crashed between its recipe removal (the commit point) and
//     its state save — finish it by dropping the batch's containers.
//  3. Sweep: container images nothing references (not an active
//     container, not batch-owned, not named by any recipe) are crash
//     debris — copied-on-write predecessors, rolled-back migrations,
//     half-flushed deferred deletes — and are removed.
func (e *Engine) recoverStartup() error {
	versions, err := e.cfg.Recipes.Versions()
	if err != nil {
		return fmt.Errorf("core: recovery: %w", err)
	}
	repaired := false
	committed := versions[:0]
	rolledBack := false
	for _, v := range versions {
		if v > e.version {
			if err := e.cfg.Recipes.Delete(v); err != nil {
				return fmt.Errorf("core: recovery: rollback recipe v%d: %w", v, err)
			}
			if e.rcv != nil {
				e.rcv.Rollbacks.Inc()
			}
			e.tracer.Event("recovery.rollback", nil, map[string]int64{"version": int64(v)})
			repaired = true
			rolledBack = true
			continue
		}
		committed = append(committed, v)
	}
	if rolledBack {
		if err := e.resetDanglingForwards(committed); err != nil {
			return err
		}
	}

	present := make(map[int]bool, len(committed))
	for _, v := range committed {
		present[v] = true
	}
	batchVersions := make([]int, 0, len(e.batches))
	for v := range e.batches {
		batchVersions = append(batchVersions, v)
	}
	sort.Ints(batchVersions)
	stateChanged := false
	for _, v := range batchVersions {
		if present[v] {
			continue
		}
		for _, cid := range e.batches[v].containers {
			if err := e.cfg.Store.Delete(cid); err != nil && !errors.Is(err, container.ErrNotFound) {
				return fmt.Errorf("core: recovery: redo delete v%d: %w", v, err)
			}
		}
		e.storedBytes -= e.batches[v].bytes
		delete(e.batches, v)
		if e.rcv != nil {
			e.rcv.RedoDeletes.Inc()
		}
		e.tracer.Event("recovery.redo_delete", nil, map[string]int64{"version": int64(v)})
		repaired = true
		stateChanged = true
	}

	swept, err := e.sweepOrphans(committed)
	if err != nil {
		return err
	}
	if swept > 0 {
		repaired = true
	}
	if !repaired && e.rcv != nil {
		e.rcv.StartupsClean.Inc()
	}
	if stateChanged {
		return e.saveState()
	}
	return nil
}

// resetDanglingForwards repairs recipes the crashed backup patched in
// place. The departing recipe is rewritten during a backup — before the
// state commit — giving its still-hot chunks forward pointers into the
// version being backed up. Rolling that version back strands those
// pointers, so they are reset to CID 0: every such chunk was hot when
// the committed state was saved, and the reloaded fingerprint cache
// resolves CID 0 entries exactly as the pre-patch recipe did. (Archival
// CIDs the same patch introduced stay: their containers were written
// before the patch, and the orphan sweep keeps referenced images.)
func (e *Engine) resetDanglingForwards(versions []int) error {
	for _, v := range versions {
		rec, err := e.cfg.Recipes.Get(v)
		if err != nil {
			// An unreadable recipe cannot be repaired here; fsck will
			// report it. Leave it for the operator.
			continue
		}
		changed := false
		for i := range rec.Entries {
			if cid := rec.Entries[i].CID; cid < 0 && int(-cid) > e.version {
				rec.Entries[i].CID = 0
				changed = true
			}
		}
		if !changed {
			continue
		}
		if err := e.cfg.Recipes.Put(rec); err != nil {
			return fmt.Errorf("core: recovery: unpatch recipe v%d: %w", v, err)
		}
	}
	return nil
}

// sweepOrphans deletes container images nothing references, reporting
// how many it removed. The sweep is abandoned (without error) if any
// recipe fails to decode: with one recipe's references unknown,
// deleting anything could destroy data it points at — the debris stays
// and fsck reports the corrupt recipe.
func (e *Engine) sweepOrphans(versions []int) (int, error) {
	stored, err := e.cfg.Store.IDs()
	if err != nil {
		return 0, fmt.Errorf("core: recovery: %w", err)
	}
	referenced := make(map[container.ID]struct{})
	for _, v := range versions {
		rec, err := e.cfg.Recipes.Get(v)
		if err != nil {
			return 0, nil
		}
		for _, entry := range rec.Entries {
			if entry.CID > 0 {
				referenced[container.ID(entry.CID)] = struct{}{}
			}
		}
	}
	swept := 0
	for _, cid := range stored {
		if _, active := e.activeContainers[cid]; active {
			continue
		}
		if _, ok := referenced[cid]; ok {
			continue
		}
		if e.batchOwns(cid) {
			continue
		}
		if err := e.cfg.Store.Delete(cid); err != nil && !errors.Is(err, container.ErrNotFound) {
			return swept, fmt.Errorf("core: recovery: sweep container %d: %w", cid, err)
		}
		swept++
		if e.rcv != nil {
			e.rcv.OrphansSwept.Inc()
		}
		e.tracer.Event("recovery.orphan_sweep", nil, map[string]int64{"cid": int64(cid)})
	}
	return swept, nil
}
