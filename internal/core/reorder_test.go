package core

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestReorderMapStaysBounded pins the sink's reorder bound under an
// adversarial schedule: the fingerprint worker holding chunk 0 stalls,
// so every later chunk must park in the reorder map until the stall
// lifts. Without the credit cap the producer would keep chunking and
// the parked set would grow with the stream (the whole backup, in the
// worst case); with it, the parked set can never exceed the in-flight
// ceiling no matter how unlucky the scheduling.
func TestReorderMapStaysBounded(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	creditCap := rawBufDepth + hashedBufDepth + e.cfg.HashWorkers + 1

	// ~2 MB at ~2 KB/chunk: far more chunks than the credit cap, so an
	// unbounded map would comfortably overshoot it during the stall.
	data := make([]byte, 2<<20)
	rand.New(rand.NewSource(17)).Read(data)

	release := make(chan struct{})
	var once sync.Once
	free := func() { once.Do(func() { close(release) }) }
	// Watchdog: if the bound (or the pipeline) wedges, fail visibly
	// instead of hanging the suite.
	timer := time.AfterFunc(30*time.Second, free)
	defer timer.Stop()

	e.hashDelay = func(seq int) {
		if seq == 0 {
			<-release
		}
	}
	maxParked := 0
	e.reorderObserve = func(parked int) { // sink goroutine only; read after Backup returns
		if parked > maxParked {
			maxParked = parked
		}
		// Quiescence: chunk 0 holds one credit, so the map can reach at
		// most creditCap-1 entries. Once it does, every other credit is
		// parked — the adversarial peak — and the stall can end.
		if parked >= creditCap-1 {
			free()
		}
	}

	if _, err := e.Backup(context.Background(), bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if maxParked > creditCap {
		t.Fatalf("reorder map reached %d entries, credit cap is %d", maxParked, creditCap)
	}
	if maxParked < creditCap-1 {
		t.Fatalf("stall parked only %d chunks (cap %d); the adversarial schedule did not engage", maxParked, creditCap)
	}
	if st := e.pool.Stats(); st.InUse != 0 {
		t.Fatalf("%d pooled buffers leaked through the stalled pipeline", st.InUse)
	}

	// The reordered stream must still commit and restore byte-identically.
	var out bytes.Buffer
	if _, err := e.Restore(context.Background(), 1, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restore after adversarial scheduling diverged from the source")
	}
}
