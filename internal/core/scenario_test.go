package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"hidestore/internal/backup/backuptest"
	"hidestore/internal/recipe"
)

// block returns deterministic pseudo-random content for hand-built
// version streams.
func block(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// backupBytes backs up a hand-built stream.
func backupBytes(t *testing.T, e *Engine, data []byte) {
	t.Helper()
	if _, err := e.Backup(context.Background(), bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
}

// TestReturningChunkStoredTwice: a chunk that leaves the stream and
// returns after the window was migrated to an archival container; its
// return must be re-stored (the paper's accepted dedup loss) and all
// versions must restore exactly.
func TestReturningChunkStoredTwice(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	a := block(1, 20<<10)
	b := block(2, 20<<10)
	c := block(3, 20<<10)
	v1 := append(append([]byte{}, a...), b...) // A B
	v2 := append(append([]byte{}, a...), c...) // A C   (B leaves)
	v3 := append(append([]byte{}, a...), b...) // A B   (B returns)
	backupBytes(t, e, v1)
	backupBytes(t, e, v2)
	storedBefore := e.Stats().StoredBytes
	backupBytes(t, e, v3)
	storedAfter := e.Stats().StoredBytes
	if storedAfter == storedBefore {
		t.Fatal("returning chunk should be re-stored (it was archived)")
	}
	for i, want := range [][]byte{v1, v2, v3} {
		backuptest.CheckRestoreOne(t, e, i+1, want)
	}
	rep, err := e.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("store unhealthy: %v", rep.Problems)
	}
}

// TestLongForwardChain: a chunk alive across many versions builds a chain
// R1→R2→...→Rn; when it finally goes cold, every recipe must resolve
// through the chain to the archival location.
func TestLongForwardChain(t *testing.T) {
	e, _, recipes := newTestEngine(t, 1)
	shared := block(10, 30<<10)
	for v := 1; v <= 6; v++ {
		stream := append(append([]byte{}, shared...), block(int64(100+v), 10<<10)...)
		backupBytes(t, e, stream)
	}
	// Version 7 drops the shared prefix: it goes cold at v8.
	backupBytes(t, e, block(200, 10<<10))
	backupBytes(t, e, block(201, 10<<10))

	// R1's entries for the shared chunk should now resolve via the chain.
	if err := e.FlattenRecipes(1); err != nil {
		t.Fatal(err)
	}
	r1, err := recipes.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	resolved := 0
	for _, entry := range r1.Entries {
		if entry.CID > 0 {
			resolved++
		}
	}
	if resolved == 0 {
		t.Fatal("no R1 entries resolved to archival containers after the chain collapsed")
	}
	// And the restore must be exact.
	v1 := append(append([]byte{}, shared...), block(101, 10<<10)...)
	backuptest.CheckRestoreOne(t, e, 1, v1)
}

// TestDeleteVersionWithAlmostNoExclusiveChunks: v1's content is a strict
// prefix of v2 and v3, so only v1's content-defined tail chunk (which in
// v2 continues into new data and re-chunks differently) is exclusive.
// Deletion reclaims at most that boundary chunk and later versions stay
// intact.
func TestDeleteVersionWithAlmostNoExclusiveChunks(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	a := block(1, 30<<10)
	v2 := append(append([]byte{}, a...), block(2, 10<<10)...)
	v3 := append(append([]byte{}, v2...), block(3, 10<<10)...)
	backupBytes(t, e, a)
	backupBytes(t, e, v2)
	backupBytes(t, e, v3)
	rep, err := e.Delete(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesReclaimed > uint64(e.cfg.ChunkParams.Max) {
		t.Fatalf("reclaimed %d bytes; only the EOF boundary chunk should be exclusive", rep.BytesReclaimed)
	}
	backuptest.CheckRestoreOne(t, e, 2, v2)
	backuptest.CheckRestoreOne(t, e, 3, v3)
}

// TestBackupContinuesAfterDelete: the version counter and dedup state
// survive expiring old versions.
func TestBackupContinuesAfterDelete(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(6, 0))
	backuptest.BackupAll(t, e, versions[:4])
	if _, err := e.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Delete(2); err != nil {
		t.Fatal(err)
	}
	// Continue the chain: numbering resumes at 5 and dedup still works.
	rep, err := e.Backup(context.Background(), bytes.NewReader(versions[4]))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 5 {
		t.Fatalf("version = %d, want 5", rep.Version)
	}
	if rep.DedupRatio() < 0.5 {
		t.Fatalf("dedup ratio %.2f after deletes", rep.DedupRatio())
	}
	for v := 3; v <= 5; v++ {
		backuptest.CheckRestoreOne(t, e, v, versions[v-1])
	}
}

// TestIdenticalVersions: backing up the same bytes repeatedly stores them
// once, keeps speed factors constant and leaves nothing to migrate.
func TestIdenticalVersions(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	data := block(42, 100<<10)
	for v := 1; v <= 5; v++ {
		backupBytes(t, e, data)
	}
	st := e.Stats()
	if st.StoredBytes != uint64(len(data)) {
		t.Fatalf("stored %d bytes, want exactly one copy (%d)", st.StoredBytes, len(data))
	}
	// No chunk ever goes cold, so no archival containers exist.
	if got := len(e.batches); got != 0 {
		for v, b := range e.batches {
			if len(b.containers) > 0 {
				t.Fatalf("batch for v%d has %d archival containers; identical versions have no cold chunks",
					v, len(b.containers))
			}
		}
	}
	for v := 1; v <= 5; v++ {
		backuptest.CheckRestoreOne(t, e, v, data)
	}
}

// TestRecipeZeroInvariantInsideWindow: with window 2, both of the two
// newest recipes keep zero CIDs (their chunks are still protected).
func TestRecipeZeroInvariantInsideWindow(t *testing.T) {
	e, _, recipes := newTestEngine(t, 2)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(5, 0.05))
	backuptest.BackupAll(t, e, versions)
	for _, v := range []int{4, 5} {
		rec, err := recipes.Get(v)
		if err != nil {
			t.Fatal(err)
		}
		for i, entry := range rec.Entries {
			if entry.CID != 0 {
				t.Fatalf("recipe v%d entry %d has CID %d inside the window", v, i, entry.CID)
			}
		}
	}
	// Recipes 1..3 have left the window: no zeros remain.
	for v := 1; v <= 3; v++ {
		rec, err := recipes.Get(v)
		if err != nil {
			t.Fatal(err)
		}
		for i, entry := range rec.Entries {
			if entry.CID == 0 {
				t.Fatalf("recipe v%d entry %d still zero outside the window", v, i)
			}
		}
	}
}

var _ = recipe.EntrySize // document dependency for the chain test
