package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"hidestore/internal/backup"
	"hidestore/internal/container"
	"hidestore/internal/fp"
)

var _ backup.Scrubber = (*Engine)(nil)
var _ backup.ScrubProgressReporter = (*Engine)(nil)

// ScrubProgress implements backup.ScrubProgressReporter: the cursor's
// position in the current pass's container snapshot. Before the first
// step both are 0; between passes done equals total.
func (e *Engine) ScrubProgress() (done, total int) {
	return e.scrubPos, len(e.scrubQueue)
}

// scrubDamageMax bounds the scrub-damage list surfaced through
// Stats().Degraded; damage beyond it is counted, not listed, so a
// badly corrupted store cannot balloon every monitoring snapshot.
const scrubDamageMax = 16

// ScrubStep implements backup.Scrubber: verify one container image end
// to end (decode, CRC via the file store, and every chunk's content
// against its fingerprint — the same checks as fsck's pass 1, spread
// one container at a time so a caller can throttle the I/O).
//
// A container that fails verification is re-read once before being
// condemned: the first failure may be a transient I/O error, and
// quarantining on a transient would discard healthy data. Only damage
// that survives the definitive re-read is counted as corruption,
// quarantined (when the store supports it), and surfaced through
// Stats().Degraded.
//
// The cursor walks a sorted snapshot of the store's container list;
// when the snapshot is exhausted the step reports PassComplete and the
// next step takes a fresh snapshot, so containers created after a pass
// started are picked up on the next pass and deleted ones are skipped.
func (e *Engine) ScrubStep(ctx context.Context) (backup.ScrubStepReport, error) {
	var rep backup.ScrubStepReport
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if e.scrubPos >= len(e.scrubQueue) {
		ids, err := e.cfg.Store.IDs()
		if err != nil {
			return rep, fmt.Errorf("scrub: enumerate containers: %w", err)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e.scrubQueue, e.scrubPos = ids, 0
		if len(ids) == 0 {
			rep.Skipped, rep.PassComplete = true, true
			return rep, nil
		}
	}
	cid := e.scrubQueue[e.scrubPos]
	e.scrubPos++
	rep.PassComplete = e.scrubPos >= len(e.scrubQueue)
	if rep.PassComplete && e.smx != nil {
		e.smx.Passes.Inc()
	}

	chunks, bytes, problem := e.scrubVerify(cid)
	if problem != "" {
		// Definitive re-read: a second, independent read of the image.
		// If it verifies clean, the first failure was transient (a
		// flaky read path, not bad data on disk) and the container is
		// healthy; if the damage reproduces, it is real.
		chunks, bytes, problem = e.scrubVerify(cid)
	}
	if problem == scrubGone {
		// Deleted between the snapshot and now — not damage.
		rep.Skipped = true
		return rep, nil
	}
	rep.Container = uint64(cid)
	rep.Chunks, rep.Bytes = chunks, bytes
	if problem == "" {
		if e.smx != nil {
			e.smx.Containers.Inc()
			e.smx.Chunks.Add(uint64(chunks))
			e.smx.Bytes.Add(bytes)
		}
		return rep, nil
	}

	rep.Corrupt = problem
	if e.smx != nil {
		e.smx.Corruptions.Inc()
	}
	if q, ok := e.cfg.Store.(container.Quarantiner); ok {
		dst, err := q.Quarantine(cid)
		if err != nil {
			e.scrubRecord(fmt.Sprintf("scrub: container %d: %s (quarantine failed: %v)", cid, problem, err))
			return rep, nil
		}
		rep.Quarantined = dst
		if e.smx != nil {
			e.smx.Quarantined.Inc()
		}
		e.scrubRecord(fmt.Sprintf("scrub: container %d: %s (quarantined to %s)", cid, problem, dst))
	} else {
		e.scrubRecord(fmt.Sprintf("scrub: container %d: %s (store cannot quarantine; image left in place)", cid, problem))
	}
	return rep, nil
}

// scrubGone marks a container that vanished legitimately (deleted
// after the pass snapshot); distinguished from damage by ErrNotFound.
const scrubGone = "\x00gone"

// scrubVerify reads one container image and content-checks every
// stored chunk. It returns the verified chunk/byte counts and a
// problem description ("" when healthy, scrubGone when the container
// no longer exists).
func (e *Engine) scrubVerify(cid container.ID) (chunks int, bytes uint64, problem string) {
	//hidelint:ignore accounting scrub integrity walk, not a restore; its reads must not skew speed-factor stats
	ctn, err := e.cfg.Store.Get(cid)
	if err != nil {
		if errors.Is(err, container.ErrNotFound) {
			return 0, 0, scrubGone
		}
		return 0, 0, err.Error()
	}
	for _, f := range ctn.Fingerprints() {
		data, err := ctn.Get(f)
		if err != nil {
			return chunks, bytes, fmt.Sprintf("chunk %s: %v", f.Short(), err)
		}
		if got := fp.Of(data); got != f {
			return chunks, bytes, fmt.Sprintf("chunk %s: content hashes to %s", f.Short(), got.Short())
		}
		chunks++
		bytes += uint64(len(data))
	}
	return chunks, bytes, ""
}

// scrubRecord appends one damage line for Stats().Degraded, bounded by
// scrubDamageMax.
func (e *Engine) scrubRecord(line string) {
	if len(e.scrubDamage) >= scrubDamageMax {
		e.scrubOverflow++
		return
	}
	e.scrubDamage = append(e.scrubDamage, line)
}
