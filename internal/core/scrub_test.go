package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hidestore/internal/backup"
	"hidestore/internal/backup/backuptest"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/durable"
	"hidestore/internal/fault"
	"hidestore/internal/obs"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
)

// scrubOpen mirrors crashOpen but hands back the file store too, so
// tests can corrupt container images on disk by path.
func scrubOpen(t *testing.T, dir string, inj *fault.Injector) (*Engine, *container.FileStore) {
	t.Helper()
	cs, err := container.NewFileStore(filepath.Join(dir, "containers"))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := recipe.NewFileStore(filepath.Join(dir, "recipes"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Store:             fault.NewStore(cs, inj, cs.Path),
		Recipes:           fault.NewRecipeStore(rs, inj, rs.Path),
		ContainerCapacity: 16 << 10,
		Window:            1,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
		RestoreCache:      restorecache.NewFAA(1 << 20),
		StatePath:         filepath.Join(dir, "state.hds"),
		WriteState:        inj.WrapWrite(durable.WriteFileAtomic),
		Metrics:           obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, cs
}

// scrubPass runs ScrubStep until a pass completes, returning every
// step report.
func scrubPass(t *testing.T, e *Engine) []backup.ScrubStepReport {
	t.Helper()
	var reps []backup.ScrubStepReport
	for {
		rep, err := e.ScrubStep(context.Background())
		if err != nil {
			t.Fatalf("scrub step %d: %v", len(reps), err)
		}
		reps = append(reps, rep)
		if rep.PassComplete {
			return reps
		}
	}
}

// corruptImage flips one byte in the middle of a container image —
// the same bit rot fault.CorruptRead models.
func corruptImage(t *testing.T, path string) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// archivalID returns a stored container that is not active (safe to
// corrupt without poisoning the next state reload).
func archivalID(t *testing.T, e *Engine) container.ID {
	t.Helper()
	stored, err := e.cfg.Store.IDs()
	if err != nil {
		t.Fatal(err)
	}
	for _, cid := range stored {
		if _, active := e.activeContainers[cid]; !active {
			return cid
		}
	}
	t.Fatal("workload produced no archival containers")
	return 0
}

// TestScrubHealthyPass scrubs a healthy store end to end: every
// container verifies, the pass completes, nothing is flagged, and the
// scrub metrics add up.
func TestScrubHealthyPass(t *testing.T) {
	e, _ := scrubOpen(t, t.TempDir(), fault.NewInjector())
	backuptest.BackupAll(t, e, backuptest.Materialize(t, backuptest.SmallWorkload(3, 0)))

	n, err := e.cfg.Store.Len()
	if err != nil {
		t.Fatal(err)
	}
	reps := scrubPass(t, e)
	if len(reps) != n {
		t.Fatalf("pass took %d steps, store has %d containers", len(reps), n)
	}
	var chunks int
	for _, rep := range reps {
		if rep.Corrupt != "" || rep.Quarantined != "" || rep.Skipped {
			t.Fatalf("healthy store produced %+v", rep)
		}
		chunks += rep.Chunks
	}
	if chunks == 0 {
		t.Fatal("pass verified zero chunks")
	}
	if d := e.Stats().Degraded; len(d) != 0 {
		t.Fatalf("healthy scrub degraded stats: %v", d)
	}
	if got := e.smx.Containers.Value(); got != uint64(n) {
		t.Fatalf("scrub containers metric = %d, want %d", got, n)
	}
	if e.smx.Passes.Value() != 1 || e.smx.Corruptions.Value() != 0 {
		t.Fatalf("passes=%d corruptions=%d after one clean pass",
			e.smx.Passes.Value(), e.smx.Corruptions.Value())
	}

	// A second pass re-snapshots and verifies everything again.
	scrubPass(t, e)
	if e.smx.Passes.Value() != 2 {
		t.Fatalf("passes = %d after two passes", e.smx.Passes.Value())
	}
}

// TestScrubQuarantinesBitRot rots one archival container image on
// disk, then proves the scrubber finds it (surviving the definitive
// re-read), quarantines the image, surfaces the damage through
// Stats().Degraded, and that the following pass is clean.
func TestScrubQuarantinesBitRot(t *testing.T) {
	e, cs := scrubOpen(t, t.TempDir(), fault.NewInjector())
	backuptest.BackupAll(t, e, backuptest.Materialize(t, backuptest.SmallWorkload(4, 0)))
	victim := archivalID(t, e)
	corruptImage(t, cs.Path(victim))

	var hit *backup.ScrubStepReport
	for _, rep := range scrubPass(t, e) {
		if rep.Corrupt != "" {
			rep := rep
			if hit != nil {
				t.Fatalf("two corrupt steps: %+v and %+v", *hit, rep)
			}
			hit = &rep
		}
	}
	if hit == nil {
		t.Fatal("scrub pass missed the rotted container")
	}
	if hit.Container != uint64(victim) {
		t.Fatalf("flagged container %d, corrupted %d", hit.Container, victim)
	}
	if !strings.Contains(hit.Quarantined, container.QuarantineDir) {
		t.Fatalf("quarantine destination %q not under the quarantine dir", hit.Quarantined)
	}
	if e.smx.Corruptions.Value() != 1 || e.smx.Quarantined.Value() != 1 {
		t.Fatalf("corruptions=%d quarantined=%d, want 1/1",
			e.smx.Corruptions.Value(), e.smx.Quarantined.Value())
	}

	degraded := e.Stats().Degraded
	found := false
	for _, d := range degraded {
		if strings.Contains(d, "scrub: container") && strings.Contains(d, "quarantined") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Stats().Degraded = %v, want a scrub damage line", degraded)
	}

	// The image is out of the store now; the next pass finds nothing.
	for _, rep := range scrubPass(t, e) {
		if rep.Corrupt != "" {
			t.Fatalf("second pass still corrupt: %+v", rep)
		}
	}
	if e.smx.Corruptions.Value() != 1 {
		t.Fatalf("second pass grew corruptions to %d", e.smx.Corruptions.Value())
	}
}

// flakyStore fails the first Get of one container and then behaves;
// the transient the scrubber's definitive re-read must absorb.
type flakyStore struct {
	container.Store
	failID container.ID
	fired  bool
}

func (s *flakyStore) Get(id container.ID) (*container.Container, error) {
	if id == s.failID && !s.fired {
		s.fired = true
		return nil, os.ErrDeadlineExceeded
	}
	return s.Store.Get(id)
}

// TestScrubAbsorbsTransientReadError proves a one-off read failure is
// not treated as corruption: the re-read verifies clean, the container
// counts as healthy, and nothing is quarantined or degraded.
func TestScrubAbsorbsTransientReadError(t *testing.T) {
	flaky := &flakyStore{Store: container.NewMemStore()}
	e, err := New(Config{
		Store:             flaky,
		Recipes:           recipe.NewMemStore(),
		ContainerCapacity: 16 << 10,
		Window:            1,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
		RestoreCache:      restorecache.NewFAA(1 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	backuptest.BackupAll(t, e, backuptest.Materialize(t, backuptest.SmallWorkload(3, 0)))
	flaky.failID = archivalID(t, e)

	for _, rep := range scrubPass(t, e) {
		if rep.Corrupt != "" || rep.Skipped {
			t.Fatalf("transient read failure flagged: %+v", rep)
		}
	}
	if !flaky.fired {
		t.Fatal("the flaky Get never fired; the scrub read order changed")
	}
	if d := e.Stats().Degraded; len(d) != 0 {
		t.Fatalf("transient failure degraded stats: %v", d)
	}
}

// TestCrashMatrixScrub interleaves full scrub passes with the backup
// script and kills the run at every mutating op: the scrubber must
// ride along without disturbing the commit order (over healthy data it
// draws no mutating ops) and recovery must be unaffected.
func TestCrashMatrixScrub(t *testing.T) {
	versions := backuptest.Materialize(t, crashWorkload(3))
	steps := []backuptest.CrashStep{
		{Data: versions[0]},
		{Scrub: true},
		{Data: versions[1]},
		{Data: versions[2]},
		{Scrub: true},
	}
	backuptest.CrashMatrix(t, crashOpen, steps,
		[]fault.Kind{fault.Fail, fault.Torn, fault.NoSpace})
}

// TestScrubKilledMidQuarantine kills the process exactly at the
// quarantine rename — the scrubber's only mutating op — and proves the
// crash is harmless: the image is still in place afterwards (the
// rename is atomic and never happened), the damage is still reported,
// and a rebooted process's scrub finishes the quarantine.
func TestScrubKilledMidQuarantine(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector()
	e, cs := scrubOpen(t, dir, inj)
	backuptest.BackupAll(t, e, backuptest.Materialize(t, backuptest.SmallWorkload(4, 0)))
	victim := archivalID(t, e)
	corruptImage(t, cs.Path(victim))

	// The scrubber's verification reads draw no mutating ops, so op 1
	// is the quarantine itself.
	inj.Arm(fault.Fail, 1)
	var hit *backup.ScrubStepReport
	for _, rep := range scrubPass(t, e) {
		if rep.Corrupt != "" {
			rep := rep
			hit = &rep
		}
	}
	if !inj.Tripped() {
		t.Fatal("the quarantine never drew an op; kill point unreachable")
	}
	if hit == nil {
		t.Fatal("scrub missed the rotted container")
	}
	if hit.Quarantined != "" {
		t.Fatalf("quarantine reported despite the injected crash: %+v", *hit)
	}
	degraded := e.Stats().Degraded
	found := false
	for _, d := range degraded {
		if strings.Contains(d, "quarantine failed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Stats().Degraded = %v, want a quarantine-failed line", degraded)
	}
	if _, err := os.Stat(cs.Path(victim)); err != nil {
		t.Fatalf("image half-quarantined: %v", err)
	}

	// Reboot: a fresh process scrubs again and completes the move.
	e2, cs2 := scrubOpen(t, dir, fault.NewInjector())
	hit = nil
	for _, rep := range scrubPass(t, e2) {
		if rep.Corrupt != "" {
			rep := rep
			hit = &rep
		}
	}
	if hit == nil || hit.Quarantined == "" {
		t.Fatalf("rebooted scrub did not quarantine: %+v", hit)
	}
	if _, err := os.Stat(cs2.Path(victim)); !os.IsNotExist(err) {
		t.Fatalf("image still in the store after quarantine: %v", err)
	}
}
