package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"sort"

	"hidestore/internal/container"
	"hidestore/internal/fp"
)

// The engine's dedup decisions live in memory: the fingerprint cache, the
// active-container locations, last-seen versions, and the §4.5 deletion
// batches. The paper's prototype rebuilds the cache from the previous
// recipe at startup; this implementation persists the equivalent state in
// one small file so a process restart resumes the version history exactly
// (the CLI depends on this).

const (
	_stateMagic   = 0x48445354 // "HDST"
	_stateVersion = 1
)

// ErrStateCorrupt reports an unreadable state file.
var ErrStateCorrupt = errors.New("core: corrupt state file")

// marshalState encodes the engine's resumable state.
func (e *Engine) marshalState() []byte {
	// Collect hot-chunk records in deterministic order.
	type hot struct {
		f    fp.FP
		cid  container.ID
		seen int
	}
	hots := make([]hot, 0, len(e.activeByFP))
	for f, cid := range e.activeByFP {
		seen, _ := e.cache.lastSeenOf(f)
		hots = append(hots, hot{f: f, cid: cid, seen: seen})
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].f.Less(hots[j].f) })
	batchVersions := make([]int, 0, len(e.batches))
	for v := range e.batches {
		batchVersions = append(batchVersions, v)
	}
	sort.Ints(batchVersions)
	activeIDs := make([]container.ID, 0, len(e.activeContainers))
	for id := range e.activeContainers {
		activeIDs = append(activeIDs, id)
	}
	sort.Slice(activeIDs, func(i, j int) bool { return activeIDs[i] < activeIDs[j] })

	size := 24 // header
	size += 4 + len(hots)*(fp.Size+4+4)
	size += 4
	for _, v := range batchVersions {
		size += 4 + 8 + 4 + len(e.batches[v].containers)*4
	}
	size += 8 + 8
	size += 4 + len(activeIDs)*4

	buf := make([]byte, size)
	binary.BigEndian.PutUint32(buf[0:], _stateMagic)
	binary.BigEndian.PutUint16(buf[4:], _stateVersion)
	binary.BigEndian.PutUint32(buf[8:], uint32(e.cfg.Window))
	binary.BigEndian.PutUint32(buf[12:], uint32(e.version))
	binary.BigEndian.PutUint32(buf[16:], uint32(e.nextCID))
	// buf[20:24] = crc, filled last.
	off := 24
	binary.BigEndian.PutUint32(buf[off:], uint32(len(hots)))
	off += 4
	for _, h := range hots {
		copy(buf[off:], h.f[:])
		binary.BigEndian.PutUint32(buf[off+fp.Size:], uint32(h.cid))
		binary.BigEndian.PutUint32(buf[off+fp.Size+4:], uint32(h.seen))
		off += fp.Size + 8
	}
	binary.BigEndian.PutUint32(buf[off:], uint32(len(batchVersions)))
	off += 4
	for _, v := range batchVersions {
		b := e.batches[v]
		binary.BigEndian.PutUint32(buf[off:], uint32(v))
		binary.BigEndian.PutUint64(buf[off+4:], b.bytes)
		binary.BigEndian.PutUint32(buf[off+12:], uint32(len(b.containers)))
		off += 16
		for _, id := range b.containers {
			binary.BigEndian.PutUint32(buf[off:], uint32(id))
			off += 4
		}
	}
	binary.BigEndian.PutUint64(buf[off:], e.logicalBytes)
	binary.BigEndian.PutUint64(buf[off+8:], e.storedBytes)
	off += 16
	binary.BigEndian.PutUint32(buf[off:], uint32(len(activeIDs)))
	off += 4
	for _, id := range activeIDs {
		binary.BigEndian.PutUint32(buf[off:], uint32(id))
		off += 4
	}
	binary.BigEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[24:]))
	return buf
}

// unmarshalState restores the resumable state and reloads active
// container images from the store.
func (e *Engine) unmarshalState(buf []byte) error {
	if len(buf) < 24 {
		return fmt.Errorf("%w: short header", ErrStateCorrupt)
	}
	if binary.BigEndian.Uint32(buf[0:]) != _stateMagic {
		return fmt.Errorf("%w: bad magic", ErrStateCorrupt)
	}
	if v := binary.BigEndian.Uint16(buf[4:]); v != _stateVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrStateCorrupt, v)
	}
	if w := int(binary.BigEndian.Uint32(buf[8:])); w != e.cfg.Window {
		return fmt.Errorf("core: state window %d does not match configured %d", w, e.cfg.Window)
	}
	if crc32.ChecksumIEEE(buf[24:]) != binary.BigEndian.Uint32(buf[20:]) {
		return fmt.Errorf("%w: checksum mismatch", ErrStateCorrupt)
	}
	e.version = int(binary.BigEndian.Uint32(buf[12:]))
	e.nextCID = container.ID(binary.BigEndian.Uint32(buf[16:]))
	e.cache = NewIndexViewSharded(e.cfg.Window, e.cfg.IndexShards)
	e.cache.setVersion(e.version)
	e.activeByFP = make(map[fp.FP]container.ID)
	e.activeContainers = make(map[container.ID]*container.Container)
	e.batches = make(map[int]*archivalBatch)

	off := 24
	read32 := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("%w: truncated", ErrStateCorrupt)
		}
		v := binary.BigEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	read64 := func() (uint64, error) {
		if off+8 > len(buf) {
			return 0, fmt.Errorf("%w: truncated", ErrStateCorrupt)
		}
		v := binary.BigEndian.Uint64(buf[off:])
		off += 8
		return v, nil
	}
	nHot, err := read32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nHot; i++ {
		if off+fp.Size+8 > len(buf) {
			return fmt.Errorf("%w: truncated hot entry", ErrStateCorrupt)
		}
		f, err := fp.FromBytes(buf[off : off+fp.Size])
		if err != nil {
			return fmt.Errorf("%w: %v", ErrStateCorrupt, err)
		}
		cid := container.ID(binary.BigEndian.Uint32(buf[off+fp.Size:]))
		seen := int(binary.BigEndian.Uint32(buf[off+fp.Size+4:]))
		off += fp.Size + 8
		e.activeByFP[f] = cid
		e.cache.insertEntry(f, cid, seen)
	}
	nBatches, err := read32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nBatches; i++ {
		v, err := read32()
		if err != nil {
			return err
		}
		bytesTotal, err := read64()
		if err != nil {
			return err
		}
		nIDs, err := read32()
		if err != nil {
			return err
		}
		batch := &archivalBatch{bytes: bytesTotal}
		for j := uint32(0); j < nIDs; j++ {
			id, err := read32()
			if err != nil {
				return err
			}
			batch.containers = append(batch.containers, container.ID(id))
		}
		e.batches[int(v)] = batch
	}
	if e.logicalBytes, err = read64(); err != nil {
		return err
	}
	if e.storedBytes, err = read64(); err != nil {
		return err
	}
	nActive, err := read32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nActive; i++ {
		id, err := read32()
		if err != nil {
			return err
		}
		//hidelint:ignore accounting startup state reload, not a restore; these reads precede any restore run
		ctn, err := e.cfg.Store.Get(container.ID(id))
		if err != nil {
			return fmt.Errorf("core: reload active container %d: %w", id, err)
		}
		// The engine mutates active images; Get's result may be the
		// store's own snapshot (memory store), so work on a copy.
		ctn = ctn.Clone()
		if err := ctn.SetCapacity(e.cfg.ContainerCapacity); err != nil {
			return fmt.Errorf("core: reload active container %d: %w", id, err)
		}
		e.activeContainers[container.ID(id)] = ctn
	}
	if off != len(buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrStateCorrupt, len(buf)-off)
	}
	return nil
}

// saveState commits the state file through Config.WriteState (by
// default durable.WriteFileAtomic: temp + fsync + rename + dir fsync);
// a no-op without StatePath. The state write is the commit point of
// every Backup and Delete — containers and recipes written earlier in
// the operation become the committed truth only once this succeeds.
func (e *Engine) saveState() error {
	if e.cfg.StatePath == "" {
		return nil
	}
	if err := e.cfg.WriteState(e.cfg.StatePath, e.marshalState(), 0o644); err != nil {
		return fmt.Errorf("core: write state: %w", err)
	}
	return nil
}

// loadState restores from the state file if one exists, reporting
// whether it did. A missing file on a directory that already holds
// recipes is refused: New writes an anchor state on a fresh directory,
// so "recipes but no state" can only mean the state file was lost
// (manual deletion, wrong directory) — starting over would reuse
// version numbers and silently shadow the existing history.
func (e *Engine) loadState() (bool, error) {
	if e.cfg.StatePath == "" {
		return false, nil
	}
	buf, err := e.cfg.ReadState(e.cfg.StatePath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			vs, verr := e.cfg.Recipes.Versions()
			if verr != nil {
				return false, fmt.Errorf("core: list recipes: %w", verr)
			}
			if len(vs) > 0 {
				return false, fmt.Errorf("core: state file %s missing but %d recipes exist (through v%d); refusing to restart the version history",
					e.cfg.StatePath, len(vs), vs[len(vs)-1])
			}
			return false, nil
		}
		return false, fmt.Errorf("core: read state: %w", err)
	}
	if err := e.unmarshalState(buf); err != nil {
		return false, err
	}
	return true, nil
}
