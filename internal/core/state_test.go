package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hidestore/internal/backup/backuptest"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/recipe"
)

// newPersistentEngine builds a file-backed engine with a state file.
func newPersistentEngine(t *testing.T, dir string, window int) *Engine {
	t.Helper()
	store, err := container.NewFileStore(filepath.Join(dir, "containers"))
	if err != nil {
		t.Fatal(err)
	}
	recipes, err := recipe.NewFileStore(filepath.Join(dir, "recipes"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Store:             store,
		Recipes:           recipes,
		ContainerCapacity: 64 << 10,
		Window:            window,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
		StatePath:         filepath.Join(dir, "state.hds"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestStateRoundTrip backs up half a version chain, "restarts" the engine
// from disk, backs up the rest, and verifies everything: dedup continues
// across the restart and every version restores.
func TestStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(8, 0))

	e1 := newPersistentEngine(t, dir, 1)
	backuptest.BackupAll(t, e1, versions[:4])

	e2 := newPersistentEngine(t, dir, 1)
	if got := e2.Versions(); len(got) != 4 {
		t.Fatalf("reopened engine sees %v versions", got)
	}
	// The next backup must continue numbering AND deduplicate against the
	// previous version backed up by the old process.
	rep, err := e2.Backup(context.Background(), bytes.NewReader(versions[4]))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 5 {
		t.Fatalf("version after reopen = %d, want 5", rep.Version)
	}
	if rep.DedupRatio() < 0.5 {
		t.Fatalf("dedup ratio %.2f after reopen: fingerprint cache not restored", rep.DedupRatio())
	}
	for _, data := range versions[5:] {
		if _, err := e2.Backup(context.Background(), bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	backuptest.CheckRestoreAll(t, e2, versions)

	// Deletion batches must also survive: a third process deletes v1.
	e3 := newPersistentEngine(t, dir, 1)
	del, err := e3.Delete(1)
	if err != nil {
		t.Fatal(err)
	}
	if del.ContainersDeleted == 0 {
		t.Fatal("deletion batches lost across restart")
	}
	for v := 2; v <= 8; v++ {
		backuptest.CheckRestoreOne(t, e3, v, versions[v-1])
	}
}

func TestStateWindowMismatch(t *testing.T) {
	dir := t.TempDir()
	e := newPersistentEngine(t, dir, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(2, 0))
	backuptest.BackupAll(t, e, versions)

	store, err := container.NewFileStore(filepath.Join(dir, "containers"))
	if err != nil {
		t.Fatal(err)
	}
	recipes, err := recipe.NewFileStore(filepath.Join(dir, "recipes"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{
		Store:     store,
		Recipes:   recipes,
		Window:    2, // was 1
		StatePath: filepath.Join(dir, "state.hds"),
	}); err == nil {
		t.Fatal("window mismatch should be rejected")
	}
}

func TestStateCorruption(t *testing.T) {
	dir := t.TempDir()
	e := newPersistentEngine(t, dir, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(2, 0))
	backuptest.BackupAll(t, e, versions)

	path := filepath.Join(dir, "state.hds")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		// "torn" is the prefix a non-atomic writer's crash would leave.
		{"torn", func(b []byte) []byte { return b[:len(b)/2] }},
		// "bitflip" leaves the length intact but fails the CRC.
		{"bitflip", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"short", func(b []byte) []byte { return b[:8] }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := os.WriteFile(path, tt.mutate(append([]byte(nil), buf...)), 0o644); err != nil {
				t.Fatal(err)
			}
			store, err := container.NewFileStore(filepath.Join(dir, "containers"))
			if err != nil {
				t.Fatal(err)
			}
			recipes, err := recipe.NewFileStore(filepath.Join(dir, "recipes"))
			if err != nil {
				t.Fatal(err)
			}
			_, err = New(Config{Store: store, Recipes: recipes, StatePath: path})
			if !errors.Is(err, ErrStateCorrupt) {
				t.Fatalf("corrupt state: got %v, want ErrStateCorrupt", err)
			}
		})
	}
}

func TestStateMissingFileIsFreshStart(t *testing.T) {
	dir := t.TempDir()
	e := newPersistentEngine(t, dir, 1)
	if got := e.Versions(); len(got) != 0 {
		t.Fatalf("fresh engine sees versions %v", got)
	}
}

func TestMarshalUnmarshalStateDirect(t *testing.T) {
	e, _, _ := newTestEngine(t, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(5, 0))
	backuptest.BackupAll(t, e, versions)
	buf := e.marshalState()

	// A twin engine sharing the same stores can absorb the state.
	twin, err := New(Config{
		Store:             e.cfg.Store,
		Recipes:           e.cfg.Recipes,
		ContainerCapacity: e.cfg.ContainerCapacity,
		Window:            1,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.unmarshalState(buf); err != nil {
		t.Fatal(err)
	}
	if twin.version != e.version || twin.nextCID != e.nextCID {
		t.Fatalf("counters differ: %d/%d vs %d/%d", twin.version, twin.nextCID, e.version, e.nextCID)
	}
	if len(twin.activeByFP) != len(e.activeByFP) {
		t.Fatalf("activeByFP size %d, want %d", len(twin.activeByFP), len(e.activeByFP))
	}
	if len(twin.batches) != len(e.batches) {
		t.Fatalf("batches %d, want %d", len(twin.batches), len(e.batches))
	}
	backuptest.CheckRestoreAll(t, twin, versions)
}

// TestMissingStateWithRecipesRefused: losing the state file while recipes
// exist must be refused rather than silently restarting version numbering
// over live history.
func TestMissingStateWithRecipesRefused(t *testing.T) {
	dir := t.TempDir()
	e := newPersistentEngine(t, dir, 1)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(2, 0))
	backuptest.BackupAll(t, e, versions)
	if err := os.Remove(filepath.Join(dir, "state.hds")); err != nil {
		t.Fatal(err)
	}
	store, err := container.NewFileStore(filepath.Join(dir, "containers"))
	if err != nil {
		t.Fatal(err)
	}
	recipes, err := recipe.NewFileStore(filepath.Join(dir, "recipes"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Store: store, Recipes: recipes,
		StatePath: filepath.Join(dir, "state.hds")}); err == nil {
		t.Fatal("missing state over live recipes must be refused")
	}
}
