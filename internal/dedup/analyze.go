package dedup

import (
	"context"

	"hidestore/internal/backup"
	"hidestore/internal/layout"
	"hidestore/internal/restorecache"
)

var _ backup.LayoutAnalyzer = (*Engine)(nil)

// AnalyzeLayout implements backup.LayoutAnalyzer. Baseline recipes
// already carry positive container IDs, so the recipe's entry stream
// feeds the analyzer as-is — the identical stream Restore hands the
// cache policy, which is what makes the simulated container-read
// counts match a real restore's exactly.
func (e *Engine) AnalyzeLayout(ctx context.Context, version int, policies []string) (*layout.Report, error) {
	rec, err := e.cfg.Recipes.Get(version)
	if err != nil {
		return nil, err
	}
	return layout.Analyze(ctx, version, rec.Entries, restorecache.StoreFetcher(e.cfg.Store), e.cfg.ContainerCapacity, policies)
}
