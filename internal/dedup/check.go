package dedup

import (
	"hidestore/internal/backup"
	"hidestore/internal/container"
	"hidestore/internal/fp"
)

var _ backup.Checker = (*Engine)(nil)

// Check verifies the baseline store: every container's chunks hash to
// their fingerprints, and every recipe entry points at a container that
// holds the chunk (baseline recipes only ever use positive CIDs).
func (e *Engine) Check() (backup.CheckReport, error) {
	var report backup.CheckReport
	chunkAt := make(map[fp.FP]map[container.ID]struct{})
	stored, err := e.cfg.Store.IDs()
	if err != nil {
		report.Problemf("store: cannot enumerate containers: %v", err)
	}
	for _, cid := range stored {
		//hidelint:ignore accounting fsck integrity walk, not a restore; its reads must not skew speed-factor stats
		ctn, err := e.cfg.Store.Get(cid)
		if err != nil {
			report.Problemf("container %d: %v", cid, err)
			continue
		}
		report.Containers++
		for _, f := range ctn.Fingerprints() {
			data, err := ctn.Get(f)
			if err != nil {
				report.Problemf("container %d chunk %s: %v", cid, f.Short(), err)
				continue
			}
			report.StoredChunks++
			if got := fp.Of(data); got != f {
				report.Problemf("container %d chunk %s: content hashes to %s", cid, f.Short(), got.Short())
				continue
			}
			locs, ok := chunkAt[f]
			if !ok {
				locs = make(map[container.ID]struct{}, 1)
				chunkAt[f] = locs
			}
			locs[cid] = struct{}{}
		}
	}
	for _, v := range e.cfg.Recipes.Versions() {
		rec, err := e.cfg.Recipes.Get(v)
		if err != nil {
			report.Problemf("recipe v%d: %v", v, err)
			continue
		}
		report.Versions++
		for i, entry := range rec.Entries {
			report.Chunks++
			if entry.CID <= 0 {
				report.Problemf("recipe v%d entry %d: non-positive CID %d", v, i, entry.CID)
				continue
			}
			if _, ok := chunkAt[entry.FP][container.ID(entry.CID)]; !ok {
				report.Problemf("recipe v%d entry %d (%s): container %d does not hold it",
					v, i, entry.FP.Short(), entry.CID)
			}
		}
	}
	return report, nil
}
