package dedup

import (
	"sort"

	"hidestore/internal/backup"
	"hidestore/internal/container"
	"hidestore/internal/fp"
)

var (
	_ backup.Checker  = (*Engine)(nil)
	_ backup.Repairer = (*Engine)(nil)
)

// Check verifies the baseline store: every container's chunks hash to
// their fingerprints, and every recipe entry points at a container that
// holds the chunk (baseline recipes only ever use positive CIDs).
func (e *Engine) Check() (backup.CheckReport, error) {
	rep, err := e.audit(false)
	return rep.CheckReport, err
}

// Repair implements backup.Repairer: the same audit as Check, with
// undecodable containers quarantined and the versions that reference
// them named in AffectedVersions.
func (e *Engine) Repair() (backup.RepairReport, error) {
	return e.audit(true)
}

func (e *Engine) audit(repair bool) (backup.RepairReport, error) {
	var report backup.RepairReport
	corrupt := make(map[container.ID]bool)
	chunkAt := make(map[fp.FP]map[container.ID]struct{})
	stored, err := e.cfg.Store.IDs()
	if err != nil {
		report.Problemf("store: cannot enumerate containers: %v", err)
	}
	for _, cid := range stored {
		//hidelint:ignore accounting fsck integrity walk, not a restore; its reads must not skew speed-factor stats
		ctn, err := e.cfg.Store.Get(cid)
		if err != nil {
			report.Problemf("container %d: %v", cid, err)
			if repair {
				if q, ok := e.cfg.Store.(container.Quarantiner); ok {
					dst, qerr := q.Quarantine(cid)
					if qerr != nil {
						report.Problemf("container %d: quarantine failed: %v", cid, qerr)
					} else {
						corrupt[cid] = true
						report.Quarantined = append(report.Quarantined, dst)
					}
				} else {
					report.Problemf("container %d: store cannot quarantine; image left in place", cid)
				}
			}
			continue
		}
		report.Containers++
		for _, f := range ctn.Fingerprints() {
			data, err := ctn.Get(f)
			if err != nil {
				report.Problemf("container %d chunk %s: %v", cid, f.Short(), err)
				continue
			}
			report.StoredChunks++
			if got := fp.Of(data); got != f {
				report.Problemf("container %d chunk %s: content hashes to %s", cid, f.Short(), got.Short())
				continue
			}
			locs, ok := chunkAt[f]
			if !ok {
				locs = make(map[container.ID]struct{}, 1)
				chunkAt[f] = locs
			}
			locs[cid] = struct{}{}
		}
	}
	versions, err := e.cfg.Recipes.Versions()
	if err != nil {
		report.Problemf("recipes: cannot enumerate versions: %v", err)
	}
	affected := make(map[int]bool)
	for _, v := range versions {
		rec, err := e.cfg.Recipes.Get(v)
		if err != nil {
			report.Problemf("recipe v%d: %v", v, err)
			continue
		}
		report.Versions++
		for i, entry := range rec.Entries {
			report.Chunks++
			if entry.CID <= 0 {
				report.Problemf("recipe v%d entry %d: non-positive CID %d", v, i, entry.CID)
				continue
			}
			if _, ok := chunkAt[entry.FP][container.ID(entry.CID)]; !ok {
				report.Problemf("recipe v%d entry %d (%s): container %d does not hold it",
					v, i, entry.FP.Short(), entry.CID)
				if corrupt[container.ID(entry.CID)] {
					affected[v] = true
				}
			}
		}
	}
	for v := range affected {
		report.AffectedVersions = append(report.AffectedVersions, v)
	}
	sort.Ints(report.AffectedVersions)
	return report, nil
}
