package dedup

import (
	"path/filepath"
	"testing"

	"hidestore/internal/backup"
	"hidestore/internal/backup/backuptest"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/fault"
	"hidestore/internal/index/ddfs"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
	"hidestore/internal/workload"
)

func crashWorkload(versions int) workload.Config {
	return workload.Config{
		Name:          "crash",
		Versions:      versions,
		Files:         4,
		BlocksPerFile: 6,
		BlockSize:     2048,
		ModifyRate:    0.10,
		InsertRate:    0.01,
		DeleteRate:    0.005,
		FileChurn:     0.05,
		Seed:          42,
	}
}

// crashOpen builds a file-backed baseline engine with fault-injected
// stores. The baseline keeps no state file, so its commit point is the
// recipe write (containers are sealed first).
func crashOpen(dir string, inj *fault.Injector) (backup.Engine, error) {
	cs, err := container.NewFileStore(filepath.Join(dir, "containers"))
	if err != nil {
		return nil, err
	}
	rs, err := recipe.NewFileStore(filepath.Join(dir, "recipes"))
	if err != nil {
		return nil, err
	}
	ix, err := ddfs.New(ddfs.Options{ExpectedChunks: 1 << 16})
	if err != nil {
		return nil, err
	}
	return New(Config{
		Index:             ix,
		Store:             fault.NewStore(cs, inj, cs.Path),
		Recipes:           fault.NewRecipeStore(rs, inj, rs.Path),
		ContainerCapacity: 16 << 10,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
		RestoreCache:      restorecache.NewFAA(1 << 20),
	})
}

// TestCrashMatrixBackup kills a 3-version baseline backup run at every
// mutating op and verifies the container-before-recipe commit order:
// after reopening, every version whose recipe committed restores
// byte-identically. Only clean failure kinds run here — the baseline
// has no startup recovery, so a torn container image would sit at its
// final path until fsck flags it (HiDeStore's middleware engine sweeps
// such debris at open; see the core crash matrix).
func TestCrashMatrixBackup(t *testing.T) {
	versions := backuptest.Materialize(t, crashWorkload(3))
	backuptest.CrashMatrix(t, crashOpen, backuptest.BackupSteps(versions),
		[]fault.Kind{fault.Fail, fault.NoSpace})
}
