// Package dedup implements the traditional destor-style deduplication
// engine the paper's baselines run on (§5.1): a staged pipeline of
// chunking, hashing, fingerprint indexing, optional duplicate rewriting,
// and container storage, with per-version recipes for restore.
//
// The engine is parameterized by a fingerprint index (DDFS, Sparse
// Indexing, SiLo), a rewriting scheme (none, capping, CBR, CFL, FBW, HAR)
// and a restore cache (container-LRU, chunk-LRU, FAA, ALACC), which spans
// the whole baseline matrix of the paper's evaluation.
package dedup

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"hidestore/internal/backup"
	"hidestore/internal/bufpool"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
	"hidestore/internal/obs"
	"hidestore/internal/pipeline"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
	"hidestore/internal/rewrite"
)

// Config assembles an engine. Index, Store and Recipes are required.
type Config struct {
	// Chunking algorithm and size bounds (default TTTD with the paper's
	// 2/4/16 KB parameters).
	Chunker     chunker.Algorithm
	ChunkParams chunker.Params
	// Index classifies chunks (required).
	Index index.Index
	// Rewriter decides duplicate rewriting (default none).
	Rewriter rewrite.Rewriter
	// RestoreCache drives restores (default FAA, destor's default §5.3).
	RestoreCache restorecache.Cache
	// Store persists containers (required).
	Store container.Store
	// Recipes persists recipes (required).
	Recipes recipe.Store
	// SegmentChunks is the indexing/rewriting segment length in chunks
	// (default 1024 ≈ 4 MB at 4 KB chunks).
	SegmentChunks int
	// ContainerCapacity in bytes (default container.DefaultCapacity).
	ContainerCapacity int
	// PrefetchDepth bounds the restore read-ahead window in distinct
	// containers: 0 selects restorecache.DefaultPrefetchDepth, negative
	// disables prefetching.
	PrefetchDepth int
	// RestoreWorkers parallelize the restore's fetch and assembly
	// stages (see core.Config.RestoreWorkers); 0 or 1 restores serially.
	RestoreWorkers int
	// HashWorkers parallelize fingerprinting (default 4).
	HashWorkers int
	// ChunkLanes parallelize chunking itself: the input is split into
	// per-batch lane segments, chunked speculatively, and re-stitched so
	// the chunk sequence is bit-identical to single-lane chunking. 0 or
	// 1 chunks sequentially.
	ChunkLanes int
	// AsyncCommitDepth bounds the asynchronous container-commit queue:
	// sealed containers are committed by a background writer while
	// chunking continues, with a barrier before the recipe write. 0
	// selects the default depth of 2 (async on); negative disables the
	// writer and commits synchronously at each seal.
	AsyncCommitDepth int
	// Metrics, when set, mirrors backup/restore counters into the
	// registry; nil disables the observability plane.
	Metrics *obs.Registry
	// Tracer, when set, records per-operation spans as JSONL.
	Tracer *obs.Tracer
}

func (c *Config) setDefaults() error {
	if c.Index == nil {
		return errors.New("dedup: Config.Index is required")
	}
	if c.Store == nil {
		return errors.New("dedup: Config.Store is required")
	}
	if c.Recipes == nil {
		return errors.New("dedup: Config.Recipes is required")
	}
	if c.Chunker == 0 {
		c.Chunker = chunker.TTTD
	}
	if c.ChunkParams == (chunker.Params{}) {
		c.ChunkParams = chunker.DefaultParams()
	}
	if err := c.ChunkParams.Validate(); err != nil {
		return err
	}
	if c.Rewriter == nil {
		c.Rewriter = rewrite.NewNone()
	}
	if c.RestoreCache == nil {
		c.RestoreCache = restorecache.NewFAA(0)
	}
	if c.SegmentChunks <= 0 {
		c.SegmentChunks = 1024
	}
	if c.ContainerCapacity <= 0 {
		c.ContainerCapacity = container.DefaultCapacity
	}
	if c.HashWorkers <= 0 {
		c.HashWorkers = 4
	}
	if c.ChunkLanes <= 0 {
		c.ChunkLanes = 1
	}
	return nil
}

// Engine is the baseline deduplicating backup engine. It is not safe for
// concurrent use: one Backup/Restore/Delete at a time.
type Engine struct {
	cfg Config

	nextVersion int
	nextCID     container.ID
	open        *container.Container

	logicalBytes uint64
	storedBytes  uint64

	// pool recycles chunk buffers through the backup hot loop; the
	// segment processor releases each buffer once the payload is
	// classified duplicate or copied into a container.
	pool *bufpool.Pool
	// writer is the asynchronous container committer, non-nil only
	// while a Backup with async commit enabled is running.
	writer *container.AsyncWriter

	// Observability bundles; nil when Config.Metrics is nil.
	mx     *obs.BackupMetrics
	rmx    *obs.RestoreMetrics
	tracer *obs.Tracer
}

var _ backup.Engine = (*Engine)(nil)

// New creates an engine from cfg.
func New(cfg Config) (*Engine, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:    cfg,
		pool:   bufpool.New(cfg.ChunkParams.Max),
		mx:     obs.NewBackupMetrics(cfg.Metrics),
		rmx:    obs.NewRestoreMetrics(cfg.Metrics),
		tracer: cfg.Tracer,
	}, nil
}

// rawBufDepth and hashedBufDepth size the backup pipeline's channels;
// with HashWorkers they set the sink's reorder credit cap (see Backup).
const (
	rawBufDepth    = 64
	hashedBufDepth = 64
)

// hashedChunk is one chunk flowing through the backup pipeline. data is
// a pool-owned buffer, released by the segment processor once the
// payload is classified duplicate or copied into a container.
type hashedChunk struct {
	seq  int
	fp   fp.FP
	data []byte
}

// Backup implements backup.Engine.
func (e *Engine) Backup(ctx context.Context, version io.Reader) (rep backup.BackupReport, retErr error) {
	start := time.Now()
	v := e.nextVersion + 1
	indexBefore := e.cfg.Index.Stats()
	rewriteBefore := e.cfg.Rewriter.Stats()

	rec := recipe.New(v)
	session := &backupSession{engine: e, recipe: rec}

	ch, err := chunker.NewParallelPooled(e.cfg.Chunker, version, e.cfg.ChunkParams, e.cfg.ChunkLanes, e.pool)
	if err != nil {
		return backup.BackupReport{}, err
	}
	if e.cfg.AsyncCommitDepth >= 0 {
		e.writer = container.NewAsyncWriter(ctx, e.cfg.Store, e.cfg.AsyncCommitDepth,
			func(c *container.Container, t0 time.Time, d time.Duration) {
				if e.mx != nil {
					e.mx.ContainerWriteNS.Observe(uint64(d))
				}
				if e.tracer != nil {
					e.tracer.EmitStage("container.flush.async", nil, t0, d,
						map[string]int64{"container": int64(c.ID()), "bytes": int64(c.LiveSize())})
				}
			})
		defer func() {
			// Backstop for early-error returns: no queued commit may
			// outlive Backup, and no commit failure may go unreported.
			if e.writer != nil {
				w := e.writer
				e.writer = nil
				if werr := w.Barrier(); werr != nil && retErr == nil {
					retErr = werr
				}
			}
		}()
	}
	g, gctx := pipeline.WithContext(ctx)
	// credits bounds chunks in flight between the chunker and the
	// in-order sink, capping the sink's reorder map (see the core
	// engine's Backup for the full argument).
	credits := make(chan struct{}, rawBufDepth+hashedBufDepth+e.cfg.HashWorkers+1)
	raw := pipeline.Produce(g, rawBufDepth, func(emit func(hashedChunk) bool) error {
		for seq := 0; ; seq++ {
			data, err := ch.Next()
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err != nil {
				return fmt.Errorf("dedup: chunking: %w", err)
			}
			select {
			case credits <- struct{}{}:
			case <-gctx.Done():
				return nil
			}
			if !emit(hashedChunk{seq: seq, data: data}) {
				return nil
			}
		}
	})
	hashed := pipeline.Transform(g, e.cfg.HashWorkers, hashedBufDepth, raw, func(c hashedChunk) (hashedChunk, error) {
		c.fp = fp.Of(c.data)
		return c, nil
	})
	// The sink reorders the (possibly out-of-order) hashed chunks back
	// into stream order and assembles indexing segments. A credit is
	// returned as soon as a chunk is handed to the session in order —
	// the session's segment buffer is bounded by SegmentChunks, not by
	// the credit cap.
	reorder := make(map[int]hashedChunk)
	next := 0
	pipeline.Sink(g, hashed, func(c hashedChunk) error {
		reorder[c.seq] = c
		for {
			item, ok := reorder[next]
			if !ok {
				return nil
			}
			delete(reorder, next)
			next++
			err := session.push(item)
			<-credits
			if err != nil {
				return err
			}
		}
	})
	if err := g.Wait(); err != nil {
		return backup.BackupReport{}, err
	}
	if err := session.flush(); err != nil {
		return backup.BackupReport{}, err
	}
	// Durable commit order: containers before the recipe. Sealing the
	// open container first means every chunk the recipe names is on disk
	// when the recipe appears — a crash between the two leaves an
	// orphaned container (wasted space), never a dangling recipe entry
	// (data loss). With async commit the barrier is the same fence: it
	// returns only when every queued container is durably in the store.
	if err := e.sealOpen(); err != nil {
		return backup.BackupReport{}, err
	}
	if e.writer != nil {
		w := e.writer
		e.writer = nil
		if err := w.Barrier(); err != nil {
			return backup.BackupReport{}, err
		}
	}
	if err := e.cfg.Recipes.Put(rec); err != nil {
		return backup.BackupReport{}, err
	}
	e.cfg.Index.EndVersion()
	e.cfg.Rewriter.EndVersion()
	e.nextVersion = v
	e.logicalBytes += session.logicalBytes
	e.storedBytes += session.storedBytes
	if e.mx != nil {
		e.mx.Versions.Inc()
		e.mx.LogicalBytes.Add(session.logicalBytes)
		e.mx.StoredBytes.Add(session.storedBytes)
		e.mx.Chunks.Add(uint64(session.chunks))
		e.mx.UniqueChunks.Add(uint64(session.uniqueChunks))
		ps := e.pool.Stats()
		e.mx.PoolInUse.Set(ps.InUse)
		e.mx.PoolInUseBytes.Set(ps.InUseBytes)
		e.mx.PoolSlabs.Set(int64(ps.SlabAllocs))
	}
	// The whole backup is one wall interval here (no sub-stage timing in
	// the baseline engine), so a stage record suffices.
	e.tracer.EmitStage("backup", nil, start, time.Since(start),
		map[string]int64{"version": int64(v), "bytes": int64(session.logicalBytes), "chunks": int64(session.chunks)})

	indexAfter := e.cfg.Index.Stats()
	rewriteAfter := e.cfg.Rewriter.Stats()
	return backup.BackupReport{
		Version:      v,
		LogicalBytes: session.logicalBytes,
		StoredBytes:  session.storedBytes,
		Chunks:       session.chunks,
		UniqueChunks: session.uniqueChunks,
		IndexStats:   diffIndexStats(indexBefore, indexAfter),
		RewriteStats: diffRewriteStats(rewriteBefore, rewriteAfter),
		Duration:     time.Since(start),
	}, nil
}

// backupSession accumulates one version's state.
type backupSession struct {
	engine *Engine
	recipe *recipe.Recipe

	seg []hashedChunk
	// placed maps fingerprints stored in this session to their container,
	// resolving intra-version pending duplicates.
	placed map[fp.FP]container.ID

	logicalBytes uint64
	storedBytes  uint64
	chunks       int
	uniqueChunks int
}

func (s *backupSession) push(c hashedChunk) error {
	s.seg = append(s.seg, c)
	if len(s.seg) >= s.engine.cfg.SegmentChunks {
		return s.processSegment()
	}
	return nil
}

func (s *backupSession) flush() error {
	if len(s.seg) == 0 {
		return nil
	}
	return s.processSegment()
}

func (s *backupSession) processSegment() error {
	e := s.engine
	seg := s.seg
	s.seg = nil
	if s.placed == nil {
		s.placed = make(map[fp.FP]container.ID)
	}

	refs := make([]index.ChunkRef, len(seg))
	for i, c := range seg {
		refs[i] = index.ChunkRef{FP: c.fp, Size: uint32(len(c.data))}
	}
	results := e.cfg.Index.Dedup(refs)

	view := make([]rewrite.Chunk, len(seg))
	for i, c := range seg {
		view[i] = rewrite.Chunk{
			FP:        c.fp,
			Size:      uint32(len(c.data)),
			Duplicate: results[i].Duplicate,
			CID:       results[i].CID,
		}
	}
	plan := e.cfg.Rewriter.Plan(view)

	cids := make([]container.ID, len(seg))
	for i, c := range seg {
		s.logicalBytes += uint64(len(c.data))
		s.chunks++
		switch {
		case !results[i].Duplicate || plan[i]:
			cid, err := e.store(c.fp, c.data)
			if err != nil {
				return err
			}
			cids[i] = cid
			s.placed[c.fp] = cid
			s.storedBytes += uint64(len(c.data))
			s.uniqueChunks++
		case results[i].CID != 0:
			cids[i] = results[i].CID
		default:
			cid, ok := s.placed[c.fp]
			if !ok {
				return fmt.Errorf("dedup: pending duplicate %s has no placement", c.fp.Short())
			}
			cids[i] = cid
		}
		s.recipe.Append(c.fp, uint32(len(c.data)), int32(cids[i]))
		// Duplicate, or copied into the open container by Add: either
		// way the pooled buffer is done.
		e.pool.Release(c.data)
	}
	e.cfg.Index.Commit(refs, cids)
	e.cfg.Rewriter.Committed(view, cids)
	return nil
}

// store appends a chunk payload to the open container, sealing and
// rotating it when full, and returns the container ID holding the chunk.
func (e *Engine) store(f fp.FP, data []byte) (container.ID, error) {
	if e.open != nil && !e.open.HasRoom(len(data)) {
		if err := e.sealOpen(); err != nil {
			return 0, err
		}
	}
	if e.open == nil {
		e.nextCID++
		e.open = container.NewWithCapacity(e.nextCID, e.cfg.ContainerCapacity)
	}
	if err := e.open.Add(f, data); err != nil {
		if errors.Is(err, container.ErrDuplicate) {
			// A rewritten duplicate may collide with a copy already in the
			// open container; referencing that copy is equivalent.
			return e.open.ID(), nil
		}
		return 0, err
	}
	return e.open.ID(), nil
}

func (e *Engine) sealOpen() error {
	if e.open == nil {
		return nil
	}
	if e.open.Len() == 0 {
		e.open = nil
		return nil
	}
	if e.writer != nil {
		// Sealed images handed to the background committer are
		// read-only until the barrier; this engine never mutates a
		// sealed container during a backup.
		if err := e.writer.Put(e.open); err != nil {
			return err
		}
		e.open = nil
		return nil
	}
	if err := e.cfg.Store.Put(e.open); err != nil {
		return err
	}
	e.open = nil
	return nil
}

// Restore implements backup.Engine.
func (e *Engine) Restore(ctx context.Context, version int, w io.Writer) (rep backup.RestoreReport, retErr error) {
	start := time.Now()
	span := e.tracer.Start("restore", nil)
	// Deferred so a recipe read or cache restore failure still closes
	// the span; failures carry an error attr.
	defer func() {
		if retErr != nil {
			span.SetAttr("error", 1)
		}
		span.End()
	}()
	rec, err := e.cfg.Recipes.Get(version)
	if err != nil {
		return backup.RestoreReport{}, err
	}
	if e.rmx != nil {
		e.rmx.RecipeReadNS.Observe(uint64(time.Since(start)))
	}
	// Observed above the prefetch layer, mirroring countingFetcher's
	// position, so the trace/registry/Stats read counts agree.
	fetch, done := restorecache.MaybePrefetchParallel(
		restorecache.StoreFetcher(e.cfg.Store), rec.Entries, e.cfg.PrefetchDepth, e.cfg.RestoreWorkers, e.rmx)
	defer done()
	fetch = restorecache.ObserveFetcher(fetch, e.rmx, e.tracer, span)
	out := w
	if e.cfg.RestoreWorkers > 1 {
		out = restorecache.NewParallelWriter(w, restorecache.ParallelOptions{
			Workers: e.cfg.RestoreWorkers,
			Metrics: e.rmx,
			Tracer:  e.tracer,
			Span:    span,
		})
	}
	stats, err := e.cfg.RestoreCache.Restore(ctx, rec.Entries, fetch, out)
	if err != nil {
		return backup.RestoreReport{}, err
	}
	if e.rmx != nil {
		e.rmx.Restores.Inc()
		e.rmx.BytesRestored.Add(stats.BytesRestored)
		e.rmx.CacheHits.Add(stats.CacheHits)
		e.rmx.Chunks.Add(stats.Chunks)
	}
	span.SetAttr("version", int64(version))
	span.SetAttr("bytes", int64(stats.BytesRestored))
	span.SetAttr("container_reads", int64(stats.ContainerReads))
	return backup.RestoreReport{
		Version:  version,
		Stats:    stats,
		Duration: time.Since(start),
	}, nil
}

// Delete implements backup.Engine: the traditional mark-and-sweep path
// the paper contrasts with HiDeStore's free deletion (§5.5). Every
// remaining recipe is scanned to build the live set, then every container
// is swept: dead chunks are dropped, emptied containers deleted, partially
// dead containers compacted and rewritten.
func (e *Engine) Delete(version int) (backup.DeleteReport, error) {
	start := time.Now()
	report := backup.DeleteReport{Version: version}
	present, err := e.cfg.Recipes.Has(version)
	if err != nil {
		return report, err
	}
	if !present {
		return report, fmt.Errorf("%w: version %d", recipe.ErrNotFound, version)
	}
	// Durable commit order (reverse of Backup's): the recipe goes first,
	// so a crash mid-sweep leaves orphaned chunks (reclaimed by a later
	// delete's sweep), never a listed version with missing chunks.
	if err := e.cfg.Recipes.Delete(version); err != nil {
		return report, err
	}
	// Mark: every chunk referenced by any remaining version.
	live := make(map[fp.FP]struct{})
	remaining, err := e.cfg.Recipes.Versions()
	if err != nil {
		return report, err
	}
	for _, v := range remaining {
		rec, err := e.cfg.Recipes.Get(v)
		if err != nil {
			return report, err
		}
		report.ChunksScanned += rec.NumChunks()
		for _, entry := range rec.Entries {
			live[entry.FP] = struct{}{}
		}
	}
	// Sweep: every container.
	stored, err := e.cfg.Store.IDs()
	if err != nil {
		return report, err
	}
	for _, cid := range stored {
		//hidelint:ignore accounting garbage-collection sweep, not a restore; reads here are deletion cost, not restore cost
		ctn, err := e.cfg.Store.Get(cid)
		if err != nil {
			return report, err
		}
		dead := 0
		var deadBytes uint64
		fps := ctn.Fingerprints()
		report.ChunksScanned += len(fps)
		for _, f := range fps {
			if _, ok := live[f]; ok {
				continue
			}
			entry, _ := ctn.Entry(f)
			deadBytes += uint64(entry.Size)
			dead++
		}
		switch {
		case dead == 0:
			continue
		case dead == len(fps):
			if err := e.cfg.Store.Delete(cid); err != nil {
				return report, err
			}
			report.ContainersDeleted++
		default:
			// Compact the survivors into a rewritten container image.
			kept := ctn.Clone()
			for _, f := range fps {
				if _, ok := live[f]; !ok {
					if err := kept.Remove(f); err != nil {
						return report, err
					}
				}
			}
			if err := e.cfg.Store.Put(kept.Compacted(cid)); err != nil {
				return report, err
			}
			report.ContainersRewritten++
		}
		report.BytesReclaimed += deadBytes
		e.storedBytes -= deadBytes
	}
	report.Duration = time.Since(start)
	return report, nil
}

// Versions implements backup.Engine. An enumeration failure yields an
// empty list; Stats().Degraded carries the underlying error.
func (e *Engine) Versions() []int {
	vs, err := e.cfg.Recipes.Versions()
	if err != nil {
		return nil
	}
	sort.Ints(vs)
	return vs
}

// Stats implements backup.Engine. Fields that cannot be computed are
// left zero and named in Degraded.
func (e *Engine) Stats() backup.Stats {
	s := backup.Stats{
		LogicalBytes:  e.logicalBytes,
		StoredBytes:   e.storedBytes,
		IndexStats:    e.cfg.Index.Stats(),
		IndexMemBytes: e.cfg.Index.MemoryBytes(),
		RewriteStats:  e.cfg.Rewriter.Stats(),
	}
	if vs, err := e.cfg.Recipes.Versions(); err != nil {
		s.Degraded = append(s.Degraded, fmt.Sprintf("versions: %v", err))
	} else {
		s.Versions = len(vs)
	}
	if n, err := e.cfg.Store.Len(); err != nil {
		s.Degraded = append(s.Degraded, fmt.Sprintf("containers: %v", err))
	} else {
		s.Containers = n
	}
	return s
}

func diffIndexStats(before, after index.Stats) index.Stats {
	return index.Stats{
		Lookups:        after.Lookups - before.Lookups,
		DiskLookups:    after.DiskLookups - before.DiskLookups,
		CacheHits:      after.CacheHits - before.CacheHits,
		Duplicates:     after.Duplicates - before.Duplicates,
		Uniques:        after.Uniques - before.Uniques,
		DuplicateBytes: after.DuplicateBytes - before.DuplicateBytes,
		UniqueBytes:    after.UniqueBytes - before.UniqueBytes,
	}
}

func diffRewriteStats(before, after rewrite.Stats) rewrite.Stats {
	return rewrite.Stats{
		Duplicates:      after.Duplicates - before.Duplicates,
		Rewritten:       after.Rewritten - before.Rewritten,
		RewrittenBytes:  after.RewrittenBytes - before.RewrittenBytes,
		DuplicateBytes:  after.DuplicateBytes - before.DuplicateBytes,
		SegmentsPlanned: after.SegmentsPlanned - before.SegmentsPlanned,
	}
}
