package dedup

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/iotest"

	"hidestore/internal/backup/backuptest"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/recipe"
)

// TestIntraVersionDuplicates: a stream repeating the same content within
// one version must store it once and restore exactly.
func TestIntraVersionDuplicates(t *testing.T) {
	e, _, _ := newTestEngine(t, "ddfs", nil)
	rng := rand.New(rand.NewSource(9))
	blockA := make([]byte, 40<<10)
	rng.Read(blockA)
	stream := bytes.Join([][]byte{blockA, blockA, blockA}, nil)
	rep, err := e.Backup(context.Background(), bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	// Three copies: roughly one third should be stored (boundary chunks
	// around the joins differ).
	if rep.StoredBytes > rep.LogicalBytes/2 {
		t.Fatalf("stored %d of %d bytes; intra-version dedup failed", rep.StoredBytes, rep.LogicalBytes)
	}
	backuptest.CheckRestoreOne(t, e, 1, stream)
}

// TestReaderErrorPropagates: a failing source must abort the backup with
// the original error, and the engine must remain usable.
func TestReaderErrorPropagates(t *testing.T) {
	e, _, _ := newTestEngine(t, "ddfs", nil)
	boom := errors.New("source exploded")
	src := io.MultiReader(bytes.NewReader(make([]byte, 64<<10)), iotest.ErrReader(boom))
	if _, err := e.Backup(context.Background(), src); !errors.Is(err, boom) {
		t.Fatalf("got %v, want source error", err)
	}
	// The engine is still usable for a clean backup afterwards.
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(1, 0))
	if _, err := e.Backup(context.Background(), bytes.NewReader(versions[0])); err != nil {
		t.Fatal(err)
	}
}

// TestContextCancellation: a cancelled context aborts the backup.
func TestContextCancellation(t *testing.T) {
	e, _, _ := newTestEngine(t, "ddfs", nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// An infinite reader: only cancellation can stop this backup.
	infinite := io.LimitReader(neverEnding{}, 1<<30)
	if _, err := e.Backup(ctx, infinite); err == nil {
		t.Fatal("cancelled backup should fail")
	}
}

type neverEnding struct{}

func (neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(i)
	}
	return len(p), nil
}

// TestDeleteReclaimsAcrossContainers: deleting all versions one by one
// empties the store completely.
func TestDeleteEverything(t *testing.T) {
	e, store, _ := newTestEngine(t, "ddfs", nil)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(4, 0))
	backuptest.BackupAll(t, e, versions)
	for v := 1; v <= 4; v++ {
		if _, err := e.Delete(v); err != nil {
			t.Fatalf("delete v%d: %v", v, err)
		}
	}
	if n, err := store.Len(); err != nil || n != 0 {
		t.Fatalf("%d containers survive deleting every version (err %v)", n, err)
	}
	if got := e.Stats().StoredBytes; got != 0 {
		t.Fatalf("StoredBytes = %d after deleting everything", got)
	}
}

// TestDeleteUnknownVersionFails covers the missing-version path.
func TestDeleteUnknownVersionFails(t *testing.T) {
	e, _, _ := newTestEngine(t, "ddfs", nil)
	if _, err := e.Delete(3); err == nil {
		t.Fatal("deleting an unknown version should fail")
	}
}

// TestCheckHealthyAndBroken covers the baseline fsck.
func TestCheckHealthyAndBroken(t *testing.T) {
	e, store, _ := newTestEngine(t, "ddfs", nil)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(3, 0))
	backuptest.BackupAll(t, e, versions)
	rep, err := e.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("healthy store has problems: %v", rep.Problems)
	}
	if rep.Versions != 3 || rep.Containers == 0 {
		t.Fatalf("report %+v", rep)
	}
	// Break it: drop a container.
	ids, err := store.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	rep, err = e.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("missing container went undetected")
	}
}

// TestPerVersionReportDiffs: per-version index stats are deltas, not
// cumulative totals.
func TestPerVersionReportDiffs(t *testing.T) {
	e, _, _ := newTestEngine(t, "ddfs", nil)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(3, 0))
	reports := backuptest.BackupAll(t, e, versions)
	var sum uint64
	for _, rep := range reports {
		sum += rep.IndexStats.Lookups
	}
	if total := e.cfg.Index.Stats().Lookups; total != sum {
		t.Fatalf("per-version lookups sum %d != cumulative %d", sum, total)
	}
}

// TestSegmentBoundarySmall: segment size 1 exercises per-chunk commits.
func TestSegmentBoundarySmall(t *testing.T) {
	store, recipes := newStores(t)
	e, err := New(Config{
		Index:             newIndex(t, "ddfs"),
		Store:             store,
		Recipes:           recipes,
		ContainerCapacity: 64 << 10,
		SegmentChunks:     1,
		ChunkParams:       testChunkParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(3, 0))
	backuptest.BackupAll(t, e, versions)
	backuptest.CheckRestoreAll(t, e, versions)
}

// newStores and testChunkParams are small helpers for bespoke configs.
func newStores(t testing.TB) (*container.MemStore, *recipe.MemStore) {
	t.Helper()
	return container.NewMemStore(), recipe.NewMemStore()
}

func testChunkParams() chunker.Params {
	return chunker.Params{Min: 1024, Avg: 2048, Max: 8192}
}
