package dedup

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"hidestore/internal/backup/backuptest"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/index"
	"hidestore/internal/index/ddfs"
	"hidestore/internal/index/extbin"
	"hidestore/internal/index/silo"
	"hidestore/internal/index/sparse"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
	"hidestore/internal/rewrite"
)

func newIndex(t testing.TB, name string) index.Index {
	t.Helper()
	switch name {
	case "ddfs":
		ix, err := ddfs.New(ddfs.Options{ExpectedChunks: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	case "sparse":
		ix, err := sparse.New(sparse.Options{SampleBits: 3})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	case "silo":
		ix, err := silo.New(silo.Options{SegmentsPerBlock: 4})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	case "extbin":
		ix, err := extbin.New(extbin.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	default:
		t.Fatalf("unknown index %q", name)
		return nil
	}
}

func newTestEngine(t testing.TB, indexName string, rw rewrite.Rewriter) (*Engine, *container.MemStore, *recipe.MemStore) {
	t.Helper()
	store := container.NewMemStore()
	recipes := recipe.NewMemStore()
	e, err := New(Config{
		Index:             newIndex(t, indexName),
		Rewriter:          rw,
		Store:             store,
		Recipes:           recipes,
		ContainerCapacity: 64 << 10,
		SegmentChunks:     64,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
		RestoreCache:      restorecache.NewFAA(1 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, store, recipes
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing Index should fail")
	}
	ix := newIndex(t, "ddfs")
	if _, err := New(Config{Index: ix}); err == nil {
		t.Fatal("missing Store should fail")
	}
	if _, err := New(Config{Index: ix, Store: container.NewMemStore()}); err == nil {
		t.Fatal("missing Recipes should fail")
	}
}

// TestBackupRestoreAllIndexes runs the full cycle under each baseline
// index.
func TestBackupRestoreAllIndexes(t *testing.T) {
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(6, 0))
	for _, name := range []string{"ddfs", "sparse", "silo", "extbin"} {
		t.Run(name, func(t *testing.T) {
			e, _, _ := newTestEngine(t, name, nil)
			backuptest.BackupAll(t, e, versions)
			backuptest.CheckRestoreAll(t, e, versions)
		})
	}
}

// TestBackupRestoreAllRewriters runs the full cycle under each rewriting
// scheme (with DDFS indexing, so only rewriting varies).
func TestBackupRestoreAllRewriters(t *testing.T) {
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(6, 0))
	for _, name := range []string{"none", "capping", "cbr", "cfl", "fbw", "har"} {
		t.Run(name, func(t *testing.T) {
			rw, err := rewrite.New(name)
			if err != nil {
				t.Fatal(err)
			}
			if c, ok := rw.(*rewrite.Capping); ok {
				c.Cap = 4 // small cap for small containers
			}
			e, _, _ := newTestEngine(t, "ddfs", rw)
			backuptest.BackupAll(t, e, versions)
			backuptest.CheckRestoreAll(t, e, versions)
		})
	}
}

// TestBackupRestoreAllRestoreCaches verifies each restore cache against
// the same stored state.
func TestBackupRestoreAllRestoreCaches(t *testing.T) {
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(5, 0))
	for _, name := range []string{"container-lru", "chunk-lru", "faa", "alacc", "opt"} {
		t.Run(name, func(t *testing.T) {
			rc, err := restorecache.New(name)
			if err != nil {
				t.Fatal(err)
			}
			store := container.NewMemStore()
			recipes := recipe.NewMemStore()
			e, err := New(Config{
				Index:             newIndex(t, "ddfs"),
				Store:             store,
				Recipes:           recipes,
				ContainerCapacity: 64 << 10,
				SegmentChunks:     64,
				ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
				RestoreCache:      rc,
			})
			if err != nil {
				t.Fatal(err)
			}
			backuptest.BackupAll(t, e, versions)
			backuptest.CheckRestoreAll(t, e, versions)
		})
	}
}

// TestExactDedupRatio: DDFS must eliminate every repeated byte across two
// identical backups.
func TestExactDedupRatio(t *testing.T) {
	e, _, _ := newTestEngine(t, "ddfs", nil)
	data := backuptest.Materialize(t, backuptest.SmallWorkload(1, 0))[0]
	r1, err := e.Backup(context.Background(), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r1.StoredBytes != r1.LogicalBytes {
		t.Fatalf("first backup should store everything: %+v", r1)
	}
	r2, err := e.Backup(context.Background(), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StoredBytes != 0 {
		t.Fatalf("identical second backup stored %d bytes, want 0", r2.StoredBytes)
	}
	if r2.DedupRatio() != 1 {
		t.Fatalf("DedupRatio = %v, want 1", r2.DedupRatio())
	}
}

// TestRewritingCostsSpace: capping must store more than exact dedup on a
// fragmented workload (the Figure 8 trade-off).
func TestRewritingCostsSpace(t *testing.T) {
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(8, 0))
	exact, _, _ := newTestEngine(t, "ddfs", nil)
	backuptest.BackupAll(t, exact, versions)
	capping, _, _ := newTestEngine(t, "ddfs", rewrite.NewCapping(2))
	backuptest.BackupAll(t, capping, versions)
	if capping.Stats().StoredBytes <= exact.Stats().StoredBytes {
		t.Fatalf("capping stored %d bytes, exact stored %d: rewriting must cost space",
			capping.Stats().StoredBytes, exact.Stats().StoredBytes)
	}
	if capping.Stats().RewriteStats.Rewritten == 0 {
		t.Fatal("capping never rewrote on a fragmented workload")
	}
}

// TestDeleteMarkSweep exercises the baseline GC path: space is reclaimed,
// the effort is proportional to everything stored, and remaining versions
// survive.
func TestDeleteMarkSweep(t *testing.T) {
	e, store, _ := newTestEngine(t, "ddfs", nil)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(6, 0))
	backuptest.BackupAll(t, e, versions)
	containersBefore, err := store.Len()
	if err != nil {
		t.Fatal(err)
	}

	rep, err := e.Delete(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksScanned == 0 {
		t.Fatal("mark-and-sweep must scan chunk references")
	}
	if rep.BytesReclaimed == 0 {
		t.Fatal("deleting a version with exclusive chunks should reclaim space")
	}
	if rep.ContainersDeleted == 0 && rep.ContainersRewritten == 0 {
		t.Fatal("sweep should touch containers")
	}
	_ = containersBefore
	for v := 2; v <= 6; v++ {
		backuptest.CheckRestoreOne(t, e, v, versions[v-1])
	}
	// Double delete fails.
	if _, err := e.Delete(1); err == nil {
		t.Fatal("double delete should fail")
	}
}

// TestDeleteMiddleVersionAllowed: unlike HiDeStore, the baseline can
// delete any version (at GC cost).
func TestDeleteMiddleVersionAllowed(t *testing.T) {
	e, _, _ := newTestEngine(t, "ddfs", nil)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(5, 0))
	backuptest.BackupAll(t, e, versions)
	if _, err := e.Delete(3); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{1, 2, 4, 5} {
		backuptest.CheckRestoreOne(t, e, v, versions[v-1])
	}
}

func TestFragmentationGrowsOverVersions(t *testing.T) {
	e, _, recipes := newTestEngine(t, "ddfs", nil)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(10, 0))
	backuptest.BackupAll(t, e, versions)
	// The container spread of version 10 must exceed that of version 2:
	// fragmentation accumulates (Figure 2).
	early, err := recipes.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	late, err := recipes.Get(10)
	if err != nil {
		t.Fatal(err)
	}
	if late.UniqueContainers() <= early.UniqueContainers() {
		t.Fatalf("containers referenced: v2=%d v10=%d; fragmentation should grow",
			early.UniqueContainers(), late.UniqueContainers())
	}
}

func TestStatsAccumulate(t *testing.T) {
	e, _, _ := newTestEngine(t, "ddfs", nil)
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(3, 0))
	reports := backuptest.BackupAll(t, e, versions)
	st := e.Stats()
	var logical uint64
	for _, rep := range reports {
		logical += rep.LogicalBytes
	}
	if st.LogicalBytes != logical {
		t.Fatalf("LogicalBytes = %d, want %d", st.LogicalBytes, logical)
	}
	if st.Versions != 3 || st.Containers == 0 || st.IndexMemBytes == 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestEmptyVersion(t *testing.T) {
	e, _, _ := newTestEngine(t, "ddfs", nil)
	rep, err := e.Backup(context.Background(), strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks != 0 {
		t.Fatalf("empty backup: %+v", rep)
	}
	var buf bytes.Buffer
	if _, err := e.Restore(context.Background(), 1, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("empty version should restore empty")
	}
}

func TestRestoreUnknownVersion(t *testing.T) {
	e, _, _ := newTestEngine(t, "ddfs", nil)
	var buf bytes.Buffer
	if _, err := e.Restore(context.Background(), 4, &buf); err == nil {
		t.Fatal("restore of unknown version should fail")
	}
}

func TestFileBackedRoundTrip(t *testing.T) {
	store, err := container.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recipes, err := recipe.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Index:             newIndex(t, "ddfs"),
		Store:             store,
		Recipes:           recipes,
		ContainerCapacity: 64 << 10,
		SegmentChunks:     64,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 2048, Max: 8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	versions := backuptest.Materialize(t, backuptest.SmallWorkload(4, 0))
	backuptest.BackupAll(t, e, versions)
	backuptest.CheckRestoreAll(t, e, versions)
}
