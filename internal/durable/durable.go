// Package durable holds the fsync discipline of the persistence layer.
//
// The stores' temp-file-plus-rename writes are atomic against process
// crashes, but not against power loss: without an fsync of the file the
// rename can become durable before the data blocks it points at, leaving
// a complete-looking file full of garbage; without an fsync of the parent
// directory the rename (or a remove) itself can vanish. Every durable
// commit in the tree — container images, recipes, the engine state file —
// therefore goes through WriteFileAtomic/Remove here, so the crash
// contract is stated once: after a crash, a committed path holds either
// its old content or its new content in full, never a prefix.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hidestore/internal/cleanup"
)

// TempPrefix is the name prefix of in-flight write temp files; stale
// ones (from a crashed writer) are what SweepTemp removes.
const TempPrefix = "tmp-"

// SweepTemp removes stale tmp-* files left in dir by writes that
// crashed between CreateTemp and Rename, returning how many were
// removed. Call at store open, before any concurrent writers exist —
// a live writer's temp file is indistinguishable from a stale one.
func SweepTemp(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("durable: list %s: %w", dir, err)
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), TempPrefix) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			return removed, fmt.Errorf("durable: sweep %s: %w", e.Name(), err)
		}
		removed++
	}
	if removed == 0 {
		return 0, nil
	}
	return removed, SyncDir(dir)
}

// WriteFileAtomic writes data to path durably: a same-directory temp
// file is written and fsynced, renamed over path, and the parent
// directory is fsynced so the rename survives power loss.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("durable: temp file for %s: %w", filepath.Base(path), err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		cleanup.Close(tmp)
		cleanup.Remove(tmpName)
		return fmt.Errorf("durable: write %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup.Close(tmp)
		cleanup.Remove(tmpName)
		return fmt.Errorf("durable: sync %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		cleanup.Remove(tmpName)
		return fmt.Errorf("durable: close %s: %w", filepath.Base(path), err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		cleanup.Remove(tmpName)
		return fmt.Errorf("durable: chmod %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup.Remove(tmpName)
		return fmt.Errorf("durable: rename %s: %w", filepath.Base(path), err)
	}
	return SyncDir(dir)
}

// Remove deletes path and fsyncs its parent directory, so the removal
// is durable. A missing path is returned as the os.Remove error,
// untouched, letting callers keep their fs.ErrNotExist handling.
func Remove(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// Rename renames old to new and fsyncs the destination's parent
// directory (both paths must share it for the sync to cover the
// source's disappearance, which is how the stores use it).
func Rename(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(newpath))
}

// SyncDir fsyncs a directory, making renames and removals inside it
// durable. Platforms whose directory handles reject fsync (some
// network filesystems) surface their error — silently succeeding here
// would void the crash contract.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		cleanup.Close(d)
		return fmt.Errorf("durable: sync dir %s: %w", dir, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("durable: close dir %s: %w", dir, err)
	}
	return nil
}
