package durable

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	want := []byte("first contents")
	if err := WriteFileAtomic(path, want, 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Fatalf("perm = %o, want 600", perm)
	}
	// No temp debris after a successful commit.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries after one write, want 1", len(entries))
	}
}

func TestWriteFileAtomicOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := WriteFileAtomic(path, []byte("old old old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("read back %q after overwrite, want %q", got, "new")
	}
}

func TestRemove(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doomed")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("file survived Remove: %v", err)
	}
	// Missing paths surface the raw os.Remove error so callers keep
	// their fs.ErrNotExist handling.
	if err := Remove(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Remove of missing path = %v, want fs.ErrNotExist", err)
	}
}

func TestRename(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "a")
	newPath := filepath.Join(dir, "b")
	if err := os.WriteFile(oldPath, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Rename(oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(oldPath); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("source still present after Rename")
	}
	got, err := os.ReadFile(newPath)
	if err != nil || string(got) != "payload" {
		t.Fatalf("destination = %q, %v", got, err)
	}
}

func TestSweepTemp(t *testing.T) {
	dir := t.TempDir()
	// Two stale temps, one committed file, one directory whose name
	// matches the prefix (must survive: stores never create those).
	for _, name := range []string{TempPrefix + "123", TempPrefix + "abc"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "c_0001.hds"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, TempPrefix+"dir"), 0o755); err != nil {
		t.Fatal(err)
	}

	n, err := SweepTemp(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("swept %d files, want 2", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var left []string
	for _, e := range entries {
		left = append(left, e.Name())
	}
	if len(left) != 2 {
		t.Fatalf("left = %v, want the committed file and the directory", left)
	}

	// Idempotent: nothing left to sweep.
	if n, err := SweepTemp(dir); err != nil || n != 0 {
		t.Fatalf("second sweep: n=%d err=%v", n, err)
	}
}

func TestSweepTempMissingDir(t *testing.T) {
	if _, err := SweepTemp(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("sweep of missing dir = %v, want fs.ErrNotExist", err)
	}
}
