package experiments

import (
	"fmt"

	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/core"
	"hidestore/internal/metrics"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
	"hidestore/internal/workload"
)

// The ablations probe the design choices DESIGN.md calls out: the
// fingerprint-cache window (§4.1), the active-container merge threshold
// (§4.2), the container size (§2.1), the chunking algorithm (§5.1), and
// the restore cache (§5.3). None of these appear as figures in the paper;
// they quantify the sensitivity of its headline results.

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Param string
	Value string
	// DedupRatio after the full chain.
	DedupRatio float64
	// NewestSF and OldestSF are restore speed factors for the last and
	// first version.
	NewestSF float64
	OldestSF float64
	// NewestMS is the newest version's restore wall-clock in
	// milliseconds — the quantity prefetching moves (speed factors, an
	// I/O count, are prefetch-invariant by design).
	NewestMS float64
	// Containers in the store at the end.
	Containers int
}

// AblationResult is one swept parameter.
type AblationResult struct {
	Workload string
	Param    string
	Rows     []AblationRow
}

// runHidestoreConfig backs up the chain under one HiDeStore configuration
// and measures the ablation metrics.
func runHidestoreConfig(cfg workload.Config, o Options, window int, mergeUtil float64,
	ctnCapacity int, alg chunker.Algorithm, rc restorecache.Cache, prefetch int) (AblationRow, error) {
	e, err := core.New(core.Config{
		Store:             container.NewMemStore(),
		Recipes:           recipe.NewMemStore(),
		ContainerCapacity: ctnCapacity,
		Window:            window,
		MergeUtilization:  mergeUtil,
		ChunkParams:       o.ChunkParams,
		Chunker:           alg,
		RestoreCache:      rc,
		PrefetchDepth:     prefetch,
		Metrics:           o.Metrics,
	})
	if err != nil {
		return AblationRow{}, err
	}
	if _, err := backupAllVersions(e, cfg); err != nil {
		return AblationRow{}, err
	}
	newest, err := restoreDiscard(e, cfg.Versions)
	if err != nil {
		return AblationRow{}, err
	}
	oldest, err := restoreDiscard(e, 1)
	if err != nil {
		return AblationRow{}, err
	}
	st := e.Stats()
	return AblationRow{
		DedupRatio: st.DedupRatio(),
		NewestSF:   newest.Stats.SpeedFactor(),
		OldestSF:   oldest.Stats.SpeedFactor(),
		NewestMS:   float64(newest.Duration.Microseconds()) / 1000,
		Containers: st.Containers,
	}, nil
}

// AblationWindow sweeps the fingerprint-cache window. Expected: window 2
// recovers dedup ratio on flapping (macos-like) workloads and changes
// little elsewhere; very large windows delay cold migration and dilute the
// newest version's locality.
func AblationWindow(workloadName string, opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Workload: cfg.Name, Param: "window"}
	for _, w := range []int{1, 2, 3, 5} {
		row, err := runHidestoreConfig(cfg, opts, w, 0.5, opts.ContainerCapacity,
			chunker.FastCDC, restorecache.NewFAA(0), 0)
		if err != nil {
			return nil, fmt.Errorf("window %d: %w", w, err)
		}
		row.Param, row.Value = "window", fmt.Sprintf("%d", w)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationMergeThreshold sweeps the active-container merge utilization.
// Expected: 0 (never merge) leaves sparse active containers and hurts the
// newest version's speed factor; aggressive merging buys locality with
// more maintenance copying.
func AblationMergeThreshold(workloadName string, opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Workload: cfg.Name, Param: "merge-utilization"}
	for _, u := range []float64{0.01, 0.25, 0.5, 0.75, 0.95} {
		row, err := runHidestoreConfig(cfg, opts, cacheWindow(cfg), u, opts.ContainerCapacity,
			chunker.FastCDC, restorecache.NewFAA(0), 0)
		if err != nil {
			return nil, fmt.Errorf("merge %.2f: %w", u, err)
		}
		row.Param, row.Value = "merge-utilization", fmt.Sprintf("%.2f", u)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationContainerSize sweeps the container capacity. Expected: bigger
// containers raise the best-case speed factor linearly but amplify read
// waste once fragmentation appears — the paper fixes 4 MB for parity with
// prior work.
func AblationContainerSize(workloadName string, opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Workload: cfg.Name, Param: "container-size"}
	for _, size := range []int{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20} {
		row, err := runHidestoreConfig(cfg, opts, cacheWindow(cfg), 0.5, size,
			chunker.FastCDC, restorecache.NewFAA(0), 0)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", size, err)
		}
		row.Param, row.Value = "container-size", metrics.FormatBytes(uint64(size))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationChunker compares chunking algorithms end to end. Expected:
// content-defined chunkers deduplicate comparably; fixed-size chunking
// loses heavily to boundary shift on insert-heavy workloads.
func AblationChunker(workloadName string, opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Workload: cfg.Name, Param: "chunker"}
	for _, alg := range []chunker.Algorithm{chunker.Fixed, chunker.Rabin, chunker.TTTD, chunker.FastCDC, chunker.AE} {
		row, err := runHidestoreConfig(cfg, opts, cacheWindow(cfg), 0.5, opts.ContainerCapacity,
			alg, restorecache.NewFAA(0), 0)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", alg, err)
		}
		row.Param, row.Value = "chunker", alg.String()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationRestoreCache compares restore caches on the same HiDeStore
// store, including the clairvoyant OPT upper bound.
func AblationRestoreCache(workloadName string, opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Workload: cfg.Name, Param: "restore-cache"}
	for _, name := range []string{"container-lru", "chunk-lru", "faa", "alacc", "opt"} {
		rc, err := restorecache.New(name)
		if err != nil {
			return nil, err
		}
		row, err := runHidestoreConfig(cfg, opts, cacheWindow(cfg), 0.5, opts.ContainerCapacity,
			chunker.FastCDC, rc, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		row.Param, row.Value = "restore-cache", name
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationPrefetchDepth sweeps the restore read-ahead window. Expected:
// speed factors and container counts are bit-identical at every depth
// (prefetch only reorders when container reads happen, never which);
// wall clock improves with depth until the store's parallelism is
// saturated. -1 is the serial baseline.
func AblationPrefetchDepth(workloadName string, opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Workload: cfg.Name, Param: "prefetch-depth"}
	for _, depth := range []int{-1, 1, 2, 4, 8, 16} {
		row, err := runHidestoreConfig(cfg, opts, cacheWindow(cfg), 0.5, opts.ContainerCapacity,
			chunker.FastCDC, restorecache.NewFAA(0), depth)
		if err != nil {
			return nil, fmt.Errorf("prefetch %d: %w", depth, err)
		}
		row.Param, row.Value = "prefetch-depth", fmt.Sprintf("%d", depth)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the row with the given value, or nil.
func (r *AblationResult) Row(value string) *AblationRow {
	for i := range r.Rows {
		if r.Rows[i].Value == value {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render formats the sweep.
func (r *AblationResult) Render() string {
	t := metrics.NewTable(fmt.Sprintf("Ablation (%s): %s", r.Workload, r.Param),
		r.Param, "dedup ratio", "newest SF", "oldest SF", "restore ms", "containers")
	for _, row := range r.Rows {
		t.AddRow(row.Value,
			metrics.FormatPercent(row.DedupRatio),
			metrics.FormatFloat(row.NewestSF),
			metrics.FormatFloat(row.OldestSF),
			metrics.FormatFloat(row.NewestMS),
			fmt.Sprintf("%d", row.Containers))
	}
	return t.Render()
}
