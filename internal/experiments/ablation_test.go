package experiments

import (
	"strings"
	"testing"
)

func ablationOptions() Options {
	o := testOptions()
	o.Versions = 6
	return o
}

func TestAblationWindow(t *testing.T) {
	res, err := AblationWindow("macos", ablationOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// On a flapping workload, window 2 must improve the dedup ratio over
	// window 1 (the §4.1 macos argument).
	w1, w2 := res.Row("1"), res.Row("2")
	if w1 == nil || w2 == nil {
		t.Fatal("rows missing")
	}
	if w2.DedupRatio <= w1.DedupRatio {
		t.Errorf("window 2 ratio %.4f should beat window 1 %.4f on macos",
			w2.DedupRatio, w1.DedupRatio)
	}
	if !strings.Contains(res.Render(), "window") {
		t.Fatal("render malformed")
	}
}

func TestAblationMergeThreshold(t *testing.T) {
	res, err := AblationMergeThreshold("kernel", ablationOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Merging sparse actives must help the newest version's locality:
	// near-disabled merging (0.01) should not beat aggressive merging
	// (0.75) on newest-version speed factor.
	off, on := res.Row("0.01"), res.Row("0.75")
	if off == nil || on == nil {
		t.Fatal("rows missing")
	}
	if off.NewestSF > on.NewestSF*1.05 {
		t.Errorf("no-merge newest SF %.3f should not beat merging %.3f", off.NewestSF, on.NewestSF)
	}
	// Dedup ratio must be unaffected by merging (it only moves chunks).
	if diff := off.DedupRatio - on.DedupRatio; diff > 0.001 || diff < -0.001 {
		t.Errorf("merging changed dedup ratio: %.4f vs %.4f", off.DedupRatio, on.DedupRatio)
	}
}

func TestAblationContainerSize(t *testing.T) {
	res, err := AblationContainerSize("kernel", ablationOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Bigger containers must raise the newest version's speed factor
	// (more MB per read) and cannot change the dedup ratio.
	small, big := res.Rows[0], res.Rows[len(res.Rows)-1]
	if big.NewestSF <= small.NewestSF {
		t.Errorf("4MB containers newest SF %.3f should beat 256KB %.3f", big.NewestSF, small.NewestSF)
	}
	if diff := big.DedupRatio - small.DedupRatio; diff > 0.001 || diff < -0.001 {
		t.Errorf("container size changed dedup ratio")
	}
}

func TestAblationChunker(t *testing.T) {
	res, err := AblationChunker("gcc", ablationOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	fixed := res.Row("fixed")
	if fixed == nil {
		t.Fatal("fixed row missing")
	}
	// Every content-defined chunker must beat fixed-size chunking on an
	// insert-heavy workload (boundary shift).
	for _, name := range []string{"rabin", "tttd", "fastcdc", "ae"} {
		row := res.Row(name)
		if row == nil {
			t.Fatalf("%s row missing", name)
		}
		if row.DedupRatio <= fixed.DedupRatio {
			t.Errorf("%s ratio %.4f should beat fixed %.4f", name, row.DedupRatio, fixed.DedupRatio)
		}
	}
}

func TestAblationPrefetchDepth(t *testing.T) {
	res, err := AblationPrefetchDepth("kernel", ablationOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The defining property of restore read-ahead: every accounting
	// metric is bit-identical at every depth, including the serial
	// baseline (-1). Prefetch moves reads earlier, it never adds or
	// removes them.
	base := res.Rows[0]
	for _, row := range res.Rows[1:] {
		if row.NewestSF != base.NewestSF || row.OldestSF != base.OldestSF {
			t.Errorf("depth %s changed speed factor: newest %.4f/%.4f oldest %.4f/%.4f",
				row.Value, row.NewestSF, base.NewestSF, row.OldestSF, base.OldestSF)
		}
		if row.DedupRatio != base.DedupRatio {
			t.Errorf("depth %s changed dedup ratio: %.6f vs %.6f",
				row.Value, row.DedupRatio, base.DedupRatio)
		}
	}
	rendered := res.Render()
	if !strings.Contains(rendered, "prefetch-depth") || !strings.Contains(rendered, "restore ms") {
		t.Fatalf("render missing columns:\n%s", rendered)
	}
}

func TestAblationRestoreCache(t *testing.T) {
	res, err := AblationRestoreCache("kernel", ablationOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := res.Row("opt")
	if opt == nil {
		t.Fatal("opt row missing")
	}
	// The clairvoyant cache upper-bounds the oldest version's speed
	// factor among container-granularity schemes.
	lru := res.Row("container-lru")
	if lru != nil && lru.OldestSF > opt.OldestSF*1.01 {
		t.Errorf("container-lru oldest SF %.3f beats OPT %.3f", lru.OldestSF, opt.OldestSF)
	}
	// Dedup ratio is a write-path property: identical across restore
	// caches.
	for _, row := range res.Rows[1:] {
		if diff := row.DedupRatio - res.Rows[0].DedupRatio; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("restore cache changed dedup ratio: %v", row)
		}
	}
}
