package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"hidestore/internal/backup"
	"hidestore/internal/bufpool"
	"hidestore/internal/chunker"
	"hidestore/internal/metrics"
	"hidestore/internal/workload"
)

// BackupPerfSchemes are the end-to-end backup throughput contenders:
// HiDeStore and the exact-dedup baseline. Unlike Throughput (which
// sweeps every Figure 8 scheme), this experiment is the allocation and
// throughput trajectory for the write hot path, so it keeps the scheme
// set small and adds allocator accounting.
var BackupPerfSchemes = []string{"hidestore", "ddfs"}

// BackupPerfSweep is the lanes × workers grid appended to the scheme
// rows: HiDeStore re-run with multi-lane chunking and parallel hash
// workers over the sharded fingerprint cache. Labels read
// "hidestore-l<lanes>w<workers>". Wall-clock scaling tracks the
// capture host's core count — on a single-CPU host the extra lanes
// only add coordination cost — while allocs/chunk must hold steady at
// every point.
var BackupPerfSweep = []struct{ Lanes, Workers int }{
	{1, 4}, {2, 4}, {4, 4}, {8, 4},
}

// BackupPerfRow is one scheme's end-to-end backup cost on the
// memory-backed store: wall-clock MB/s plus heap allocations per chunk
// (runtime.MemStats mallocs over the whole run divided by chunks
// processed — the end-to-end per-chunk path, not just the chunker).
type BackupPerfRow struct {
	Scheme         string
	MBPerSec       float64
	LogicalBytes   uint64
	Chunks         int
	AllocsPerChunk float64
	Duration       time.Duration
}

// BackupPerfResult compares the write hot path on one workload.
type BackupPerfResult struct {
	Workload string
	Rows     []BackupPerfRow
}

// BackupPerf measures end-to-end backup throughput and allocator
// pressure for a full version chain on the memory-backed store. The
// store is memory-backed on purpose: with I/O out of the picture, the
// numbers isolate the CPU side (chunking, hashing, lookup, container
// packing) that the allocation-free chunk path targets.
func BackupPerf(workloadName string, opts Options) (*BackupPerfResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	type contender struct {
		label string
		build func() (backup.Engine, error)
	}
	var runs []contender
	for _, scheme := range BackupPerfSchemes {
		scheme := scheme
		switch scheme {
		case "hidestore":
			runs = append(runs, contender{scheme, func() (backup.Engine, error) { return hidestoreEngine(opts, cfg) }})
		default:
			runs = append(runs, contender{scheme, func() (backup.Engine, error) { return baselineEngine(opts, scheme, "none", "faa") }})
		}
	}
	for _, pt := range BackupPerfSweep {
		pt := pt
		runs = append(runs, contender{
			fmt.Sprintf("hidestore-l%dw%d", pt.Lanes, pt.Workers),
			func() (backup.Engine, error) { return hidestoreEngineTuned(opts, cfg, pt.Lanes, pt.Workers) },
		})
	}

	res := &BackupPerfResult{Workload: cfg.Name}
	for _, run := range runs {
		e, err := run.build()
		if err != nil {
			return nil, err
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		reports, err := backupAllVersions(e, cfg)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", workloadName, run.label, err)
		}
		row := BackupPerfRow{Scheme: run.label, Duration: elapsed}
		for _, rep := range reports {
			row.Chunks += rep.Chunks
			row.LogicalBytes += rep.LogicalBytes
		}
		if elapsed > 0 {
			row.MBPerSec = float64(row.LogicalBytes) / (1 << 20) / elapsed.Seconds()
		}
		if row.Chunks > 0 {
			row.AllocsPerChunk = float64(after.Mallocs-before.Mallocs) / float64(row.Chunks)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Extras flattens the rows into scalar metrics for BENCH_<exp>.json.
func (r *BackupPerfResult) Extras() map[string]float64 {
	out := map[string]float64{}
	for _, row := range r.Rows {
		out["backup_mb_per_sec_"+row.Scheme] = row.MBPerSec
		out["allocs_per_chunk_"+row.Scheme] = row.AllocsPerChunk
	}
	return out
}

// Render formats the comparison.
func (r *BackupPerfResult) Render() string {
	t := metrics.NewTable(fmt.Sprintf("Backup hot path (%s)", r.Workload),
		"scheme", "MB/s", "chunks", "allocs/chunk", "logical", "wall time")
	for _, row := range r.Rows {
		t.AddRow(row.Scheme,
			metrics.FormatFloat(row.MBPerSec),
			fmt.Sprintf("%d", row.Chunks),
			fmt.Sprintf("%.2f", row.AllocsPerChunk),
			metrics.FormatBytes(row.LogicalBytes),
			row.Duration.Round(time.Millisecond).String())
	}
	return t.Render()
}

// ChunkerAlgorithms are benchmarked in declaration order.
var ChunkerAlgorithms = []chunker.Algorithm{
	chunker.Fixed, chunker.Rabin, chunker.TTTD, chunker.FastCDC, chunker.AE,
}

// ChunkerRow is one algorithm's scanning cost over a realistic stream.
type ChunkerRow struct {
	Algorithm      string
	MBPerSec       float64
	Chunks         int
	AvgChunkBytes  float64
	AllocsPerChunk float64
	Duration       time.Duration
}

// ChunkersResult holds the per-algorithm chunking microbenchmark.
type ChunkersResult struct {
	Bytes int64 // bytes scanned per algorithm (all passes)
	Rows  []ChunkerRow
}

// chunkerPasses is how many times each algorithm re-scans the stream;
// multiple passes amortize setup and steady the timing.
const chunkerPasses = 3

// Chunkers measures every chunking algorithm's scan throughput and
// allocations per chunk over the first version of the kernel preset —
// the isolated per-chunk path the tentpole's ≥10× allocation target is
// pinned against.
func Chunkers(opts Options) (*ChunkersResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload("kernel")
	if err != nil {
		return nil, err
	}
	g, err := workload.New(cfg)
	if err != nil {
		return nil, err
	}
	r, err := g.NextVersion()
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	res := &ChunkersResult{Bytes: int64(len(data)) * chunkerPasses}
	for _, alg := range ChunkerAlgorithms {
		row, err := chunkerRow(alg, data, opts.ChunkParams)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// chunkerRow scans data chunkerPasses times with one algorithm in the
// production backup configuration — pooled buffers, filled by Next and
// released after use — so the measured allocs/chunk is the hot loop's,
// not the throwaway-buffer path's.
func chunkerRow(alg chunker.Algorithm, data []byte, p chunker.Params) (ChunkerRow, error) {
	row := ChunkerRow{Algorithm: alg.String()}
	pool := bufpool.New(p.Max)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for pass := 0; pass < chunkerPasses; pass++ {
		ch, err := chunker.NewPooled(alg, bytes.NewReader(data), p, pool)
		if err != nil {
			return row, err
		}
		for {
			chunk, err := ch.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return row, err
			}
			row.Chunks++
			pool.Release(chunk)
		}
	}
	row.Duration = time.Since(start)
	runtime.ReadMemStats(&after)
	if row.Duration > 0 {
		row.MBPerSec = float64(len(data)) * chunkerPasses / (1 << 20) / row.Duration.Seconds()
	}
	if row.Chunks > 0 {
		row.AvgChunkBytes = float64(len(data)) * chunkerPasses / float64(row.Chunks)
		row.AllocsPerChunk = float64(after.Mallocs-before.Mallocs) / float64(row.Chunks)
	}
	return row, nil
}

// Extras flattens the rows into scalar metrics for BENCH_<exp>.json.
func (r *ChunkersResult) Extras() map[string]float64 {
	out := map[string]float64{}
	for _, row := range r.Rows {
		out["mb_per_sec_"+row.Algorithm] = row.MBPerSec
		out["allocs_per_chunk_"+row.Algorithm] = row.AllocsPerChunk
		out["avg_chunk_bytes_"+row.Algorithm] = row.AvgChunkBytes
	}
	return out
}

// Render formats the microbenchmark.
func (r *ChunkersResult) Render() string {
	t := metrics.NewTable(fmt.Sprintf("Chunker scan (%s over %d passes)",
		metrics.FormatBytes(uint64(r.Bytes)), chunkerPasses),
		"algorithm", "MB/s", "chunks", "avg chunk", "allocs/chunk")
	for _, row := range r.Rows {
		t.AddRow(row.Algorithm,
			metrics.FormatFloat(row.MBPerSec),
			fmt.Sprintf("%d", row.Chunks),
			fmt.Sprintf("%.0f B", row.AvgChunkBytes),
			fmt.Sprintf("%.2f", row.AllocsPerChunk))
	}
	return t.Render()
}
