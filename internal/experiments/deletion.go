package experiments

import (
	"fmt"
	"time"

	"hidestore/internal/backup"
	"hidestore/internal/metrics"
)

// DeletionRow is one scheme's cost for expiring old versions (§5.5).
type DeletionRow struct {
	Scheme          string
	VersionsDeleted int
	// ChunksScanned is the reference-detection effort (zero for
	// HiDeStore).
	ChunksScanned int
	// ContainersDeleted and ContainersRewritten describe the sweep.
	ContainersDeleted   int
	ContainersRewritten int
	BytesReclaimed      uint64
	TotalDuration       time.Duration
}

// DeletionResult compares deletion costs on one workload.
type DeletionResult struct {
	Workload string
	Rows     []DeletionRow
}

// Deletion reproduces the §5.5 comparison: back up a version chain on the
// exact-dedup baseline and on HiDeStore, then expire the oldest versions
// from both. The baseline must detect exclusive chunks by scanning every
// remaining recipe and garbage-collect containers; HiDeStore drops whole
// archival containers.
//
// Expected shape: HiDeStore's scanned-chunk count is zero and its latency
// near zero; the baseline's effort is proportional to everything stored.
func Deletion(workloadName string, deleteCount int, opts Options) (*DeletionResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	if deleteCount <= 0 {
		deleteCount = cfg.Versions / 2
	}
	window := cacheWindow(cfg)
	if deleteCount > cfg.Versions-window {
		deleteCount = cfg.Versions - window
	}
	res := &DeletionResult{Workload: cfg.Name}
	schemes := []struct {
		label string
		build func() (backup.Engine, error)
	}{
		{"baseline-gc", func() (backup.Engine, error) { return baselineEngine(opts, "ddfs", "none", "faa") }},
		{"hidestore", func() (backup.Engine, error) { return hidestoreEngine(opts, cfg) }},
	}
	for _, s := range schemes {
		e, err := s.build()
		if err != nil {
			return nil, err
		}
		if _, err := backupAllVersions(e, cfg); err != nil {
			return nil, fmt.Errorf("%s: %w", s.label, err)
		}
		row := DeletionRow{Scheme: s.label}
		start := time.Now()
		for v := 1; v <= deleteCount; v++ {
			rep, err := e.Delete(v)
			if err != nil {
				return nil, fmt.Errorf("%s: delete v%d: %w", s.label, v, err)
			}
			row.VersionsDeleted++
			row.ChunksScanned += rep.ChunksScanned
			row.ContainersDeleted += rep.ContainersDeleted
			row.ContainersRewritten += rep.ContainersRewritten
			row.BytesReclaimed += rep.BytesReclaimed
		}
		row.TotalDuration = time.Since(start)
		// The remaining versions must still restore.
		latest := cfg.Versions
		if _, err := restoreDiscard(e, latest); err != nil {
			return nil, fmt.Errorf("%s: restore v%d after deletion: %w", s.label, latest, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the row for a scheme, or nil.
func (r *DeletionResult) Row(scheme string) *DeletionRow {
	for i := range r.Rows {
		if r.Rows[i].Scheme == scheme {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render formats the deletion comparison.
func (r *DeletionResult) Render() string {
	t := metrics.NewTable(fmt.Sprintf("§5.5 deletion cost (%s)", r.Workload),
		"scheme", "versions deleted", "chunks scanned", "containers deleted",
		"containers rewritten", "reclaimed", "total time")
	for _, row := range r.Rows {
		t.AddRow(row.Scheme,
			fmt.Sprintf("%d", row.VersionsDeleted),
			fmt.Sprintf("%d", row.ChunksScanned),
			fmt.Sprintf("%d", row.ContainersDeleted),
			fmt.Sprintf("%d", row.ContainersRewritten),
			metrics.FormatBytes(row.BytesReclaimed),
			row.TotalDuration.String())
	}
	return t.Render()
}
