// Package experiments reproduces every table and figure of the paper's
// evaluation (§5) on the synthetic workloads:
//
//	Figure 3  — chunk counts per version tag (the heuristic experiment)
//	Table 1   — workload characteristics
//	Figure 8  — deduplication ratios across schemes
//	Figure 9  — index lookup overhead (lookups per GB) across schemes
//	Figure 10 — index-table space overhead across schemes
//	Figure 11 — restore speed factor across schemes and versions
//	Figure 12 — HiDeStore maintenance overheads
//	§5.5      — deletion cost, HiDeStore vs mark-and-sweep GC
//
// Each runner returns a structured result with a Render method producing
// the same rows/series the paper reports. Absolute numbers differ from the
// paper (different hardware, synthetic data, scaled sizes); the *shapes* —
// who wins, by what rough factor, where curves cross — are the
// reproduction targets and are asserted in the test suite.
package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"hidestore/internal/backup"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/core"
	"hidestore/internal/dedup"
	"hidestore/internal/fp"
	"hidestore/internal/index"
	"hidestore/internal/index/ddfs"
	"hidestore/internal/index/extbin"
	"hidestore/internal/index/silo"
	"hidestore/internal/index/sparse"
	"hidestore/internal/obs"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
	"hidestore/internal/rewrite"
	"hidestore/internal/workload"
)

// Options tunes experiment scale. The zero value gives a laptop-friendly
// configuration.
type Options struct {
	// ScaleMB is the approximate per-version size in MB (default 4).
	ScaleMB int
	// Versions caps the number of versions per workload (0 = the
	// preset's full count, which can take minutes per figure).
	Versions int
	// ContainerCapacity in bytes (default 1 MB at experiment scale, so
	// container counts stay meaningful on scaled-down versions; pass
	// container.DefaultCapacity for the paper's 4 MB).
	ContainerCapacity int
	// ChunkParams defaults to 2/4/16 KB (the paper's).
	ChunkParams chunker.Params
	// Metrics, when non-nil, is threaded into every engine the
	// experiment builds, so callers (cmd/bench -json) can export
	// machine-readable counters and per-stage latency histograms for
	// the run. Counters accumulate across schemes and workloads within
	// one experiment.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.ScaleMB <= 0 {
		o.ScaleMB = 4
	}
	if o.ContainerCapacity <= 0 {
		o.ContainerCapacity = 1 << 20
	}
	if o.ChunkParams == (chunker.Params{}) {
		o.ChunkParams = chunker.DefaultParams()
	}
	return o
}

// loadWorkload resolves a preset and applies the version cap.
func (o Options) loadWorkload(name string) (workload.Config, error) {
	cfg, err := workload.Preset(name, o.ScaleMB)
	if err != nil {
		return cfg, err
	}
	if o.Versions > 0 && o.Versions < cfg.Versions {
		cfg.Versions = o.Versions
	}
	return cfg, nil
}

// cacheWindow returns HiDeStore's fingerprint-cache window for a
// workload: 2 for macos-like flapping datasets, 1 otherwise (§4.1).
func cacheWindow(cfg workload.Config) int {
	if cfg.FlapRate > 0 {
		return 2
	}
	return 1
}

// forEachVersion streams every version of cfg through fn.
func forEachVersion(cfg workload.Config, fn func(v int, r io.Reader) error) error {
	g, err := workload.New(cfg)
	if err != nil {
		return err
	}
	for g.HasNext() {
		r, err := g.NextVersion()
		if err != nil {
			return err
		}
		if err := fn(g.Version(), r); err != nil {
			return err
		}
	}
	return nil
}

// chunkRefs splits a stream into fingerprinted chunk references without
// retaining payloads — the metadata-only fast path used by the index
// experiments (Figures 3, 9, 10).
func chunkRefs(r io.Reader, params chunker.Params) ([]index.ChunkRef, error) {
	ch, err := chunker.New(chunker.FastCDC, r, params)
	if err != nil {
		return nil, err
	}
	var refs []index.ChunkRef
	for {
		data, err := ch.Next()
		if errors.Is(err, io.EOF) {
			return refs, nil
		}
		if err != nil {
			return nil, err
		}
		refs = append(refs, index.ChunkRef{FP: fp.Of(data), Size: uint32(len(data))})
	}
}

// newBaselineIndex builds a baseline index by name. The in-memory caches
// are scaled down with the experiments: at paper scale (tens of GB, 4 MB
// containers) DDFS's 256 MB locality cache covers 1-2 % of the dataset;
// the same coverage at laptop scale means a handful of container groups,
// not the production default of 64 — otherwise DDFS's lookup overhead
// vanishes and Figure 9's ordering cannot reproduce.
func newBaselineIndex(name string) (index.Index, error) {
	switch name {
	case "ddfs":
		return ddfs.New(ddfs.Options{CacheContainers: 4})
	case "sparse":
		return sparse.New(sparse.Options{})
	case "silo":
		return silo.New(silo.Options{CacheBlocks: 4})
	case "extbin":
		return extbin.New(extbin.Options{})
	case "hidestore":
		return core.NewIndexView(1), nil
	default:
		return nil, fmt.Errorf("experiments: unknown index %q", name)
	}
}

// placementSim assigns container IDs the way the write path would: unique
// chunks pack into fixed-capacity containers; duplicates keep their
// existing location. It lets index experiments run without storing chunk
// payloads.
type placementSim struct {
	capacity int
	used     int
	open     container.ID
	next     container.ID
}

func newPlacementSim(capacity int) *placementSim {
	return &placementSim{capacity: capacity}
}

// place returns final container IDs for one classified segment.
func (p *placementSim) place(seg []index.ChunkRef, results []index.Result, session map[fp.FP]container.ID) []container.ID {
	cids := make([]container.ID, len(seg))
	for i, res := range results {
		switch {
		case !res.Duplicate:
			if p.open == 0 || p.used+int(seg[i].Size) > p.capacity {
				p.next++
				p.open = p.next
				p.used = 0
			}
			p.used += int(seg[i].Size)
			cids[i] = p.open
			session[seg[i].FP] = p.open
		case res.CID != 0:
			cids[i] = res.CID
		default:
			cids[i] = session[seg[i].FP]
		}
	}
	return cids
}

// baselineEngine assembles a dedup.Engine from component names.
func baselineEngine(o Options, indexName, rewriterName, cacheName string) (backup.Engine, error) {
	ix, err := newBaselineIndex(indexName)
	if err != nil {
		return nil, err
	}
	rw, err := rewrite.New(rewriterName)
	if err != nil {
		return nil, err
	}
	if c, ok := rw.(*rewrite.Capping); ok {
		// Scale the cap with the container size so capping stays
		// meaningful on scaled-down experiments (the paper caps per
		// 20 MB segment at 4 MB containers).
		c.Cap = 10
	}
	if cbr, ok := rw.(*rewrite.CBR); ok {
		cbr.ContainerCapacity = o.ContainerCapacity
	}
	if cfl, ok := rw.(*rewrite.CFL); ok {
		cfl.ContainerCapacity = o.ContainerCapacity
	}
	if har, ok := rw.(*rewrite.HAR); ok {
		har.ContainerCapacity = o.ContainerCapacity
	}
	rc, err := restorecache.New(cacheName)
	if err != nil {
		return nil, err
	}
	return dedup.New(dedup.Config{
		Index:             ix,
		Rewriter:          rw,
		RestoreCache:      rc,
		Store:             container.NewMemStore(),
		Recipes:           recipe.NewMemStore(),
		ContainerCapacity: o.ContainerCapacity,
		ChunkParams:       o.ChunkParams,
		Chunker:           chunker.FastCDC,
		Metrics:           o.Metrics,
	})
}

// hidestoreEngine assembles a core.Engine for a workload.
func hidestoreEngine(o Options, w workload.Config) (backup.Engine, error) {
	return core.New(core.Config{
		Store:             container.NewMemStore(),
		Recipes:           recipe.NewMemStore(),
		ContainerCapacity: o.ContainerCapacity,
		Window:            cacheWindow(w),
		ChunkParams:       o.ChunkParams,
		Chunker:           chunker.FastCDC,
		RestoreCache:      restorecache.NewFAA(0),
		Metrics:           o.Metrics,
	})
}

// hidestoreEngineTuned is hidestoreEngine with the ingest-parallelism
// knobs set: multi-lane chunking, hash workers, and the default shard
// count on the fingerprint cache (the BackupPerf sweep rows).
func hidestoreEngineTuned(o Options, w workload.Config, lanes, workers int) (backup.Engine, error) {
	return core.New(core.Config{
		Store:             container.NewMemStore(),
		Recipes:           recipe.NewMemStore(),
		ContainerCapacity: o.ContainerCapacity,
		Window:            cacheWindow(w),
		ChunkParams:       o.ChunkParams,
		Chunker:           chunker.FastCDC,
		ChunkLanes:        lanes,
		HashWorkers:       workers,
		RestoreCache:      restorecache.NewFAA(0),
		Metrics:           o.Metrics,
	})
}

// backupAllVersions runs a full version chain through an engine.
func backupAllVersions(e backup.Engine, cfg workload.Config) ([]backup.BackupReport, error) {
	var reports []backup.BackupReport
	err := forEachVersion(cfg, func(v int, r io.Reader) error {
		rep, err := e.Backup(context.Background(), r)
		if err != nil {
			return fmt.Errorf("backup v%d: %w", v, err)
		}
		reports = append(reports, rep)
		return nil
	})
	return reports, err
}

// restoreDiscard restores a version into a discarding writer, returning
// the restore report.
func restoreDiscard(e backup.Engine, version int) (backup.RestoreReport, error) {
	return e.Restore(context.Background(), version, io.Discard)
}

// restoreVerify restores and checks the bytes against want.
func restoreVerify(e backup.Engine, version int, want []byte) (backup.RestoreReport, error) {
	var buf bytes.Buffer
	rep, err := e.Restore(context.Background(), version, &buf)
	if err != nil {
		return rep, err
	}
	if !bytes.Equal(buf.Bytes(), want) {
		return rep, fmt.Errorf("experiments: version %d restored incorrectly", version)
	}
	return rep, nil
}
