package experiments

import (
	"strings"
	"testing"

	"hidestore/internal/chunker"
)

// testOptions keeps experiment tests fast: ~2 MB versions, 8 versions,
// small containers and chunks.
func testOptions() Options {
	return Options{
		ScaleMB:           2,
		Versions:          8,
		ContainerCapacity: 256 << 10,
		ChunkParams:       chunker.Params{Min: 1024, Avg: 4096, Max: 16384},
	}
}

func TestLoadWorkloadCapsVersions(t *testing.T) {
	opts := testOptions()
	cfg, err := opts.loadWorkload("kernel")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Versions != 8 {
		t.Fatalf("Versions = %d, want 8", cfg.Versions)
	}
	if _, err := opts.loadWorkload("bogus"); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

// TestFigure3Shape asserts the §3 observation: chunks that leave the
// stream at version t+1 almost never reappear, so the drop in tag-t
// population happens within one version (two for macos).
func TestFigure3Shape(t *testing.T) {
	res, err := Figure3("kernel", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Versions != 8 {
		t.Fatalf("Versions = %d", res.Versions)
	}
	// Tag 1 population must drop at version 2 and then plateau.
	v1 := res.Counts[0]
	if v1[0] == 0 {
		t.Fatal("no chunks after version 1")
	}
	if v1[1] >= v1[0] {
		t.Fatalf("V1 chunks did not drop at version 2: %v", v1)
	}
	for _, tag := range []int{1, 2, 3} {
		if ratio := res.PlateauRatio(tag, 1); ratio < 0.85 {
			t.Errorf("tag %d: only %.0f%% of the drop within one version; want ≥85%%", tag, ratio*100)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "V1") {
		t.Fatal("render output malformed")
	}
}

// TestFigure3MacOSNeedsTwoVersions asserts the Figure 3d anomaly: with
// flapping chunks, a one-version window misses part of the drop that a
// two-version window captures.
func TestFigure3MacOSNeedsTwoVersions(t *testing.T) {
	res, err := Figure3("macos", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var oneWin, twoWin float64
	for _, tag := range []int{1, 2, 3} {
		oneWin += res.PlateauRatio(tag, 1)
		twoWin += res.PlateauRatio(tag, 2)
	}
	if twoWin <= oneWin {
		t.Fatalf("two-version window (%.2f) should capture more of the drop than one (%.2f)",
			twoWin/3, oneWin/3)
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TotalBytes == 0 || row.Versions != 8 {
			t.Fatalf("row %+v malformed", row)
		}
		if row.DedupRatio < 0.3 || row.DedupRatio > 0.99 {
			t.Fatalf("%s dedup ratio %.2f implausible", row.Workload, row.DedupRatio)
		}
	}
	// gcc must be the least redundant workload, as in Table 1.
	ratios := make(map[string]float64)
	for _, row := range res.Rows {
		ratios[row.Workload] = row.DedupRatio
	}
	if ratios["gcc"] >= ratios["kernel"] || ratios["gcc"] >= ratios["fslhomes"] {
		t.Fatalf("gcc should have the lowest dedup ratio: %v", ratios)
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Fatal("render malformed")
	}
}

// TestFigure8Shape asserts the dedup-ratio ordering of §5.2.1.
func TestFigure8Shape(t *testing.T) {
	res, err := Figure8([]string{"kernel"}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ddfs := res.Ratio("kernel", "ddfs")
	hide := res.Ratio("kernel", "hidestore")
	silo := res.Ratio("kernel", "silo")
	sparse := res.Ratio("kernel", "sparse")
	capping := res.Ratio("kernel", "capping")
	fbw := res.Ratio("kernel", "alacc-fbw")
	if ddfs <= 0 {
		t.Fatalf("ddfs ratio missing: %+v", res.Rows)
	}
	// HiDeStore ≈ DDFS (within 2 points).
	if hide < ddfs-0.02 {
		t.Errorf("hidestore %.4f should be within 2 points of ddfs %.4f", hide, ddfs)
	}
	// Nothing beats exact dedup.
	for _, r := range []float64{hide, silo, sparse, capping, fbw} {
		if r > ddfs+1e-9 {
			t.Errorf("some scheme (%.4f) beats exact dedup (%.4f)", r, ddfs)
		}
	}
	// Rewriting costs ratio relative to its own base (silo).
	if capping >= silo {
		t.Errorf("capping %.4f should lose ratio against silo %.4f", capping, silo)
	}
	if !strings.Contains(res.Render(), "Figure 8") {
		t.Fatal("render malformed")
	}
}

// TestFigure9Shape asserts the lookup-overhead ordering of §5.2.2.
func TestFigure9Shape(t *testing.T) {
	res, err := Figure9("kernel", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	hide := res.SchemeSeries("hidestore")
	dd := res.SchemeSeries("ddfs")
	if hide == nil || dd == nil {
		t.Fatal("series missing")
	}
	if hide.TotalDiskLookups != 0 {
		t.Fatalf("hidestore performed %d disk lookups, want 0", hide.TotalDiskLookups)
	}
	if dd.TotalDiskLookups == 0 {
		t.Fatal("ddfs should pay disk lookups on duplicates")
	}
	for _, scheme := range []string{"ddfs", "sparse", "silo"} {
		s := res.SchemeSeries(scheme)
		if s.TotalDiskLookups < hide.TotalDiskLookups {
			t.Errorf("%s beat hidestore on lookups", scheme)
		}
	}
	if !strings.Contains(res.Render(), "Figure 9") {
		t.Fatal("render malformed")
	}
}

// TestFigure10Shape asserts the index-memory ordering of §5.2.3.
func TestFigure10Shape(t *testing.T) {
	res, err := Figure10("kernel", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	hide := res.Final("hidestore")
	dd := res.Final("ddfs")
	sp := res.Final("sparse")
	si := res.Final("silo")
	if hide != 0 {
		t.Fatalf("hidestore index bytes/MB = %v, want 0", hide)
	}
	if dd <= sp || dd <= si {
		t.Fatalf("ddfs (%.1f) should dominate sparse (%.1f) and silo (%.1f)", dd, sp, si)
	}
	if !strings.Contains(res.Render(), "Figure 10") {
		t.Fatal("render malformed")
	}
}

// TestFigure11Shape asserts the §5.3 restore ordering: HiDeStore wins on
// the newest versions; the baseline decays with fragmentation.
func TestFigure11Shape(t *testing.T) {
	res, err := Figure11("kernel", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Figure11Schemes {
		if len(res.SpeedFactor[scheme]) != 8 {
			t.Fatalf("%s curve has %d points, want 8", scheme, len(res.SpeedFactor[scheme]))
		}
	}
	hideNew := res.Newest("hidestore")
	baseNew := res.Newest("baseline")
	fbwNew := res.Newest("alacc-fbw")
	if hideNew <= baseNew {
		t.Errorf("hidestore newest %.2f should beat baseline %.2f", hideNew, baseNew)
	}
	if hideNew < fbwNew {
		t.Errorf("hidestore newest %.2f should be at least ALACC+FBW %.2f", hideNew, fbwNew)
	}
	// The baseline's speed factor must decay from version 1 to the end
	// (fragmentation accumulates).
	if res.Oldest("baseline") <= res.Newest("baseline") {
		t.Errorf("baseline should decay over versions: v1 %.2f, v8 %.2f",
			res.Oldest("baseline"), res.Newest("baseline"))
	}
	if !strings.Contains(res.Render(), "Figure 11") {
		t.Fatal("render malformed")
	}
}

// TestFigure12Shape asserts maintenance overheads are recorded and
// bounded.
func TestFigure12Shape(t *testing.T) {
	res, err := Figure12([]string{"kernel"}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.MeanMigrate <= 0 || row.MeanRecipeUpdate <= 0 {
		t.Fatalf("maintenance latencies not recorded: %+v", row)
	}
	if row.FlattenLatency <= 0 {
		t.Fatalf("flatten latency not recorded: %+v", row)
	}
	if !strings.Contains(res.Render(), "Figure 12") {
		t.Fatal("render malformed")
	}
}

// TestDeletionShape asserts the §5.5 contrast: HiDeStore deletes without
// scanning or rewriting; the baseline pays for GC.
func TestDeletionShape(t *testing.T) {
	res, err := Deletion("kernel", 4, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	hide := res.Row("hidestore")
	base := res.Row("baseline-gc")
	if hide == nil || base == nil {
		t.Fatal("rows missing")
	}
	if hide.ChunksScanned != 0 {
		t.Fatalf("hidestore scanned %d chunks, want 0", hide.ChunksScanned)
	}
	if hide.ContainersRewritten != 0 {
		t.Fatalf("hidestore rewrote %d containers, want 0", hide.ContainersRewritten)
	}
	if base.ChunksScanned == 0 {
		t.Fatal("baseline GC should scan references")
	}
	if hide.VersionsDeleted != 4 || base.VersionsDeleted != 4 {
		t.Fatalf("deleted %d/%d versions, want 4/4", hide.VersionsDeleted, base.VersionsDeleted)
	}
	if hide.BytesReclaimed == 0 || base.BytesReclaimed == 0 {
		t.Fatal("both schemes should reclaim space")
	}
	if !strings.Contains(res.Render(), "deletion cost") {
		t.Fatal("render malformed")
	}
}

// TestThroughputShape: all schemes complete and report sane throughput;
// HiDeStore should not be slower than DDFS (it does strictly less work
// per chunk).
func TestThroughputShape(t *testing.T) {
	res, err := Throughput("kernel", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Figure8Schemes) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MBPerSec <= 0 || row.LogicalBytes == 0 {
			t.Fatalf("row %+v implausible", row)
		}
	}
	if !strings.Contains(res.Render(), "throughput") {
		t.Fatal("render malformed")
	}
}
