package experiments

import (
	"fmt"
	"io"

	"hidestore/internal/backup"
	"hidestore/internal/metrics"
	"hidestore/internal/workload"
)

// Figure11Schemes are the restore contenders in the paper's order (§5.3):
// the no-rewrite baseline with FAA (destor's default restore cache),
// capping with FAA, the ALACC+FBW combination (the strongest published
// baseline) and HiDeStore.
var Figure11Schemes = []string{"baseline", "capping", "alacc-fbw", "hidestore"}

// Figure11Result holds per-scheme speed-factor curves for one workload.
type Figure11Result struct {
	Workload string
	Schemes  []string
	// SpeedFactor[scheme][v-1] is MB per container read restoring version
	// v after the full chain was backed up.
	SpeedFactor map[string][]float64
}

func buildFigure11Engine(o Options, w workload.Config, scheme string) (backup.Engine, error) {
	switch scheme {
	case "baseline":
		return baselineEngine(o, "ddfs", "none", "faa")
	case "capping":
		return baselineEngine(o, "ddfs", "capping", "faa")
	case "alacc-fbw":
		return baselineEngine(o, "ddfs", "fbw", "alacc")
	case "hidestore":
		return hidestoreEngine(o, w)
	default:
		return nil, fmt.Errorf("experiments: unknown Figure 11 scheme %q", scheme)
	}
}

// Figure11 measures restore speed factors: each scheme backs up the whole
// version chain, then every version is restored (and byte-verified
// against the regenerated original) while counting container reads.
//
// Expected shape (§5.3): the baseline decays steadily as fragmentation
// accumulates; capping and ALACC+FBW decay more slowly at the cost of
// dedup ratio; HiDeStore is the best on the newest versions (up to ~1.6×
// ALACC) while trading away some speed on the oldest versions, whose
// chunks it deliberately exiles to archival containers.
func Figure11(workloadName string, opts Options) (*Figure11Result, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	res := &Figure11Result{
		Workload:    cfg.Name,
		Schemes:     Figure11Schemes,
		SpeedFactor: make(map[string][]float64),
	}
	for _, scheme := range Figure11Schemes {
		e, err := buildFigure11Engine(opts, cfg, scheme)
		if err != nil {
			return nil, err
		}
		if _, err := backupAllVersions(e, cfg); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", workloadName, scheme, err)
		}
		// Regenerate the workload to verify restored bytes version by
		// version (the generator is deterministic).
		gen, err := workload.New(cfg)
		if err != nil {
			return nil, err
		}
		curve := make([]float64, 0, cfg.Versions)
		for gen.HasNext() {
			r, err := gen.NextVersion()
			if err != nil {
				return nil, err
			}
			want, err := io.ReadAll(r)
			if err != nil {
				return nil, err
			}
			rep, err := restoreVerify(e, gen.Version(), want)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", workloadName, scheme, err)
			}
			curve = append(curve, rep.Stats.SpeedFactor())
		}
		res.SpeedFactor[scheme] = curve
	}
	return res, nil
}

// Newest returns a scheme's speed factor on the final version.
func (r *Figure11Result) Newest(scheme string) float64 {
	curve := r.SpeedFactor[scheme]
	if len(curve) == 0 {
		return 0
	}
	return curve[len(curve)-1]
}

// Oldest returns a scheme's speed factor on version 1.
func (r *Figure11Result) Oldest(scheme string) float64 {
	curve := r.SpeedFactor[scheme]
	if len(curve) == 0 {
		return 0
	}
	return curve[0]
}

// Render formats the speed-factor curves (Figure 11a-d).
func (r *Figure11Result) Render() string {
	f := metrics.Figure{
		Title:  fmt.Sprintf("Figure 11 (%s): restore performance", r.Workload),
		XLabel: "version",
		YLabel: "speed factor (MB/container-read)",
	}
	for _, scheme := range r.Schemes {
		f.AddSeries(scheme, r.SpeedFactor[scheme])
	}
	return f.Render()
}
