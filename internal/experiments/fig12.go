package experiments

import (
	"fmt"
	"time"

	"hidestore/internal/metrics"
	"hidestore/internal/workload"
)

// Figure12Row is one workload's HiDeStore maintenance cost (§5.4).
type Figure12Row struct {
	Workload string
	Versions int
	// MeanRecipeUpdate is the mean per-version latency of updating the
	// previous recipe.
	MeanRecipeUpdate time.Duration
	// MeanMigrate is the mean per-version latency of moving cold chunks
	// and merging sparse containers.
	MeanMigrate time.Duration
	// FlattenLatency is one offline Algorithm 1 pass over the whole
	// recipe chain (run before restoring version 1).
	FlattenLatency time.Duration
	// MeanVersionBytes for context.
	MeanVersionBytes uint64
}

// Figure12Result holds maintenance overheads per workload.
type Figure12Result struct {
	Rows []Figure12Row
}

// Figure12 measures HiDeStore's two overhead sources — updating recipes
// and moving chunks from active to archival containers — on full engine
// runs, plus one offline recipe-flattening pass (§5.4's Figure 12).
//
// Expected shape: both latencies are small (milliseconds at paper scale)
// and track the per-version data size, because the work is bounded by one
// version's chunks and one recipe, never by the dataset.
func Figure12(workloads []string, opts Options) (*Figure12Result, error) {
	opts = opts.withDefaults()
	if len(workloads) == 0 {
		workloads = workload.PresetNames()
	}
	res := &Figure12Result{}
	for _, name := range workloads {
		cfg, err := opts.loadWorkload(name)
		if err != nil {
			return nil, err
		}
		e, err := hidestoreEngine(opts, cfg)
		if err != nil {
			return nil, err
		}
		reports, err := backupAllVersions(e, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		var recipeSum, migrateSum time.Duration
		var bytesSum uint64
		for _, rep := range reports {
			recipeSum += rep.RecipeUpdateDuration
			migrateSum += rep.MigrateDuration
			bytesSum += rep.LogicalBytes
		}
		n := len(reports)
		// One offline Algorithm 1 pass before restoring the oldest
		// version measures the flattening cost.
		rep, err := restoreDiscard(e, 1)
		if err != nil {
			return nil, fmt.Errorf("%s: restore v1: %w", name, err)
		}
		res.Rows = append(res.Rows, Figure12Row{
			Workload:         cfg.Name,
			Versions:         n,
			MeanRecipeUpdate: recipeSum / time.Duration(n),
			MeanMigrate:      migrateSum / time.Duration(n),
			FlattenLatency:   rep.RecipeUpdateDuration,
			MeanVersionBytes: bytesSum / uint64(n),
		})
	}
	return res, nil
}

// Render formats the overheads like Figure 12.
func (r *Figure12Result) Render() string {
	t := metrics.NewTable("Figure 12: HiDeStore overheads (per version)",
		"workload", "versions", "update recipe", "move+merge chunks", "flatten (Alg. 1)", "version size")
	for _, row := range r.Rows {
		t.AddRow(row.Workload,
			fmt.Sprintf("%d", row.Versions),
			row.MeanRecipeUpdate.String(),
			row.MeanMigrate.String(),
			row.FlattenLatency.String(),
			metrics.FormatBytes(row.MeanVersionBytes))
	}
	return t.Render()
}
