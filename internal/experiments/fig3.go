package experiments

import (
	"fmt"
	"io"
	"strconv"

	"hidestore/internal/fp"
	"hidestore/internal/metrics"
)

// Figure3Result is the heuristic experiment of §3: after processing each
// backup version with an infinite metadata buffer, how many chunks carry
// each version tag (the most recent version containing them).
type Figure3Result struct {
	Workload string
	Versions int
	// Counts[tag-1][v-1] is the number of chunks with version tag `tag`
	// after processing version v (0 for v < tag).
	Counts [][]int
}

// Figure3 reproduces the §3 heuristic experiment on one workload.
//
// The buffer mirrors the paper's Destor instrumentation: every chunk's
// metadata is kept with a version tag; deduplicating version v retags every
// chunk it contains to v. A tag's population therefore drops when its
// chunks reappear in newer versions — and the paper's observation is that
// the drop happens almost entirely in the very next version (or two, for
// macos), after which the count plateaus: chunks that leave the stream do
// not come back.
func Figure3(workloadName string, opts Options) (*Figure3Result, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{
		Workload: cfg.Name,
		Versions: cfg.Versions,
		Counts:   make([][]int, cfg.Versions),
	}
	for i := range res.Counts {
		res.Counts[i] = make([]int, cfg.Versions)
	}
	tags := make(map[fp.FP]int) // chunk → most recent version containing it
	err = forEachVersion(cfg, func(v int, r io.Reader) error {
		refs, err := chunkRefs(r, opts.ChunkParams)
		if err != nil {
			return err
		}
		for _, c := range refs {
			tags[c.FP] = v
		}
		// Census after processing version v.
		counts := make([]int, cfg.Versions+1)
		for _, tag := range tags {
			counts[tag]++
		}
		for tag := 1; tag <= v; tag++ {
			res.Counts[tag-1][v-1] = counts[tag]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// PlateauRatio measures the paper's claim for one tag: the fraction of the
// total drop in tag-t chunks that happened within `window` versions after
// t. Near 1.0 means "chunks not in the next version(s) never reappear".
func (r *Figure3Result) PlateauRatio(tag, window int) float64 {
	if tag < 1 || tag > r.Versions {
		return 0
	}
	row := r.Counts[tag-1]
	initial := row[tag-1]
	final := row[r.Versions-1]
	totalDrop := initial - final
	if totalDrop <= 0 {
		return 1
	}
	at := tag - 1 + window
	if at >= r.Versions {
		at = r.Versions - 1
	}
	earlyDrop := initial - row[at]
	return float64(earlyDrop) / float64(totalDrop)
}

// Render returns the per-tag chunk counts as an aligned table (columns:
// after-version; rows: version tags), mirroring the bars of Figure 3.
func (r *Figure3Result) Render() string {
	headers := []string{"tag\\after"}
	for v := 1; v <= r.Versions; v++ {
		headers = append(headers, "v"+strconv.Itoa(v))
	}
	t := metrics.NewTable(fmt.Sprintf("Figure 3 (%s): chunks per version tag", r.Workload), headers...)
	for tag := 1; tag <= r.Versions; tag++ {
		row := []string{"V" + strconv.Itoa(tag)}
		for v := 1; v <= r.Versions; v++ {
			if v < tag {
				row = append(row, "-")
			} else {
				row = append(row, strconv.Itoa(r.Counts[tag-1][v-1]))
			}
		}
		t.AddRow(row...)
	}
	return t.Render()
}
