package experiments

import (
	"fmt"

	"hidestore/internal/backup"
	"hidestore/internal/metrics"
	"hidestore/internal/workload"
)

// Figure8Schemes are the deduplication-ratio contenders, in the paper's
// order: the exact baseline, the two near-exact baselines, the two
// rewriting configurations (evaluated on SiLo, as in §5.2.1), and
// HiDeStore.
var Figure8Schemes = []string{"ddfs", "sparse", "silo", "capping", "alacc-fbw", "hidestore"}

// Figure8Row is one (workload, scheme) dedup ratio.
type Figure8Row struct {
	Workload string
	Scheme   string
	// DedupRatio is cumulative eliminated bytes / logical bytes.
	DedupRatio float64
	// StoredBytes actually written (unique + rewritten).
	StoredBytes uint64
}

// Figure8Result holds the dedup-ratio comparison.
type Figure8Result struct {
	Rows []Figure8Row
}

// buildFigure8Engine maps a Figure 8 scheme label to an engine.
func buildFigure8Engine(o Options, w workload.Config, scheme string) (backup.Engine, error) {
	switch scheme {
	case "ddfs", "sparse", "silo":
		return baselineEngine(o, scheme, "none", "faa")
	case "capping":
		// The paper evaluates rewriting on top of SiLo (§5.2.1).
		return baselineEngine(o, "silo", "capping", "faa")
	case "alacc-fbw":
		// The ALACC configuration rewrites with the look-back window
		// (FBW) and restores through ALACC (§5.1, §5.3).
		return baselineEngine(o, "silo", "fbw", "alacc")
	case "hidestore":
		return hidestoreEngine(o, w)
	default:
		return nil, fmt.Errorf("experiments: unknown Figure 8 scheme %q", scheme)
	}
}

// Figure8 measures cumulative deduplication ratios for every scheme on
// every requested workload by running full engines over the version chain.
//
// Expected shape (paper §5.2.1): HiDeStore ≈ DDFS (exact) ≥ SiLo ≈ Sparse
// (near-exact sampling losses) > rewriting schemes (duplicates stored
// twice), with the rewriting gap growing as more versions are processed.
func Figure8(workloads []string, opts Options) (*Figure8Result, error) {
	opts = opts.withDefaults()
	if len(workloads) == 0 {
		workloads = workload.PresetNames()
	}
	res := &Figure8Result{}
	for _, name := range workloads {
		cfg, err := opts.loadWorkload(name)
		if err != nil {
			return nil, err
		}
		for _, scheme := range Figure8Schemes {
			e, err := buildFigure8Engine(opts, cfg, scheme)
			if err != nil {
				return nil, err
			}
			if _, err := backupAllVersions(e, cfg); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, scheme, err)
			}
			st := e.Stats()
			res.Rows = append(res.Rows, Figure8Row{
				Workload:    cfg.Name,
				Scheme:      scheme,
				DedupRatio:  st.DedupRatio(),
				StoredBytes: st.StoredBytes,
			})
		}
	}
	return res, nil
}

// Ratio returns the dedup ratio for (workload, scheme), or -1 if missing.
func (r *Figure8Result) Ratio(workload, scheme string) float64 {
	for _, row := range r.Rows {
		if row.Workload == workload && row.Scheme == scheme {
			return row.DedupRatio
		}
	}
	return -1
}

// Render formats the comparison like Figure 8's bars.
func (r *Figure8Result) Render() string {
	t := metrics.NewTable("Figure 8: deduplication ratios",
		"workload", "scheme", "dedup ratio", "stored")
	for _, row := range r.Rows {
		t.AddRow(row.Workload, row.Scheme,
			metrics.FormatPercent(row.DedupRatio),
			metrics.FormatBytes(row.StoredBytes))
	}
	return t.Render()
}
