package experiments

import (
	"fmt"
	"io"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/metrics"
)

// Figure9Schemes are the index-overhead contenders (§5.2.2).
var Figure9Schemes = []string{"ddfs", "sparse", "silo", "hidestore"}

// IndexSeries is one scheme's per-version measurements from the
// metadata-only index simulation shared by Figures 9 and 10.
type IndexSeries struct {
	Scheme string
	// LookupsPerGB[v-1] is on-disk index lookups per GB of data
	// deduplicated in version v (Figure 9's metric).
	LookupsPerGB []float64
	// MemBytesPerMB[v-1] is persistent index bytes per MB of cumulative
	// data after version v (Figure 10's metric).
	MemBytesPerMB []float64
	// TotalDiskLookups over the whole run.
	TotalDiskLookups uint64
}

// Figure9Result holds per-workload index overhead series.
type Figure9Result struct {
	Workload string
	Series   []IndexSeries
}

// Figure9 measures the full-index lookup overhead of each scheme on one
// workload, chunk-metadata only (payloads are never stored — exactly how
// Destor's lookup metric abstracts disk behaviour, §5.2.2).
//
// Expected shape: HiDeStore performs zero disk lookups (the fingerprint
// cache answers everything); DDFS pays on every locality-cache miss and
// degrades as data grows; sparse/silo sit in between, paying per champion
// or block load.
func Figure9(workloadName string, opts Options) (*Figure9Result, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	res := &Figure9Result{Workload: cfg.Name}
	const segChunks = 1024
	for _, scheme := range Figure9Schemes {
		ix, err := newBaselineIndex(scheme)
		if err != nil {
			return nil, err
		}
		sim := newPlacementSim(opts.ContainerCapacity)
		series := IndexSeries{Scheme: scheme}
		var prevLookups uint64
		var cumulativeBytes uint64
		err = forEachVersion(cfg, func(v int, r io.Reader) error {
			refs, err := chunkRefs(r, opts.ChunkParams)
			if err != nil {
				return err
			}
			session := make(map[fp.FP]container.ID)
			var versionBytes uint64
			for start := 0; start < len(refs); start += segChunks {
				end := start + segChunks
				if end > len(refs) {
					end = len(refs)
				}
				seg := refs[start:end]
				results := ix.Dedup(seg)
				cids := sim.place(seg, results, session)
				ix.Commit(seg, cids)
				for _, c := range seg {
					versionBytes += uint64(c.Size)
				}
			}
			ix.EndVersion()
			cumulativeBytes += versionBytes

			st := ix.Stats()
			deltaLookups := st.DiskLookups - prevLookups
			prevLookups = st.DiskLookups
			gb := float64(versionBytes) / (1 << 30)
			if gb > 0 {
				series.LookupsPerGB = append(series.LookupsPerGB, float64(deltaLookups)/gb)
			} else {
				series.LookupsPerGB = append(series.LookupsPerGB, 0)
			}
			mb := float64(cumulativeBytes) / (1 << 20)
			series.MemBytesPerMB = append(series.MemBytesPerMB, float64(ix.MemoryBytes())/mb)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", workloadName, scheme, err)
		}
		series.TotalDiskLookups = ix.Stats().DiskLookups
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// SchemeSeries returns the series for a scheme, or nil.
func (r *Figure9Result) SchemeSeries(scheme string) *IndexSeries {
	for i := range r.Series {
		if r.Series[i].Scheme == scheme {
			return &r.Series[i]
		}
	}
	return nil
}

// Render formats the lookups-per-GB curves (Figure 9a-d).
func (r *Figure9Result) Render() string {
	f := metrics.Figure{
		Title:  fmt.Sprintf("Figure 9 (%s): lookup overhead", r.Workload),
		XLabel: "version",
		YLabel: "lookup requests per GB",
	}
	for _, s := range r.Series {
		f.AddSeries(s.Scheme, s.LookupsPerGB)
	}
	return f.Render()
}

// Figure10Result reuses the Figure 9 simulation's memory series.
type Figure10Result struct {
	Workload string
	Series   []IndexSeries
}

// Figure10 measures the index-table space overhead per MB deduplicated
// (§5.2.3). It shares Figure 9's simulation.
//
// Expected shape: DDFS highest (full index grows with unique data);
// Sparse and SiLo far lower (sampled); HiDeStore zero (the previous
// version's recipe *is* the index).
func Figure10(workloadName string, opts Options) (*Figure10Result, error) {
	r9, err := Figure9(workloadName, opts)
	if err != nil {
		return nil, err
	}
	return &Figure10Result{Workload: r9.Workload, Series: r9.Series}, nil
}

// SchemeSeries returns the series for a scheme, or nil.
func (r *Figure10Result) SchemeSeries(scheme string) *IndexSeries {
	for i := range r.Series {
		if r.Series[i].Scheme == scheme {
			return &r.Series[i]
		}
	}
	return nil
}

// Final returns the final bytes-per-MB for a scheme (-1 if missing).
func (r *Figure10Result) Final(scheme string) float64 {
	s := r.SchemeSeries(scheme)
	if s == nil || len(s.MemBytesPerMB) == 0 {
		return -1
	}
	return s.MemBytesPerMB[len(s.MemBytesPerMB)-1]
}

// Render formats the space-overhead curves (Figure 10).
func (r *Figure10Result) Render() string {
	f := metrics.Figure{
		Title:  fmt.Sprintf("Figure 10 (%s): index table overhead", r.Workload),
		XLabel: "version",
		YLabel: "index bytes per MB deduplicated",
	}
	for _, s := range r.Series {
		f.AddSeries(s.Scheme, s.MemBytesPerMB)
	}
	return f.Render()
}
