package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"hidestore/internal/backend"
	"hidestore/internal/backup"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/core"
	"hidestore/internal/dedup"
	"hidestore/internal/metrics"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
	"hidestore/internal/rewrite"
	"hidestore/internal/workload"
)

// The remote experiment puts numbers behind the paper's motivating
// claim: physical locality matters *more* the more a container fetch
// costs. Every cell runs the full backup chain and a newest-version
// restore with the container store behind a deterministic remote
// simulator, sweeping restore prefetch depth × simulated per-fetch
// latency.
//
// Two time metrics per cell:
//
//   - WallMS is the measured restore wall clock. With real sleeps
//     (sleepScale 1) it shows prefetch depth overlapping fetch latency.
//   - ModeledMS is deterministic: chunk-assembly cost at a fixed client
//     rate plus the simulator's modeled remote time (reads × latency +
//     bytes / bandwidth). It is reproducible bit-for-bit across
//     machines, so the monotonicity assertions ride on it.
//
// The headline series is Advantage: baseline ModeledMS over HiDeStore
// ModeledMS at serial depth. Both schemes pay the same assembly cost A
// and the same per-read overhead c = latency + containerBytes/bw, so
// the ratio is (A + Rb·c)/(A + Rh·c) — strictly increasing in latency
// whenever the baseline reads more containers (Rb > Rh), which the
// physical-locality layout guarantees on the newest version.

const (
	// remoteBandwidthMBps caps simulated remote payload throughput. The
	// sweep models the object-store regime — a fat pipe with expensive
	// round trips — so bandwidth is high enough that per-fetch latency,
	// not transfer time, is the dominant remote cost; that is the regime
	// where read *count* (physical locality's lever) decides restore
	// time. At low bandwidth the byte-volume ratio takes over instead
	// and the latency axis flattens.
	remoteBandwidthMBps = 1000
	// remoteAssemblyMBps is the fixed client-side chunk-assembly rate
	// used by the deterministic restore-time model.
	remoteAssemblyMBps = 200
)

// RemoteDepths are the swept restore prefetch depths (-1 = serial).
var RemoteDepths = []int{-1, 2, 8}

// RemoteLatencies are the swept per-fetch round-trip latencies.
var RemoteLatencies = []time.Duration{0, 200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond}

// RemoteSchemes are the restore contenders: the no-rewrite DDFS+FAA
// baseline (logical locality) vs HiDeStore (physical locality).
var RemoteSchemes = []string{"baseline", "hidestore"}

// RemoteCell is one (scheme, depth, latency) outcome.
type RemoteCell struct {
	Scheme    string
	Depth     int
	LatencyUS int64
	// Reads is the policy-level container-read count for the newest
	// restore — invariant across depth and latency by the accounting
	// identity (§5.3).
	Reads int64
	// ReadMB is the payload actually pulled from the simulated remote.
	ReadMB      float64
	SpeedFactor float64
	WallMS      float64
	ModeledMS   float64
}

// RemoteResult holds the full sweep for one workload.
type RemoteResult struct {
	Workload  string
	Depths    []int
	Latencies []time.Duration
	Cells     []RemoteCell
	// Advantage[i] is baseline ModeledMS / hidestore ModeledMS at
	// Latencies[i], serial depth — the paper's payoff curve.
	Advantage []float64
}

// remoteEngine assembles a scheme's engine over an injected container
// store (the backend stack) with a given restore prefetch depth.
func remoteEngine(o Options, w workload.Config, scheme string, store container.Store, depth int) (backup.Engine, error) {
	switch scheme {
	case "hidestore":
		return core.New(core.Config{
			Store:             store,
			Recipes:           recipe.NewMemStore(),
			ContainerCapacity: o.ContainerCapacity,
			Window:            cacheWindow(w),
			ChunkParams:       o.ChunkParams,
			Chunker:           chunker.FastCDC,
			RestoreCache:      restorecache.NewFAA(0),
			PrefetchDepth:     depth,
			Metrics:           o.Metrics,
		})
	case "baseline":
		ix, err := newBaselineIndex("ddfs")
		if err != nil {
			return nil, err
		}
		rw, err := rewrite.New("none")
		if err != nil {
			return nil, err
		}
		rc, err := restorecache.New("faa")
		if err != nil {
			return nil, err
		}
		return dedup.New(dedup.Config{
			Index:             ix,
			Rewriter:          rw,
			RestoreCache:      rc,
			Store:             store,
			Recipes:           recipe.NewMemStore(),
			ContainerCapacity: o.ContainerCapacity,
			ChunkParams:       o.ChunkParams,
			Chunker:           chunker.FastCDC,
			PrefetchDepth:     depth,
			Metrics:           o.Metrics,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown remote scheme %q", scheme)
	}
}

// runRemoteCell backs up the chain and restores the newest version with
// the container store behind a fresh remote simulator.
func runRemoteCell(o Options, w workload.Config, versions [][]byte, scheme string, depth int, latency time.Duration, sleepScale float64) (RemoteCell, error) {
	stack, sim, err := backend.NewStack(backend.NewMem(), backend.StackOptions{
		Sim: backend.SimOptions{
			Latency:      latency,
			BandwidthBps: remoteBandwidthMBps * (1 << 20),
			Seed:         1,
			SleepScale:   sleepScale,
		},
	})
	if err != nil {
		return RemoteCell{}, err
	}
	e, err := remoteEngine(o, w, scheme, backend.NewContainerStore(stack), depth)
	if err != nil {
		return RemoteCell{}, err
	}
	for v, data := range versions {
		if _, err := e.Backup(context.Background(), bytes.NewReader(data)); err != nil {
			return RemoteCell{}, fmt.Errorf("backup v%d: %w", v+1, err)
		}
	}
	before := sim.Stats()
	start := time.Now()
	rep, err := restoreVerify(e, len(versions), versions[len(versions)-1])
	if err != nil {
		return RemoteCell{}, err
	}
	wall := time.Since(start)
	after := sim.Stats()

	readMB := float64(after.Bytes-before.Bytes) / (1 << 20)
	restoredMB := float64(rep.Stats.BytesRestored) / (1 << 20)
	modeledMS := restoredMB/remoteAssemblyMBps*1e3 +
		float64((after.Modeled-before.Modeled).Microseconds())/1e3
	return RemoteCell{
		Scheme:      scheme,
		Depth:       depth,
		LatencyUS:   latency.Microseconds(),
		Reads:       int64(rep.Stats.ContainerReads),
		ReadMB:      readMB,
		SpeedFactor: rep.Stats.SpeedFactor(),
		WallMS:      float64(wall.Microseconds()) / 1e3,
		ModeledMS:   modeledMS,
	}, nil
}

// Remote runs the prefetch-depth × latency sweep for one workload.
// sleepScale is threaded into every simulator: 1 sleeps for real (wall
// numbers show latency hiding), negative skips sleeps entirely while
// still accumulating modeled time (fast deterministic CI runs).
func Remote(workloadName string, sleepScale float64, opts Options) (*RemoteResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	var versions [][]byte
	err = forEachVersion(cfg, func(v int, r io.Reader) error {
		data, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		versions = append(versions, data)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &RemoteResult{
		Workload:  cfg.Name,
		Depths:    RemoteDepths,
		Latencies: RemoteLatencies,
	}
	for _, scheme := range RemoteSchemes {
		for _, depth := range RemoteDepths {
			for _, g := range RemoteLatencies {
				cell, err := runRemoteCell(opts, cfg, versions, scheme, depth, g, sleepScale)
				if err != nil {
					return nil, fmt.Errorf("%s depth=%d latency=%s: %w", scheme, depth, g, err)
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	for _, g := range RemoteLatencies {
		b := res.Cell("baseline", -1, g)
		h := res.Cell("hidestore", -1, g)
		if b == nil || h == nil || h.ModeledMS == 0 {
			return nil, fmt.Errorf("experiments: missing serial cells for latency %s", g)
		}
		res.Advantage = append(res.Advantage, b.ModeledMS/h.ModeledMS)
	}
	return res, nil
}

// Cell returns the cell for (scheme, depth, latency), or nil.
func (r *RemoteResult) Cell(scheme string, depth int, latency time.Duration) *RemoteCell {
	us := latency.Microseconds()
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Scheme == scheme && c.Depth == depth && c.LatencyUS == us {
			return c
		}
	}
	return nil
}

// Extras exposes the sweep as flat scalars for BENCH_remote.json: the
// advantage curve (the acceptance metric), plus per-cell modeled and
// wall times keyed by scheme, depth, and latency in microseconds.
func (r *RemoteResult) Extras() map[string]float64 {
	out := make(map[string]float64)
	for i, g := range r.Latencies {
		out[fmt.Sprintf("advantage_us%d", g.Microseconds())] = r.Advantage[i]
	}
	for _, c := range r.Cells {
		key := fmt.Sprintf("%s_depth%d_us%d", c.Scheme, c.Depth, c.LatencyUS)
		out["modeled_ms_"+key] = c.ModeledMS
		out["wall_ms_"+key] = c.WallMS
		out["reads_"+key] = float64(c.Reads)
	}
	return out
}

// Render formats the sweep and the advantage curve.
func (r *RemoteResult) Render() string {
	t := metrics.NewTable(fmt.Sprintf("Remote backend (%s): prefetch depth x fetch latency", r.Workload),
		"scheme", "depth", "latency", "reads", "read MB", "SF", "wall ms", "modeled ms")
	for _, c := range r.Cells {
		t.AddRow(c.Scheme,
			fmt.Sprintf("%d", c.Depth),
			(time.Duration(c.LatencyUS) * time.Microsecond).String(),
			fmt.Sprintf("%d", c.Reads),
			metrics.FormatFloat(c.ReadMB),
			metrics.FormatFloat(c.SpeedFactor),
			metrics.FormatFloat(c.WallMS),
			metrics.FormatFloat(c.ModeledMS))
	}
	s := t.Render()
	s += "\nmodeled restore advantage (baseline/hidestore, serial):"
	for i, g := range r.Latencies {
		s += fmt.Sprintf(" %s=%.2fx", g, r.Advantage[i])
	}
	return s + "\n"
}
