package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestRemoteShape pins the remote experiment's reproduction targets on
// deterministic modeled numbers (sleepScale -1: no real sleeps):
//
//   - the newest-version restore reads fewer containers under HiDeStore
//     than under the logical-locality baseline;
//   - those read counts are invariant across prefetch depth and
//     simulated latency (the §5.3 accounting identity — the backend
//     only changes fetch cost, never which fetches happen);
//   - the modeled restore-time advantage grows strictly monotonically
//     with fetch latency, the acceptance criterion BENCH_remote.json
//     publishes.
func TestRemoteShape(t *testing.T) {
	res, err := Remote("kernel", -1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(RemoteSchemes)*len(RemoteDepths)*len(RemoteLatencies) {
		t.Fatalf("cells = %d, want %d", len(res.Cells),
			len(RemoteSchemes)*len(RemoteDepths)*len(RemoteLatencies))
	}

	for _, scheme := range RemoteSchemes {
		want := res.Cell(scheme, RemoteDepths[0], RemoteLatencies[0]).Reads
		if want == 0 {
			t.Fatalf("%s: zero container reads", scheme)
		}
		for _, depth := range RemoteDepths {
			for _, g := range RemoteLatencies {
				if got := res.Cell(scheme, depth, g).Reads; got != want {
					t.Errorf("%s depth=%d latency=%s: reads = %d, want %d (accounting identity)",
						scheme, depth, g, got, want)
				}
			}
		}
	}

	hide := res.Cell("hidestore", -1, 0).Reads
	base := res.Cell("baseline", -1, 0).Reads
	if hide >= base {
		t.Fatalf("hidestore reads %d >= baseline reads %d on the newest version", hide, base)
	}

	if len(res.Advantage) != len(RemoteLatencies) {
		t.Fatalf("advantage curve has %d points, want %d", len(res.Advantage), len(RemoteLatencies))
	}
	for i := 1; i < len(res.Advantage); i++ {
		if res.Advantage[i] <= res.Advantage[i-1] {
			t.Errorf("advantage not strictly increasing: %.4f (lat %s) -> %.4f (lat %s)",
				res.Advantage[i-1], res.Latencies[i-1], res.Advantage[i], res.Latencies[i])
		}
	}

	out := res.Render()
	for _, frag := range []string{"Remote backend", "hidestore", "baseline", "advantage"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	extras := res.Extras()
	if len(extras) == 0 {
		t.Fatal("no extras for BENCH_remote.json")
	}
	for _, g := range RemoteLatencies {
		if _, ok := extras["advantage_us"+strconv.FormatInt(g.Microseconds(), 10)]; !ok {
			t.Errorf("extras missing advantage for latency %s", g)
		}
	}
}
