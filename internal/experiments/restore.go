package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"hidestore/internal/backend"
	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/core"
	"hidestore/internal/layout"
	"hidestore/internal/metrics"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
	"hidestore/internal/workload"
)

// The restore experiment measures the parallel restore mode's payoff:
// with the container store behind the deterministic remote simulator,
// it sweeps restore workers × prefetch depth × per-fetch latency on
// the HiDeStore engine and reports wall and modeled restore times.
//
// The mechanism being measured is fetch overlap. A serial restore pays
// every container round trip back to back; the parallel mode keeps
// min(workers, depth) fetches in flight, so the remote time divides by
// that effective parallelism while chunk assembly — client-side memcpy
// — stays the same. ModeledMS applies exactly that model to the
// simulator's deterministic modeled remote time, which makes the
// speedup curve reproducible bit for bit; WallMS is the measured clock
// and shows the same shape when sleeps are real (sleepScale 1).
//
// The sweep also re-checks the accounting identity where it is easiest
// to break: every cell must report the same policy-level container
// read count, no matter how many workers fetch. A cell that reads more
// (duplicated fetches) or fewer (skipped chunks) containers than the
// serial baseline fails the experiment outright.

// RestoreWorkerCounts are the swept restore worker counts (1 = the
// serial assembler).
var RestoreWorkerCounts = []int{1, 2, 4, 8}

// RestoreSweepDepths are the swept prefetch depths: -1 disables
// prefetch entirely (workers then have nothing to overlap — the
// control row), 8 is the default read-ahead window.
var RestoreSweepDepths = []int{-1, 8}

// RestoreSweepLatencies are the swept per-fetch round-trip latencies.
// The acceptance criterion lives at >= 1ms: that is where fetch cost
// dominates assembly and worker scaling must show through.
var RestoreSweepLatencies = []time.Duration{0, time.Millisecond, 5 * time.Millisecond}

// RestoreScaleCell is one (workers, depth, latency) outcome.
type RestoreScaleCell struct {
	Workers   int
	Depth     int
	LatencyUS int64
	// Reads is the policy-level container-read count for the newest
	// restore — identical across every cell by the accounting identity,
	// enforced by the sweep driver.
	Reads       int64
	ReadMB      float64
	SpeedFactor float64
	WallMS      float64
	ModeledMS   float64
}

// RestoreScaleResult holds the full sweep for one workload.
type RestoreScaleResult struct {
	Workload  string
	Workers   []int
	Depths    []int
	Latencies []time.Duration
	Cells     []RestoreScaleCell
	// Speedup[i] is ModeledMS at workers=1 over ModeledMS at the widest
	// worker count, both at the deepest swept depth and Latencies[i] —
	// the scale-out payoff curve.
	Speedup []float64
	// CFL, Utilization and ContainersPerMB profile the newest version's
	// physical layout (internal/layout over an identically-built store),
	// so the BENCH snapshot ties the speedup rows to the fragmentation
	// state they were measured against.
	CFL             float64
	Utilization     float64
	ContainersPerMB float64
}

// effectiveFetchParallelism mirrors the prefetcher's own bound: the
// pool never runs more than depth items ahead of consumption and never
// needs more lanes than there are distinct containers to read.
func effectiveFetchParallelism(workers, depth int, reads int64) float64 {
	if depth < 0 {
		return 1 // no prefetch pipeline: fetches are strictly serial
	}
	if depth == 0 {
		depth = restorecache.DefaultPrefetchDepth
	}
	p := workers
	if depth < p {
		p = depth
	}
	if n := int(reads); n > 0 && n < p {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return float64(p)
}

// runRestoreScaleCell backs up the chain and restores the newest
// version with the given worker count and depth over a fresh remote
// simulator.
func runRestoreScaleCell(o Options, w workload.Config, versions [][]byte, workers, depth int, latency time.Duration, sleepScale float64) (RestoreScaleCell, error) {
	stack, sim, err := backend.NewStack(backend.NewMem(), backend.StackOptions{
		Sim: backend.SimOptions{
			Latency:      latency,
			BandwidthBps: remoteBandwidthMBps * (1 << 20),
			Seed:         1,
			SleepScale:   sleepScale,
		},
	})
	if err != nil {
		return RestoreScaleCell{}, err
	}
	e, err := core.New(core.Config{
		Store:             backend.NewContainerStore(stack),
		Recipes:           recipe.NewMemStore(),
		ContainerCapacity: o.ContainerCapacity,
		Window:            cacheWindow(w),
		ChunkParams:       o.ChunkParams,
		Chunker:           chunker.FastCDC,
		RestoreCache:      restorecache.NewFAA(0),
		PrefetchDepth:     depth,
		RestoreWorkers:    workers,
		Metrics:           o.Metrics,
	})
	if err != nil {
		return RestoreScaleCell{}, err
	}
	for v, data := range versions {
		if _, err := e.Backup(context.Background(), bytes.NewReader(data)); err != nil {
			return RestoreScaleCell{}, fmt.Errorf("backup v%d: %w", v+1, err)
		}
	}
	before := sim.Stats()
	start := time.Now()
	rep, err := restoreVerify(e, len(versions), versions[len(versions)-1])
	if err != nil {
		return RestoreScaleCell{}, err
	}
	wall := time.Since(start)
	after := sim.Stats()

	reads := int64(rep.Stats.ContainerReads)
	readMB := float64(after.Bytes-before.Bytes) / (1 << 20)
	restoredMB := float64(rep.Stats.BytesRestored) / (1 << 20)
	remoteMS := float64((after.Modeled - before.Modeled).Microseconds()) / 1e3
	modeledMS := restoredMB/remoteAssemblyMBps*1e3 +
		remoteMS/effectiveFetchParallelism(workers, depth, reads)
	return RestoreScaleCell{
		Workers:     workers,
		Depth:       depth,
		LatencyUS:   latency.Microseconds(),
		Reads:       reads,
		ReadMB:      readMB,
		SpeedFactor: rep.Stats.SpeedFactor(),
		WallMS:      float64(wall.Microseconds()) / 1e3,
		ModeledMS:   modeledMS,
	}, nil
}

// RestoreScale runs the workers × depth × latency sweep for one
// workload. sleepScale is threaded into every simulator exactly as in
// Remote: 1 sleeps for real, negative skips sleeps while still
// accumulating modeled time.
func RestoreScale(workloadName string, sleepScale float64, opts Options) (*RestoreScaleResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	var versions [][]byte
	err = forEachVersion(cfg, func(v int, r io.Reader) error {
		data, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		versions = append(versions, data)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &RestoreScaleResult{
		Workload:  cfg.Name,
		Workers:   RestoreWorkerCounts,
		Depths:    RestoreSweepDepths,
		Latencies: RestoreSweepLatencies,
	}
	for _, workers := range RestoreWorkerCounts {
		for _, depth := range RestoreSweepDepths {
			for _, g := range RestoreSweepLatencies {
				cell, err := runRestoreScaleCell(opts, cfg, versions, workers, depth, g, sleepScale)
				if err != nil {
					return nil, fmt.Errorf("workers=%d depth=%d latency=%s: %w", workers, depth, g, err)
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	// The accounting identity, enforced: worker count and depth must
	// not change what gets read.
	for i := range res.Cells {
		if res.Cells[i].Reads != res.Cells[0].Reads {
			return nil, fmt.Errorf("experiments: cell workers=%d depth=%d us=%d read %d containers, baseline read %d — parallel restore changed the read count",
				res.Cells[i].Workers, res.Cells[i].Depth, res.Cells[i].LatencyUS,
				res.Cells[i].Reads, res.Cells[0].Reads)
		}
	}
	deepest := RestoreSweepDepths[len(RestoreSweepDepths)-1]
	widest := RestoreWorkerCounts[len(RestoreWorkerCounts)-1]
	for _, g := range RestoreSweepLatencies {
		one := res.Cell(1, deepest, g)
		wide := res.Cell(widest, deepest, g)
		if one == nil || wide == nil || wide.ModeledMS == 0 {
			return nil, fmt.Errorf("experiments: missing speedup cells for latency %s", g)
		}
		res.Speedup = append(res.Speedup, one.ModeledMS/wide.ModeledMS)
	}
	prof, err := restoreLayoutProfile(opts, cfg, versions)
	if err != nil {
		return nil, err
	}
	// The layout analyzer replays the reference stream through the same
	// FAA policy the cells restore with, so its read count must equal
	// every cell's — a cheap re-check of the exactness guarantee from a
	// second, independently-built store.
	if got := int64(prof.Policies[0].ContainerReads); got != res.Cells[0].Reads {
		return nil, fmt.Errorf("experiments: layout analyzer simulated %d container reads, restores measured %d — the exact-identity guarantee broke",
			got, res.Cells[0].Reads)
	}
	res.CFL = prof.CFL
	res.Utilization = prof.Utilization
	res.ContainersPerMB = prof.ContainersPerMB
	return res, nil
}

// restoreLayoutProfile rebuilds the backup chain on a plain in-memory
// store (deterministic chunking makes it byte-identical to every
// cell's store) and profiles the newest version's layout, simulating
// only the FAA policy the sweep restores with.
func restoreLayoutProfile(o Options, w workload.Config, versions [][]byte) (*layout.Report, error) {
	e, err := core.New(core.Config{
		Store:             container.NewMemStore(),
		Recipes:           recipe.NewMemStore(),
		ContainerCapacity: o.ContainerCapacity,
		Window:            cacheWindow(w),
		ChunkParams:       o.ChunkParams,
		Chunker:           chunker.FastCDC,
		RestoreCache:      restorecache.NewFAA(0),
	})
	if err != nil {
		return nil, err
	}
	for v, data := range versions {
		if _, err := e.Backup(context.Background(), bytes.NewReader(data)); err != nil {
			return nil, fmt.Errorf("layout profile backup v%d: %w", v+1, err)
		}
	}
	return e.AnalyzeLayout(context.Background(), len(versions), []string{"faa"})
}

// Cell returns the cell for (workers, depth, latency), or nil.
func (r *RestoreScaleResult) Cell(workers, depth int, latency time.Duration) *RestoreScaleCell {
	us := latency.Microseconds()
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Workers == workers && c.Depth == depth && c.LatencyUS == us {
			return c
		}
	}
	return nil
}

// Extras exposes the sweep as flat scalars for BENCH_restore.json: the
// speedup curve (the acceptance metric), plus per-cell modeled and
// wall times keyed by workers, depth, and latency in microseconds.
func (r *RestoreScaleResult) Extras() map[string]float64 {
	out := make(map[string]float64)
	for i, g := range r.Latencies {
		out[fmt.Sprintf("speedup_us%d", g.Microseconds())] = r.Speedup[i]
	}
	out["cfl"] = r.CFL
	out["utilization"] = r.Utilization
	out["containers_per_mb"] = r.ContainersPerMB
	for _, c := range r.Cells {
		key := fmt.Sprintf("w%d_depth%d_us%d", c.Workers, c.Depth, c.LatencyUS)
		out["modeled_ms_"+key] = c.ModeledMS
		out["wall_ms_"+key] = c.WallMS
		out["reads_"+key] = float64(c.Reads)
	}
	return out
}

// Render formats the sweep and the speedup curve.
func (r *RestoreScaleResult) Render() string {
	t := metrics.NewTable(fmt.Sprintf("Parallel restore (%s): workers x prefetch depth x fetch latency", r.Workload),
		"workers", "depth", "latency", "reads", "read MB", "SF", "wall ms", "modeled ms")
	for _, c := range r.Cells {
		t.AddRow(fmt.Sprintf("%d", c.Workers),
			fmt.Sprintf("%d", c.Depth),
			(time.Duration(c.LatencyUS) * time.Microsecond).String(),
			fmt.Sprintf("%d", c.Reads),
			metrics.FormatFloat(c.ReadMB),
			metrics.FormatFloat(c.SpeedFactor),
			metrics.FormatFloat(c.WallMS),
			metrics.FormatFloat(c.ModeledMS))
	}
	s := t.Render()
	s += "\nmodeled restore speedup (1 worker / max workers, deepest prefetch):"
	for i, g := range r.Latencies {
		s += fmt.Sprintf(" %s=%.2fx", g, r.Speedup[i])
	}
	s += fmt.Sprintf("\nnewest-version layout: CFL %.3f, utilization %.1f%%, %.3f containers/MB\n",
		r.CFL, r.Utilization*100, r.ContainersPerMB)
	return s
}
