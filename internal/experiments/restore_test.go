package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestRestoreShape pins the parallel-restore sweep's reproduction
// targets on deterministic modeled numbers (sleepScale -1):
//
//   - every cell reads the same number of containers, no matter the
//     worker count, depth, or latency — the accounting identity the
//     parallel restore mode must hold by construction;
//   - the modeled speedup from worker scale-out is real (> 1) at
//     latencies >= 1ms and grows with latency, the acceptance
//     criterion BENCH_restore.json publishes;
//   - adding workers never makes the modeled restore slower at the
//     deepest depth.
func TestRestoreShape(t *testing.T) {
	res, err := RestoreScale("kernel", -1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(RestoreWorkerCounts) * len(RestoreSweepDepths) * len(RestoreSweepLatencies)
	if len(res.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(res.Cells), wantCells)
	}

	reads := res.Cells[0].Reads
	if reads == 0 {
		t.Fatal("zero container reads")
	}
	for _, c := range res.Cells {
		if c.Reads != reads {
			t.Errorf("workers=%d depth=%d us=%d: reads = %d, want %d (accounting identity)",
				c.Workers, c.Depth, c.LatencyUS, c.Reads, reads)
		}
	}

	if len(res.Speedup) != len(RestoreSweepLatencies) {
		t.Fatalf("speedup curve has %d points, want %d", len(res.Speedup), len(RestoreSweepLatencies))
	}
	for i, g := range RestoreSweepLatencies {
		if g >= 1e6 && res.Speedup[i] <= 1 { // time.Duration: 1e6 ns = 1ms
			t.Errorf("speedup at latency %s = %.4f, want > 1", g, res.Speedup[i])
		}
	}
	for i := 1; i < len(res.Speedup); i++ {
		if res.Speedup[i] < res.Speedup[i-1] {
			t.Errorf("speedup shrank with latency: %.4f (lat %s) -> %.4f (lat %s)",
				res.Speedup[i-1], res.Latencies[i-1], res.Speedup[i], res.Latencies[i])
		}
	}

	deepest := RestoreSweepDepths[len(RestoreSweepDepths)-1]
	for _, g := range RestoreSweepLatencies {
		prev := res.Cell(RestoreWorkerCounts[0], deepest, g)
		for _, w := range RestoreWorkerCounts[1:] {
			c := res.Cell(w, deepest, g)
			if c.ModeledMS > prev.ModeledMS {
				t.Errorf("latency %s: workers %d modeled %.4fms > workers %d modeled %.4fms",
					g, c.Workers, c.ModeledMS, prev.Workers, prev.ModeledMS)
			}
			prev = c
		}
	}

	out := res.Render()
	for _, frag := range []string{"Parallel restore", "workers", "speedup"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	extras := res.Extras()
	if len(extras) == 0 {
		t.Fatal("no extras for BENCH_restore.json")
	}
	for _, g := range RestoreSweepLatencies {
		if _, ok := extras["speedup_us"+strconv.FormatInt(g.Microseconds(), 10)]; !ok {
			t.Errorf("extras missing speedup for latency %s", g)
		}
	}
}
