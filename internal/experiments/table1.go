package experiments

import (
	"io"

	"hidestore/internal/fp"
	"hidestore/internal/metrics"
	"hidestore/internal/workload"
)

// Table1Row is one workload's characteristics (paper Table 1).
type Table1Row struct {
	Workload   string
	TotalBytes uint64
	Versions   int
	// DedupRatio is eliminated bytes over total bytes under exact
	// deduplication.
	DedupRatio float64
}

// Table1Result holds all workloads' characteristics.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 measures the synthetic datasets the way the paper's Table 1
// characterizes the real ones: total size, version count, and the exact
// dedup ratio.
func Table1(workloads []string, opts Options) (*Table1Result, error) {
	opts = opts.withDefaults()
	if len(workloads) == 0 {
		workloads = workload.PresetNames()
	}
	res := &Table1Result{}
	for _, name := range workloads {
		cfg, err := opts.loadWorkload(name)
		if err != nil {
			return nil, err
		}
		seen := make(map[fp.FP]struct{})
		var logical, unique uint64
		err = forEachVersion(cfg, func(v int, r io.Reader) error {
			refs, err := chunkRefs(r, opts.ChunkParams)
			if err != nil {
				return err
			}
			for _, c := range refs {
				logical += uint64(c.Size)
				if _, ok := seen[c.FP]; !ok {
					seen[c.FP] = struct{}{}
					unique += uint64(c.Size)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Workload:   cfg.Name,
			TotalBytes: logical,
			Versions:   cfg.Versions,
			DedupRatio: 1 - float64(unique)/float64(logical),
		})
	}
	return res, nil
}

// Render formats the rows like the paper's Table 1.
func (r *Table1Result) Render() string {
	t := metrics.NewTable("Table 1: characteristics of workloads",
		"dataset", "total size", "total versions", "dedup ratio")
	for _, row := range r.Rows {
		t.AddRow(row.Workload,
			metrics.FormatBytes(row.TotalBytes),
			metrics.FormatFloat(float64(row.Versions)),
			metrics.FormatPercent(row.DedupRatio))
	}
	return t.Render()
}
