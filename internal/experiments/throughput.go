package experiments

import (
	"fmt"
	"time"

	"hidestore/internal/metrics"
)

// ThroughputRow is one scheme's end-to-end backup throughput.
type ThroughputRow struct {
	Scheme string
	// MBPerSec is logical stream MB deduplicated per wall-clock second,
	// across the whole version chain.
	MBPerSec float64
	// DiskLookups across the run, for context: the paper argues lookup
	// counts are the portable proxy for throughput, since wall-clock
	// depends on the disk behind the full index.
	DiskLookups uint64
	// LogicalBytes processed.
	LogicalBytes uint64
	Duration     time.Duration
}

// ThroughputResult compares backup throughput on one workload.
type ThroughputResult struct {
	Workload string
	Rows     []ThroughputRow
}

// Throughput measures wall-clock deduplication throughput of every
// Figure 8 scheme over a full version chain. The paper reports the
// lookup-count proxy (Figure 9) instead of absolute throughput — on our
// in-memory substrate the "disk" lookups are free, so this experiment
// shows the *CPU* side of the pipeline (chunking, hashing, indexing,
// container packing), which is where HiDeStore's cache-only lookup path
// also helps.
func Throughput(workloadName string, opts Options) (*ThroughputResult, error) {
	opts = opts.withDefaults()
	cfg, err := opts.loadWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	res := &ThroughputResult{Workload: cfg.Name}
	for _, scheme := range Figure8Schemes {
		e, err := buildFigure8Engine(opts, cfg, scheme)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := backupAllVersions(e, cfg); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", workloadName, scheme, err)
		}
		elapsed := time.Since(start)
		st := e.Stats()
		row := ThroughputRow{
			Scheme:       scheme,
			LogicalBytes: st.LogicalBytes,
			DiskLookups:  st.IndexStats.DiskLookups,
			Duration:     elapsed,
		}
		if elapsed > 0 {
			row.MBPerSec = float64(st.LogicalBytes) / (1 << 20) / elapsed.Seconds()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the row for a scheme, or nil.
func (r *ThroughputResult) Row(scheme string) *ThroughputRow {
	for i := range r.Rows {
		if r.Rows[i].Scheme == scheme {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render formats the comparison.
func (r *ThroughputResult) Render() string {
	t := metrics.NewTable(fmt.Sprintf("Backup throughput (%s)", r.Workload),
		"scheme", "MB/s", "disk lookups", "logical", "wall time")
	for _, row := range r.Rows {
		t.AddRow(row.Scheme,
			metrics.FormatFloat(row.MBPerSec),
			fmt.Sprintf("%d", row.DiskLookups),
			metrics.FormatBytes(row.LogicalBytes),
			row.Duration.Round(time.Millisecond).String())
	}
	return t.Render()
}
