// Package fault provides deterministic fault injection for the
// persistence stack. A single Injector is shared by wrappers around
// the container store, the recipe store, and the engine's state
// writer; every mutating operation (container Put/Delete, recipe
// Put/Delete, state write) draws one index from a global op counter,
// so "fail at op N" addresses one exact point in the commit sequence
// regardless of which layer it lands in. The crash-matrix harness
// first runs a probe pass to count ops, then replays the same
// workload once per index with the fault armed there.
//
// Fault kinds model distinct physical failures:
//
//   - Fail: the process dies at op N — the op and every later op
//     return ErrInjected with nothing written. Dead-process semantics
//     (all subsequent ops also fail) keep a workload that ignores one
//     error from quietly writing a later op the "crashed" process
//     could never have issued.
//   - Torn: like Fail, but a prefix of the buffer reaches a temp file
//     beside the final path first — the debris an interrupted atomic
//     write (temp + fsync + rename) leaves. The final path is never
//     touched: the commit rename is atomic, so a crash exposes either
//     the old image or the new one, never a prefix.
//   - NoSpace: op N alone fails with a wrapped ErrInjected (simulated
//     ENOSPC); later ops succeed, modeling a transiently full disk.
//   - CorruptRead: read M flips one byte of the on-disk image before
//     delegating, so the store's CRC detects it — the bit-rot input
//     for fsck's repair mode.
//
// Wrappers are not safe for concurrent use beyond what the op-counter
// mutex provides: deterministic injection requires a deterministic op
// order, which concurrent callers would destroy.
package fault

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the base error for every injected fault; test
// harnesses use errors.Is against it to tell injected failures from
// real ones.
var ErrInjected = errors.New("fault: injected failure")

// ErrNoSpace is the injected ENOSPC; it wraps ErrInjected.
var ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjected)

// Kind selects the failure model; see the package comment.
type Kind int

const (
	None Kind = iota
	Fail
	Torn
	NoSpace
	CorruptRead
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Fail:
		return "fail"
	case Torn:
		return "torn"
	case NoSpace:
		return "nospace"
	case CorruptRead:
		return "corruptread"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// action is the verdict begin/beginRead hands a wrapper.
type action int

const (
	actProceed action = iota
	actFail
	actTorn
	actNoSpace
	actCorrupt
)

// Injector holds the armed fault and the op counters. The zero value
// is inert (every op proceeds); Arm schedules a fault.
type Injector struct {
	mu      sync.Mutex
	kind    Kind
	at      int // 1-based op (or read, for CorruptRead) index to fault
	ops     int
	reads   int
	tripped bool
	log     []string
}

// NewInjector returns an inert injector.
func NewInjector() *Injector { return &Injector{} }

// Arm schedules kind at the 1-based op index n (read index for
// CorruptRead). Arming with n <= 0 or kind None disarms. Counters and
// the op log reset, so one injector can be re-armed between runs.
func (inj *Injector) Arm(kind Kind, n int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.kind, inj.at = kind, n
	if n <= 0 {
		inj.kind = None
	}
	inj.ops, inj.reads, inj.tripped, inj.log = 0, 0, false, nil
}

// Ops returns how many mutating ops have been observed since Arm —
// after a probe run, the size of the crash matrix.
func (inj *Injector) Ops() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.ops
}

// Reads returns how many reads have been observed since Arm.
func (inj *Injector) Reads() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.reads
}

// Tripped reports whether the armed fault has fired.
func (inj *Injector) Tripped() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.tripped
}

// OpLog returns the labels of the mutating ops observed since Arm, in
// order — the probe run's map from op index to commit step.
func (inj *Injector) OpLog() []string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]string, len(inj.log))
	copy(out, inj.log)
	return out
}

// begin records one mutating op and rules on it.
func (inj *Injector) begin(op string) action {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.ops++
	inj.log = append(inj.log, op)
	switch inj.kind {
	case Fail, Torn:
		if inj.ops >= inj.at {
			first := !inj.tripped
			inj.tripped = true
			if first && inj.kind == Torn {
				return actTorn
			}
			// Later ops of a dead process fail cleanly — only the op
			// in flight at the crash can tear.
			return actFail
		}
	case NoSpace:
		if inj.ops == inj.at {
			inj.tripped = true
			return actNoSpace
		}
	}
	return actProceed
}

// beginRead records one read op and rules on it.
func (inj *Injector) beginRead(op string) action {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.reads++
	if inj.kind == CorruptRead && inj.reads == inj.at {
		inj.tripped = true
		inj.log = append(inj.log, op+" [corrupted]")
		return actCorrupt
	}
	return actProceed
}

// errFor converts a non-proceed action into the wrapper's return error.
func errFor(act action, op string) error {
	switch act {
	case actNoSpace:
		return fmt.Errorf("%s: %w", op, ErrNoSpace)
	default:
		return fmt.Errorf("%s: %w", op, ErrInjected)
	}
}
