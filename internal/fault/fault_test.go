package fault

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/durable"
	"hidestore/internal/fp"
	"hidestore/internal/recipe"
)

func fillContainer(t *testing.T, id container.ID, chunks int) *container.Container {
	t.Helper()
	c := container.New(id)
	for i := 0; i < chunks; i++ {
		data := []byte{byte(id), byte(i), 0xAB}
		if err := c.Add(fp.Of(data), data); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestInjectorDeadProcess: once a Fail fault trips, every later op
// fails too — a dead process issues no further writes.
func TestInjectorDeadProcess(t *testing.T) {
	inj := NewInjector()
	inj.Arm(Fail, 2)
	s := NewStore(container.NewMemStore(), inj, nil)
	if err := s.Put(fillContainer(t, 1, 1)); err != nil {
		t.Fatalf("op 1 before the fault failed: %v", err)
	}
	if err := s.Put(fillContainer(t, 2, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2 = %v, want ErrInjected", err)
	}
	if !inj.Tripped() {
		t.Fatal("injector did not record the trip")
	}
	if err := s.Put(fillContainer(t, 3, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 3 after the crash = %v, want ErrInjected (dead process)", err)
	}
	if got := inj.Ops(); got != 3 {
		t.Fatalf("Ops = %d, want 3", got)
	}
	if log := inj.OpLog(); len(log) != 3 || !strings.HasPrefix(log[0], "container.Put") {
		t.Fatalf("OpLog = %v", log)
	}
}

// TestInjectorNoSpace: the ENOSPC model is transient — only op N fails.
func TestInjectorNoSpace(t *testing.T) {
	inj := NewInjector()
	inj.Arm(NoSpace, 2)
	s := NewStore(container.NewMemStore(), inj, nil)
	if err := s.Put(fillContainer(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	err := s.Put(fillContainer(t, 2, 1))
	if !errors.Is(err, ErrNoSpace) || !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2 = %v, want ErrNoSpace wrapping ErrInjected", err)
	}
	if err := s.Put(fillContainer(t, 3, 1)); err != nil {
		t.Fatalf("op 3 after transient ENOSPC = %v, want success", err)
	}
	if has, err := s.Has(2); err != nil || has {
		t.Fatal("the failed op left the container behind")
	}
}

// TestInjectorDisarmAndRearm: Arm resets counters so one injector
// drives many matrix cells.
func TestInjectorDisarmAndRearm(t *testing.T) {
	inj := NewInjector()
	inj.Arm(Fail, 1)
	s := NewStore(container.NewMemStore(), inj, nil)
	if err := s.Put(fillContainer(t, 1, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed op = %v", err)
	}
	inj.Arm(None, 0)
	if err := s.Put(fillContainer(t, 1, 1)); err != nil {
		t.Fatalf("disarmed op = %v", err)
	}
	if inj.Tripped() {
		t.Fatal("Arm did not reset the tripped flag")
	}
}

// TestTornLeavesTempDebris: a torn container write leaves a half-written
// temp file beside the final path and never touches the final path.
func TestTornLeavesTempDebris(t *testing.T) {
	dir := t.TempDir()
	fs, err := container.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector()
	inj.Arm(Torn, 1)
	s := NewStore(fs, inj, fs.Path)
	if err := s.Put(fillContainer(t, 7, 2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn op = %v", err)
	}
	if has, err := fs.Has(7); err != nil || has {
		t.Fatal("torn write exposed the final path")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	debris := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), durable.TempPrefix) {
			debris++
		}
	}
	if debris != 1 {
		t.Fatalf("%d temp files after a torn write, want 1", debris)
	}
	// Reopening the store sweeps the debris — the recovery contract.
	if _, err := container.NewFileStore(dir); err != nil {
		t.Fatal(err)
	}
	n, err := durable.SweepTemp(dir)
	if err != nil || n != 0 {
		t.Fatalf("debris survived the reopen sweep: n=%d err=%v", n, err)
	}
}

// TestCorruptReadFlipsOnDisk: CorruptRead damages the stored image so
// the store's CRC rejects it — and the damage is persistent.
func TestCorruptReadFlipsOnDisk(t *testing.T) {
	dir := t.TempDir()
	fs, err := container.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector()
	s := NewStore(fs, inj, fs.Path)
	if err := s.Put(fillContainer(t, 3, 2)); err != nil {
		t.Fatal(err)
	}
	inj.Arm(CorruptRead, 1)
	if _, err := s.Get(3); err == nil {
		t.Fatal("corrupted read returned a container")
	}
	if !inj.Tripped() {
		t.Fatal("CorruptRead did not trip")
	}
	// Bit rot persists: a later clean read still fails.
	inj.Arm(None, 0)
	if _, err := s.Get(3); err == nil {
		t.Fatal("corruption vanished on the second read")
	}
}

// TestRecipeStoreInjection: recipe ops draw from the same counter as
// container ops, so one index addresses the whole commit sequence.
func TestRecipeStoreInjection(t *testing.T) {
	inj := NewInjector()
	inj.Arm(Fail, 2)
	cs := NewStore(container.NewMemStore(), inj, nil)
	rs := NewRecipeStore(recipe.NewMemStore(), inj, nil)
	if err := cs.Put(fillContainer(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	rec := recipe.New(1)
	data := []byte("x")
	rec.Append(fp.Of(data), uint32(len(data)), 0)
	if err := rs.Put(rec); !errors.Is(err, ErrInjected) {
		t.Fatalf("recipe op 2 = %v, want ErrInjected", err)
	}
	if log := inj.OpLog(); len(log) != 2 || !strings.HasPrefix(log[1], "recipe.Put") {
		t.Fatalf("OpLog = %v", log)
	}
}

// TestWrapWriteTorn: a torn state write leaves temp debris and an
// untouched (here: absent) state file.
func TestWrapWriteTorn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	inj := NewInjector()
	inj.Arm(Torn, 1)
	write := inj.WrapWrite(durable.WriteFileAtomic)
	if err := write(path, []byte("0123456789"), 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn write touched the final path: %v", err)
	}
	n, err := durable.SweepTemp(dir)
	if err != nil || n != 1 {
		t.Fatalf("sweep found %d temp files (err %v), want 1", n, err)
	}
}
