package fault

import (
	"fmt"
	"os"
	"path/filepath"

	"hidestore/internal/cleanup"
	"hidestore/internal/container"
	"hidestore/internal/durable"
	"hidestore/internal/recipe"
)

// Store wraps a container.Store with fault injection. The optional
// path function (container.FileStore.Path for file-backed stores)
// enables the on-disk kinds: Torn leaves a half-written temp file
// beside the final path, CorruptRead flips a byte of the stored file
// so the inner store's CRC check fires. Without it those kinds
// degrade to clean failures.
type Store struct {
	inner container.Store
	inj   *Injector
	path  func(container.ID) string
}

var _ container.Store = (*Store)(nil)

// NewStore wraps inner; path may be nil.
func NewStore(inner container.Store, inj *Injector, path func(container.ID) string) *Store {
	return &Store{inner: inner, inj: inj, path: path}
}

// Put implements container.Store.
func (s *Store) Put(c *container.Container) error {
	op := fmt.Sprintf("container.Put(%d)", c.ID())
	switch act := s.inj.begin(op); act {
	case actProceed:
		return s.inner.Put(c)
	case actTorn:
		if s.path != nil {
			if buf, err := c.MarshalBinary(); err == nil {
				tornTemp(s.path(c.ID()), buf)
			}
		}
		return errFor(act, op)
	default:
		return errFor(act, op)
	}
}

// Get implements container.Store.
func (s *Store) Get(id container.ID) (*container.Container, error) {
	op := fmt.Sprintf("container.Get(%d)", id)
	if s.inj.beginRead(op) == actCorrupt && s.path != nil {
		corruptFile(s.path(id))
	}
	return s.inner.Get(id)
}

// Delete implements container.Store. A torn delete is not physically
// meaningful (unlink is atomic), so Torn degrades to Fail here.
func (s *Store) Delete(id container.ID) error {
	op := fmt.Sprintf("container.Delete(%d)", id)
	if act := s.inj.begin(op); act != actProceed {
		return errFor(act, op)
	}
	return s.inner.Delete(id)
}

// Has implements container.Store.
func (s *Store) Has(id container.ID) (bool, error) { return s.inner.Has(id) }

// IDs implements container.Store.
func (s *Store) IDs() ([]container.ID, error) { return s.inner.IDs() }

// Len implements container.Store.
func (s *Store) Len() (int, error) { return s.inner.Len() }

// Stats implements container.Store.
func (s *Store) Stats() container.StoreStats { return s.inner.Stats() }

// ResetStats implements container.Store.
func (s *Store) ResetStats() { s.inner.ResetStats() }

// Quarantine forwards to the inner store when it can quarantine. The
// move is a mutating step — it draws an op like any other commit step,
// so crash matrices can kill a repair or scrub mid-quarantine (the
// rename itself is atomic, so Torn degrades to Fail).
func (s *Store) Quarantine(id container.ID) (string, error) {
	q, ok := s.inner.(container.Quarantiner)
	if !ok {
		return "", fmt.Errorf("fault: inner store cannot quarantine")
	}
	op := fmt.Sprintf("container.Quarantine(%d)", id)
	if act := s.inj.begin(op); act != actProceed {
		return "", errFor(act, op)
	}
	return q.Quarantine(id)
}

// RecipeStore wraps a recipe.Store with fault injection, drawing from
// the same op counter as the container wrapper. The optional path
// function (recipe.FileStore.Path) enables Torn and CorruptRead.
type RecipeStore struct {
	inner recipe.Store
	inj   *Injector
	path  func(int) string
}

var _ recipe.Store = (*RecipeStore)(nil)

// NewRecipeStore wraps inner; path may be nil.
func NewRecipeStore(inner recipe.Store, inj *Injector, path func(int) string) *RecipeStore {
	return &RecipeStore{inner: inner, inj: inj, path: path}
}

// Put implements recipe.Store.
func (s *RecipeStore) Put(r *recipe.Recipe) error {
	op := fmt.Sprintf("recipe.Put(%d)", r.Version)
	switch act := s.inj.begin(op); act {
	case actProceed:
		return s.inner.Put(r)
	case actTorn:
		if s.path != nil {
			if buf, err := r.MarshalBinary(); err == nil {
				tornTemp(s.path(r.Version), buf)
			}
		}
		return errFor(act, op)
	default:
		return errFor(act, op)
	}
}

// Get implements recipe.Store.
func (s *RecipeStore) Get(version int) (*recipe.Recipe, error) {
	op := fmt.Sprintf("recipe.Get(%d)", version)
	if s.inj.beginRead(op) == actCorrupt && s.path != nil {
		corruptFile(s.path(version))
	}
	return s.inner.Get(version)
}

// Delete implements recipe.Store; Torn degrades to Fail as for
// containers.
func (s *RecipeStore) Delete(version int) error {
	op := fmt.Sprintf("recipe.Delete(%d)", version)
	if act := s.inj.begin(op); act != actProceed {
		return errFor(act, op)
	}
	return s.inner.Delete(version)
}

// Has implements recipe.Store.
func (s *RecipeStore) Has(version int) (bool, error) { return s.inner.Has(version) }

// Versions implements recipe.Store.
func (s *RecipeStore) Versions() ([]int, error) { return s.inner.Versions() }

// Len implements recipe.Store.
func (s *RecipeStore) Len() (int, error) { return s.inner.Len() }

// WriteFunc matches core.Config.WriteState: how the engine commits its
// state file.
type WriteFunc func(path string, data []byte, perm os.FileMode) error

// WrapWrite routes a state writer through the injector: the state
// write draws an op index like any other commit step. Torn leaves a
// half-written temp file beside an intact old state — the only crash
// artifact durable.WriteFileAtomic can produce, since its rename is
// atomic. (A prefix at the final path would model a broken writer
// instead, and reopening would refuse with ErrStateCorrupt rather
// than recover; the state tests cover that refusal directly.)
func (inj *Injector) WrapWrite(write WriteFunc) WriteFunc {
	return func(path string, data []byte, perm os.FileMode) error {
		const op = "state.Write"
		switch act := inj.begin(op); act {
		case actProceed:
			return write(path, data, perm)
		case actTorn:
			tornTemp(path, data)
			return errFor(act, op)
		default:
			return errFor(act, op)
		}
	}
}

// tornTemp leaves a half-written temp file beside path — the crash
// artifact of an interrupted durable atomic write. The final path is
// never touched: every persistence layer commits via an atomic
// rename, so a crash exposes either the old image or the new one,
// plus temp debris — never a prefix. Best-effort: the op is failing
// regardless.
func tornTemp(path string, buf []byte) {
	f, err := os.CreateTemp(filepath.Dir(path), durable.TempPrefix+"*")
	if err != nil {
		return
	}
	if _, werr := f.Write(buf[:len(buf)/2]); werr != nil {
		cleanup.Close(f)
		return
	}
	cleanup.Close(f)
}

// corruptFile flips one byte in the middle of the file at path, so a
// CRC-checked reader sees bit rot. Best-effort: if the file cannot be
// rewritten the read proceeds uncorrupted.
func corruptFile(path string) {
	buf, err := os.ReadFile(path)
	if err != nil || len(buf) == 0 {
		return
	}
	buf[len(buf)/2] ^= 0xFF
	if werr := os.WriteFile(path, buf, 0o644); werr != nil {
		return
	}
}
