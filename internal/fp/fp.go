// Package fp defines chunk fingerprints and helpers around them.
//
// Following the paper (§2.1), every chunk is represented by the 20-byte
// SHA-1 digest of its content. Fingerprint equality is used as chunk
// equality throughout the system: as the paper notes, the probability of a
// SHA-1 collision is far smaller than that of a hardware error.
package fp

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
)

// Size is the length of a fingerprint in bytes (SHA-1 digest size).
const Size = sha1.Size

// FP is a chunk fingerprint: the SHA-1 digest of the chunk's content.
// It is a value type and can be used directly as a map key.
type FP [Size]byte

// ErrBadLength reports a byte slice whose length is not exactly Size.
var ErrBadLength = errors.New("fp: fingerprint must be 20 bytes")

// Of computes the fingerprint of data.
func Of(data []byte) FP {
	return sha1.Sum(data)
}

// FromBytes converts a 20-byte slice into an FP.
func FromBytes(b []byte) (FP, error) {
	var f FP
	if len(b) != Size {
		return f, fmt.Errorf("%w (got %d)", ErrBadLength, len(b))
	}
	copy(f[:], b)
	return f, nil
}

// Parse decodes a 40-character hex string into an FP.
func Parse(s string) (FP, error) {
	var f FP
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("fp: parse %q: %w", s, err)
	}
	return FromBytes(b)
}

// String renders the fingerprint as lowercase hex.
func (f FP) String() string {
	return hex.EncodeToString(f[:])
}

// Short returns the first 8 hex characters, for logs and debugging.
func (f FP) Short() string {
	return hex.EncodeToString(f[:4])
}

// IsZero reports whether the fingerprint is all zeroes. The zero
// fingerprint is never produced by SHA-1 over real content in practice and
// is used as a sentinel in on-disk formats.
func (f FP) IsZero() bool {
	return f == FP{}
}

// Prefix64 returns the first 8 bytes of the fingerprint as a big-endian
// uint64. Sampling-based indexes (sparse indexing, SiLo) use this to select
// hooks and representative fingerprints: SHA-1 output is uniformly
// distributed, so any fixed slice of it is an unbiased sample key.
func (f FP) Prefix64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(f[i])
	}
	return v
}

// Less imposes a total order on fingerprints (lexicographic byte order).
func (f FP) Less(g FP) bool {
	for i := 0; i < Size; i++ {
		if f[i] != g[i] {
			return f[i] < g[i]
		}
	}
	return false
}

// Compare returns -1, 0, or +1 comparing f and g lexicographically.
func (f FP) Compare(g FP) int {
	for i := 0; i < Size; i++ {
		switch {
		case f[i] < g[i]:
			return -1
		case f[i] > g[i]:
			return 1
		}
	}
	return 0
}
