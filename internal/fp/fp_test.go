package fp

import (
	"bytes"
	"crypto/sha1"
	"sort"
	"testing"
	"testing/quick"
)

func TestOfMatchesSHA1(t *testing.T) {
	data := []byte("hello, dedup world")
	want := sha1.Sum(data)
	if got := Of(data); got != FP(want) {
		t.Fatalf("Of(%q) = %s, want %x", data, got, want)
	}
}

func TestOfEmpty(t *testing.T) {
	// SHA-1 of the empty string is a well-known constant.
	const wantHex = "da39a3ee5e6b4b0d3255bfef95601890afd80709"
	if got := Of(nil).String(); got != wantHex {
		t.Fatalf("Of(nil) = %s, want %s", got, wantHex)
	}
}

func TestFromBytes(t *testing.T) {
	tests := []struct {
		name    string
		in      []byte
		wantErr bool
	}{
		{name: "exact", in: make([]byte, Size), wantErr: false},
		{name: "short", in: make([]byte, Size-1), wantErr: true},
		{name: "long", in: make([]byte, Size+1), wantErr: true},
		{name: "empty", in: nil, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := FromBytes(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("FromBytes(len %d) err = %v, wantErr %v", len(tt.in), err, tt.wantErr)
			}
		})
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := Of([]byte("round trip"))
	got, err := Parse(f.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got != f {
		t.Fatalf("Parse(String()) = %s, want %s", got, f)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "zz", "abcd", "not-hex-not-hex-not-hex-not-hex-not-hex!"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestIsZero(t *testing.T) {
	var z FP
	if !z.IsZero() {
		t.Fatal("zero FP should report IsZero")
	}
	if Of([]byte("x")).IsZero() {
		t.Fatal("real fingerprint should not report IsZero")
	}
}

func TestShort(t *testing.T) {
	f := Of([]byte("short"))
	if got, want := f.Short(), f.String()[:8]; got != want {
		t.Fatalf("Short() = %s, want %s", got, want)
	}
}

func TestPrefix64BigEndian(t *testing.T) {
	var f FP
	f[0] = 0x01
	f[7] = 0xff
	if got, want := f.Prefix64(), uint64(0x01000000000000ff); got != want {
		t.Fatalf("Prefix64 = %#x, want %#x", got, want)
	}
}

func TestCompareConsistentWithBytes(t *testing.T) {
	if err := quick.Check(func(a, b [Size]byte) bool {
		f, g := FP(a), FP(b)
		want := bytes.Compare(a[:], b[:])
		return f.Compare(g) == want && f.Less(g) == (want < 0)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortByLess(t *testing.T) {
	fps := []FP{Of([]byte("c")), Of([]byte("a")), Of([]byte("b")), Of([]byte("d"))}
	sort.Slice(fps, func(i, j int) bool { return fps[i].Less(fps[j]) })
	for i := 1; i < len(fps); i++ {
		if fps[i].Less(fps[i-1]) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestStringLen(t *testing.T) {
	if got := Of([]byte("len")).String(); len(got) != 2*Size {
		t.Fatalf("String() length = %d, want %d", len(got), 2*Size)
	}
}
