package index_test

import (
	"strconv"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/core"
	"hidestore/internal/fp"
	"hidestore/internal/index"
	"hidestore/internal/index/ddfs"
	"hidestore/internal/index/extbin"
	"hidestore/internal/index/silo"
	"hidestore/internal/index/sparse"
)

// benchIndexes builds production-default indexes for throughput benches.
func benchIndexes(b *testing.B) map[string]index.Index {
	b.Helper()
	d, err := ddfs.New(ddfs.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sp, err := sparse.New(sparse.Options{})
	if err != nil {
		b.Fatal(err)
	}
	si, err := silo.New(silo.Options{})
	if err != nil {
		b.Fatal(err)
	}
	eb, err := extbin.New(extbin.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return map[string]index.Index{
		"ddfs": d, "sparse": sp, "silo": si, "extbin": eb,
		"hidestore": core.NewIndexView(1),
	}
}

// BenchmarkIndexDedup measures classification throughput on a stream that
// repeats the previous version (the realistic hot path: ~all duplicates).
func BenchmarkIndexDedup(b *testing.B) {
	const segChunks = 1024
	seg := make([]index.ChunkRef, segChunks)
	cids := make([]container.ID, segChunks)
	for i := range seg {
		seg[i] = index.ChunkRef{FP: fp.Of([]byte("bench-" + strconv.Itoa(i))), Size: 4096}
		cids[i] = container.ID(i/256 + 1)
	}
	for name, ix := range benchIndexes(b) {
		b.Run(name, func(b *testing.B) {
			ix.Dedup(seg)
			ix.Commit(seg, cids)
			ix.EndVersion()
			b.SetBytes(segChunks * 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Dedup(seg)
			}
		})
	}
}
