// Package ddfs implements the exact deduplication index of the Data Domain
// File System (Zhu et al., FAST'08), the highest-dedup-ratio baseline in
// the paper's evaluation (§5.2).
//
// DDFS keeps the *full* fingerprint index (one entry per unique chunk
// stored), too large for memory, on disk. Two in-memory structures avoid
// most disk lookups:
//
//   - a Bloom filter ("summary vector"): chunks it rejects are definitely
//     new, so their index lookup is skipped entirely;
//   - a locality-preserved cache: when a fingerprint must be looked up on
//     disk, the fingerprints of its whole container are prefetched into an
//     LRU cache, exploiting the logical locality of backup streams.
//
// The Figure 9 metric counts exactly the lookups that fall through both
// structures to the on-disk full index.
package ddfs

import (
	"hidestore/internal/bloom"
	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
	"hidestore/internal/lru"
)

// Options configures the DDFS index.
type Options struct {
	// ExpectedChunks sizes the Bloom filter. Default 4M chunks.
	ExpectedChunks int
	// FalsePositiveRate of the Bloom filter. Default 0.01.
	FalsePositiveRate float64
	// CacheContainers bounds the locality cache in container groups.
	// Default 64 (≈ 256 MB of chunk locality at 4 MB containers).
	CacheContainers int
}

func (o *Options) setDefaults() {
	if o.ExpectedChunks <= 0 {
		o.ExpectedChunks = 4 << 20
	}
	if o.FalsePositiveRate <= 0 || o.FalsePositiveRate >= 1 {
		o.FalsePositiveRate = 0.01
	}
	if o.CacheContainers <= 0 {
		o.CacheContainers = 64
	}
}

// entrySize is the on-disk full-index entry footprint: fingerprint,
// container ID, chunk size.
const entrySize = fp.Size + 4 + 4

// Index is the DDFS exact-deduplication index.
type Index struct {
	filter *bloom.Filter
	// full is the on-disk full index: fingerprint → container. Lookups
	// against it are counted as disk lookups.
	full map[fp.FP]container.ID
	// groups mirrors per-container fingerprint lists (container metadata
	// on disk) used to prefetch locality groups into the cache.
	groups map[container.ID][]fp.FP
	// cache is the in-memory locality-preserved fingerprint cache, one
	// unit of cost per container group.
	cache *lru.Cache[container.ID, []fp.FP]
	// cached resolves any currently cached fingerprint to its container,
	// maintained in lockstep with cache via its eviction callback.
	cached map[fp.FP]container.ID
	stats  index.Stats
}

var _ index.Index = (*Index)(nil)

// New creates a DDFS index.
func New(opts Options) (*Index, error) {
	opts.setDefaults()
	f, err := bloom.New(opts.ExpectedChunks, opts.FalsePositiveRate)
	if err != nil {
		return nil, err
	}
	cache, err := lru.New[container.ID, []fp.FP](int64(opts.CacheContainers))
	if err != nil {
		return nil, err
	}
	ix := &Index{
		filter: f,
		full:   make(map[fp.FP]container.ID),
		groups: make(map[container.ID][]fp.FP),
		cache:  cache,
		cached: make(map[fp.FP]container.ID),
	}
	cache.SetOnEvict(func(cid container.ID, fps []fp.FP) {
		for _, f := range fps {
			if ix.cached[f] == cid {
				delete(ix.cached, f)
			}
		}
	})
	return ix, nil
}

// Name implements index.Index.
func (ix *Index) Name() string { return "ddfs" }

// Dedup implements index.Index.
func (ix *Index) Dedup(seg []index.ChunkRef) []index.Result {
	results := make([]index.Result, len(seg))
	pending := make(map[fp.FP]struct{}, len(seg))
	for i, c := range seg {
		ix.stats.Lookups++
		// Intra-segment duplicate: first instance is pending placement.
		if _, ok := pending[c.FP]; ok {
			results[i] = index.Result{Duplicate: true}
			ix.noteDuplicate(c)
			continue
		}
		// Bloom filter: a miss proves the chunk is new — no disk lookup.
		if !ix.filter.MayContain(c.FP) {
			results[i] = index.Result{}
			pending[c.FP] = struct{}{}
			ix.noteUnique(c)
			continue
		}
		// Locality cache: scan cached container groups.
		if cid, ok := ix.cacheLookup(c.FP); ok {
			results[i] = index.Result{Duplicate: true, CID: cid}
			ix.stats.CacheHits++
			ix.noteDuplicate(c)
			continue
		}
		// Fall through to the on-disk full index (counted).
		ix.stats.DiskLookups++
		cid, ok := ix.full[c.FP]
		if !ok {
			// Bloom false positive: chunk is actually unique.
			results[i] = index.Result{}
			pending[c.FP] = struct{}{}
			ix.noteUnique(c)
			continue
		}
		results[i] = index.Result{Duplicate: true, CID: cid}
		ix.noteDuplicate(c)
		// Prefetch the whole container group: subsequent chunks of the
		// stream will likely hit it (logical locality).
		ix.prefetch(cid)
	}
	return results
}

func (ix *Index) noteDuplicate(c index.ChunkRef) {
	ix.stats.Duplicates++
	ix.stats.DuplicateBytes += uint64(c.Size)
}

func (ix *Index) noteUnique(c index.ChunkRef) {
	ix.stats.Uniques++
	ix.stats.UniqueBytes += uint64(c.Size)
}

func (ix *Index) cacheLookup(f fp.FP) (container.ID, bool) {
	cid, ok := ix.cached[f]
	if !ok {
		return 0, false
	}
	ix.cache.Get(cid) // promote the group that answered
	return cid, true
}

func (ix *Index) prefetch(cid container.ID) {
	fps, ok := ix.groups[cid]
	if !ok {
		return
	}
	// Snapshot the group: later Commits to the same container must not
	// retroactively appear cached.
	group := append([]fp.FP(nil), fps...)
	if ix.cache.Add(cid, group, 1) {
		for _, f := range group {
			ix.cached[f] = cid
		}
	}
}

// Commit implements index.Index: unique chunks enter the Bloom filter,
// the full index, and their container's locality group.
func (ix *Index) Commit(seg []index.ChunkRef, cids []container.ID) {
	for i, c := range seg {
		if i >= len(cids) || cids[i] == 0 {
			continue
		}
		if _, ok := ix.full[c.FP]; ok {
			continue
		}
		ix.full[c.FP] = cids[i]
		ix.filter.Add(c.FP)
		ix.groups[cids[i]] = append(ix.groups[cids[i]], c.FP)
	}
}

// EndVersion implements index.Index. DDFS keeps no per-version state.
func (ix *Index) EndVersion() {}

// Stats implements index.Index.
func (ix *Index) Stats() index.Stats { return ix.stats }

// MemoryBytes implements index.Index: the full-index entries plus the
// Bloom filter — the structures that must exist for DDFS to deduplicate,
// and the reason its Figure 10 overhead is the highest.
func (ix *Index) MemoryBytes() int64 {
	return int64(len(ix.full))*entrySize + int64(ix.filter.SizeBytes())
}

// UniqueChunks returns the number of unique chunks indexed (test hook).
func (ix *Index) UniqueChunks() int { return len(ix.full) }
