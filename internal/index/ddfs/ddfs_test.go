package ddfs

import (
	"strconv"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
)

func seg(prefix string, n int) []index.ChunkRef {
	out := make([]index.ChunkRef, n)
	for i := range out {
		out[i] = index.ChunkRef{FP: fp.Of([]byte(prefix + strconv.Itoa(i))), Size: 4096}
	}
	return out
}

func sameCIDs(n int, cid container.ID) []container.ID {
	out := make([]container.ID, n)
	for i := range out {
		out[i] = cid
	}
	return out
}

func TestBloomSkipsUniqueLookups(t *testing.T) {
	ix, err := New(Options{ExpectedChunks: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	// An all-unique stream should trigger (almost) no disk lookups: the
	// Bloom filter proves each chunk is new. Allow a handful of false
	// positives.
	s := seg("u", 5000)
	ix.Dedup(s)
	if got := ix.Stats().DiskLookups; got > 100 {
		t.Fatalf("DiskLookups = %d for all-unique stream; bloom should suppress most", got)
	}
}

func TestLocalityPrefetchSavesLookups(t *testing.T) {
	ix, err := New(Options{ExpectedChunks: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	// Store 100 chunks, all in container 1.
	s := seg("a", 100)
	ix.Commit(s, sameCIDs(100, 1))
	ix.EndVersion()

	// Re-deduplicate: the first chunk misses the cache (1 disk lookup),
	// which prefetches container 1's whole group; the remaining 99 must
	// hit the cache.
	ix.Dedup(s)
	st := ix.Stats()
	if st.DiskLookups != 1 {
		t.Fatalf("DiskLookups = %d, want 1 (prefetch should serve the rest)", st.DiskLookups)
	}
	if st.CacheHits != 99 {
		t.Fatalf("CacheHits = %d, want 99", st.CacheHits)
	}
}

func TestCacheEvictionForcesRelookup(t *testing.T) {
	ix, err := New(Options{ExpectedChunks: 1 << 12, CacheContainers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Three containers' worth of chunks; cache holds only two groups.
	for cid := container.ID(1); cid <= 3; cid++ {
		s := seg("c"+strconv.Itoa(int(cid))+"-", 10)
		ix.Commit(s, sameCIDs(10, cid))
	}
	ix.EndVersion()
	// Touch container 1, 2, 3 in order; then 1 again — it must have been
	// evicted, costing a fresh disk lookup.
	for _, cid := range []int{1, 2, 3} {
		ix.Dedup(seg("c"+strconv.Itoa(cid)+"-", 10))
	}
	before := ix.Stats().DiskLookups
	ix.Dedup(seg("c1-", 10))
	after := ix.Stats().DiskLookups
	if after != before+1 {
		t.Fatalf("expected exactly one more disk lookup after eviction, got %d -> %d", before, after)
	}
}

func TestMemoryAccountsFullIndex(t *testing.T) {
	ix, err := New(Options{ExpectedChunks: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	base := ix.MemoryBytes() // bloom filter only
	s := seg("m", 1000)
	ix.Commit(s, sameCIDs(1000, 1))
	grown := ix.MemoryBytes()
	if grown-base != 1000*entrySize {
		t.Fatalf("full index grew by %d, want %d", grown-base, 1000*entrySize)
	}
	if ix.UniqueChunks() != 1000 {
		t.Fatalf("UniqueChunks = %d", ix.UniqueChunks())
	}
}

func TestCommitIgnoresZeroCID(t *testing.T) {
	ix, err := New(Options{ExpectedChunks: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	s := seg("z", 5)
	ix.Commit(s, make([]container.ID, 5)) // all zero: nothing placed
	if ix.UniqueChunks() != 0 {
		t.Fatal("zero CIDs must not be indexed")
	}
}

func TestOptionsDefaults(t *testing.T) {
	if _, err := New(Options{}); err != nil {
		t.Fatalf("defaults should be valid: %v", err)
	}
}
