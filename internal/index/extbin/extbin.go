// Package extbin implements Extreme Binning (Bhagwat et al.,
// MASCOTS'09), the file-similarity index the paper's related work (§6)
// cites for non-traditional backup workloads with poor stream locality.
//
// Extreme Binning keeps exactly one in-memory entry per *bin*: the
// representative (minimum) chunk fingerprint of the files filed in that
// bin, plus the hash of the whole file that created it. All other chunk
// fingerprints live in the bin on disk. A new file is deduplicated by
// loading the single bin its representative selects (at most one disk
// access per file) and comparing against that bin's chunks only — so
// duplicates across dissimilar files are missed, trading dedup ratio for
// a tiny RAM footprint and bounded I/O.
//
// The engine feeds segments rather than files; as with SiLo, the segment
// stands in for the file (the original paper bins files; destor's
// re-implementation bins segments the same way).
package extbin

import (
	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
)

// Options configures Extreme Binning.
type Options struct {
	// MaxBinChunks caps a bin's size; bins that grow past it stop
	// absorbing new chunk lists (the original design relies on file
	// diversity to keep bins small). Default 64k chunks.
	MaxBinChunks int
}

func (o *Options) setDefaults() {
	if o.MaxBinChunks <= 0 {
		o.MaxBinChunks = 64 << 10
	}
}

// bin models one on-disk bin: chunk → container for every file filed
// under its representative.
type bin struct {
	id     uint64
	chunks map[fp.FP]container.ID
}

// primaryEntry is the RAM record for one representative.
type primaryEntry struct {
	// wholeHash is the hash of the most recent segment filed here; equal
	// whole hashes skip the bin load entirely (the original paper's
	// shortcut for identical files).
	wholeHash fp.FP
	binID     uint64
}

// Index is the Extreme Binning index.
type Index struct {
	opts    Options
	primary map[fp.FP]primaryEntry
	bins    map[uint64]*bin
	nextBin uint64

	// pending carries the segment classified by Dedup into Commit.
	pendingRep   fp.FP
	pendingWhole fp.FP
	pendingOK    bool
	pendingSkip  bool

	stats index.Stats
}

var _ index.Index = (*Index)(nil)

// New creates an Extreme Binning index.
func New(opts Options) (*Index, error) {
	opts.setDefaults()
	return &Index{
		opts:    opts,
		primary: make(map[fp.FP]primaryEntry),
		bins:    make(map[uint64]*bin),
	}, nil
}

// Name implements index.Index.
func (ix *Index) Name() string { return "extbin" }

// representative returns the minimum fingerprint of the segment.
func representative(seg []index.ChunkRef) (fp.FP, bool) {
	if len(seg) == 0 {
		return fp.FP{}, false
	}
	min := seg[0].FP
	for _, c := range seg[1:] {
		if c.FP.Less(min) {
			min = c.FP
		}
	}
	return min, true
}

// wholeHash hashes the segment's fingerprint sequence, standing in for
// the whole-file hash of the original design.
func wholeHash(seg []index.ChunkRef) fp.FP {
	buf := make([]byte, 0, len(seg)*fp.Size)
	for _, c := range seg {
		buf = append(buf, c.FP[:]...)
	}
	return fp.Of(buf)
}

// Dedup implements index.Index.
func (ix *Index) Dedup(seg []index.ChunkRef) []index.Result {
	results := make([]index.Result, len(seg))
	rep, ok := representative(seg)
	ix.pendingOK = ok
	ix.pendingSkip = false
	if !ok {
		return results
	}
	whole := wholeHash(seg)
	ix.pendingRep, ix.pendingWhole = rep, whole

	var known map[fp.FP]container.ID
	if entry, found := ix.primary[rep]; found {
		if entry.wholeHash == whole {
			// Identical segment: everything is a duplicate; the bin is
			// loaded anyway to answer *where* (one disk access), matching
			// the original design's single-bin-load bound.
			ix.pendingSkip = true
		}
		ix.stats.DiskLookups++
		if b, exists := ix.bins[entry.binID]; exists {
			known = b.chunks
		}
	}
	pending := make(map[fp.FP]struct{}, len(seg))
	for i, c := range seg {
		ix.stats.Lookups++
		if _, dup := pending[c.FP]; dup {
			results[i] = index.Result{Duplicate: true}
			ix.noteDuplicate(c)
			continue
		}
		if cid, ok := known[c.FP]; ok {
			results[i] = index.Result{Duplicate: true, CID: cid}
			ix.stats.CacheHits++
			ix.noteDuplicate(c)
			continue
		}
		results[i] = index.Result{}
		pending[c.FP] = struct{}{}
		ix.noteUnique(c)
	}
	return results
}

// Commit implements index.Index: the segment's chunks are filed into the
// representative's bin.
func (ix *Index) Commit(seg []index.ChunkRef, cids []container.ID) {
	if !ix.pendingOK || len(seg) == 0 {
		return
	}
	entry, found := ix.primary[ix.pendingRep]
	var b *bin
	if found {
		b = ix.bins[entry.binID]
	}
	if b == nil {
		ix.nextBin++
		b = &bin{id: ix.nextBin, chunks: make(map[fp.FP]container.ID)}
		ix.bins[b.id] = b
	}
	if !ix.pendingSkip && len(b.chunks) < ix.opts.MaxBinChunks {
		for i, c := range seg {
			if i >= len(cids) || cids[i] == 0 {
				continue
			}
			if _, ok := b.chunks[c.FP]; !ok {
				b.chunks[c.FP] = cids[i]
			}
		}
	}
	ix.primary[ix.pendingRep] = primaryEntry{wholeHash: ix.pendingWhole, binID: b.id}
}

// EndVersion implements index.Index; Extreme Binning keeps no per-version
// state.
func (ix *Index) EndVersion() {}

// Stats implements index.Index.
func (ix *Index) Stats() index.Stats { return ix.stats }

// MemoryBytes implements index.Index: the primary index only — one
// representative fingerprint, one whole hash and a bin pointer per bin
// entry; bins live on disk.
func (ix *Index) MemoryBytes() int64 {
	return int64(len(ix.primary)) * (2*fp.Size + 8)
}

// Bins returns the number of bins (test hook).
func (ix *Index) Bins() int { return len(ix.bins) }

func (ix *Index) noteDuplicate(c index.ChunkRef) {
	ix.stats.Duplicates++
	ix.stats.DuplicateBytes += uint64(c.Size)
}

func (ix *Index) noteUnique(c index.ChunkRef) {
	ix.stats.Uniques++
	ix.stats.UniqueBytes += uint64(c.Size)
}
