package extbin

import (
	"strconv"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
)

func seg(prefix string, n int) []index.ChunkRef {
	out := make([]index.ChunkRef, n)
	for i := range out {
		out[i] = index.ChunkRef{FP: fp.Of([]byte(prefix + strconv.Itoa(i))), Size: 4096}
	}
	return out
}

func cids(n int, cid container.ID) []container.ID {
	out := make([]container.ID, n)
	for i := range out {
		out[i] = cid
	}
	return out
}

func TestIdenticalSegmentFullyDeduplicates(t *testing.T) {
	ix, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := seg("a", 100)
	res := ix.Dedup(s)
	ix.Commit(s, cids(100, 1))
	_ = res
	res = ix.Dedup(s)
	for i, r := range res {
		if !r.Duplicate || r.CID != 1 {
			t.Fatalf("chunk %d: %+v", i, r)
		}
	}
	if ix.Stats().DiskLookups != 1 {
		t.Fatalf("DiskLookups = %d, want 1 bin load", ix.Stats().DiskLookups)
	}
	if ix.Bins() != 1 {
		t.Fatalf("Bins = %d, want 1", ix.Bins())
	}
}

// TestSimilarSegmentSharesBin: keeping the representative chunk keeps the
// bin, so unchanged chunks deduplicate.
func TestSimilarSegmentSharesBin(t *testing.T) {
	ix, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := seg("base", 100)
	ix.Dedup(s)
	ix.Commit(s, cids(100, 1))

	rep, _ := representative(s)
	mutated := append([]index.ChunkRef(nil), s...)
	changed := 0
	for i := range mutated {
		if mutated[i].FP == rep {
			continue
		}
		if changed < 25 {
			mutated[i] = index.ChunkRef{FP: fp.Of([]byte("new" + strconv.Itoa(i))), Size: 4096}
			changed++
		}
	}
	res := ix.Dedup(mutated)
	dups := 0
	for _, r := range res {
		if r.Duplicate {
			dups++
		}
	}
	if dups != 75 {
		t.Fatalf("dups = %d, want 75", dups)
	}
	ix.Commit(mutated, cids(100, 2))
	if ix.Bins() != 1 {
		t.Fatalf("similar segments should share one bin, got %d", ix.Bins())
	}
}

// TestDissimilarSegmentMisses: a different representative selects no bin,
// so stored chunks are missed — Extreme Binning's dedup-ratio trade.
func TestDissimilarSegmentMisses(t *testing.T) {
	ix, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := seg("one", 50)
	ix.Dedup(s)
	ix.Commit(s, cids(50, 1))
	res := ix.Dedup(seg("two", 50))
	for i, r := range res {
		if r.Duplicate {
			t.Fatalf("chunk %d misclassified", i)
		}
	}
	if ix.Stats().DiskLookups != 0 {
		t.Fatal("no bin should load for a new representative")
	}
}

func TestMemoryCountsPrimaryOnly(t *testing.T) {
	ix, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s := seg("m"+strconv.Itoa(i), 200)
		ix.Dedup(s)
		ix.Commit(s, cids(200, container.ID(i+1)))
	}
	// 10 primary entries at 48 bytes each — regardless of the 2000 chunks
	// sitting in bins.
	if got, want := ix.MemoryBytes(), int64(10*(2*fp.Size+8)); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestBinCap(t *testing.T) {
	ix, err := New(Options{MaxBinChunks: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Two similar segments share a bin; the cap stops the second's new
	// chunks from being filed.
	s := seg("cap", 10)
	ix.Dedup(s)
	ix.Commit(s, cids(10, 1))
	s2 := append(append([]index.ChunkRef(nil), s...), seg("extra", 5)...)
	ix.Dedup(s2)
	ix.Commit(s2, cids(15, 2))
	b := ix.bins[1]
	if len(b.chunks) > 10 {
		t.Fatalf("bin grew to %d chunks past the cap", len(b.chunks))
	}
}

func TestEmptySegment(t *testing.T) {
	ix, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := ix.Dedup(nil); len(res) != 0 {
		t.Fatal("nil segment should produce no results")
	}
	ix.Commit(nil, nil)
	ix.EndVersion()
	if ix.Name() != "extbin" {
		t.Fatal("wrong name")
	}
}
