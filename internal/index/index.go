// Package index defines the fingerprint-index interface shared by the
// deduplication schemes the paper evaluates (§5.2): DDFS-style exact
// deduplication, Sparse Indexing, SiLo, and HiDeStore's double-hash
// fingerprint cache (which lives in internal/core and implements the same
// interface).
//
// Indexes are consulted at *segment* granularity: the dedup engine cuts the
// chunk stream into segments of a few thousand chunks and asks the index to
// classify every chunk of a segment as duplicate or unique. Segment
// granularity is what the sampling-based baselines need — Sparse Indexing
// picks champion manifests per segment, SiLo computes per-segment
// representative fingerprints — while per-chunk schemes (DDFS, HiDeStore)
// simply iterate the segment.
//
// The index answers *where* a duplicate lives so the engine can write
// recipes; it is told where unique chunks were placed via Commit.
package index

import (
	"hidestore/internal/container"
	"hidestore/internal/fp"
)

// ChunkRef is the metadata an index sees for one chunk: fingerprint and
// size. Chunk payloads never flow through indexes.
type ChunkRef struct {
	FP   fp.FP
	Size uint32
}

// Result classifies one chunk.
type Result struct {
	// Duplicate reports whether the chunk's content is already stored.
	Duplicate bool
	// CID is the container holding the duplicate, when known. CID 0 with
	// Duplicate == true means the duplicate is pending placement earlier
	// in the same backup session (an intra-version duplicate); the engine
	// resolves it from its session map.
	CID container.ID
}

// Stats counts index activity. DiskLookups is the paper's Figure 9 metric:
// the number of lookup requests that must go to on-disk structures (full
// index entries, champion manifests, SiLo blocks) — in-memory cache hits
// and Bloom-filter rejections are free.
type Stats struct {
	// Lookups is the total number of chunk classifications requested.
	Lookups uint64
	// DiskLookups counts reads of on-disk index structures.
	DiskLookups uint64
	// CacheHits counts duplicates answered from in-memory state.
	CacheHits uint64
	// Duplicates and Uniques partition classified chunks.
	Duplicates uint64
	Uniques    uint64
	// DuplicateBytes and UniqueBytes partition classified bytes.
	DuplicateBytes uint64
	UniqueBytes    uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Lookups += other.Lookups
	s.DiskLookups += other.DiskLookups
	s.CacheHits += other.CacheHits
	s.Duplicates += other.Duplicates
	s.Uniques += other.Uniques
	s.DuplicateBytes += other.DuplicateBytes
	s.UniqueBytes += other.UniqueBytes
}

// Index is a fingerprint index. Implementations are not required to be
// safe for concurrent use; the dedup engine serializes access. Indexes
// that must be shared across goroutines (the daemon's tenants) can be
// wrapped in index/sharded.Front, which adds per-shard locking — and,
// for exact per-chunk schemes, shard-level concurrency.
type Index interface {
	// Name identifies the scheme ("ddfs", "sparse", "silo", "hidestore").
	Name() string
	// Dedup classifies every chunk of one segment, in order. The returned
	// slice has exactly len(seg) results.
	Dedup(seg []ChunkRef) []Result
	// Commit records the final placement of each chunk of a segment the
	// engine just stored: cids[i] is the container now holding seg[i]
	// (for duplicates, the pre-existing container). Commit is called once
	// per Dedup, with the same segment.
	Commit(seg []ChunkRef, cids []container.ID)
	// EndVersion marks a backup-version boundary (flush partial segments,
	// rotate caches).
	EndVersion()
	// Stats returns cumulative counters.
	Stats() Stats
	// MemoryBytes estimates the persistent index-table footprint — the
	// Figure 10 metric. Transient per-version state (e.g. HiDeStore's T1
	// and T2, which are rebuilt from the previous recipe) is excluded.
	MemoryBytes() int64
}
