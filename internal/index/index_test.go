package index_test

import (
	"strconv"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
	"hidestore/internal/index/ddfs"
	"hidestore/internal/index/extbin"
	"hidestore/internal/index/silo"
	"hidestore/internal/index/sparse"
)

// makeIndexes builds one of each baseline index for the conformance suite.
func makeIndexes(t *testing.T) map[string]index.Index {
	t.Helper()
	d, err := ddfs.New(ddfs.Options{ExpectedChunks: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sparse.New(sparse.Options{SampleBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	si, err := silo.New(silo.Options{SegmentsPerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	eb, err := extbin.New(extbin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]index.Index{"ddfs": d, "sparse": sp, "silo": si, "extbin": eb}
}

func segment(version, start, n int) []index.ChunkRef {
	seg := make([]index.ChunkRef, n)
	for i := 0; i < n; i++ {
		data := []byte("chunk-" + strconv.Itoa(start+i))
		_ = version
		seg[i] = index.ChunkRef{FP: fp.Of(data), Size: uint32(1000 + i)}
	}
	return seg
}

// commitAll assigns sequential container IDs to unique chunks and commits.
func commitAll(ix index.Index, seg []index.ChunkRef, res []index.Result, nextCID *container.ID) []container.ID {
	cids := make([]container.ID, len(seg))
	session := make(map[fp.FP]container.ID)
	for i, r := range res {
		switch {
		case !r.Duplicate:
			*nextCID++
			cids[i] = *nextCID
			session[seg[i].FP] = cids[i]
		case r.CID != 0:
			cids[i] = r.CID
		default:
			cids[i] = session[seg[i].FP]
		}
	}
	ix.Commit(seg, cids)
	return cids
}

func TestFreshChunksAreUnique(t *testing.T) {
	for name, ix := range makeIndexes(t) {
		t.Run(name, func(t *testing.T) {
			seg := segment(1, 0, 100)
			res := ix.Dedup(seg)
			if len(res) != len(seg) {
				t.Fatalf("got %d results, want %d", len(res), len(seg))
			}
			for i, r := range res {
				if r.Duplicate {
					t.Fatalf("chunk %d misclassified as duplicate on empty index", i)
				}
			}
			st := ix.Stats()
			if st.Uniques != 100 || st.Duplicates != 0 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

// TestExactRededup stores a segment then re-deduplicates it: every scheme
// must find all duplicates when the repeated segment is identical (this is
// the adjacent-version redundancy case that all schemes handle).
func TestExactRededup(t *testing.T) {
	for name, ix := range makeIndexes(t) {
		t.Run(name, func(t *testing.T) {
			var next container.ID
			seg := segment(1, 0, 200)
			res := ix.Dedup(seg)
			commitAll(ix, seg, res, &next)
			ix.EndVersion()

			res2 := ix.Dedup(seg)
			dups := 0
			for _, r := range res2 {
				if r.Duplicate {
					dups++
				}
			}
			if dups != len(seg) {
				t.Fatalf("re-dedup found %d/%d duplicates", dups, len(seg))
			}
		})
	}
}

// TestDuplicateCIDsResolve verifies that duplicates come back with the
// container ID recorded at commit time.
func TestDuplicateCIDsResolve(t *testing.T) {
	for name, ix := range makeIndexes(t) {
		t.Run(name, func(t *testing.T) {
			var next container.ID
			seg := segment(1, 0, 50)
			res := ix.Dedup(seg)
			cids := commitAll(ix, seg, res, &next)
			ix.EndVersion()

			res2 := ix.Dedup(seg)
			for i, r := range res2 {
				if !r.Duplicate {
					t.Fatalf("chunk %d not duplicate", i)
				}
				if r.CID != cids[i] {
					t.Fatalf("chunk %d CID = %d, want %d", i, r.CID, cids[i])
				}
			}
		})
	}
}

// TestIntraSegmentDuplicates: the same fingerprint twice in one segment
// must classify the second occurrence as a duplicate (pending CID 0 or
// resolved).
func TestIntraSegmentDuplicates(t *testing.T) {
	for name, ix := range makeIndexes(t) {
		t.Run(name, func(t *testing.T) {
			base := segment(1, 0, 10)
			seg := append(append([]index.ChunkRef(nil), base...), base...)
			res := ix.Dedup(seg)
			for i := 0; i < 10; i++ {
				if res[i].Duplicate {
					t.Fatalf("first occurrence %d misclassified", i)
				}
			}
			for i := 10; i < 20; i++ {
				if !res[i].Duplicate {
					t.Fatalf("second occurrence %d not duplicate", i)
				}
			}
		})
	}
}

func TestStatsBytesPartition(t *testing.T) {
	for name, ix := range makeIndexes(t) {
		t.Run(name, func(t *testing.T) {
			var next container.ID
			seg := segment(1, 0, 30)
			var logical uint64
			for _, c := range seg {
				logical += uint64(c.Size)
			}
			res := ix.Dedup(seg)
			commitAll(ix, seg, res, &next)
			ix.EndVersion()
			ix.Dedup(seg)
			st := ix.Stats()
			if st.UniqueBytes+st.DuplicateBytes != 2*logical {
				t.Fatalf("bytes don't partition: %d + %d != %d",
					st.UniqueBytes, st.DuplicateBytes, 2*logical)
			}
			if st.Lookups != 60 {
				t.Fatalf("Lookups = %d, want 60", st.Lookups)
			}
		})
	}
}

func TestMemoryGrowsWithData(t *testing.T) {
	for name, ix := range makeIndexes(t) {
		t.Run(name, func(t *testing.T) {
			var next container.ID
			before := ix.MemoryBytes()
			for v := 0; v < 4; v++ {
				seg := segment(1, v*1000, 1000)
				res := ix.Dedup(seg)
				commitAll(ix, seg, res, &next)
				ix.EndVersion()
			}
			after := ix.MemoryBytes()
			if after <= before {
				t.Fatalf("MemoryBytes did not grow: %d -> %d", before, after)
			}
		})
	}
}

// TestSamplingIndexesUseLessMemory checks the Figure 10 ordering at the
// index level: sparse and SiLo keep far less persistent memory than DDFS
// for the same data.
func TestSamplingIndexesUseLessMemory(t *testing.T) {
	indexes := makeIndexes(t)
	var next container.ID
	for _, ix := range indexes {
		for v := 0; v < 4; v++ {
			seg := segment(1, v*2000, 2000)
			res := ix.Dedup(seg)
			commitAll(ix, seg, res, &next)
			ix.EndVersion()
		}
	}
	dd := indexes["ddfs"].MemoryBytes()
	sp := indexes["sparse"].MemoryBytes()
	si := indexes["silo"].MemoryBytes()
	if sp >= dd {
		t.Errorf("sparse memory %d should be below ddfs %d", sp, dd)
	}
	if si >= dd {
		t.Errorf("silo memory %d should be below ddfs %d", si, dd)
	}
}

func TestNames(t *testing.T) {
	for want, ix := range makeIndexes(t) {
		if got := ix.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestEmptySegment(t *testing.T) {
	for name, ix := range makeIndexes(t) {
		t.Run(name, func(t *testing.T) {
			res := ix.Dedup(nil)
			if len(res) != 0 {
				t.Fatalf("Dedup(nil) returned %d results", len(res))
			}
			ix.Commit(nil, nil)
			ix.EndVersion()
		})
	}
}

func TestStatsAdd(t *testing.T) {
	a := index.Stats{Lookups: 1, DiskLookups: 2, CacheHits: 3, Duplicates: 4, Uniques: 5, DuplicateBytes: 6, UniqueBytes: 7}
	b := a
	a.Add(b)
	want := index.Stats{Lookups: 2, DiskLookups: 4, CacheHits: 6, Duplicates: 8, Uniques: 10, DuplicateBytes: 12, UniqueBytes: 14}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}
