// Package sharded wraps a fingerprint index in a sharded concurrent
// front: the fingerprint space is split across a power-of-two number of
// inner index instances (selected by the fingerprint's leading byte),
// each behind its own lock, so classification requests from concurrent
// goroutines — the backup pipeline's hash workers, or many tenants in
// the daemon — only contend when they touch the same shard.
//
// The front is semantically transparent only for indexes whose
// classification is a per-chunk function of the fingerprint alone —
// exact schemes like DDFS, where shard-routing a chunk to a smaller
// full index cannot change its duplicate/unique verdict. Sampling-based
// segment indexes (Sparse Indexing, SiLo) make segment-scoped decisions
// — champion manifests, representative fingerprints — so splitting
// their segments across shards changes what they sample; for those,
// use Shards: 1, which degrades to a plain exclusive-lock wrapper and
// still makes the index safe to call from concurrent goroutines.
package sharded

import (
	"fmt"
	"sync"

	"hidestore/internal/container"
	"hidestore/internal/index"
)

// MaxShards caps the shard count: the selector is the fingerprint's
// leading byte, so more than 256 shards cannot be addressed.
const MaxShards = 256

// Front is the sharded index wrapper. It implements index.Index and is
// safe for concurrent use (unlike most inner indexes).
type Front struct {
	mask   uint8
	shards []shard
}

type shard struct {
	mu sync.Mutex
	ix index.Index
}

var _ index.Index = (*Front)(nil)

// New builds a front over shards inner indexes, one per shard, created
// by mk (called once per shard with the shard number). shards is
// rounded up to a power of two and capped at MaxShards; 0 and 1 both
// yield a single-shard front — an exclusive-lock wrapper.
func New(shards int, mk func(shard int) index.Index) (*Front, error) {
	if shards < 0 {
		return nil, fmt.Errorf("sharded: shard count %d: must be >= 0", shards)
	}
	if shards == 0 {
		shards = 1
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	f := &Front{mask: uint8(n - 1), shards: make([]shard, n)}
	for i := range f.shards {
		ix := mk(i)
		if ix == nil {
			return nil, fmt.Errorf("sharded: mk(%d) returned nil", i)
		}
		f.shards[i].ix = ix
	}
	return f, nil
}

// shardOf selects the lock domain for one chunk.
func (f *Front) shardOf(c index.ChunkRef) *shard {
	return &f.shards[c.FP[0]&f.mask]
}

// Name implements index.Index: the inner scheme's name passes through
// so experiment labels stay stable when an index is wrapped.
func (f *Front) Name() string { return f.shards[0].ix.Name() }

// Dedup implements index.Index. The segment is partitioned by shard,
// each partition classified by its inner index under the shard lock,
// and the results scattered back into segment order.
func (f *Front) Dedup(seg []index.ChunkRef) []index.Result {
	if len(f.shards) == 1 {
		s := &f.shards[0]
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.ix.Dedup(seg)
	}
	parts, order := f.partition(seg)
	results := make([]index.Result, len(seg))
	for k, part := range parts {
		if len(part) == 0 {
			continue
		}
		s := &f.shards[k]
		s.mu.Lock()
		res := s.ix.Dedup(part)
		s.mu.Unlock()
		for i, r := range res {
			results[order[k][i]] = r
		}
	}
	return results
}

// Commit implements index.Index, partitioned identically to Dedup.
func (f *Front) Commit(seg []index.ChunkRef, cids []container.ID) {
	if len(f.shards) == 1 {
		s := &f.shards[0]
		s.mu.Lock()
		s.ix.Commit(seg, cids)
		s.mu.Unlock()
		return
	}
	parts, order := f.partition(seg)
	for k, part := range parts {
		if len(part) == 0 {
			continue
		}
		partCIDs := make([]container.ID, len(part))
		for i, at := range order[k] {
			if at < len(cids) {
				partCIDs[i] = cids[at]
			}
		}
		s := &f.shards[k]
		s.mu.Lock()
		s.ix.Commit(part, partCIDs)
		s.mu.Unlock()
	}
}

// partition splits seg into per-shard sub-segments, preserving the
// in-segment order within each shard, and records each sub-segment
// entry's position in the original segment.
func (f *Front) partition(seg []index.ChunkRef) ([][]index.ChunkRef, [][]int) {
	parts := make([][]index.ChunkRef, len(f.shards))
	order := make([][]int, len(f.shards))
	for i, c := range seg {
		k := c.FP[0] & f.mask
		parts[k] = append(parts[k], c)
		order[k] = append(order[k], i)
	}
	return parts, order
}

// EndVersion implements index.Index.
func (f *Front) EndVersion() {
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		s.ix.EndVersion()
		s.mu.Unlock()
	}
}

// Stats implements index.Index: the per-shard counters summed at
// snapshot time. Safe to call concurrently with classification.
func (f *Front) Stats() index.Stats {
	var st index.Stats
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		st.Add(s.ix.Stats())
		s.mu.Unlock()
	}
	return st
}

// MemoryBytes implements index.Index: the shards' footprints summed.
func (f *Front) MemoryBytes() int64 {
	var n int64
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		n += s.ix.MemoryBytes()
		s.mu.Unlock()
	}
	return n
}
