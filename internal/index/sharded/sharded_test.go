package sharded

import (
	"crypto/sha1"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/index"
	"hidestore/internal/index/ddfs"
)

// newDDFS builds a default DDFS index, panicking on the (impossible
// with default options) construction error.
func newDDFS() index.Index {
	ix, err := ddfs.New(ddfs.Options{})
	if err != nil {
		panic(err)
	}
	return ix
}

// mkSeg builds a deterministic segment: n chunks drawn from a pool of
// uniq distinct fingerprints, so re-feeding it produces duplicates.
func mkSeg(r *rand.Rand, n, uniq int) []index.ChunkRef {
	seg := make([]index.ChunkRef, n)
	for i := range seg {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(r.Intn(uniq)))
		seg[i] = index.ChunkRef{FP: sha1.Sum(b[:]), Size: uint32(1000 + r.Intn(4000))}
	}
	return seg
}

// TestFrontMatchesPlainDDFS pins the front's transparency claim for an
// exact index: sharded DDFS must classify every chunk of every segment
// exactly as unsharded DDFS does.
func TestFrontMatchesPlainDDFS(t *testing.T) {
	plain := newDDFS()
	front, err := New(8, func(int) index.Index { return newDDFS() })
	if err != nil {
		t.Fatal(err)
	}
	if got, want := front.Name(), plain.Name(); got != want {
		t.Fatalf("Name() = %q, want passthrough %q", got, want)
	}

	r := rand.New(rand.NewSource(7))
	nextCID := container.ID(0)
	for ver := 0; ver < 4; ver++ {
		for s := 0; s < 6; s++ {
			seg := mkSeg(r, 500, 800)
			rp := plain.Dedup(seg)
			rf := front.Dedup(seg)
			if len(rp) != len(seg) || len(rf) != len(seg) {
				t.Fatalf("result lengths %d/%d, want %d", len(rp), len(rf), len(seg))
			}
			cids := make([]container.ID, len(seg))
			for i := range seg {
				if rp[i].Duplicate != rf[i].Duplicate || rp[i].CID != rf[i].CID {
					t.Fatalf("v%d seg%d chunk %d: plain %+v, sharded %+v", ver, s, i, rp[i], rf[i])
				}
				if rp[i].Duplicate && rp[i].CID != 0 {
					cids[i] = rp[i].CID
				} else {
					nextCID++
					cids[i] = nextCID
				}
			}
			plain.Commit(seg, cids)
			front.Commit(seg, cids)
		}
		plain.EndVersion()
		front.EndVersion()
	}

	sp, sf := plain.Stats(), front.Stats()
	// Classification counters must agree exactly. Disk-lookup and
	// cache-hit counters may differ: sharding splits the Bloom filter
	// and locality cache, which changes which lookups are free.
	if sp.Lookups != sf.Lookups || sp.Duplicates != sf.Duplicates || sp.Uniques != sf.Uniques ||
		sp.DuplicateBytes != sf.DuplicateBytes || sp.UniqueBytes != sf.UniqueBytes {
		t.Fatalf("classification stats diverge:\nplain   %+v\nsharded %+v", sp, sf)
	}
}

func TestFrontShardCounts(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 8, 200, 1000} {
		f, err := New(n, func(int) index.Index { return newDDFS() })
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		got := len(f.shards)
		if got&(got-1) != 0 || got < 1 || got > MaxShards {
			t.Fatalf("New(%d): %d shards, want a power of two in [1, %d]", n, got, MaxShards)
		}
	}
	if _, err := New(-1, func(int) index.Index { return newDDFS() }); err == nil {
		t.Fatal("New(-1) accepted")
	}
	if _, err := New(4, func(int) index.Index { return nil }); err == nil {
		t.Fatal("nil inner index accepted")
	}
}

// TestFrontConcurrentHammer drives Dedup/Commit from many goroutines
// while a concurrent Stats scrape runs — the -race tier's shard
// contention check for the baseline front.
func TestFrontConcurrentHammer(t *testing.T) {
	front, err := New(8, func(int) index.Index { return newDDFS() })
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg, scrape sync.WaitGroup
	stop := make(chan struct{})
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for {
			select {
			case <-stop:
				return
			default:
				front.Stats()
				front.MemoryBytes()
			}
		}
	}()
	var cid container.ID
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for iter := 0; iter < 30; iter++ {
				seg := mkSeg(r, 100, 400)
				res := front.Dedup(seg)
				cids := make([]container.ID, len(seg))
				for i := range seg {
					if res[i].Duplicate && res[i].CID != 0 {
						cids[i] = res[i].CID
						continue
					}
					mu.Lock()
					cid++
					cids[i] = cid
					mu.Unlock()
				}
				front.Commit(seg, cids)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrape.Wait()
	st := front.Stats()
	if st.Lookups != workers*30*100 {
		t.Fatalf("Lookups = %d, want %d", st.Lookups, workers*30*100)
	}
}

// BenchmarkShardedDedup measures the front's classification throughput
// at increasing shard counts under concurrent callers (make microbench).
func BenchmarkShardedDedup(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "shards1", 4: "shards4", 16: "shards16"}[shards], func(b *testing.B) {
			front, err := New(shards, func(int) index.Index { return newDDFS() })
			if err != nil {
				b.Fatal(err)
			}
			r := rand.New(rand.NewSource(1))
			seg := mkSeg(r, 1024, 2048)
			cids := make([]container.ID, len(seg))
			for i := range cids {
				cids[i] = container.ID(i + 1)
			}
			front.Commit(seg, cids)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					front.Dedup(seg)
				}
			})
		})
	}
}
