// Package silo implements SiLo (Xia et al., USENIX ATC'11), the
// similarity-and-locality baseline of the paper's evaluation (§5.2).
//
// SiLo groups the chunk stream into *segments* (similarity unit) and packs
// consecutive segments into *blocks* (locality unit). The in-memory
// similarity hash table (SHTable) keeps one representative fingerprint per
// segment — the minimum fingerprint, a min-wise similarity sketch — mapped
// to the block holding that segment. A new segment whose representative
// matches the SHTable is likely similar to the stored segment, so its whole
// block is fetched from disk (one counted disk lookup) into an LRU block
// cache; the block's neighbouring segments exploit stream locality exactly
// like DDFS's container prefetch. Segments with no similar block are
// deduplicated only against the cache and the current in-flight block,
// which is where SiLo loses a little dedup ratio against exact schemes.
package silo

import (
	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
	"hidestore/internal/lru"
)

// Options configures SiLo.
type Options struct {
	// SegmentsPerBlock is the locality unit in similarity units.
	// Default 32.
	SegmentsPerBlock int
	// CacheBlocks bounds the block read cache. Default 16.
	CacheBlocks int
}

func (o *Options) setDefaults() {
	if o.SegmentsPerBlock <= 0 {
		o.SegmentsPerBlock = 32
	}
	if o.CacheBlocks <= 0 {
		o.CacheBlocks = 16
	}
}

// block models one on-disk locality block: the union of its segments'
// chunk → container mappings, plus the representative fingerprint of every
// segment it holds.
type block struct {
	id     uint64
	chunks map[fp.FP]container.ID
	reps   []fp.FP
	nsegs  int
}

// Index is the SiLo index.
type Index struct {
	opts Options
	// shTable is the in-memory similarity table: representative
	// fingerprint → block ID.
	shTable map[fp.FP]uint64
	// blocks models the on-disk block store.
	blocks  map[uint64]*block
	nextID  uint64
	current *block
	// cache is the in-memory block read cache.
	cache  *lru.Cache[uint64, *block]
	cached map[fp.FP]uint64 // fingerprint → cached block, kept in sync
	stats  index.Stats
}

var _ index.Index = (*Index)(nil)

// New creates a SiLo index.
func New(opts Options) (*Index, error) {
	opts.setDefaults()
	cache, err := lru.New[uint64, *block](int64(opts.CacheBlocks))
	if err != nil {
		return nil, err
	}
	ix := &Index{
		opts:    opts,
		shTable: make(map[fp.FP]uint64),
		blocks:  make(map[uint64]*block),
		cache:   cache,
		cached:  make(map[fp.FP]uint64),
	}
	ix.current = ix.newBlock()
	cache.SetOnEvict(func(id uint64, b *block) {
		for f := range b.chunks {
			if ix.cached[f] == id {
				delete(ix.cached, f)
			}
		}
	})
	return ix, nil
}

func (ix *Index) newBlock() *block {
	ix.nextID++
	return &block{id: ix.nextID, chunks: make(map[fp.FP]container.ID)}
}

// Name implements index.Index.
func (ix *Index) Name() string { return "silo" }

// representative returns the min-hash sketch of a segment: its smallest
// fingerprint.
func representative(seg []index.ChunkRef) (fp.FP, bool) {
	if len(seg) == 0 {
		return fp.FP{}, false
	}
	min := seg[0].FP
	for _, c := range seg[1:] {
		if c.FP.Less(min) {
			min = c.FP
		}
	}
	return min, true
}

// Dedup implements index.Index.
func (ix *Index) Dedup(seg []index.ChunkRef) []index.Result {
	results := make([]index.Result, len(seg))
	rep, ok := representative(seg)
	if ok {
		// Similarity lookup: fetch the block of the most similar stored
		// segment unless it is already cached or being written.
		if blockID, found := ix.shTable[rep]; found && blockID != ix.current.id {
			if !ix.cache.Contains(blockID) {
				ix.stats.DiskLookups++
				if b, exists := ix.blocks[blockID]; exists {
					ix.addToCache(b)
				}
			} else {
				ix.cache.Get(blockID) // promote
			}
		}
	}
	pending := make(map[fp.FP]struct{}, len(seg))
	for i, c := range seg {
		ix.stats.Lookups++
		if _, dup := pending[c.FP]; dup {
			results[i] = index.Result{Duplicate: true}
			ix.noteDuplicate(c)
			continue
		}
		// Check the in-flight block first (stream locality), then the
		// block cache.
		if cid, ok := ix.current.chunks[c.FP]; ok {
			results[i] = index.Result{Duplicate: true, CID: cid}
			ix.stats.CacheHits++
			ix.noteDuplicate(c)
			continue
		}
		if blockID, ok := ix.cached[c.FP]; ok {
			if b, live := ix.cache.Peek(blockID); live {
				results[i] = index.Result{Duplicate: true, CID: b.chunks[c.FP]}
				ix.cache.Get(blockID)
				ix.stats.CacheHits++
				ix.noteDuplicate(c)
				continue
			}
		}
		results[i] = index.Result{}
		pending[c.FP] = struct{}{}
		ix.noteUnique(c)
	}
	return results
}

func (ix *Index) addToCache(b *block) {
	if ix.cache.Add(b.id, b, 1) {
		for f := range b.chunks {
			ix.cached[f] = b.id
		}
	}
}

// Commit implements index.Index: the segment joins the current block; a
// full block is sealed and its representatives registered in the SHTable.
func (ix *Index) Commit(seg []index.ChunkRef, cids []container.ID) {
	if len(seg) == 0 {
		return
	}
	for i, c := range seg {
		if i >= len(cids) || cids[i] == 0 {
			continue
		}
		if _, ok := ix.current.chunks[c.FP]; !ok {
			ix.current.chunks[c.FP] = cids[i]
		}
	}
	if rep, ok := representative(seg); ok {
		ix.current.reps = append(ix.current.reps, rep)
	}
	ix.current.nsegs++
	if ix.current.nsegs >= ix.opts.SegmentsPerBlock {
		ix.sealCurrent()
	}
}

func (ix *Index) sealCurrent() {
	b := ix.current
	if b.nsegs == 0 {
		return
	}
	ix.blocks[b.id] = b
	for _, rep := range b.reps {
		ix.shTable[rep] = b.id
	}
	ix.current = ix.newBlock()
}

// EndVersion implements index.Index: the partial block is sealed so the
// next version can match against it.
func (ix *Index) EndVersion() { ix.sealCurrent() }

// Stats implements index.Index.
func (ix *Index) Stats() index.Stats { return ix.stats }

// MemoryBytes implements index.Index: the SHTable — one representative
// fingerprint (20 B) plus an 8-byte block reference per stored segment.
// Blocks live on disk.
func (ix *Index) MemoryBytes() int64 {
	return int64(len(ix.shTable)) * (fp.Size + 8)
}

// Blocks returns the number of sealed blocks (test hook).
func (ix *Index) Blocks() int { return len(ix.blocks) }

func (ix *Index) noteDuplicate(c index.ChunkRef) {
	ix.stats.Duplicates++
	ix.stats.DuplicateBytes += uint64(c.Size)
}

func (ix *Index) noteUnique(c index.ChunkRef) {
	ix.stats.Uniques++
	ix.stats.UniqueBytes += uint64(c.Size)
}
