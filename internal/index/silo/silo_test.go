package silo

import (
	"strconv"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
)

func seg(prefix string, n int) []index.ChunkRef {
	out := make([]index.ChunkRef, n)
	for i := range out {
		out[i] = index.ChunkRef{FP: fp.Of([]byte(prefix + strconv.Itoa(i))), Size: 4096}
	}
	return out
}

func cids(n int, cid container.ID) []container.ID {
	out := make([]container.ID, n)
	for i := range out {
		out[i] = cid
	}
	return out
}

func TestBlockSealing(t *testing.T) {
	ix, err := New(Options{SegmentsPerBlock: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		s := seg("s"+strconv.Itoa(i), 10)
		ix.Commit(s, cids(10, container.ID(i+1)))
	}
	// 7 segments at 3 per block: 2 sealed blocks, 1 in flight.
	if got := ix.Blocks(); got != 2 {
		t.Fatalf("Blocks = %d, want 2", got)
	}
	ix.EndVersion()
	if got := ix.Blocks(); got != 3 {
		t.Fatalf("Blocks after EndVersion = %d, want 3", got)
	}
}

func TestSimilarityMatchLoadsBlock(t *testing.T) {
	ix, err := New(Options{SegmentsPerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := seg("sim", 100)
	ix.Commit(s, cids(100, 1))
	ix.EndVersion() // seals the block, registering the representative

	res := ix.Dedup(s) // identical segment → representative matches
	st := ix.Stats()
	if st.DiskLookups != 1 {
		t.Fatalf("DiskLookups = %d, want 1 block load", st.DiskLookups)
	}
	for i, r := range res {
		if !r.Duplicate || r.CID != 1 {
			t.Fatalf("chunk %d: %+v, want duplicate in container 1", i, r)
		}
	}
}

// TestSimilarSegmentStillMatches: changing chunks other than the minimum
// fingerprint keeps the representative, so the block is still found and
// the unchanged chunks deduplicate.
func TestSimilarSegmentStillMatches(t *testing.T) {
	ix, err := New(Options{SegmentsPerBlock: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := seg("v1-", 100)
	ix.Commit(s, cids(100, 1))
	ix.EndVersion()

	// Find the representative (minimum) and keep it; replace 30 others.
	rep, _ := representative(s)
	mutated := append([]index.ChunkRef(nil), s...)
	replaced := 0
	for i := range mutated {
		if mutated[i].FP == rep {
			continue
		}
		if replaced < 30 {
			mutated[i] = index.ChunkRef{FP: fp.Of([]byte("new-" + strconv.Itoa(i))), Size: 4096}
			replaced++
		}
	}
	res := ix.Dedup(mutated)
	dups := 0
	for _, r := range res {
		if r.Duplicate {
			dups++
		}
	}
	if dups != 70 {
		t.Fatalf("found %d duplicates, want 70 (similarity hit)", dups)
	}
}

// TestDissimilarSegmentMisses: a fully different segment has a different
// representative, so nothing is loaded and nothing deduplicates — the
// near-exact miss case.
func TestDissimilarSegmentMisses(t *testing.T) {
	ix, err := New(Options{SegmentsPerBlock: 1})
	if err != nil {
		t.Fatal(err)
	}
	ix.Commit(seg("old", 50), cids(50, 1))
	ix.EndVersion()
	res := ix.Dedup(seg("completely-new", 50))
	for i, r := range res {
		if r.Duplicate {
			t.Fatalf("chunk %d misclassified as duplicate", i)
		}
	}
	if ix.Stats().DiskLookups != 0 {
		t.Fatal("dissimilar segment should not load blocks")
	}
}

func TestCachedBlockNotReloaded(t *testing.T) {
	ix, err := New(Options{SegmentsPerBlock: 1, CacheBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := seg("c", 50)
	ix.Commit(s, cids(50, 1))
	ix.EndVersion()
	ix.Dedup(s)
	ix.Dedup(s) // block already cached
	if got := ix.Stats().DiskLookups; got != 1 {
		t.Fatalf("DiskLookups = %d, want 1 (second pass should hit cache)", got)
	}
}

func TestRepresentativeOfEmpty(t *testing.T) {
	if _, ok := representative(nil); ok {
		t.Fatal("representative(nil) should report false")
	}
}

func TestMemoryTracksSHTable(t *testing.T) {
	ix, err := New(Options{SegmentsPerBlock: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.MemoryBytes() != 0 {
		t.Fatal("fresh index should report zero memory")
	}
	ix.Commit(seg("m", 10), cids(10, 1))
	ix.EndVersion()
	if got, want := ix.MemoryBytes(), int64(fp.Size+8); got != want {
		t.Fatalf("MemoryBytes = %d, want %d (one representative)", got, want)
	}
}
