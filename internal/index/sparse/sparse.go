// Package sparse implements Sparse Indexing (Lillibridge et al., FAST'09),
// the near-exact deduplication baseline that trades a little dedup ratio
// for a drastically smaller in-memory index (§5.2, §6 of the paper).
//
// The chunk stream is processed in segments. A small fraction of each
// segment's fingerprints — the *hooks*, chosen by a deterministic sampling
// predicate — are kept in an in-memory sparse index mapping hook →
// manifests (previously stored segments) that contain it. To deduplicate a
// new segment, the scheme looks up the segment's hooks, ranks the matching
// manifests, loads the top few *champions* from disk (each load is one
// counted disk lookup), and deduplicates the segment only against the
// champions' chunks. Chunks that exist in the store but not in any chosen
// champion are missed and re-stored — which is exactly why Figure 8 shows
// sparse indexing below DDFS and HiDeStore in dedup ratio.
package sparse

import (
	"fmt"
	"sort"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
)

// Options configures Sparse Indexing.
type Options struct {
	// SampleBits determines the sampling rate: a fingerprint is a hook
	// when its top 64 bits have SampleBits trailing zero bits, i.e. the
	// expected rate is 1/2^SampleBits. Default 6 (1/64).
	SampleBits int
	// MaxChampions bounds how many manifests are loaded per segment.
	// Default 10, the original paper's sweet spot.
	MaxChampions int
	// MaxHooksPerManifest caps how many manifest IDs one hook keeps (the
	// original design keeps the most recent). Default 4.
	MaxHooksPerManifest int
}

func (o *Options) setDefaults() {
	if o.SampleBits <= 0 {
		o.SampleBits = 6
	}
	if o.MaxChampions <= 0 {
		o.MaxChampions = 10
	}
	if o.MaxHooksPerManifest <= 0 {
		o.MaxHooksPerManifest = 4
	}
}

// manifest is an on-disk segment record: the chunks of one stored segment
// and where they were placed.
type manifest struct {
	id     uint64
	chunks []index.ChunkRef
	cids   []container.ID
}

// Index is the sparse index.
type Index struct {
	opts Options
	mask uint64
	// sparse is the in-memory hook table: hook fingerprint → manifest IDs
	// (most recent first).
	sparse map[fp.FP][]uint64
	// manifests models the on-disk manifest store.
	manifests map[uint64]*manifest
	nextID    uint64
	stats     index.Stats
}

var _ index.Index = (*Index)(nil)

// New creates a sparse index.
func New(opts Options) (*Index, error) {
	opts.setDefaults()
	if opts.SampleBits > 32 {
		return nil, fmt.Errorf("sparse: SampleBits %d too large", opts.SampleBits)
	}
	return &Index{
		opts:      opts,
		mask:      uint64(1)<<opts.SampleBits - 1,
		sparse:    make(map[fp.FP][]uint64),
		manifests: make(map[uint64]*manifest),
	}, nil
}

// Name implements index.Index.
func (ix *Index) Name() string { return "sparse" }

func (ix *Index) isHook(f fp.FP) bool {
	return f.Prefix64()&ix.mask == 0
}

// Dedup implements index.Index.
func (ix *Index) Dedup(seg []index.ChunkRef) []index.Result {
	results := make([]index.Result, len(seg))
	champions := ix.chooseChampions(seg)
	// Build the dedup set from champion manifests; each champion load is
	// one disk lookup (manifests live on disk).
	known := make(map[fp.FP]container.ID)
	for _, mID := range champions {
		ix.stats.DiskLookups++
		m, ok := ix.manifests[mID]
		if !ok {
			continue
		}
		for i, c := range m.chunks {
			if _, seen := known[c.FP]; !seen {
				known[c.FP] = m.cids[i]
			}
		}
	}
	pending := make(map[fp.FP]struct{}, len(seg))
	for i, c := range seg {
		ix.stats.Lookups++
		if _, ok := pending[c.FP]; ok {
			results[i] = index.Result{Duplicate: true}
			ix.noteDuplicate(c)
			continue
		}
		if cid, ok := known[c.FP]; ok {
			results[i] = index.Result{Duplicate: true, CID: cid}
			ix.stats.CacheHits++
			ix.noteDuplicate(c)
			continue
		}
		results[i] = index.Result{}
		pending[c.FP] = struct{}{}
		ix.noteUnique(c)
	}
	return results
}

func (ix *Index) noteDuplicate(c index.ChunkRef) {
	ix.stats.Duplicates++
	ix.stats.DuplicateBytes += uint64(c.Size)
}

func (ix *Index) noteUnique(c index.ChunkRef) {
	ix.stats.Uniques++
	ix.stats.UniqueBytes += uint64(c.Size)
}

// chooseChampions ranks manifests by how many of the segment's hooks they
// hold and returns the top MaxChampions manifest IDs.
func (ix *Index) chooseChampions(seg []index.ChunkRef) []uint64 {
	votes := make(map[uint64]int)
	for _, c := range seg {
		if !ix.isHook(c.FP) {
			continue
		}
		for _, mID := range ix.sparse[c.FP] {
			votes[mID]++
		}
	}
	if len(votes) == 0 {
		return nil
	}
	type scored struct {
		id    uint64
		votes int
	}
	ranked := make([]scored, 0, len(votes))
	for id, v := range votes {
		ranked = append(ranked, scored{id, v})
	}
	// Highest vote count first; newer manifest breaks ties (fresher
	// locality).
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].votes != ranked[j].votes {
			return ranked[i].votes > ranked[j].votes
		}
		return ranked[i].id > ranked[j].id
	})
	n := ix.opts.MaxChampions
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].id
	}
	return out
}

// Commit implements index.Index: the segment becomes a manifest and its
// hooks are registered in the sparse index.
func (ix *Index) Commit(seg []index.ChunkRef, cids []container.ID) {
	if len(seg) == 0 {
		return
	}
	ix.nextID++
	m := &manifest{
		id:     ix.nextID,
		chunks: append([]index.ChunkRef(nil), seg...),
		cids:   append([]container.ID(nil), cids...),
	}
	ix.manifests[m.id] = m
	for _, c := range seg {
		if !ix.isHook(c.FP) {
			continue
		}
		list := ix.sparse[c.FP]
		// Most recent first, capped.
		list = append([]uint64{m.id}, list...)
		if len(list) > ix.opts.MaxHooksPerManifest {
			list = list[:ix.opts.MaxHooksPerManifest]
		}
		ix.sparse[c.FP] = list
	}
}

// EndVersion implements index.Index. Sparse indexing has no per-version
// state; segments never span versions because the engine flushes at
// version boundaries.
func (ix *Index) EndVersion() {}

// Stats implements index.Index.
func (ix *Index) Stats() index.Stats { return ix.stats }

// MemoryBytes implements index.Index: the in-memory hook table — one
// 20-byte hook plus 8 bytes per manifest reference. Manifests live on disk
// and are excluded, which is the whole point of the scheme.
func (ix *Index) MemoryBytes() int64 {
	var total int64
	for _, list := range ix.sparse {
		total += fp.Size + int64(len(list))*8
	}
	return total
}

// Manifests returns the number of stored manifests (test hook).
func (ix *Index) Manifests() int { return len(ix.manifests) }

// Hooks returns the number of distinct hooks (test hook).
func (ix *Index) Hooks() int { return len(ix.sparse) }
