package sparse

import (
	"strconv"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/index"
)

func seg(prefix string, n int) []index.ChunkRef {
	out := make([]index.ChunkRef, n)
	for i := range out {
		out[i] = index.ChunkRef{FP: fp.Of([]byte(prefix + strconv.Itoa(i))), Size: 4096}
	}
	return out
}

func cids(n int, cid container.ID) []container.ID {
	out := make([]container.ID, n)
	for i := range out {
		out[i] = cid
	}
	return out
}

func TestChampionLoadsAreBounded(t *testing.T) {
	ix, err := New(Options{SampleBits: 1, MaxChampions: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Store the same segment many times so many manifests share hooks.
	s := seg("x", 200)
	for i := 0; i < 10; i++ {
		ix.Commit(s, cids(200, container.ID(i+1)))
	}
	ix.Dedup(s)
	if got := ix.Stats().DiskLookups; got > 3 {
		t.Fatalf("loaded %d champions, cap is 3", got)
	}
}

func TestNoHooksMeansNoChampions(t *testing.T) {
	// SampleBits 32 makes hooks essentially impossible for 100 chunks, so
	// a stored segment cannot be found again: near-exact dedup misses.
	ix, err := New(Options{SampleBits: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := seg("y", 100)
	res := ix.Dedup(s)
	m := make([]container.ID, len(s))
	for i := range m {
		m[i] = 1
	}
	_ = res
	ix.Commit(s, m)
	ix.EndVersion()
	res2 := ix.Dedup(s)
	dups := 0
	for _, r := range res2 {
		if r.Duplicate {
			dups++
		}
	}
	if dups != 0 {
		t.Fatalf("found %d duplicates with no hooks; sampling miss expected", dups)
	}
	if ix.Stats().DiskLookups != 0 {
		t.Fatal("no champions should mean no disk lookups")
	}
}

func TestManifestCountGrows(t *testing.T) {
	ix, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s := seg("m"+strconv.Itoa(i), 50)
		ix.Commit(s, cids(50, container.ID(i+1)))
	}
	if ix.Manifests() != 5 {
		t.Fatalf("Manifests = %d, want 5", ix.Manifests())
	}
}

func TestHookListCapped(t *testing.T) {
	ix, err := New(Options{SampleBits: 1, MaxHooksPerManifest: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := seg("h", 64)
	for i := 0; i < 6; i++ {
		ix.Commit(s, cids(64, container.ID(i+1)))
	}
	for f, list := range ix.sparse {
		if len(list) > 2 {
			t.Fatalf("hook %s holds %d manifests, cap is 2", f.Short(), len(list))
		}
		// Most recent manifest first.
		if len(list) == 2 && list[0] < list[1] {
			t.Fatalf("hook list not most-recent-first: %v", list)
		}
	}
}

func TestSampleBitsValidation(t *testing.T) {
	if _, err := New(Options{SampleBits: 40}); err == nil {
		t.Fatal("SampleBits 40 should be rejected")
	}
}

func TestMemoryOnlyCountsHooks(t *testing.T) {
	ix, err := New(Options{SampleBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := seg("mem", 1600)
	ix.Commit(s, cids(1600, 1))
	mem := ix.MemoryBytes()
	// Expected hooks ≈ 1600/16 = 100; memory must be far below the full
	// index footprint (1600 × 28 bytes).
	if mem == 0 {
		t.Fatal("memory should be non-zero once hooks exist")
	}
	if mem >= 1600*28/2 {
		t.Fatalf("sparse memory %d too close to full-index size", mem)
	}
}
