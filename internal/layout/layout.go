// Package layout is the locality observatory's analysis core: it walks
// a version's resolved recipe and the referenced containers' indexes
// and reports how fragmented the version's physical layout is — and
// what that fragmentation would cost to restore — without performing a
// restore.
//
// The per-policy speed-factor estimates are not models: Analyze loads
// each referenced container once, then replays the recipe's container
// reference stream through the *actual* restore-cache implementations
// (container-lru, chunk-lru, faa, alacc, opt) against those in-memory
// containers, writing the reassembled stream to io.Discard. Because
// the policies see the same entries and the same container contents a
// real restore would, the simulated Stats.ContainerReads equals the
// measured value exactly — an identity, not an approximation — which
// is what the conformance tests pin.
package layout

import (
	"context"
	"fmt"
	"io"

	"hidestore/internal/container"
	"hidestore/internal/metrics"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
)

// DefaultPolicies is the policy set Analyze simulates when the caller
// passes none: every scheme the restore cache implements.
var DefaultPolicies = []string{"container-lru", "chunk-lru", "faa", "alacc", "opt"}

// PolicyEstimate is the simulated restore cost of one cache policy.
type PolicyEstimate struct {
	Policy         string  `json:"policy"`
	ContainerReads uint64  `json:"container_reads"`
	CacheHits      uint64  `json:"cache_hits"`
	SpeedFactor    float64 `json:"speed_factor"` // MB restored per container read
}

// Report is the layout analysis of one version.
type Report struct {
	Version      int    `json:"version"`
	LogicalBytes uint64 `json:"logical_bytes"`
	Chunks       int    `json:"chunks"`

	// UniqueContainers is how many distinct containers the version
	// references; OptimalContainers is the fewest that could hold its
	// logical bytes (ceil(logical/capacity)). CFL — Chunk Fragmentation
	// Level, after Nam et al. — is optimal over actual: 1.0 is a
	// perfectly packed layout, lower is more fragmented. Internal
	// duplication can push CFL above 1 (the logical stream is larger
	// than its unique bytes), so it is reported uncapped.
	UniqueContainers  int     `json:"unique_containers"`
	OptimalContainers int     `json:"optimal_containers"`
	CFL               float64 `json:"cfl"`

	// ContainersPerMB is unique containers per logical MB — the
	// infinite-cache read cost per restored MB.
	ContainersPerMB float64 `json:"containers_per_mb"`

	// Utilization is live payload over stored payload, summed across
	// the referenced containers: how much of what those containers hold
	// is still alive (deletions and migration leave dead bytes behind).
	// ReferencedBytes narrows that to this version's own distinct
	// chunks, so ReferencedBytes/ContainerBytes is the fraction of the
	// fetched payload a restore of this version actually uses.
	Utilization     float64 `json:"utilization"`
	ReferencedBytes uint64  `json:"referenced_bytes"`
	ContainerBytes  uint64  `json:"container_bytes"`

	Policies []PolicyEstimate `json:"policies"`
}

// memFetcher serves pre-loaded containers, honoring ctx like the real
// store-backed fetcher. The policies' own counting wrappers tally Gets
// against it exactly as they would against the store.
type memFetcher map[container.ID]*container.Container

func (m memFetcher) Get(ctx context.Context, id container.ID) (*container.Container, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c, ok := m[id]
	if !ok {
		return nil, fmt.Errorf("layout: container %d not loaded", id)
	}
	return c, nil
}

// Analyze computes the layout report for one version's fully resolved
// recipe entries (every CID positive — engines resolve active and
// forward references first). Each referenced container is read from
// fetch exactly once, in first-reference order; capacity <= 0 means
// container.DefaultCapacity; a nil policies slice means
// DefaultPolicies, an empty one skips simulation.
func Analyze(ctx context.Context, version int, entries []recipe.Entry, fetch restorecache.Fetcher, capacity int, policies []string) (*Report, error) {
	if capacity <= 0 {
		capacity = container.DefaultCapacity
	}
	if policies == nil {
		policies = DefaultPolicies
	}
	rep := &Report{Version: version, Chunks: len(entries)}

	// Load each referenced container's index once, in first-reference
	// order, and account the version's distinct chunks against it.
	loaded := make(memFetcher)
	var order []container.ID
	seenChunk := make(map[recipe.Entry]bool, len(entries))
	for i, e := range entries {
		if e.CID <= 0 {
			return nil, fmt.Errorf("layout: entry %d unresolved (CID %d); resolve the recipe first", i, e.CID)
		}
		rep.LogicalBytes += uint64(e.Size)
		id := container.ID(e.CID)
		ctn, ok := loaded[id]
		if !ok {
			var err error
			ctn, err = fetch.Get(ctx, id)
			if err != nil {
				return nil, fmt.Errorf("layout: load container %d: %w", id, err)
			}
			loaded[id] = ctn
			order = append(order, id)
			rep.ContainerBytes += uint64(ctn.DataSize())
			rep.Utilization += float64(ctn.LiveSize()) // summed, normalized below
		}
		ce, ok := ctn.Entry(e.FP)
		if !ok {
			return nil, fmt.Errorf("layout: chunk %s missing from container %d", e.FP, id)
		}
		if !seenChunk[e] {
			seenChunk[e] = true
			rep.ReferencedBytes += uint64(ce.Size)
		}
	}
	rep.UniqueContainers = len(order)
	rep.OptimalContainers = int((rep.LogicalBytes + uint64(capacity) - 1) / uint64(capacity))
	if rep.UniqueContainers > 0 {
		rep.CFL = float64(rep.OptimalContainers) / float64(rep.UniqueContainers)
	}
	if rep.LogicalBytes > 0 {
		rep.ContainersPerMB = float64(rep.UniqueContainers) / (float64(rep.LogicalBytes) / (1 << 20))
	}
	if rep.ContainerBytes > 0 {
		rep.Utilization /= float64(rep.ContainerBytes)
	} else {
		rep.Utilization = 0
	}

	// Replay the reference stream through each real policy.
	for _, name := range policies {
		c, err := restorecache.New(name)
		if err != nil {
			return nil, fmt.Errorf("layout: %w", err)
		}
		st, err := c.Restore(ctx, entries, loaded, io.Discard)
		if err != nil {
			return nil, fmt.Errorf("layout: simulate %s: %w", name, err)
		}
		rep.Policies = append(rep.Policies, PolicyEstimate{
			Policy:         name,
			ContainerReads: st.ContainerReads,
			CacheHits:      st.CacheHits,
			SpeedFactor:    st.SpeedFactor(),
		})
	}
	return rep, nil
}

// Render formats the report as aligned text tables.
func (r *Report) Render() string {
	t := metrics.NewTable(
		fmt.Sprintf("Layout: version %d — %.2f MB in %d chunks",
			r.Version, float64(r.LogicalBytes)/(1<<20), r.Chunks),
		"metric", "value")
	t.AddRow("unique containers", fmt.Sprintf("%d", r.UniqueContainers))
	t.AddRow("optimal containers", fmt.Sprintf("%d", r.OptimalContainers))
	t.AddRow("CFL", metrics.FormatFloat(r.CFL))
	t.AddRow("containers/MB", metrics.FormatFloat(r.ContainersPerMB))
	t.AddRow("utilization", metrics.FormatFloat(r.Utilization))
	t.AddRow("referenced MB", metrics.FormatFloat(float64(r.ReferencedBytes)/(1<<20)))
	t.AddRow("container MB", metrics.FormatFloat(float64(r.ContainerBytes)/(1<<20)))
	out := t.Render()
	if len(r.Policies) == 0 {
		return out
	}
	p := metrics.NewTable("Simulated restore cost per cache policy",
		"policy", "container reads", "cache hits", "speed factor (MB/read)")
	for _, est := range r.Policies {
		p.AddRow(est.Policy,
			fmt.Sprintf("%d", est.ContainerReads),
			fmt.Sprintf("%d", est.CacheHits),
			metrics.FormatFloat(est.SpeedFactor))
	}
	return out + "\n" + p.Render()
}
